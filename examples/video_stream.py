"""Streaming video denoise under a TOQ — the paper's opening motivation.

"A consumer using a mobile device can tolerate occasional dropped frames
or a small loss in resolution during video playback, especially when this
allows video playback to occur seamlessly."  This script synthesises a
short panning video (a scene translating under camera noise), tunes the
denoise stage once, and then streams frames through the calibrated runtime
— reporting the effective throughput improvement, the measured per-frame
quality at the calibration checks, and the total quality-check overhead.

    python examples/video_stream.py
"""

import numpy as np

from repro import DeviceKind, Paraprox
from repro.apps.gaussian import MeanFilterApp
from repro.apps.images import synthetic_image
from repro.device import CostModel, GTX560
from repro.runtime.calibration import CalibratedRuntime

FRAMES = 48
SIDE = 128


class VideoDenoise(MeanFilterApp):
    """Mean-filter denoise over frames of a panning synthetic scene."""

    def __init__(self):
        super().__init__(scale=1.0)
        self.side = SIDE
        scene = synthetic_image(SIDE * 2, SIDE, seed=9)
        self._scene = scene
        self._rng = np.random.default_rng(42)

    def frame(self, index: int) -> dict:
        pan = (index * 2) % SIDE
        crop = self._scene[:, pan : pan + SIDE]
        noisy = crop + self._rng.normal(0, 0.02, crop.shape).astype(np.float32)
        return {"img": np.clip(noisy, 0.01, 1.0).astype(np.float32)}

    def generate_inputs(self, seed=None):
        return self.frame(0 if seed is None else seed % FRAMES)


def main() -> None:
    app = VideoDenoise()
    paraprox = Paraprox(target_quality=0.90)
    tuning = paraprox.optimize(app, DeviceKind.GPU)
    ladder = [
        p.variant
        for p in sorted(tuning.profiles, key=lambda p: p.speedup)
        if p.variant is not None and p.quality >= 0.90
    ]
    print(f"tuned once: {tuning.chosen.name} "
          f"({tuning.speedup:.2f}x at {tuning.quality:.1%} quality)")

    runtime = CalibratedRuntime(app, ladder, toq=0.90, check_interval=12)
    cost = CostModel(GTX560)
    approx_cycles = exact_cycles = 0.0
    for i in range(FRAMES):
        inputs = app.frame(i)
        out = runtime.invoke(inputs)
        # account modelled per-frame cost of the variant actually used
        if runtime.rung >= 0:
            _o, trace = app.run_variant(ladder[runtime.rung], inputs)
        else:
            _o, trace = app.run_exact(inputs)
        approx_cycles += cost.cycles(trace)
        _o, trace = app.run_exact(inputs)
        exact_cycles += cost.cycles(trace)

    stats = runtime.stats
    checks = [r for r in stats.records if r.checked]
    print(f"\nstreamed {FRAMES} frames at variant {runtime.current_name}")
    print(f"effective stream speedup: {exact_cycles / approx_cycles:.2f}x "
          f"(modelled cycles, {stats.checks} quality checks included separately)")
    print(f"quality at calibration checks: "
          f"{', '.join(f'{r.quality:.1%}' for r in checks)}")
    print(f"quality-check overhead: {stats.overhead:.1%} extra exact frames "
          f"(paper §5: <5% at 40-50-frame intervals)")


if __name__ == "__main__":
    main()
