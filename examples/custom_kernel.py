"""Bring your own kernel: write a data-parallel kernel in the embedded DSL
and let Paraprox detect its pattern and build approximate variants.

The kernel below scores loan applications with a logistic model — a pure,
compute-heavy function of three inputs, i.e. a classic map pattern.  The
script shows the layers a downstream user can poke at individually:

1. the lowered IR (printed as CUDA-like pseudo-code),
2. pattern detection and the Eq.-1 profitability estimate,
3. memoization with bit tuning,
4. the rewritten approximate kernel and its measured quality.

    python examples/custom_kernel.py
"""

import numpy as np

from repro.analysis import GPU_LATENCIES, cycles_needed
from repro.approx.memoization import MemoizationTransform, profile_device_calls
from repro.engine import Grid, launch
from repro.kernel import device, kernel
from repro.kernel.dsl import *  # noqa: F401,F403
from repro.kernel.printer import print_function
from repro.patterns import PatternDetector
from repro.runtime.quality import MEAN_RELATIVE


@device
def default_risk(income: f32, debt: f32, age: f32) -> f32:
    """Logistic default-risk score; pure and transcendental-heavy."""
    utilization = debt / fmax(income, 1.0)
    z = -1.5 + 2.2 * log(1.0 + utilization) - 0.02 * age + 0.4 * sqrt(utilization)
    return 1.0 / (1.0 + exp(-z))


@kernel
def score_loans(out: array_f32, income: array_f32, debt: array_f32, age: array_f32, n: i32):
    i = global_id()
    if i < n:
        out[i] = default_risk(income[i], debt[i], age[i])


def main() -> None:
    n = 50_000
    rng = np.random.default_rng(0)
    income = (rng.lognormal(10.5, 0.5, n)).astype(np.float32)
    debt = (income * rng.uniform(0.0, 1.5, n)).astype(np.float32)
    age = rng.uniform(18, 80, n).astype(np.float32)
    args = [np.zeros(n, dtype=np.float32), income, debt, age, n]
    grid = Grid.for_elements(n)

    print("=== 1. the lowered kernel ===")
    print(print_function(score_loans.fn))

    print("\n=== 2. pattern detection ===")
    detection = PatternDetector().detect(score_loans)
    match = detection.for_kernel("score_loans")[0]
    est = cycles_needed(score_loans.module["default_risk"], GPU_LATENCIES, score_loans.module)
    print(f"pattern: {match.pattern.value}; memoization candidates: {match.candidates}")
    print(f"Eq.-1 estimate for default_risk: {est:.0f} cycles "
          f"(threshold: {10 * GPU_LATENCIES.l1:.0f})")

    print("\n=== 3. profiling + bit tuning + table build ===")
    profiles = profile_device_calls(score_loans, grid, args, match.candidates)
    transform = MemoizationTransform(toq=0.95, quality_fn=MEAN_RELATIVE.quality)
    variants = transform.generate(score_loans.module, "score_loans", match, profiles)
    for v in variants:
        print(f"variant {v.name}: bits per input {v.knobs['bits_per_input']}, "
              f"training quality {v.knobs['training_quality']:.4f}")

    print("\n=== 4. run exact vs approximate ===")
    exact = np.zeros(n, dtype=np.float32)
    launch(score_loans, grid, [exact, income, debt, age, n])
    best = variants[0]
    approx = np.zeros(n, dtype=np.float32)
    launch(
        best.module[best.kernel],
        grid,
        best.launch_args([approx, income, debt, age, n]),
        module=best.module,
    )
    quality = MEAN_RELATIVE.quality(approx, exact)
    print(f"quality on fresh inputs: {quality:.2%}")
    print(f"sample scores (exact vs approx): "
          f"{[f'{e:.3f}/{a:.3f}' for e, a in zip(exact[:4], approx[:4])]}")


if __name__ == "__main__":
    main()
