"""Multi-tenant serving: one front-end, many callers, batched execution.

A deployment rarely serves one caller.  This script stands up a
``ServeFrontend`` — the admission-controlled, batching request queue
above the launch machinery — and drives it from three concurrent tenant
threads:

* ``gold`` holds a large queue budget and a 90% target-quality floor;
  it streams launches of an approximation session and of a raw kernel,
* ``bronze`` holds a tiny budget, so its burst trips backpressure and
  sheds load instead of stalling everyone,
* ``probe`` tries to register a session below the gold floor and is
  refused at admission.

Compatible kernel launches (same compiled-kernel cache key) fuse into
batches; the metrics at the end show how many requests shared a batch.

    python examples/serving_frontend.py
"""

import threading

import numpy as np

from repro import ApproxSession, LaunchOptions, ServeFrontend
from repro.apps.gaussian import GaussianFilterApp
from repro.engine import Grid
from repro.errors import AdmissionError, BackpressureError
from repro.kernel import kernel
from repro.kernel.dsl import array_f32, f32, global_id, i32

N = 1 << 14
LAUNCHES_PER_TENANT = 6


@kernel
def scale_shift(out: array_f32, x: array_f32, a: f32, b: f32, n: i32):
    i = global_id()
    if i < n:
        out[i] = a * x[i] + b


def gold_traffic(frontend, session, app, report):
    futures = []
    rng = np.random.default_rng(7)
    for i in range(LAUNCHES_PER_TENANT):
        futures.append(
            frontend.submit_app(
                session, app.generate_inputs(seed=100 + i), tenant="gold"
            )
        )
        args = [
            np.zeros(N, np.float32),
            rng.random(N, dtype=np.float32),
            np.float32(1.5),
            np.float32(-0.25),
            np.int32(N),
        ]
        futures.append(
            frontend.submit(
                scale_shift, Grid.for_elements(N), args, tenant="gold"
            )
        )
    for future in futures:
        future.result(timeout=300)
    report["gold"] = f"{len(futures)} launches served"


def bronze_traffic(frontend, report):
    served = shed = 0
    rng = np.random.default_rng(13)
    futures = []
    for _ in range(4 * LAUNCHES_PER_TENANT):
        args = [
            np.zeros(N, np.float32),
            rng.random(N, dtype=np.float32),
            np.float32(0.5),
            np.float32(0.0),
            np.int32(N),
        ]
        try:
            futures.append(
                frontend.submit(
                    scale_shift, Grid.for_elements(N), args, tenant="bronze"
                )
            )
            served += 1
        except BackpressureError:
            shed += 1  # a real client would back off and retry
    for future in futures:
        future.result(timeout=300)
    report["bronze"] = f"{served} served, {shed} shed by backpressure"


def main() -> None:
    app = GaussianFilterApp(scale=0.05)
    options = LaunchOptions(backend="codegen", parallel=2)
    with ApproxSession(app, target_quality=0.92) as session, ServeFrontend(
        options=options, batch_window_s=0.005
    ) as frontend:
        frontend.register_tenant("gold", max_queue_depth=64, toq_floor=0.9)
        frontend.register_tenant("bronze", max_queue_depth=2)

        weak = ApproxSession(app, target_quality=0.8)
        try:
            frontend.submit_app(weak, app.generate_inputs(seed=1), tenant="gold")
        except AdmissionError as exc:
            print(f"probe refused : {exc}")
        finally:
            weak.close()

        report = {}
        threads = [
            threading.Thread(
                target=gold_traffic, args=(frontend, session, app, report)
            ),
            threading.Thread(target=bronze_traffic, args=(frontend, report)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        print(f"gold tenant   : {report['gold']}")
        print(f"bronze tenant : {report['bronze']}")
        batches = frontend.metrics.batches.value
        batched = frontend.metrics.batched.value
        print(
            f"batching      : {batched:.0f} requests through "
            f"{batches:.0f} batches "
            f"({batched / max(batches, 1):.1f} per batch)"
        )
        print(
            f"session       : {session.metrics_snapshot()['launches']} "
            f"monitored launches, serving {session.current_variant}"
        )


if __name__ == "__main__":
    main()
