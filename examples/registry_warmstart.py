"""Cross-session warm starts from the variant registry.

Tuning knowledge used to die with the process: every restart swept the
full variant ladder again.  This script shows the registry making it
durable:

* **session 1** tunes cold into an on-disk registry — every variant is
  measured, every (quality, speedup) point is written back,
* **session 2** (think: the process restarted, or another tenant on the
  same host) resolves the same (kernel, device, input-sketch) key,
  seeds from the stored Pareto front's knee, and reaches the same
  choice measuring a fraction of the ladder,
* a simulated drift then triggers ``warm_restart()`` — the
  drift-recovery path that re-tunes from registry knowledge instead of
  sweeping cold,
* finally the store itself is inspected, the way
  ``python -m repro.registry <dir>`` would.

    python examples/registry_warmstart.py

Run it twice: the first session of the second run is *already* warm,
because the registry directory survives.
"""

import tempfile
from pathlib import Path

from repro import ApproxSession
from repro.apps.gaussian import GaussianFilterApp
from repro.registry import VariantRegistry

REGISTRY_DIR = Path(tempfile.gettempdir()) / "paraprox-registry"
TOQ = 0.90


def tune_once(label: str, registry: VariantRegistry) -> str:
    with ApproxSession(
        GaussianFilterApp(scale=0.05), target_quality=TOQ, registry=registry
    ) as session:
        result = session.tune()
        snap = session.metrics_snapshot()["registry"]
        print(
            f"[{label}] seed_mode={result.seed_mode:5s} "
            f"chosen={result.chosen.name} "
            f"quality={result.chosen.quality:.4f} "
            f"speedup={result.chosen.speedup:.2f}x"
        )
        print(
            f"          registry: {snap['keys']} key(s), "
            f"{snap['points']} stored points"
        )
        if label == "session 2":
            # Pretend the monitor just diagnosed drift: recover through
            # the registry rather than a cold sweep.
            restarted = session.warm_restart()
            print(
                f"          warm_restart -> seed_mode={restarted.seed_mode}, "
                f"chosen={restarted.chosen.name}"
            )
        return result.chosen.name


def main() -> None:
    registry = VariantRegistry(REGISTRY_DIR)
    print(f"registry at {REGISTRY_DIR}\n")

    first = tune_once("session 1", registry)
    second = tune_once("session 2", VariantRegistry(REGISTRY_DIR))
    assert first == second, "warm start must agree with the cold sweep"

    print("\nstored fronts (what `python -m repro.registry` inspects):")
    for key in registry.keys():
        registry.refresh()
        front = registry.lookup(key)
        print(f"  {key}")
        for point in front:
            print(
                f"    {point.variant:44s} quality={point.quality:.4f} "
                f"speedup={point.speedup:.2f}x samples={point.samples}"
            )


if __name__ == "__main__":
    main()
