"""Online calibration: the Green/SAGE-style runtime reacting to drift.

The paper's framework hands its tuning knobs to a runtime that checks
output quality every N-th invocation and backs off when the TOQ is
violated.  This script streams invocations of the Kernel Density
Estimation benchmark whose data distribution *drifts* mid-stream (the
clusters tighten, making sampling noisier), and shows the runtime climbing
down the variant ladder when quality checks start failing.

    python examples/online_calibration.py
"""

import numpy as np

from repro import DeviceKind, Paraprox
from repro.apps.kde import KernelDensityApp
from repro.runtime.calibration import CalibratedRuntime


class DriftingKDE(KernelDensityApp):
    """KDE whose inputs become concentration-heavy after the drift point."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.drifted = False

    def generate_inputs(self, seed=None):
        inputs = super().generate_inputs(seed)
        if self.drifted:
            # Concentrate mass: most kernel contributions become near-zero,
            # so perforated sampling gets much noisier.
            rng = np.random.default_rng((seed or 0) + 1)
            refs = inputs["refs"].reshape(-1, self.nfeat)
            far = rng.normal(6.0, 0.05, refs.shape).astype(np.float32)
            keep = rng.random(len(refs)) < 0.05
            refs = np.where(keep[:, None], refs, far)
            inputs["refs"] = np.ascontiguousarray(refs.ravel())
        return inputs


def main() -> None:
    app = DriftingKDE()
    paraprox = Paraprox(target_quality=0.90)
    tuning = paraprox.optimize(app, DeviceKind.GPU)
    # Only variants that met the TOQ during training are deployable rungs.
    ladder = [
        p.variant
        for p in sorted(tuning.profiles, key=lambda p: p.speedup)
        if p.variant is not None and p.quality >= 0.90
    ]
    print("variant ladder (least -> most aggressive):")
    for v in ladder:
        print(f"  {v.name}")

    runtime = CalibratedRuntime(app, ladder, toq=0.90, check_interval=5)
    print(f"\nstarting at: {runtime.current_name}")
    for i in range(60):
        if i == 30 and not app.drifted:
            app.drifted = True
            print(f"[invocation {i}] *** input distribution drifts ***")
        runtime.invoke(app.generate_inputs(seed=1000 + i))
        record = runtime.stats.records[-1]
        if record.action:
            print(
                f"[invocation {i}] quality check {record.quality:.2%} -> "
                f"{record.action}; now running {runtime.current_name}"
            )
    stats = runtime.stats
    print(
        f"\n{stats.invocations} invocations, {stats.checks} quality checks "
        f"({stats.overhead:.0%} overhead), {stats.back_offs} back-offs, "
        f"{stats.advances} advances"
    )
    print(f"final variant: {runtime.current_name}")


if __name__ == "__main__":
    main()
