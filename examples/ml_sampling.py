"""Machine-learning analytics under a token accuracy budget.

The paper's pitch for big-data analytics: when processing the entire
dataset is infeasible, sampled (perforated) reductions produce
representative results at a fraction of the cost.  This script trains a
naive Bayes classifier and evaluates kernel density estimates with
Paraprox-perforated kernels, then checks the *end-task* effect: how much
do the sampled counts change the classifier's actual predictions?

    python examples/ml_sampling.py
"""

import numpy as np

from repro import DeviceKind, Paraprox
from repro.apps.kde import KernelDensityApp
from repro.apps.naivebayes import CLASSES, VALUES, NaiveBayesApp


def posterior_predictions(counts, class_counts, data, nfeat):
    """Naive Bayes MAP predictions from (possibly sampled) count tables."""
    counts = counts.reshape(nfeat, VALUES, CLASSES).astype(np.float64) + 1.0
    class_counts = class_counts.astype(np.float64) + 1.0
    log_like = np.log(counts / counts.sum(axis=1, keepdims=True))
    log_prior = np.log(class_counts / class_counts.sum())
    n = data.size // nfeat
    scores = np.tile(log_prior, (n, 1))
    sample_values = data.reshape(n, nfeat)
    for f in range(nfeat):
        scores += log_like[f, sample_values[:, f], :]
    return scores.argmax(axis=1)


def main() -> None:
    paraprox = Paraprox(target_quality=0.90)

    print("=== Naive Bayes training on sampled data ===")
    app = NaiveBayesApp()
    tuning = paraprox.optimize(app, DeviceKind.GPU)
    print(f"chosen: {tuning.chosen.name} ({tuning.speedup:.2f}x, "
          f"count-table quality {tuning.quality:.1%})")
    inputs = app.generate_inputs(99)
    exact_out, _ = app.run_exact(inputs)
    approx_out, _ = app.run_variant(tuning.chosen.variant, inputs)
    split = app.nfeat * VALUES * CLASSES
    pred_exact = posterior_predictions(
        exact_out[:split], exact_out[split:], inputs["data"], app.nfeat
    )
    pred_approx = posterior_predictions(
        approx_out[:split], approx_out[split:], inputs["data"], app.nfeat
    )
    agreement = (pred_exact == pred_approx).mean()
    print(f"classifier decisions unchanged on {agreement:.2%} of samples")

    print("\n=== Kernel density estimation on sampled references ===")
    kde = KernelDensityApp()
    tuning = paraprox.optimize(kde, DeviceKind.CPU)
    print(f"chosen: {tuning.chosen.name} ({tuning.speedup:.2f}x on CPU, "
          f"density quality {tuning.quality:.1%})")
    kde_inputs = kde.generate_inputs(5)
    exact_density, _ = kde.run_exact(kde_inputs)
    approx_density, _ = kde.run_variant(tuning.chosen.variant, kde_inputs)
    # Rank preservation: density-based outlier ranking barely moves.
    exact_rank = np.argsort(exact_density)
    approx_rank = np.argsort(approx_density)
    top = max(1, len(exact_rank) // 10)
    overlap = len(set(exact_rank[:top]) & set(approx_rank[:top])) / top
    print(f"lowest-density decile (outlier set) overlap: {overlap:.0%}")


if __name__ == "__main__":
    main()
