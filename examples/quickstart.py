"""Quickstart: approximate an option-pricing kernel in five lines.

Runs the whole Paraprox pipeline on the BlackScholes benchmark — pattern
detection, lookup-table generation with bit tuning, and TOQ-constrained
tuning — then prints what the compiler built and what it bought.

    python examples/quickstart.py
"""

from repro import DeviceKind, Paraprox
from repro.apps.blackscholes import BlackScholesApp


def main() -> None:
    app = BlackScholesApp(scale=0.02)  # ~80K options; scale=1.0 for paper size
    paraprox = Paraprox(target_quality=0.90)

    for device in (DeviceKind.GPU, DeviceKind.CPU):
        tuning = paraprox.optimize(app, device)
        print(f"--- {device.value.upper()} ---")
        print(f"chosen variant : {tuning.chosen.name}")
        print(f"speedup        : {tuning.speedup:.2f}x (modelled cycles)")
        print(f"output quality : {tuning.quality:.1%} (TOQ {tuning.toq:.0%})")
        if tuning.chosen.variant is not None:
            knobs = tuning.chosen.variant.knobs
            print(f"knobs          : {knobs}")
        print("all profiled variants:")
        for profile in tuning.frontier():
            print(
                f"  {profile.name:<58s} quality={profile.quality:.4f} "
                f"speedup={profile.speedup:.2f}x"
            )
        print()


if __name__ == "__main__":
    main()
