"""Image-processing pipeline: stencil and map approximation end to end.

Mirrors the paper's motivating domain: a camera-style pipeline that
denoises (mean filter), blurs (Gaussian) and tone-maps (gamma correction)
a frame.  Each stage is optimized by the pattern matching its structure —
tile replication for the filters, approximate memoization for the gamma
curve — and the script reports per-stage speedup/quality plus a visual
check: the mean absolute pixel difference of the final frame.

    python examples/image_pipeline.py
"""

import numpy as np

from repro import DeviceKind, Paraprox
from repro.apps.gamma import GammaCorrectionApp
from repro.apps.gaussian import GaussianFilterApp, MeanFilterApp


def run_stage(paraprox, app, label):
    tuning = paraprox.optimize(app, DeviceKind.GPU)
    inputs = app.generate_inputs(7)
    exact, _ = app.run_exact(inputs)
    if tuning.chosen.variant is None:
        approx = exact
    else:
        approx, _ = app.run_variant(tuning.chosen.variant, inputs)
    print(
        f"{label:<16s} {tuning.chosen.name:<50s} "
        f"speedup={tuning.speedup:4.2f}x quality={tuning.quality:.1%}"
    )
    return exact, approx


def main() -> None:
    paraprox = Paraprox(target_quality=0.90)
    print("stage            chosen variant                                     result")
    print("-" * 100)
    stages = [
        (MeanFilterApp(scale=0.1), "denoise"),
        (GaussianFilterApp(scale=0.1), "blur"),
        (GammaCorrectionApp(scale=0.02), "tone-map"),
    ]
    worst = 0.0
    for app, label in stages:
        exact, approx = run_stage(paraprox, app, label)
        diff = float(np.abs(np.asarray(approx) - np.asarray(exact)).mean())
        worst = max(worst, diff)
    print("-" * 100)
    print(f"worst per-stage mean absolute pixel difference: {worst:.4f} (pixels in [0,1])")
    print("per the LIVE-study argument in the paper (§4.2), <10% loss is imperceptible")


if __name__ == "__main__":
    main()
