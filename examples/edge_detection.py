"""Edge detection with a natively 2-D kernel.

Writes a Sobel gradient-magnitude kernel with 2-D launch geometry
(`Grid.for_image`, `global_id_x/y`), lets Paraprox detect its 3x3 stencil
and generate tile-replication variants, and reports what each scheme does
to edge quality — including the expected failure mode: the *center* scheme
replicates the centre pixel over the whole tile, which makes a gradient
operator return zero, so the tuner must prefer the row/column schemes.

    python examples/edge_detection.py
"""

import numpy as np

from repro.approx.stencil import StencilTransform
from repro.engine import Grid, launch
from repro.device import CostModel, GTX560
from repro.kernel import kernel
from repro.kernel.dsl import *  # noqa: F401,F403
from repro.kernel.printer import print_function
from repro.patterns import detect_stencil
from repro.runtime.quality import L2_NORM
from repro.apps.images import synthetic_image


@kernel
def sobel(out: array_f32, img: array_f32, w: i32, h: i32):
    x = global_id_x()
    y = global_id_y()
    if (x > 0) and (x < w - 1) and (y > 0) and (y < h - 1):
        gx = (
            img[(y - 1) * w + (x + 1)]
            + 2.0 * img[y * w + (x + 1)]
            + img[(y + 1) * w + (x + 1)]
            - img[(y - 1) * w + (x - 1)]
            - 2.0 * img[y * w + (x - 1)]
            - img[(y + 1) * w + (x - 1)]
        )
        gy = (
            img[(y + 1) * w + (x - 1)]
            + 2.0 * img[(y + 1) * w + x]
            + img[(y + 1) * w + (x + 1)]
            - img[(y - 1) * w + (x - 1)]
            - 2.0 * img[(y - 1) * w + x]
            - img[(y - 1) * w + (x + 1)]
        )
        out[y * w + x] = sqrt(gx * gx + gy * gy)


def main() -> None:
    side = 192
    img = synthetic_image(side, side, seed=3, edges=8)
    grid = Grid.for_image(side, side)

    print("=== the 2-D kernel (CUDA dialect) ===")
    print(print_function(sobel.fn))

    match = detect_stencil(sobel.fn)
    print(f"\ndetected: {match.pattern.value}, tile {match.tile.rows}x{match.tile.cols}, "
          f"{len(match.tile.offsets)} accesses")

    exact = np.zeros((side, side), dtype=np.float32)
    exact_trace = launch(sobel, grid, [exact, img, side, side])
    cost = CostModel(GTX560)
    exact_cycles = cost.cycles(exact_trace)

    print("\nscheme            quality   speedup   note")
    print("-" * 70)
    variants = StencilTransform(reaching_distances=(1,)).generate(
        sobel.module, "sobel", match
    )
    for v in variants:
        out = np.zeros_like(exact)
        trace = launch(v.module[v.kernel], grid, [out, img, side, side], module=v.module)
        quality = L2_NORM.quality(out, exact)
        speedup = exact_cycles / cost.cycles(trace)
        note = ""
        if v.knobs["scheme"] == "center":
            note = "<- gradient of a constant tile is 0: quality collapses"
        print(f"{v.knobs['scheme']:<16s} {quality:9.3f} {speedup:8.2f}x   {note}")

    print("\nA TOQ-driven runtime would therefore select a row/column scheme "
          "for gradient\noperators — pattern-specific does not mean "
          "input-semantics-free, which is exactly\nwhy the paper's runtime "
          "keeps checking output quality.")


if __name__ == "__main__":
    main()
