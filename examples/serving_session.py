"""Online approximation serving: compile once, monitor, recalibrate.

The one-shot ``Paraprox.optimize`` pipeline re-detects patterns and
re-profiles variants on every call; a service cannot afford that.  This
script runs the persistent alternative — an ``ApproxSession`` that

* caches the compiled variant set on disk (restart the script: the
  compile and tune phases become cache hits),
* streams invocations of a Kernel-Density-Estimation workload whose
  input distribution drifts mid-stream,
* samples output quality on a cadence, detects the TOQ violation the
  drift causes, and greedily steps down the variant ladder until quality
  recovers (paper §3.5),
* prints the structured metrics snapshot a deployment would scrape.

    python examples/serving_session.py
"""

import json
import tempfile
from pathlib import Path

import numpy as np

from repro import ApproxSession, DeviceKind, MonitorConfig
from repro.apps.kde import KernelDensityApp
from repro.obs import trace as obs_trace

TOQ = 0.80
CACHE_DIR = Path(tempfile.gettempdir()) / "paraprox-cache"


class DriftingKDE(KernelDensityApp):
    """KDE whose inputs become concentration-heavy after the drift point."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.drifted = False

    def generate_inputs(self, seed=None):
        inputs = super().generate_inputs(seed)
        if self.drifted:
            rng = np.random.default_rng((seed or 0) + 1)
            refs = inputs["refs"].reshape(-1, self.nfeat)
            far = rng.normal(6.0, 0.05, refs.shape).astype(np.float32)
            keep = rng.random(len(refs)) < 0.05
            refs = np.where(keep[:, None], refs, far)
            inputs["refs"] = np.ascontiguousarray(refs.ravel())
        return inputs


def main() -> None:
    app = DriftingKDE()
    # JSONL audit trail: spans + quality timeline in one stream (the old
    # ``event_log=`` session argument is a deprecated shim for this).
    # REPRO_OBS/REPRO_OBS_TRACE take precedence when set in the environment.
    event_log = CACHE_DIR / "events.jsonl"
    if not obs_trace.enabled():
        CACHE_DIR.mkdir(parents=True, exist_ok=True)
        obs_trace.enable(trace_path=event_log)
    with ApproxSession(
        app,
        target_quality=TOQ,
        device=DeviceKind.GPU,
        cache_dir=CACHE_DIR,
        # KDE's quality varies a few points between input sets, so give the
        # drift detector more slack than the default 0.05.
        monitor=MonitorConfig(
            sample_every=3, window=3, min_samples=2, drift_drop=0.25
        ),
    ) as session:
        variants = session.compile()
        print(variants.describe())
        tuning = session.tune()
        print(
            f"\nserving {tuning.chosen.name} "
            f"(training quality {tuning.chosen.quality:.1%}, "
            f"speedup {tuning.speedup:.2f}x, TOQ {TOQ:.0%})\n"
        )

        for i in range(36):
            if i == 12 and not app.drifted:
                app.drifted = True
                print(f"[launch {i}] *** input distribution drifts ***")
            session.launch(app.generate_inputs(seed=1000 + i))
            record = session.metrics.records[-1]
            if record.action:
                print(
                    f"[launch {i}] quality {record.quality:.1%} -> "
                    f"{record.action} ({record.reason}); now serving "
                    f"{session.current_variant}"
                )

        snapshot = session.metrics_snapshot()
        print(f"\nfinal variant  : {snapshot['session']['current_variant']}")
        print(f"cache          : {snapshot['cache']}")
        print(
            f"monitoring     : {snapshot['sampled_checks']} checks over "
            f"{snapshot['launches']} launches "
            f"({snapshot['sampling_overhead']:.0%} overhead), "
            f"{snapshot['toq_violations']} TOQ violations"
        )
        print("transitions    :")
        for t in snapshot["transitions"]:
            print(
                f"  launch {t['launch']}: {t['from_variant']} -> "
                f"{t['to_variant']} ({t['reason']})"
            )
        print(f"\nevent log      : {event_log}")
        print("full snapshot  :")
        print(json.dumps(snapshot["session"], indent=2, default=str))


if __name__ == "__main__":
    main()
