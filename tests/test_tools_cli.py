"""Tests for the inspection CLI."""

import pytest

from repro.tools import main


class TestListCommand:
    def test_lists_all_apps(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "blackscholes" in out and "cumhist" in out
        assert out.count("\n") >= 14


class TestInspectCommand:
    def test_inspect_kernel_app(self, capsys):
        assert main(["inspect", "gaussian"]) == 0
        out = capsys.readouterr().out
        assert "__global__ void gaussian_kernel" in out
        assert "stencil tile=3x3" in out
        assert "stencil_center_rd1" in out

    def test_inspect_opencl_dialect(self, capsys):
        assert main(["inspect", "gaussian", "--dialect", "opencl"]) == 0
        out = capsys.readouterr().out
        assert "__kernel void gaussian_kernel" in out

    def test_inspect_shows_eq1_costs(self, capsys):
        assert main(["inspect", "blackscholes", "--scale", "0.005"]) == 0
        out = capsys.readouterr().out
        assert "bs_body:" in out and "threshold" in out

    def test_inspect_show_variant(self, capsys):
        assert main(["inspect", "gaussian", "--show-variant"]) == 0
        out = capsys.readouterr().out
        assert "rewritten kernel" in out and "_cse1" in out

    def test_inspect_program_app(self, capsys):
        assert main(["inspect", "cumhist", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "multi-kernel program" in out
        assert "scan" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["inspect", "bitcoin"])


class TestTuneCommand:
    def test_tune_prints_frontier_with_choice(self, capsys):
        assert main(["tune", "meanfilter", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "<= chosen" in out
        assert "exact" in out

    def test_tune_cpu_device(self, capsys):
        assert main(["tune", "meanfilter", "--scale", "0.05", "--device", "cpu"]) == 0
        out = capsys.readouterr().out
        assert "on cpu" in out
