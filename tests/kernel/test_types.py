"""Tests for the kernel type system."""

import numpy as np
import pytest

from repro.kernel.types import (
    BOOL,
    F32,
    F64,
    I32,
    I64,
    U32,
    ArrayType,
    ScalarType,
    dtype_by_name,
    from_numpy,
    promote,
)


class TestDType:
    def test_float_classification(self):
        assert F32.is_float and F64.is_float
        assert not F32.is_integer and not F32.is_bool

    def test_integer_classification(self):
        assert I32.is_integer and I64.is_integer and U32.is_integer
        assert not I32.is_float

    def test_bool_classification(self):
        assert BOOL.is_bool
        assert not BOOL.is_float and not BOOL.is_integer

    def test_numpy_round_trip(self):
        for d in (F32, F64, I32, I64, U32, BOOL):
            assert from_numpy(d.to_numpy()) is d

    def test_sizes(self):
        assert F32.size == 4
        assert F64.size == 8
        assert I64.size == 8

    def test_lookup_by_name(self):
        assert dtype_by_name("f32") is F32
        with pytest.raises(KeyError):
            dtype_by_name("f16")

    def test_unknown_numpy_dtype(self):
        with pytest.raises(KeyError):
            from_numpy(np.float16)

    def test_dtype_is_callable_as_cast(self):
        assert F32(1).dtype == np.float32
        out = I32(np.array([1.7, 2.9]))
        assert out.dtype == np.int32
        assert list(out) == [1, 2]


class TestPromotion:
    def test_same_type(self):
        assert promote(F32, F32) is F32

    def test_float_beats_int(self):
        assert promote(F32, I32) is F32
        assert promote(I64, F32) is F32

    def test_f64_beats_f32(self):
        assert promote(F32, F64) is F64

    def test_i64_beats_i32(self):
        assert promote(I32, I64) is I64

    def test_u32_i32_mix_is_i32(self):
        assert promote(U32, I32) is I32
        assert promote(I32, U32) is I32

    def test_bool_promotes_to_anything(self):
        assert promote(BOOL, I32) is I32
        assert promote(F32, BOOL) is F32


class TestArrayType:
    def test_default_space_is_global(self):
        assert ArrayType(F32).space == "global"

    def test_bad_space_rejected(self):
        with pytest.raises(ValueError):
            ArrayType(F32, space="texture")

    def test_scalar_repr(self):
        assert "f32" in repr(ScalarType(F32))
