"""Tests for IR node construction and helpers."""

import pytest

from repro.kernel import ir
from repro.kernel.types import BOOL, F32, F64, I32, ArrayType


class TestNodeConstruction:
    def test_binop_rejects_unknown_op(self):
        with pytest.raises(ValueError, match="unknown binary op"):
            ir.BinOp("plus", ir.Const(1, I32), ir.Const(2, I32), I32)

    def test_unop_rejects_unknown_op(self):
        with pytest.raises(ValueError, match="unknown unary op"):
            ir.UnOp("negate", ir.Const(1, I32), I32)

    def test_atomic_rejects_unknown_op(self):
        arr = ir.ArrayRef("a", ArrayType(I32))
        with pytest.raises(ValueError, match="unknown atomic op"):
            ir.AtomicRMW("sub", arr, ir.Const(0, I32), ir.Const(1, I32))

    def test_function_rejects_bad_kind(self):
        with pytest.raises(ValueError, match="bad function kind"):
            ir.Function("f", [], [], kind="host")

    def test_load_dtype_follows_array(self):
        arr = ir.ArrayRef("a", ArrayType(F64))
        load = ir.Load(arr, ir.Const(0, I32))
        assert load.dtype is F64

    def test_arrayref_dtype(self):
        assert ir.ArrayRef("a", ArrayType(F32)).dtype is F32


class TestBinopHelper:
    def test_comparison_yields_bool(self):
        node = ir.binop("lt", ir.Const(1, I32), ir.Const(2, I32))
        assert node.dtype is BOOL

    def test_arith_promotes(self):
        node = ir.binop("add", ir.Const(1, I32), ir.Const(2.0, F32))
        assert node.dtype is F32

    def test_logic_yields_bool(self):
        node = ir.binop("land", ir.bool_const(True), ir.bool_const(False))
        assert node.dtype is BOOL


class TestConstHelpers:
    def test_const_like_coerces_float(self):
        c = ir.const_like(3, F32)
        assert isinstance(c.value, float) and c.value == 3.0

    def test_const_like_coerces_int(self):
        c = ir.const_like(3.7, I32)
        assert isinstance(c.value, int) and c.value == 3

    def test_bool_const(self):
        assert ir.bool_const(1).value is True
        assert ir.bool_const(0).dtype is BOOL


class TestModule:
    def _fn(self, name, kind="kernel"):
        from repro.kernel.types import ScalarType

        rt = ScalarType(F32) if kind == "device" else None
        return ir.Function(name, [], [], kind=kind, return_type=rt)

    def test_duplicate_function_rejected(self):
        m = ir.Module()
        m.add(self._fn("k"))
        with pytest.raises(ValueError, match="duplicate"):
            m.add(self._fn("k"))

    def test_kernel_device_partition(self):
        m = ir.Module()
        m.add(self._fn("k"))
        m.add(self._fn("d", kind="device"))
        assert [f.name for f in m.kernels()] == ["k"]
        assert [f.name for f in m.device_functions()] == ["d"]

    def test_contains_and_getitem(self):
        m = ir.Module()
        m.add(self._fn("k"))
        assert "k" in m and m["k"].name == "k"
        assert "x" not in m

    def test_param_lookup(self):
        fn = ir.Function(
            "k",
            [ir.Param("a", ArrayType(F32)), ir.Param("n", None)],
            [],
        )
        assert fn.param("a").is_array
        with pytest.raises(KeyError):
            fn.param("zzz")

    def test_array_scalar_param_split(self):
        from repro.kernel.types import ScalarType

        fn = ir.Function(
            "k",
            [ir.Param("a", ArrayType(F32)), ir.Param("n", ScalarType(I32))],
            [],
        )
        assert [p.name for p in fn.array_params] == ["a"]
        assert [p.name for p in fn.scalar_params] == ["n"]
