"""Tests for the Python-to-IR frontend."""

import numpy as np
import pytest

import kernel_zoo as zoo
from repro.errors import FrontendError
from repro.kernel import ir, kernel
from repro.kernel.dsl import *  # noqa: F401,F403
from repro.kernel.frontend import KernelFn
from repro.kernel.types import BOOL, F32, I32
from repro.kernel.visitors import walk


class TestLoweringBasics:
    def test_kernel_produces_kernelfn(self):
        assert isinstance(zoo.black_scholes, KernelFn)
        assert zoo.black_scholes.fn.kind == "kernel"

    def test_device_function_kind(self):
        assert zoo.cnd.fn.kind == "device"
        assert zoo.cnd.fn.return_type.dtype is F32

    def test_module_contains_transitive_device_deps(self):
        # black_scholes calls bs_body which calls cnd
        assert "bs_body" in zoo.black_scholes.module
        assert "cnd" in zoo.black_scholes.module

    def test_param_types(self):
        fn = zoo.black_scholes.fn
        assert fn.param("call").is_array
        assert fn.param("call").type.dtype is F32
        assert not fn.param("n").is_array
        assert fn.param("n").type.dtype is I32

    def test_float_literals_default_to_f32(self):
        consts = [
            n for n in walk(zoo.cnd.fn) if isinstance(n, ir.Const) and n.dtype.is_float
        ]
        assert consts and all(c.dtype is F32 for c in consts)

    def test_ternary_lowered_to_predicated_if(self):
        # `ret if d > 0.0 else 1.0 - ret` must become an If, never a Select,
        # to keep C short-circuit semantics for guarded loads.
        ifs = [n for n in walk(zoo.cnd.fn) if isinstance(n, ir.If)]
        assert len(ifs) == 1
        assert not any(isinstance(n, ir.Select) for n in walk(zoo.cnd.fn))

    def test_device_function_callable_on_host(self):
        # @device functions double as reference implementations.
        v = zoo.cnd(np.float32(0.0))
        assert v == pytest.approx(0.5, abs=1e-6)

    def test_kernel_not_callable_on_host(self):
        with pytest.raises(TypeError):
            zoo.black_scholes(np.zeros(4))

    def test_shared_alloc_lowering(self):
        allocs = [n for n in zoo.scan_phase1.fn.body if isinstance(n, ir.SharedAlloc)]
        assert len(allocs) == 1
        assert allocs[0].shape == (zoo.SCAN_BLOCK,)

    def test_captured_python_constant_becomes_literal(self):
        # SCAN_BLOCK is a module-level Python int used inside scan_phase1.
        consts = [
            n.value
            for n in walk(zoo.scan_phase1.fn)
            if isinstance(n, ir.Const) and n.dtype.is_integer
        ]
        assert zoo.SCAN_BLOCK in consts

    def test_for_range_lowering(self):
        loops = [n for n in walk(zoo.row_stencil.fn) if isinstance(n, ir.For)]
        assert len(loops) == 1
        assert loops[0].start.value == -3
        assert loops[0].stop.value == 4

    def test_atomic_statement_lowering(self):
        atomics = [
            n for n in walk(zoo.atomic_histogram.fn) if isinstance(n, ir.AtomicRMW)
        ]
        assert len(atomics) == 1
        assert atomics[0].op == "add"

    def test_comparison_has_bool_dtype(self):
        cmps = [
            n
            for n in walk(zoo.black_scholes.fn)
            if isinstance(n, ir.BinOp) and n.op == "lt"
        ]
        assert cmps and all(c.dtype is BOOL for c in cmps)


# Error cases: each bad kernel needs real source, defined via exec of a
# synthetic file through compile+exec does not work with inspect, so we
# check errors using the decorator over functions defined here.


def test_missing_annotation_rejected():
    with pytest.raises(FrontendError, match="annotation"):

        @kernel
        def bad(out, n: i32):  # noqa: ANN001
            i = global_id()
            out[i] = 0.0


def test_while_rejected():
    with pytest.raises(FrontendError, match="unsupported statement"):

        @kernel
        def bad(out: array_f32, n: i32):
            i = global_id()
            while i < n:
                i = i + 1


def test_unknown_function_rejected():
    with pytest.raises(FrontendError, match="unknown function"):

        @kernel
        def bad(out: array_f32, n: i32):
            i = global_id()
            out[i] = nonexistent_fn(1.0)  # noqa: F821


def test_undefined_name_rejected():
    with pytest.raises(FrontendError, match="undefined name"):

        @kernel
        def bad(out: array_f32, n: i32):
            out[0] = not_defined_anywhere  # noqa: F821


def test_chained_comparison_rejected():
    with pytest.raises(FrontendError, match="chained comparisons"):

        @kernel
        def bad(out: array_f32, n: i32):
            i = global_id()
            if 0 < i < n:
                out[i] = 1.0


def test_keyword_args_rejected():
    with pytest.raises(FrontendError, match="keyword"):

        @kernel
        def bad(out: array_f32, x: array_f32):
            i = global_id()
            out[i] = pow(x[i], y=2.0)


def test_tuple_assignment_rejected():
    with pytest.raises(FrontendError):

        @kernel
        def bad(out: array_f32, n: i32):
            a, b = 1.0, 2.0
            out[0] = a + b


def test_float_index_rejected():
    with pytest.raises(FrontendError, match="integer"):

        @kernel
        def bad(out: array_f32, x: array_f32):
            out[1.5] = x[0]


def test_kernel_returning_value_rejected():
    with pytest.raises(FrontendError, match="cannot return"):

        @kernel
        def bad(out: array_f32):
            return 1.0


def test_device_function_must_return():
    with pytest.raises(FrontendError, match="never returns"):
        from repro.kernel import device

        @device
        def bad(x: f32) -> f32:
            y = x + 1.0


def test_range_with_float_bound_rejected():
    with pytest.raises(FrontendError, match="integers"):

        @kernel
        def bad(out: array_f32, n: i32):
            for i in range(0, 1.5):
                out[i] = 0.0


def test_rebinding_array_param_rejected():
    with pytest.raises(FrontendError, match="rebind"):

        @kernel
        def bad(out: array_f32, n: i32):
            out = 1.0


def test_augmented_assign_to_undefined_rejected():
    with pytest.raises(FrontendError, match="undefined"):

        @kernel
        def bad(out: array_f32, n: i32):
            acc += 1.0  # noqa: F821
            out[0] = acc
