"""Tests for the programmatic IR builder."""

import numpy as np
import pytest

from repro.engine import Grid, launch
from repro.errors import ValidationError
from repro.kernel import ir
from repro.kernel.builder import E, FunctionBuilder, call
from repro.kernel.printer import print_function
from repro.kernel.types import BOOL, F32, I32


def build_saxpy():
    b = FunctionBuilder("saxpy")
    out = b.array_param("out", F32)
    x = b.array_param("x", F32)
    a = b.scalar_param("a", F32)
    n = b.scalar_param("n", I32)
    i = b.let("i", b.global_id())
    with b.if_(i < n):
        b.store(out, i, a * x[i] + out[i])
    return b.build()


class TestExpressionWrapper:
    def test_operator_dtypes(self):
        x = E(ir.Var("x", F32))
        assert (x + 1.0).dtype is F32
        assert (x < 2.0).dtype is BOOL
        assert (-x).dtype is F32
        assert x.cast(I32).dtype is I32

    def test_reflected_operators(self):
        x = E(ir.Var("x", F32))
        node = (2.0 - x).node
        assert isinstance(node.left, ir.Const) and node.op == "sub"

    def test_bool_and_or(self):
        c = E(ir.Var("c", BOOL))
        d = E(ir.Var("d", BOOL))
        assert (c & d).node.op == "land"
        assert (c | d).node.op == "lor"
        assert (~c).node.op == "lnot"

    def test_int_bitwise(self):
        i = E(ir.Var("i", I32))
        assert (i & 7).node.op == "and"
        assert (i << 2).node.op == "shl"

    def test_call_builtin(self):
        e = call("exp", E(ir.Var("x", F32)))
        assert e.node.func == "exp" and e.dtype is F32

    def test_unknown_builtin(self):
        with pytest.raises(KeyError):
            call("warp_shuffle", 1.0)

    def test_unliftable_value(self):
        with pytest.raises(TypeError):
            E(ir.Var("x", F32)) + "three"


class TestFunctionBuilder:
    def test_saxpy_builds_and_runs(self):
        fn = build_saxpy()
        x = np.arange(8, dtype=np.float32)
        out = np.ones(8, dtype=np.float32)
        launch(fn, Grid(1, 8), [out, x, 2.0, 8])
        np.testing.assert_allclose(out, 2.0 * x + 1.0)

    def test_printable(self):
        text = print_function(build_saxpy())
        assert "__global__ void saxpy" in text

    def test_if_else(self):
        b = FunctionBuilder("clamp01")
        out = b.array_param("out", F32)
        x = b.array_param("x", F32)
        n = b.scalar_param("n", I32)
        i = b.let("i", b.global_id())
        with b.if_(i < n):
            v = b.let("v", x[i])
            with b.if_(v > 1.0):
                b.store(out, i, 1.0)
            with b.else_():
                b.store(out, i, v)
        fn = b.build()
        xs = np.array([0.5, 2.0, -1.0, 1.5], dtype=np.float32)
        out = np.zeros(4, dtype=np.float32)
        launch(fn, Grid(1, 4), [out, xs, 4])
        np.testing.assert_allclose(out, [0.5, 1.0, -1.0, 1.0])

    def test_else_without_if_rejected(self):
        b = FunctionBuilder("bad")
        with pytest.raises(ValidationError, match="follow an if_"):
            with b.else_():
                pass

    def test_for_loop_reduction(self):
        b = FunctionBuilder("rowsum")
        out = b.array_param("out", F32)
        x = b.array_param("x", F32)
        width = b.scalar_param("width", I32)
        i = b.let("i", b.global_id())
        acc = b.let("acc", 0.0)
        with b.for_("k", 0, width) as k:
            b.assign(acc, acc + x[i * width + k])
        b.store(out, i, acc)
        fn = b.build()
        xs = np.arange(12, dtype=np.float32)
        out = np.zeros(3, dtype=np.float32)
        launch(fn, Grid(1, 3), [out, xs, 4])
        np.testing.assert_allclose(out, xs.reshape(3, 4).sum(axis=1))

    def test_shared_and_atomic(self):
        b = FunctionBuilder("count")
        hist = b.array_param("hist", I32)
        n = b.scalar_param("n", I32)
        i = b.let("i", b.global_id())
        with b.if_(i < n):
            b.atomic("add", hist, 0, 1)
        fn = b.build()
        h = np.zeros(1, dtype=np.int32)
        launch(fn, Grid(1, 32), [h, 20])
        assert h[0] == 20

    def test_device_function(self):
        b = FunctionBuilder("square", kind="device")
        x = b.scalar_param("x", F32)
        b.ret(x * x)
        fn = b.build()
        assert fn.kind == "device"
        assert fn.return_type.dtype is F32

    def test_built_function_is_validated(self):
        b = FunctionBuilder("broken")
        out = b.array_param("out", F32)
        b._emit(ir.Assign("y", ir.Var("ghost", F32)))
        with pytest.raises(ValidationError, match="undefined"):
            b.build()

    def test_built_kernel_feeds_the_pipeline(self):
        """Builder output is a first-class citizen: detectable patterns."""
        from repro.patterns import detect_reduction

        b = FunctionBuilder("built_sum")
        out = b.array_param("out", F32)
        x = b.array_param("x", F32)
        chunk = b.scalar_param("chunk", I32)
        i = b.let("i", b.global_id())
        acc = b.let("acc", 0.0)
        with b.for_("k", 0, chunk) as k:
            b.assign(acc, acc + x[i * chunk + k])
        b.store(out, i, acc)
        fn = b.build()
        match = detect_reduction(fn)
        assert match is not None and match.loops[0].variable == "acc"
