"""Tests for the OpenCL printer dialect (the paper's §4.1 CUDA-to-OpenCL
conversion path)."""

import pytest

import kernel_zoo as zoo
from repro.kernel.printer import OPENCL, print_expr, print_function, resolve_dialect
from repro.kernel import ir
from repro.kernel.types import I32


class TestDialectResolution:
    def test_by_name(self):
        assert resolve_dialect("opencl") is OPENCL
        assert resolve_dialect(OPENCL) is OPENCL

    def test_unknown_dialect(self):
        with pytest.raises(KeyError, match="unknown dialect"):
            resolve_dialect("metal")


class TestOpenCLRendering:
    def test_kernel_qualifier_and_pointer_spaces(self):
        text = print_function(zoo.noop.fn, "opencl")
        assert text.startswith("__kernel void noop(__global float* out")

    def test_thread_intrinsics(self):
        assert print_expr(ir.Call("global_id", [], I32), "opencl") == "(get_global_id(0))"
        assert print_expr(ir.Call("thread_id", [], I32), "opencl") == "(get_local_id(0))"
        assert print_expr(ir.Call("block_id", [], I32), "opencl") == "(get_group_id(0))"

    def test_barrier_and_local_memory(self):
        text = print_function(zoo.scan_phase1.fn, "opencl")
        assert "barrier(CLK_LOCAL_MEM_FENCE);" in text
        assert "__local float sh[64];" in text
        assert "__syncthreads" not in text

    def test_atomics_lowercase(self):
        text = print_function(zoo.atomic_histogram.fn, "opencl")
        assert "atomic_add(&hist[" in text
        assert "atomicAdd" not in text

    def test_device_function_has_no_qualifier(self):
        text = print_function(zoo.cnd.fn, "opencl")
        assert text.startswith("float cnd(float d)")

    def test_cuda_and_opencl_share_body_semantics(self):
        """Same statements, different surface syntax: line counts match."""
        cuda = print_function(zoo.mean3x3.fn, "cuda").splitlines()
        ocl = print_function(zoo.mean3x3.fn, "opencl").splitlines()
        assert len(cuda) == len(ocl)

    def test_generated_approximate_kernel_prints_in_both_dialects(self):
        from repro import DeviceKind, Paraprox
        from repro.apps.gaussian import MeanFilterApp

        variants = Paraprox().compile(MeanFilterApp(scale=0.05), DeviceKind.GPU)
        fn = variants[0].module[variants[0].kernel]
        assert "__global__" in print_function(fn, "cuda")
        assert "__kernel" in print_function(fn, "opencl")
