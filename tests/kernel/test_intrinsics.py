"""Tests for the kernel builtin table."""

import math

import numpy as np
import pytest
from scipy import special

from repro.kernel import intrinsics
from repro.kernel.types import F32, F64, I32


class TestRegistry:
    def test_known_builtins_present(self):
        for name in ("exp", "log", "sqrt", "pow", "fmin", "lgamma", "erf"):
            assert intrinsics.is_builtin(name)

    def test_unknown_name(self):
        assert intrinsics.get("frobnicate") is None
        assert not intrinsics.is_builtin("frobnicate")

    def test_impure_builtins_flagged(self):
        assert intrinsics.is_impure("printf")
        assert intrinsics.is_impure("clock")
        assert not intrinsics.is_impure("exp")

    def test_thread_intrinsics_registered(self):
        for name in ("global_id", "thread_id", "block_id", "block_dim", "grid_dim"):
            b = intrinsics.get(name)
            assert b is not None and b.arity == 0

    def test_all_names_sorted(self):
        names = intrinsics.all_names()
        assert names == sorted(names)
        assert "exp" in names


class TestResultDtypes:
    def test_float_unary_promotes_int_input(self):
        b = intrinsics.get("exp")
        assert b.result_dtype([I32]) is F32
        assert b.result_dtype([F64]) is F64

    def test_fmin_promotes(self):
        b = intrinsics.get("fmin")
        assert b.result_dtype([F32, F64]) is F64

    def test_fabs_preserves_dtype(self):
        b = intrinsics.get("fabs")
        assert b.result_dtype([I32]) is I32


class TestNumericalAccuracy:
    def test_lgamma_matches_scipy(self):
        x = np.linspace(0.1, 20.0, 500)
        ours = intrinsics.get("lgamma").evaluate(x)
        np.testing.assert_allclose(ours, special.gammaln(x), rtol=1e-9, atol=1e-9)

    def test_lgamma_reflection_negative_arguments(self):
        x = np.array([-0.5, -1.5, -2.3])
        ours = intrinsics.get("lgamma").evaluate(x)
        np.testing.assert_allclose(ours, special.gammaln(x), rtol=1e-7)

    def test_erf_matches_scipy(self):
        x = np.linspace(-4, 4, 401)
        ours = intrinsics.get("erf").evaluate(x)
        np.testing.assert_allclose(ours, special.erf(x), atol=2e-7)

    def test_rsqrt(self):
        assert intrinsics.get("rsqrt").evaluate(4.0) == pytest.approx(0.5)

    def test_transcendental_latency_classes(self):
        # exp is SFU-cheap on the GPU; log/sin/cos are software routines.
        assert intrinsics.get("exp").latency_class == "sfu"
        for name in ("log", "sin", "cos"):
            assert intrinsics.get(name).latency_class == "trans"
        assert intrinsics.get("pow").latency_class == "libcall"
