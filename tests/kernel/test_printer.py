"""Tests for the CUDA-flavoured pseudo-source printer."""

import kernel_zoo as zoo
from repro.kernel import ir
from repro.kernel.printer import print_expr, print_function, print_module
from repro.kernel.types import BOOL, F32, I32, ArrayType


class TestExpressions:
    def test_float_constant_gets_f_suffix(self):
        assert print_expr(ir.Const(1.5, F32)) == "1.5f"

    def test_double_constant_has_no_suffix(self):
        from repro.kernel.types import F64

        assert print_expr(ir.Const(1.5, F64)) == "1.5"

    def test_bool_constants(self):
        assert print_expr(ir.bool_const(True)) == "true"
        assert print_expr(ir.bool_const(False)) == "false"

    def test_nested_binop_parenthesized(self):
        e = ir.binop("mul", ir.binop("add", ir.Var("a", I32), ir.Var("b", I32)), ir.Var("c", I32))
        assert print_expr(e) == "((a + b) * c)"

    def test_cast_renders_c_style(self):
        assert print_expr(ir.Cast(ir.Var("x", F32), I32)) == "(int)(x)"

    def test_select_renders_ternary(self):
        sel = ir.Select(ir.Var("c", BOOL), ir.Const(1, I32), ir.Const(2, I32), I32)
        assert print_expr(sel) == "(c ? 1 : 2)"

    def test_thread_intrinsics_render_cuda_names(self):
        assert "threadIdx.x" in print_expr(ir.Call("thread_id", [], I32))
        assert "blockIdx.x * blockDim.x" in print_expr(ir.Call("global_id", [], I32))

    def test_load_renders_subscript(self):
        arr = ir.ArrayRef("buf", ArrayType(F32))
        assert print_expr(ir.Load(arr, ir.Var("i", I32))) == "buf[i]"


class TestFunctions:
    def test_kernel_signature(self):
        text = print_function(zoo.noop.fn)
        assert text.startswith("__global__ void noop(float* out, float* x, int n)")

    def test_device_signature_and_return(self):
        text = print_function(zoo.cnd.fn)
        assert text.startswith("__device__ float cnd(float d)")
        assert "return" in text

    def test_barrier_and_shared_render(self):
        text = print_function(zoo.scan_phase1.fn)
        assert "__syncthreads();" in text
        assert "__shared__ float sh[64];" in text

    def test_atomic_renders(self):
        text = print_function(zoo.atomic_histogram.fn)
        assert "atomicAdd(&hist[" in text

    def test_for_loop_renders(self):
        text = print_function(zoo.row_stencil.fn)
        assert "for (int j = -3; j < 4; j += 1) {" in text

    def test_module_puts_device_functions_first(self):
        text = print_module(zoo.black_scholes.module)
        assert text.index("__device__") < text.index("__global__")
