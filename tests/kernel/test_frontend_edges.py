"""Frontend edge cases: annotated assignments, boolean operators, casts,
captured constants, augmented subscripts, shared() validation."""

import numpy as np
import pytest

from repro.errors import FrontendError
from repro.kernel import device, ir, kernel
from repro.kernel.dsl import *  # noqa: F401,F403
from repro.kernel.types import F32, F64, I32
from repro.kernel.visitors import walk
from repro.engine import Grid, launch

MODULE_CONSTANT = 7


@kernel
def edge_kernel(out: array_f32, x: array_f32, n: i32):
    i = global_id()
    if i < n:
        total: f32 = 0.0
        total += x[i]
        flag = (x[i] > 0.1) or (x[i] < -0.1)
        scaled = f32(i32(x[i] * 4.0))  # explicit casts both ways
        picked = total if flag else scaled
        out[i] = picked + f32(MODULE_CONSTANT)


@kernel
def aug_subscript(out: array_f32, n: i32):
    i = global_id()
    if i < n:
        out[i] = 1.0
        out[i] += 2.0
        out[i] *= 3.0


class TestLoweredForms:
    def test_ann_assign_casts_value(self):
        assigns = [s for s in walk(edge_kernel.fn) if isinstance(s, ir.Assign)]
        total = next(s for s in assigns if s.target == "total")
        assert total.value.dtype is F32

    def test_or_lowered_to_lor(self):
        assert any(
            isinstance(n, ir.BinOp) and n.op == "lor" for n in walk(edge_kernel.fn)
        )

    def test_casts_lowered(self):
        casts = [n for n in walk(edge_kernel.fn) if isinstance(n, ir.Cast)]
        assert any(c.dtype is I32 for c in casts)
        assert any(c.dtype is F32 for c in casts)

    def test_module_constant_becomes_literal(self):
        consts = [
            n.value for n in walk(edge_kernel.fn) if isinstance(n, ir.Const)
        ]
        assert 7.0 in consts or 7 in consts

    def test_executes_correctly(self):
        x = np.array([0.05, 0.5, -0.5, 0.0], dtype=np.float32)
        out = np.zeros(4, dtype=np.float32)
        launch(edge_kernel, Grid(1, 4), [out, x, 4])
        # x=0.05: flag False -> scaled = int(0.2)=0 -> 0+7
        assert out[0] == pytest.approx(7.0)
        # x=0.5: flag True -> total = 0.5 -> 7.5
        assert out[1] == pytest.approx(7.5)

    def test_augmented_subscript(self):
        out = np.zeros(4, dtype=np.float32)
        launch(aug_subscript, Grid(1, 4), [out, 4])
        np.testing.assert_allclose(out, 9.0)


class TestDefaultFloatOverride:
    def test_f64_literals(self):
        @kernel(default_float=F64)
        def doubles(out: array_f64, n: i32):
            i = global_id()
            if i < n:
                out[i] = 0.1

        consts = [
            n for n in walk(doubles.fn) if isinstance(n, ir.Const) and n.dtype.is_float
        ]
        assert all(c.dtype is F64 for c in consts)
        out = np.zeros(2, dtype=np.float64)
        launch(doubles, Grid(1, 2), [out, 2])
        assert out[0] == 0.1  # exact f64 literal, no f32 rounding


class TestSharedValidation:
    def test_shared_size_must_be_constant(self):
        with pytest.raises(FrontendError, match="compile-time integer"):

            @kernel
            def bad(out: array_f32, n: i32):
                sh = shared(n, f32)
                out[0] = sh[0]

    def test_shared_dtype_must_be_dtype(self):
        with pytest.raises(FrontendError, match="dtype"):

            @kernel
            def bad(out: array_f32, n: i32):
                sh = shared(8, 42)
                out[0] = sh[0]

    def test_shared_size_via_module_constant(self):
        @kernel
        def good(out: array_f32, n: i32):
            sh = shared(MODULE_CONSTANT, f32)
            t = thread_id()
            if t < MODULE_CONSTANT:
                sh[t] = 1.0
                out[t] = sh[t]

        allocs = [s for s in good.fn.body if isinstance(s, ir.SharedAlloc)]
        assert allocs[0].shape == (7,)


class TestDeviceFunctionEdges:
    def test_return_annotation_coerces(self):
        @device
        def half(x: f32) -> f32:
            return x * 0.5

        assert half.fn.return_type.dtype is F32

    def test_device_call_arity_checked(self):
        @device
        def two_args(a: f32, b: f32) -> f32:
            return a + b

        with pytest.raises(FrontendError, match="takes 2"):

            @kernel
            def bad(out: array_f32):
                out[0] = two_args(1.0)
