"""Tests for IR traversal and transformation machinery."""

import pytest

import kernel_zoo as zoo
from repro.kernel import ir
from repro.kernel.printer import print_function
from repro.kernel.visitors import Transformer, clone, clone_module, walk, walk_statements


class TestWalk:
    def test_walk_covers_all_loads(self):
        loads = [n for n in walk(zoo.mean3x3.fn) if isinstance(n, ir.Load)]
        assert len(loads) == 10  # 9 tile loads + 1 border copy

    def test_walk_single_const(self):
        node = ir.Const(1, zoo.i32)
        assert list(walk(node)) == [node]

    def test_walk_statements_recurses_into_if_and_for(self):
        stmts = list(walk_statements(zoo.sum_chunks.fn.body))
        assert any(isinstance(s, ir.For) for s in stmts)
        assert any(isinstance(s, ir.AtomicRMW) or isinstance(s, ir.Store) for s in stmts)
        # the guarded accumulation inside the loop is visited
        assigns = [s for s in stmts if isinstance(s, ir.Assign)]
        assert any(s.target == "acc" for s in assigns)


class TestClone:
    def test_clone_is_deep(self):
        original = zoo.black_scholes.fn
        copy = clone(original)
        assert copy is not original
        assert print_function(copy) == print_function(original)
        # mutate the copy; the original is untouched
        copy.body.pop()
        assert len(copy.body) != len(original.body) or True
        assert print_function(original) == print_function(zoo.black_scholes.fn)

    def test_clone_module_copies_every_function(self):
        m = clone_module(zoo.black_scholes.module)
        assert set(m.functions) == set(zoo.black_scholes.module.functions)
        for name in m.functions:
            assert m[name] is not zoo.black_scholes.module[name]

    def test_clone_rejects_non_node(self):
        with pytest.raises(TypeError):
            clone(42)


class _RenameArrays(Transformer):
    def visit_ArrayRef(self, ref):
        return ir.ArrayRef(ref.name + "_renamed", ref.type)


class TestTransformer:
    def test_identity_transform_preserves_text(self):
        out = Transformer().transform_function(zoo.scan_phase1.fn)
        assert print_function(out) == print_function(zoo.scan_phase1.fn)

    def test_hook_applies_everywhere(self):
        out = _RenameArrays().transform_function(zoo.noop.fn)
        text = print_function(out)
        assert "out_renamed" in text and "x_renamed" in text

    def test_statement_hook_can_splice_lists(self):
        class Doubler(Transformer):
            def visit_Store(self, store):
                return [store, clone(store)]

        out = Doubler().transform_function(zoo.noop.fn)
        stores = [n for n in walk(out) if isinstance(n, ir.Store)]
        assert len(stores) == 2

    def test_statement_hook_can_delete(self):
        class Deleter(Transformer):
            def visit_Store(self, store):
                return None

        out = Deleter().transform_function(zoo.noop.fn)
        assert not [n for n in walk(out) if isinstance(n, ir.Store)]
