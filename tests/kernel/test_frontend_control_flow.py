"""Control-flow lowering depth: elif chains, nested device calls, loops
inside branches."""

import numpy as np
import pytest

from repro.engine import Grid, launch
from repro.kernel import device, ir, kernel
from repro.kernel.dsl import *  # noqa: F401,F403
from repro.kernel.visitors import walk


@device
def level3(x: f32) -> f32:
    return x * 2.0


@device
def level2(x: f32) -> f32:
    return level3(x) + 1.0


@device
def level1(x: f32) -> f32:
    return level2(x) * level2(x + 1.0)


@kernel
def deep_calls(out: array_f32, x: array_f32, n: i32):
    i = global_id()
    if i < n:
        out[i] = level1(x[i])


@kernel
def elif_chain(out: array_f32, x: array_f32, n: i32):
    i = global_id()
    if i < n:
        v = x[i]
        if v < 0.25:
            out[i] = 1.0
        elif v < 0.5:
            out[i] = 2.0
        elif v < 0.75:
            out[i] = 3.0
        else:
            out[i] = 4.0


@kernel
def loop_in_branch(out: array_f32, x: array_f32, n: i32):
    i = global_id()
    if i < n:
        if x[i] > 0.5:
            acc = 0.0
            for k in range(0, 4):
                acc += x[i] * f32(k)
            out[i] = acc
        else:
            out[i] = -1.0


class TestDeepDeviceCalls:
    def test_transitive_module_contents(self):
        for name in ("level1", "level2", "level3"):
            assert name in deep_calls.module

    def test_execution(self):
        x = np.array([1.0, 2.0], dtype=np.float32)
        out = np.zeros(2, dtype=np.float32)
        launch(deep_calls, Grid(1, 2), [out, x, 2])
        ref = (2 * x + 1) * (2 * (x + 1) + 1)
        np.testing.assert_allclose(out, ref)

    def test_eq1_cost_includes_whole_chain(self):
        from repro.analysis import GPU_LATENCIES, cycles_needed

        shallow = cycles_needed(level3.fn, GPU_LATENCIES, deep_calls.module)
        deep = cycles_needed(level1.fn, GPU_LATENCIES, deep_calls.module)
        assert deep > 2 * shallow


class TestElif:
    def test_lowering_nests_ifs(self):
        ifs = [n for n in walk(elif_chain.fn) if isinstance(n, ir.If)]
        assert len(ifs) == 4  # guard + 3-way chain

    def test_execution_covers_all_arms(self):
        x = np.array([0.1, 0.3, 0.6, 0.9], dtype=np.float32)
        out = np.zeros(4, dtype=np.float32)
        launch(elif_chain, Grid(1, 4), [out, x, 4])
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0, 4.0])


class TestLoopInsideBranch:
    def test_execution(self):
        x = np.array([0.9, 0.1], dtype=np.float32)
        out = np.zeros(2, dtype=np.float32)
        launch(loop_in_branch, Grid(1, 2), [out, x, 2])
        # f32 accumulation order differs from the folded constant product
        assert out[0] == pytest.approx(0.9 * (0 + 1 + 2 + 3), rel=1e-6)
        assert out[1] == -1.0

    def test_loop_ops_counted_only_for_active_lanes(self):
        x = np.array([0.9] * 8 + [0.1] * 24, dtype=np.float32)
        out = np.zeros(32, dtype=np.float32)
        trace = launch(loop_in_branch, Grid(1, 32), [out, x, 32])
        # fmul in the loop: 4 iterations x 8 active lanes = 32, not 128
        assert trace.op_counts[("fmul", "f32")] == 32
