"""Tests for IR validation."""

import pytest

import kernel_zoo as zoo
from repro.errors import ValidationError
from repro.kernel import ir, validate_function, validate_module
from repro.kernel.types import BOOL, F32, I32, ArrayType, ScalarType


def _kernel(body, params=None):
    return ir.Function("k", params or [], body, kind="kernel")


ARR = ir.Param("a", ArrayType(F32))


class TestHappyPath:
    def test_zoo_kernels_validate(self):
        for kf in (zoo.black_scholes, zoo.mean3x3, zoo.sum_chunks, zoo.scan_phase1):
            validate_module(kf.module)

    def test_loop_variable_defined_inside_loop(self):
        body = [
            ir.For(
                "i",
                ir.Const(0, I32),
                ir.Const(4, I32),
                ir.Const(1, I32),
                [ir.Assign("x", ir.Var("i", I32))],
            )
        ]
        validate_function(_kernel(body))

    def test_variable_defined_in_both_arms_usable_after(self):
        body = [
            ir.If(
                ir.bool_const(True),
                [ir.Assign("x", ir.Const(1, I32))],
                [ir.Assign("x", ir.Const(2, I32))],
            ),
            ir.Assign("y", ir.Var("x", I32)),
        ]
        validate_function(_kernel(body))


class TestRejections:
    def test_undefined_variable(self):
        with pytest.raises(ValidationError, match="undefined variable"):
            validate_function(_kernel([ir.Assign("x", ir.Var("ghost", I32))]))

    def test_variable_from_single_arm_not_defined_after(self):
        body = [
            ir.If(ir.bool_const(True), [ir.Assign("x", ir.Const(1, I32))], []),
            ir.Assign("y", ir.Var("x", I32)),
        ]
        with pytest.raises(ValidationError, match="undefined variable"):
            validate_function(_kernel(body))

    def test_unknown_array(self):
        ref = ir.ArrayRef("ghost", ArrayType(F32))
        body = [ir.Store(ref, ir.Const(0, I32), ir.Const(0.0, F32))]
        with pytest.raises(ValidationError, match="unknown array"):
            validate_function(_kernel(body))

    def test_float_index(self):
        ref = ir.ArrayRef("a", ArrayType(F32))
        body = [ir.Store(ref, ir.Const(0.5, F32), ir.Const(0.0, F32))]
        with pytest.raises(ValidationError, match="expected integer"):
            validate_function(_kernel(body, [ARR]))

    def test_store_dtype_mismatch(self):
        ref = ir.ArrayRef("a", ArrayType(F32))
        body = [ir.Store(ref, ir.Const(0, I32), ir.Const(1, I32))]
        with pytest.raises(ValidationError, match="store"):
            validate_function(_kernel(body, [ARR]))

    def test_non_bool_if_condition(self):
        body = [ir.If(ir.Const(1, I32), [], [])]
        with pytest.raises(ValidationError, match="boolean"):
            validate_function(_kernel(body))

    def test_float_loop_bound(self):
        body = [ir.For("i", ir.Const(0, I32), ir.Const(1.0, F32), ir.Const(1, I32), [])]
        with pytest.raises(ValidationError, match="integer"):
            validate_function(_kernel(body))

    def test_kernel_returning_value(self):
        body = [ir.Return(ir.Const(1.0, F32))]
        with pytest.raises(ValidationError, match="returns a value"):
            validate_function(_kernel(body))

    def test_device_returning_nothing(self):
        fn = ir.Function("d", [], [ir.Return(None)], kind="device",
                         return_type=ScalarType(F32))
        with pytest.raises(ValidationError, match="returns nothing"):
            validate_function(fn)

    def test_call_unknown_function(self):
        body = [ir.Assign("x", ir.Call("mystery", [], F32))]
        with pytest.raises(ValidationError, match="unknown function"):
            validate_function(_kernel(body))

    def test_builtin_wrong_arity(self):
        body = [ir.Assign("x", ir.Call("exp", [], F32))]
        with pytest.raises(ValidationError, match="expects 1"):
            validate_function(_kernel(body))

    def test_calling_a_kernel_rejected(self):
        m = ir.Module()
        callee = _kernel([])
        m.add(callee)
        caller = ir.Function(
            "c", [], [ir.Assign("x", ir.Call("k", [], F32))], kind="kernel"
        )
        m.add(caller)
        with pytest.raises(ValidationError, match="cannot call kernel"):
            validate_module(m)

    def test_shared_alloc_shadowing(self):
        body = [
            ir.SharedAlloc("a", (8,), F32),
        ]
        with pytest.raises(ValidationError, match="shadows"):
            validate_function(_kernel(body, [ARR]))

    def test_select_condition_must_be_bool(self):
        sel = ir.Select(ir.Const(1, I32), ir.Const(0.0, F32), ir.Const(1.0, F32), F32)
        with pytest.raises(ValidationError, match="select condition"):
            validate_function(_kernel([ir.Assign("x", sel)]))
