"""Broad integration sweep: every registry app goes through compile ->
validate -> execute for every generated variant."""

import numpy as np
import pytest

from repro import DeviceKind, Paraprox
from repro.apps import APP_CLASSES, make_app
from repro.approx.base import ApproxKernel
from repro.kernel import validate_module

#: apps light enough to sweep every variant in-test
SWEEP = (
    "blackscholes",
    "gamma",
    "hotspot",
    "gaussian",
    "meanfilter",
    "naivebayes",
    "cumhist",
)


@pytest.mark.parametrize("name", SWEEP)
def test_every_variant_validates_and_executes(name):
    app = make_app(name, seed=3)
    px = Paraprox(target_quality=0.90)
    variants = px.compile(app, DeviceKind.GPU)
    assert variants, f"{name}: no variants generated"
    inputs = app.generate_inputs(3)
    exact, exact_trace = app.run_exact(inputs)
    assert exact_trace.total_ops() > 0
    for v in variants:
        if isinstance(v, ApproxKernel):
            validate_module(v.module)
        out, trace = app.run_variant(v, inputs)
        q = app.quality(out, exact)
        assert 0.0 <= q <= 1.0, (name, v.name)
        assert np.asarray(out).shape == np.asarray(exact).shape
        # Approximation must reduce modelled work relative to exact.
        assert trace.total_ops() <= exact_trace.total_ops() * 1.35, (name, v.name)


def test_registry_covers_every_table1_pattern():
    patterns = set()
    for cls in APP_CLASSES.values():
        patterns.update(cls.info.patterns)
    assert patterns == {
        "map",
        "scatter_gather",
        "stencil",
        "partition",
        "reduction",
        "scan",
    }


def test_deterministic_compilation():
    """Two compilations of the same app produce the same variant names and
    knob settings (tables are rebuilt from the same profiles)."""
    a = Paraprox(target_quality=0.90).compile(make_app("gaussian", seed=5))
    b = Paraprox(target_quality=0.90).compile(make_app("gaussian", seed=5))
    assert [v.name for v in a] == [v.name for v in b]
    assert [v.knobs for v in a] == [v.knobs for v in b]


def test_deterministic_memo_tables():
    a = Paraprox(target_quality=0.90).compile(make_app("blackscholes", seed=5))
    b = Paraprox(target_quality=0.90).compile(make_app("blackscholes", seed=5))
    np.testing.assert_array_equal(a[0].extra_args[0], b[0].extra_args[0])
