"""§3.1.3's runtime table switching: "Paraprox can accelerate the process
of switching between different sized lookup tables by storing multiple
tables in memory and changing the pointer passed to the kernel" — and
"no more than three tables are needed".

Here the calibration runtime walks a ladder of memoized variants whose
only difference is the table (size + pointer), backing off to a larger
table when drifted inputs push quality below the TOQ.
"""

import numpy as np
import pytest

from repro import DeviceKind, Paraprox, ParaproxConfig
from repro.apps.blackscholes import BlackScholesApp
from repro.runtime.calibration import CalibratedRuntime


class DriftingBlackScholes(BlackScholesApp):
    """After drift, prices move far outside the training range: every table
    clamps to its highest level and quality collapses (§3.1.3's clamping
    keeps execution safe but not accurate)."""

    drifted = False

    def generate_inputs(self, seed=None):
        inputs = super().generate_inputs(seed)
        if self.drifted:
            rng = np.random.default_rng((seed or 0) + 7)
            inputs["price"] = (rng.random(self.n) * 200 + 100).astype(np.float32)
            inputs["strike"] = (rng.random(self.n) * 15 + 5).astype(np.float32)
        return inputs


@pytest.fixture(scope="module")
def ladder_setup():
    app = DriftingBlackScholes(scale=0.005)
    px = Paraprox(
        target_quality=0.90, config=ParaproxConfig(memo_extra_tables=2)
    )
    tuning = px.optimize(app, DeviceKind.GPU)
    memo_profiles = [
        p for p in tuning.profiles if p.variant is not None and p.quality >= 0.90
    ]
    # least -> most aggressive = biggest table (safest) first
    memo_profiles.sort(key=lambda p: -p.variant.knobs["table_bits"])
    return app, [p.variant for p in memo_profiles]


class TestTableLadder:
    def test_multiple_table_sizes_generated(self, ladder_setup):
        _app, ladder = ladder_setup
        sizes = [v.knobs["table_bits"] for v in ladder]
        assert len(sizes) >= 2
        assert len(set(sizes)) == len(sizes)  # distinct table sizes
        assert len(sizes) <= 3  # the paper: no more than three needed

    def test_tables_are_distinct_buffers(self, ladder_setup):
        _app, ladder = ladder_setup
        tables = [v.extra_args[0] for v in ladder]
        assert len({t.shape for t in tables}) == len(tables)

    def test_runtime_switches_tables_on_drift(self, ladder_setup):
        app, ladder = ladder_setup
        if len(ladder) < 2:
            pytest.skip("search found only one qualifying table size")
        runtime = CalibratedRuntime(
            app, ladder, toq=0.90, check_interval=2, advance_after=0
        )
        start = runtime.current_name
        for i in range(8):
            runtime.invoke(app.generate_inputs(seed=100 + i))
        pre_drift_rung = runtime.rung
        app.drifted = True
        for i in range(12):
            runtime.invoke(app.generate_inputs(seed=200 + i))
        # Drift must have pushed the runtime down the ladder (bigger table
        # or exact), and the move is a pure pointer/kernel swap.
        assert runtime.rung < pre_drift_rung or runtime.current_name == "exact"
        assert runtime.stats.back_offs >= 1
