"""Failure injection: hostile inputs through the full pipeline.

Approximation must degrade, not detonate: NaN/Inf inputs, constant inputs
(degenerate quantization ranges), extreme dynamic ranges and adversarial
noise should produce finite behaviour or clean errors — never crashes or
silent TOQ violations reported as successes.
"""

import numpy as np
import pytest

from repro import DeviceKind, Paraprox
from repro.apps.blackscholes import BlackScholesApp
from repro.apps.gaussian import MeanFilterApp
from repro.errors import ReproError


class TestHostileInputsThroughVariants:
    def _tuned(self, app):
        tuning = Paraprox(target_quality=0.90).optimize(app, DeviceKind.GPU)
        assert tuning.chosen.variant is not None
        return tuning.chosen.variant

    def test_memoized_kernel_clamps_out_of_range_inputs(self):
        """Inputs far outside the training range map to the nearest level
        (paper §3.1.3) instead of indexing out of the table."""
        app = BlackScholesApp(scale=0.01)
        variant = self._tuned(app)
        inputs = app.generate_inputs(3)
        inputs["price"] = inputs["price"] * 100.0  # way past training range
        out, _trace = app.run_variant(variant, inputs)
        assert np.isfinite(out).all()

    def test_memoized_kernel_survives_nan_inputs(self):
        app = BlackScholesApp(scale=0.01)
        variant = self._tuned(app)
        inputs = app.generate_inputs(4)
        inputs["price"] = inputs["price"].copy()
        inputs["price"][:10] = np.nan
        out, _trace = app.run_variant(variant, inputs)
        n = app.n
        # A NaN price clamps into the table, so the memoized *call* price
        # is finite even on corrupted lanes...
        calls = out[:n]
        assert np.isfinite(calls).all()
        # ...while the put leg (computed from the raw price via parity)
        # carries the NaN only on those lanes.
        puts = out[n:]
        assert np.isfinite(puts[10:]).all()
        assert np.isnan(puts[:10]).all()

    def test_stencil_kernel_handles_inf_pixels(self):
        app = MeanFilterApp(scale=0.02)
        variant = self._tuned(app)
        inputs = app.generate_inputs(5)
        img = inputs["img"].copy()
        img[8, 8] = np.inf
        out, _trace = app.run_variant(variant, {"img": img})
        # Inf contaminates only its replication neighbourhood
        assert np.isfinite(out).mean() > 0.98


class TestDegenerateTrainingData:
    def test_all_constant_inputs_rejected_cleanly(self):
        """If every profiled input is constant there is nothing to
        quantize; the transform must raise a library error, not IndexError."""

        class ConstantBS(BlackScholesApp):
            def generate_inputs(self, seed=None):
                base = super().generate_inputs(seed)
                return {k: np.full_like(v, v[0]) for k, v in base.items()}

        app = ConstantBS(scale=0.005)
        px = Paraprox(target_quality=0.90)
        variants = px.compile(app, DeviceKind.GPU)
        # either skipped-with-reason or no variants; never an exception
        assert variants == [] or all(v is not None for v in variants)
        if not variants:
            assert any("constant" in s for s in px.last_skipped)

    def test_single_element_input(self):
        app = MeanFilterApp(scale=0.02)
        app.side = 4  # minimum viable image for a 3x3 stencil
        inputs = app.generate_inputs(0)
        out, _trace = app.run_exact(inputs)
        assert out.shape == (4, 4)

    def test_tuner_never_reports_quality_above_one(self):
        app = MeanFilterApp(scale=0.02)
        tuning = Paraprox(target_quality=0.90).optimize(app, DeviceKind.GPU)
        for p in tuning.profiles:
            assert 0.0 <= p.quality <= 1.0


class TestErrorHierarchy:
    def test_all_library_errors_catchable_at_root(self):
        from repro.errors import (
            DeviceError,
            ExecutionError,
            FrontendError,
            PatternError,
            TransformError,
            TuningError,
            ValidationError,
        )

        for exc_type in (
            DeviceError,
            ExecutionError,
            FrontendError,
            PatternError,
            TransformError,
            TuningError,
            ValidationError,
        ):
            assert issubclass(exc_type, ReproError)
