"""Tests for the Eq.-1 cost estimate and latency tables."""

import pytest

import kernel_zoo as zoo
from repro.analysis.latency import (
    CPU_LATENCIES,
    GPU_LATENCIES,
    PROFITABILITY_FACTOR,
    cycles_needed,
    is_memoization_profitable,
)
from repro.kernel import ir
from repro.kernel.types import F32, I32


class TestCyclesNeeded:
    def test_paper_ordering_cnd_vs_bs_body(self):
        """§4.3: Cnd() is cheap, BlackScholesBody() expensive."""
        module = zoo.black_scholes.module
        cnd_cost = cycles_needed(zoo.cnd.fn, GPU_LATENCIES, module)
        body_cost = cycles_needed(zoo.bs_body.fn, GPU_LATENCIES, module)
        assert body_cost > 2 * cnd_cost

    def test_callee_cost_included(self):
        """bs_body must include its two cnd() calls."""
        module = zoo.black_scholes.module
        body_cost = cycles_needed(zoo.bs_body.fn, GPU_LATENCIES, module)
        without_module = cycles_needed(zoo.bs_body.fn, GPU_LATENCIES, None)
        assert body_cost > without_module

    def test_loop_multiplies_body(self):
        c = ir.Const
        body = [ir.Assign("x", ir.binop("mul", ir.Const(2.0, F32), ir.Const(3.0, F32)))]
        short = ir.Function("f", [], [ir.For("i", c(0, I32), c(2, I32), c(1, I32), body)])
        long = ir.Function("g", [], [ir.For("i", c(0, I32), c(20, I32), c(1, I32), body)])
        assert cycles_needed(long, GPU_LATENCIES) > 5 * cycles_needed(short, GPU_LATENCIES)

    def test_both_if_arms_charged(self):
        arm = [ir.Assign("x", ir.Call("exp", [ir.Const(1.0, F32)], F32))]
        fn = ir.Function("f", [], [ir.If(ir.bool_const(True), arm, arm)])
        single = ir.Function("g", [], arm)
        assert cycles_needed(fn, GPU_LATENCIES) > 2 * cycles_needed(single, GPU_LATENCIES) - 1

    def test_unknown_class_raises(self):
        with pytest.raises(KeyError, match="no latency"):
            GPU_LATENCIES.of_class("quantum")


class TestProfitability:
    def test_cnd_unprofitable_on_gpu(self):
        """The paper's exact scenario: Cnd() alone fails the x10-L1 test."""
        assert not is_memoization_profitable(
            zoo.cnd.fn, GPU_LATENCIES, zoo.black_scholes.module
        )

    def test_bs_body_profitable_on_gpu(self):
        assert is_memoization_profitable(
            zoo.bs_body.fn, GPU_LATENCIES, zoo.black_scholes.module
        )

    def test_cheap_square_never_profitable(self):
        for table in (GPU_LATENCIES, CPU_LATENCIES):
            assert not is_memoization_profitable(
                zoo.cheap_square.fn, table, zoo.square_map.module
            )

    def test_threshold_is_order_of_magnitude_over_l1(self):
        assert PROFITABILITY_FACTOR == 10.0


class TestDeviceAsymmetries:
    def test_exp_cheap_on_gpu_expensive_on_cpu(self):
        """The KDE story (§4.3): SFU exponentials."""
        gpu_ratio = GPU_LATENCIES.of_class("sfu") / GPU_LATENCIES.of_class("alu")
        cpu_ratio = CPU_LATENCIES.of_class("sfu") / CPU_LATENCIES.of_class("alu")
        assert cpu_ratio > gpu_ratio

    def test_fdiv_is_a_slow_subroutine_on_gpu(self):
        """§4.4.2: Bass/Credit float divisions."""
        assert GPU_LATENCIES.of_class("fdiv") >= 10 * GPU_LATENCIES.of_class("fmul")

    def test_atomics_pricier_on_gpu(self):
        gpu = GPU_LATENCIES.of_class("atomic") / GPU_LATENCIES.of_class("alu")
        cpu = CPU_LATENCIES.of_class("atomic") / CPU_LATENCIES.of_class("alu")
        assert gpu > cpu / 2  # relative to compute, GPU atomics dominate

    def test_memory_accessor(self):
        assert GPU_LATENCIES.memory("shared") == GPU_LATENCIES.shared
        assert GPU_LATENCIES.memory("global", cached=False) == GPU_LATENCIES.global_mem
        assert GPU_LATENCIES.memory("global", cached=True) == GPU_LATENCIES.l1
