"""Tests for the pure-function analysis (paper §3.1.2)."""

import kernel_zoo as zoo
from repro.analysis.purity import analyze_purity, is_pure, pure_device_functions


class TestPureFunctions:
    def test_cnd_is_pure(self):
        assert is_pure(zoo.cnd.fn, zoo.cnd.module)

    def test_bs_body_is_pure_including_callees(self):
        assert is_pure(zoo.bs_body.fn, zoo.black_scholes.module)

    def test_cheap_square_is_pure(self):
        assert is_pure(zoo.cheap_square.fn, zoo.cheap_square.module)


class TestImpureFunctions:
    def test_io_call_breaks_purity(self):
        report = analyze_purity(zoo.impure_fn.fn, zoo.impure_map.module)
        assert not report.is_pure
        assert any("printf" in v for v in report.violations)

    def test_kernel_with_memory_accesses_not_pure(self):
        report = analyze_purity(zoo.black_scholes.fn, zoo.black_scholes.module)
        assert not report.is_pure
        assert any("accesses array" in v for v in report.violations)

    def test_thread_id_dependence_not_pure(self):
        report = analyze_purity(zoo.noop.fn, zoo.noop.module)
        assert any("global_id" in v for v in report.violations)

    def test_atomic_breaks_purity(self):
        report = analyze_purity(zoo.atomic_histogram.fn, zoo.atomic_histogram.module)
        assert any("atomic" in v for v in report.violations)

    def test_shared_alloc_breaks_purity(self):
        report = analyze_purity(zoo.scan_phase1.fn, zoo.scan_phase1.module)
        assert any("shared memory" in v for v in report.violations)

    def test_caller_of_impure_function_is_impure(self):
        # impure_map is a kernel (already impure), but the rule matters for
        # device call chains: build one artificially.
        from repro.kernel import ir
        from repro.kernel.types import F32, ScalarType

        m = zoo.impure_map.module
        caller = ir.Function(
            "wrapper",
            [ir.Param("x", ScalarType(F32))],
            [ir.Return(ir.Call("impure_fn", [ir.Var("x", F32)], F32))],
            kind="device",
            return_type=ScalarType(F32),
        )
        m2 = ir.Module()
        m2.add(caller)
        m2.add(m["impure_fn"])
        report = analyze_purity(caller, m2)
        assert any("impure function" in v for v in report.violations)


class TestModuleScan:
    def test_pure_device_functions_listing(self):
        pure = pure_device_functions(zoo.black_scholes.module)
        assert {f.name for f in pure} == {"cnd", "bs_body"}

    def test_impure_device_excluded(self):
        pure = pure_device_functions(zoo.impure_map.module)
        assert "impure_fn" not in {f.name for f in pure}
