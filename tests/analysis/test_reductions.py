"""Tests for reduction-loop recognition (paper §3.3.2)."""

import kernel_zoo as zoo
from repro.analysis.reductions import find_reduction_loops
from repro.apps.denoise import denoise_kernel
from repro.apps.kde import kde_kernel
from repro.apps.matmul import build_matmul_kernel


class TestAccumulativeDetection:
    def test_sum_chunks(self):
        loops = find_reduction_loops(zoo.sum_chunks.fn)
        assert len(loops) == 1
        assert loops[0].variable == "acc"
        assert loops[0].op == "add"
        assert loops[0].is_additive
        assert not loops[0].via_atomic

    def test_min_via_fmin_call(self):
        loops = find_reduction_loops(zoo.min_reduce.fn)
        assert len(loops) == 1
        assert loops[0].op == "min"
        assert not loops[0].is_additive

    def test_no_reduction_in_map_kernel(self):
        assert find_reduction_loops(zoo.black_scholes.fn) == []

    def test_no_reduction_in_unrolled_stencil(self):
        assert find_reduction_loops(zoo.mean3x3.fn) == []


class TestMultiVariableLoops:
    def test_denoise_has_weighted_sum_and_weight_total(self):
        loops = find_reduction_loops(denoise_kernel.fn)
        assert len(loops) == 1
        targets = dict(loops[0].targets)
        assert targets == {"acc": "add", "wsum": "add"}
        assert loops[0].is_additive


class TestNestedLoops:
    def test_innermost_attribution_matmul(self):
        """The dot-product loop, not the tile loop, is the reduction."""
        fn = build_matmul_kernel(64).fn
        loops = find_reduction_loops(fn)
        assert len(loops) == 1
        # inner loop over 16 shared-memory elements
        assert loops[0].loop.stop.value == 16

    def test_kde_reports_both_levels(self):
        """Feature-distance loop (inner) and reference loop (outer) each
        own an accumulation."""
        loops = find_reduction_loops(kde_kernel.fn)
        variables = {l.variable for l in loops}
        assert variables == {"dsq", "acc"}


class TestAtomicReductions:
    def test_atomic_histogram(self):
        loops = find_reduction_loops(zoo.atomic_histogram.fn)
        assert len(loops) == 1
        assert loops[0].via_atomic
        assert loops[0].variable is None

    def test_induction_tied_atomic_excluded(self):
        """An atomic writing cell f (the induction var) must not make the
        feature loop a reduction — skipping would zero whole bins."""
        from repro.apps.naivebayes import naive_bayes_kernel

        loops = find_reduction_loops(naive_bayes_kernel.fn)
        # only the sample loop qualifies (its atomic cells come from data)
        assert len(loops) == 1
        assert loops[0].via_atomic
        assert loops[0].loop.stop.value == 64  # the sample-chunk loop
