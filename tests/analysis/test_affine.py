"""Tests for affine access analysis: Poly algebra, extraction, tile
inference — including hypothesis property tests on the polynomial ring."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

import kernel_zoo as zoo
from repro.analysis.affine import (
    Poly,
    extract_load_polynomials,
    group_tile_forms,
    infer_tile,
)


def poly_strategy():
    symbols = st.sampled_from(["x", "y", "w", "h"])
    monomial = st.lists(symbols, min_size=0, max_size=2).map(
        lambda s: tuple(sorted(s))
    )
    term = st.tuples(monomial, st.integers(-50, 50))
    return st.lists(term, max_size=4).map(
        lambda terms: Poly._from_dict(
            {m: sum(c for mm, c in terms if mm == m) for m, c in terms}
        )
    )


class TestPolyAlgebra:
    @given(poly_strategy(), poly_strategy())
    @settings(max_examples=50)
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(poly_strategy(), poly_strategy(), poly_strategy())
    @settings(max_examples=50)
    def test_multiplication_distributes(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(poly_strategy())
    @settings(max_examples=50)
    def test_subtraction_is_inverse(self, a):
        assert (a - a) == Poly(())

    @given(poly_strategy(), poly_strategy())
    @settings(max_examples=50)
    def test_multiplication_commutes(self, a, b):
        assert a * b == b * a

    def test_constant_and_symbol(self):
        p = Poly.symbol("x") * Poly.constant(3) + Poly.constant(4)
        assert p.const == 4
        assert p.nonconst_terms == ((("x",), 3),)

    def test_zero_constant_is_empty(self):
        assert Poly.constant(0) == Poly(())

    def test_is_constant(self):
        assert Poly.constant(5).is_constant()
        assert not Poly.symbol("x").is_constant()


class TestExtraction:
    def test_mean3x3_forms(self):
        accesses = extract_load_polynomials(zoo.mean3x3.fn)
        assert "img" in accesses
        # 9 tile loads (one duplicated centre form counts once per load)
        # plus the border pass-through.
        assert len(accesses["img"].forms) == 10
        assert accesses["img"].opaque_loads == 0

    def test_loop_unrolling_expands_forms(self):
        accesses = extract_load_polynomials(zoo.row_stencil.fn)
        assert len(accesses["x"].forms) == 7  # trip count of range(-3, 4)

    def test_single_assignment_inlining(self):
        # sum_chunks indexes via idx = i*chunk + k; the poly must contain
        # chunk terms rather than an opaque "idx" symbol.
        accesses = extract_load_polynomials(zoo.sum_chunks.fn)
        monomials = {
            m for f in accesses["x"].forms for m, _c in f.nonconst_terms
        }
        assert ("idx",) not in monomials


class TestTileInference:
    def test_mean3x3_tile(self):
        accesses = extract_load_polynomials(zoo.mean3x3.fn)
        tile = infer_tile("img", accesses["img"].forms)
        assert (tile.rows, tile.cols) == (3, 3)
        assert tile.width_symbol == ("w",)
        assert len(tile.offsets) == 9
        assert tile.base is not None

    def test_row_tile(self):
        accesses = extract_load_polynomials(zoo.row_stencil.fn)
        tile = infer_tile("x", accesses["x"].forms)
        assert (tile.rows, tile.cols) == (1, 7)
        assert tile.dims == 1

    def test_outlier_forms_do_not_poison_tile(self):
        # mean3x3's border branch loads img[gid]; grouping must isolate it.
        accesses = extract_load_polynomials(zoo.mean3x3.fn)
        groups = group_tile_forms(accesses["img"].forms)
        assert len(groups[0]) == 9
        assert len(groups) == 2

    def test_single_form_yields_no_tile(self):
        assert infer_tile("a", [Poly.symbol("i")]) is None

    def test_constant_stride_column_tile(self):
        forms = [Poly.constant(k * 64) + Poly.symbol("base") for k in range(5)]
        tile = infer_tile("a", forms)
        assert (tile.rows, tile.cols) == (5, 1)
        assert tile.pitch == 64

    def test_constant_grid_tile(self):
        w = 100
        forms = [
            Poly.constant(r * w + c) + Poly.symbol("base")
            for r in range(3)
            for c in range(3)
        ]
        tile = infer_tile("a", forms)
        assert (tile.rows, tile.cols) == (3, 3)
        assert tile.pitch == w

    def test_cross_shaped_tile(self):
        # HotSpot's 5-point cross: offsets c, n, s, e, w.
        accesses = extract_load_polynomials(
            __import__("repro.apps.hotspot", fromlist=["hotspot_kernel"]).hotspot_kernel.fn
        )
        tile = infer_tile("temp", accesses["temp"].forms)
        assert (tile.rows, tile.cols) == (3, 3)
        assert len(tile.offsets) == 5
