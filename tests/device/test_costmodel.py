"""Tests for the device cost model: pricing rules and the paper's
qualitative asymmetries."""

import numpy as np
import pytest

import kernel_zoo as zoo
from repro.device import CORE_I7, GTX560, CostModel, DeviceKind, spec_for
from repro.engine import Grid, Trace, launch
from repro.engine.trace import WARP_SIZE
from repro.errors import DeviceError


def _compute_trace(op="sfu", count=32000, dtype="f32"):
    t = Trace()
    t.count_op(op, dtype, count)
    return t


class TestBasicPricing:
    def test_more_ops_cost_more(self):
        cm = CostModel(GTX560)
        assert cm.cycles(_compute_trace(count=2000)) < cm.cycles(
            _compute_trace(count=4000)
        )

    def test_speedup_is_cycle_ratio(self):
        cm = CostModel(GTX560)
        a, b = _compute_trace(count=4000), _compute_trace(count=2000)
        assert cm.speedup(a, b) == pytest.approx(2.0)

    def test_zero_cost_optimized_rejected(self):
        cm = CostModel(GTX560)
        with pytest.raises(DeviceError):
            cm.speedup(_compute_trace(), Trace())

    def test_seconds_conversion(self):
        cm = CostModel(GTX560)
        trace = _compute_trace(count=1000)
        assert cm.seconds(trace) == pytest.approx(
            cm.cycles(trace) / (GTX560.clock_ghz * 1e9)
        )

    def test_memory_accesses_cost_issue_slots(self):
        cm = CostModel(GTX560)
        t = Trace()
        t.record_access("global", "load", 4, 32000, None, "a")
        b = cm.breakdown(t)
        assert b.compute_cycles > 0  # LSU issue cost even without addresses


class TestCoalescingEffects:
    def _loads(self, addresses):
        t = Trace()
        t.record_access("global", "load", 4, len(addresses), np.asarray(addresses), "a")
        return t

    def test_uncoalesced_loads_cost_more(self):
        cm = CostModel(GTX560)
        coalesced = self._loads(np.arange(4096))
        scattered = self._loads((np.arange(4096) * 997) % (1 << 20))
        assert cm.cycles(scattered) > 3 * cm.cycles(coalesced)

    def test_serialization_overhead_reported(self):
        cm = CostModel(GTX560)
        scattered = self._loads((np.arange(4096) * 997) % (1 << 20))
        assert cm.breakdown(scattered).serialization_overhead > 0.5
        coalesced = self._loads(np.arange(4096))
        assert cm.breakdown(coalesced).serialization_overhead < 0.05

    def test_cache_resident_stream_cheaper_than_dram(self):
        cm = CostModel(GTX560)
        small = self._loads(np.tile(np.arange(1024), 16))  # 4KB, reused
        big = self._loads((np.arange(16384) * 131) % (1 << 22))  # >L1, scattered
        assert cm.cycles(big) > cm.cycles(small)


class TestAtomics:
    def _atomics(self, addresses):
        t = Trace()
        t.record_access("global", "atomic", 4, len(addresses), np.asarray(addresses), "h")
        t.count_op("atomic", "i32", len(addresses))
        return t

    def test_contended_atomics_cost_more_on_gpu(self):
        cm = CostModel(GTX560)
        contended = self._atomics(np.zeros(4096, dtype=np.int64))
        spread = self._atomics(np.arange(4096))
        assert cm.cycles(contended) > 4 * cm.cycles(spread)

    def test_cpu_chain_capped_at_core_count(self):
        gpu, cpu = CostModel(GTX560), CostModel(CORE_I7)
        contended = self._atomics(np.zeros(4096, dtype=np.int64))
        spread = self._atomics(np.arange(4096))
        gpu_penalty = gpu.cycles(contended) / gpu.cycles(spread)
        cpu_penalty = cpu.cycles(contended) / cpu.cycles(spread)
        assert gpu_penalty > cpu_penalty


class TestSharedAndConstant:
    def test_readonly_shared_table_pays_staging(self):
        cm = CostModel(GTX560)
        t = Trace()
        t.count_launch(256 * 64)
        t.record_access("shared", "load", 4, 8192, np.arange(8192) % 1024, "lut")
        with_staging = cm.cycles(t)
        # same accesses but the array is also written (true scratchpad)
        t2 = Trace()
        t2.count_launch(256 * 64)
        t2.record_access("shared", "load", 4, 8192, np.arange(8192) % 1024, "sh")
        t2.record_access("shared", "store", 4, 8192, np.arange(8192) % 1024, "sh")
        b2 = cm.breakdown(t2)
        assert with_staging > b2.streams[("shared", "load", "sh")]

    def test_constant_thrash_beyond_cache(self):
        cm = CostModel(GTX560)
        small = Trace()
        small.record_access("constant", "load", 4, 4096, np.arange(4096) % 512, "c")
        big = Trace()
        big.record_access(
            "constant", "load", 4, 4096, (np.arange(4096) * 37) % (1 << 16), "c"
        )
        assert cm.cycles(big) > 5 * cm.cycles(small)


class TestDeviceSpecs:
    def test_spec_for(self):
        assert spec_for(DeviceKind.GPU) is GTX560
        assert spec_for(DeviceKind.CPU) is CORE_I7
        assert GTX560.is_gpu and not CORE_I7.is_gpu

    def test_end_to_end_kernel_pricing(self):
        x = np.ones(2048, dtype=np.float32)
        out = np.zeros_like(x)
        trace = launch(zoo.noop, Grid.for_elements(2048), [out, x, 2048])
        for spec in (GTX560, CORE_I7):
            b = CostModel(spec).breakdown(trace)
            assert b.total_cycles > 0
            assert b.compute_cycles > 0 and b.memory_cycles > 0
