"""Hypothesis property tests on the cost model: pricing must be monotone,
additive over trace merges, and positive-homogeneous where expected."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.device import CORE_I7, GTX560, CostModel
from repro.engine import Trace

OP_CLASSES = ("alu", "fmul", "fdiv", "sfu", "trans", "libcall", "atomic")


def trace_strategy():
    ops = st.lists(
        st.tuples(st.sampled_from(OP_CLASSES), st.integers(1, 100000)),
        min_size=1,
        max_size=5,
    )

    def build(op_list):
        t = Trace()
        for cls, count in op_list:
            t.count_op(cls, "f32", count)
        return t

    return ops.map(build)


class TestComputePricing:
    @given(trace_strategy())
    @settings(max_examples=60)
    def test_cost_positive(self, trace):
        for spec in (GTX560, CORE_I7):
            assert CostModel(spec).cycles(trace) > 0

    @given(trace_strategy(), st.sampled_from(OP_CLASSES), st.integers(1, 10000))
    @settings(max_examples=60)
    def test_adding_work_never_cheapens(self, trace, cls, extra):
        cm = CostModel(GTX560)
        before = cm.cycles(trace)
        trace.count_op(cls, "f32", extra)
        assert cm.cycles(trace) >= before

    @given(trace_strategy())
    @settings(max_examples=60)
    def test_merge_is_additive_for_compute(self, trace):
        cm = CostModel(GTX560)
        single = cm.cycles(trace)
        doubled = trace.copy()
        doubled.merge(trace)
        assert np.isclose(cm.cycles(doubled), 2 * single, rtol=1e-9)

    @given(trace_strategy())
    @settings(max_examples=30)
    def test_speedup_antisymmetry(self, trace):
        cm = CostModel(GTX560)
        heavier = trace.copy()
        heavier.merge(trace)
        s = cm.speedup(heavier, trace)
        assert np.isclose(cm.speedup(trace, heavier), 1.0 / s, rtol=1e-9)


class TestMemoryPricing:
    def _mem_trace(self, addresses, count=None):
        t = Trace()
        addr = np.asarray(addresses)
        t.record_access("global", "load", 4, count or addr.size, addr, "a")
        return t

    @given(st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_wider_stride_never_cheaper(self, stride_pow):
        """Worsening coalescing can only raise the price — for streams
        with no reuse (distinct addresses; wrapping strides create cache
        reuse and legitimately get cheaper)."""
        cm = CostModel(GTX560)
        n = 2048
        narrow = self._mem_trace(np.arange(n, dtype=np.int64))
        wide = self._mem_trace(np.arange(n, dtype=np.int64) * (1 << stride_pow))
        assert cm.cycles(wide) >= cm.cycles(narrow) - 1e-9

    @given(st.integers(6, 16))
    @settings(max_examples=20, deadline=None)
    def test_bigger_tables_never_cheaper(self, bits):
        """The Fig-17 monotonicity as a property: random lookups into a
        bigger table cost at least as much as into a smaller one."""
        cm = CostModel(GTX560)
        rng = np.random.default_rng(bits)
        n = 4096
        small = self._mem_trace(rng.integers(0, 1 << 6, n))
        large = self._mem_trace(rng.integers(0, 1 << bits, n))
        assert cm.cycles(large) >= cm.cycles(small) * 0.999
