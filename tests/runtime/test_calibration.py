"""Tests for the SAGE/Green-style online calibration runtime."""

import numpy as np
import pytest

from repro.errors import TuningError
from repro.runtime.calibration import CalibratedRuntime


class FakeVariant:
    def __init__(self, name, quality):
        self.name = name
        self.quality = quality


class FakeApp:
    """An 'application' whose variant quality we script directly."""

    def __init__(self):
        self.exact_runs = 0
        self.variant_runs = 0

    def run_exact(self, inputs):
        self.exact_runs += 1
        return np.zeros(4), None

    def run_variant(self, variant, inputs):
        self.variant_runs += 1
        self._last_quality = variant.quality(inputs) if callable(variant.quality) else variant.quality
        return np.full(4, 1.0 - self._last_quality), None

    def quality(self, approx, exact):
        return 1.0 - float(approx[0])


def _ladder(*qualities):
    return [FakeVariant(f"v{i}", q) for i, q in enumerate(qualities)]


class TestBackOff:
    def test_starts_at_most_aggressive(self):
        rt = CalibratedRuntime(FakeApp(), _ladder(0.99, 0.95), toq=0.9, check_interval=1)
        assert rt.current_name == "v1"

    def test_backs_off_on_violation(self):
        rt = CalibratedRuntime(
            FakeApp(), _ladder(0.95, 0.85), toq=0.9, check_interval=1, advance_after=0
        )
        rt.invoke({})
        assert rt.current_name == "v0"
        assert rt.stats.back_offs == 1 and rt.stats.violations == 1

    def test_falls_back_to_exact_when_ladder_exhausted(self):
        app = FakeApp()
        rt = CalibratedRuntime(app, _ladder(0.5), toq=0.9, check_interval=1, advance_after=0)
        rt.invoke({})
        assert rt.current_name == "exact"
        rt.invoke({})
        assert rt.stats.invocations == 2

    def test_checks_only_every_interval(self):
        app = FakeApp()
        rt = CalibratedRuntime(app, _ladder(0.95), toq=0.9, check_interval=5)
        for _ in range(10):
            rt.invoke({})
        assert rt.stats.checks == 2
        assert rt.stats.overhead == pytest.approx(0.2)

    def test_interval_of_40_has_small_overhead(self):
        """The §5 claim: checking every 40-50 invocations costs <5%."""
        app = FakeApp()
        rt = CalibratedRuntime(app, _ladder(0.95), toq=0.9, check_interval=40)
        for _ in range(200):
            rt.invoke({})
        assert rt.stats.overhead < 0.05
        assert app.exact_runs == rt.stats.checks


class TestAdvance:
    def test_advances_after_clean_streak(self):
        rt = CalibratedRuntime(
            FakeApp(),
            _ladder(0.99, 0.98),
            toq=0.9,
            check_interval=1,
            advance_after=2,
            margin=0.02,
        )
        rt.rung = 0  # start conservative
        for _ in range(2):
            rt.invoke({})
        assert rt.stats.advances == 1
        assert rt.current_name == "v1"

    def test_no_advance_without_margin(self):
        rt = CalibratedRuntime(
            FakeApp(),
            _ladder(0.905, 0.90),
            toq=0.9,
            check_interval=1,
            advance_after=1,
            margin=0.05,
        )
        rt.rung = 0
        for _ in range(5):
            rt.invoke({})
        assert rt.stats.advances == 0


class TestValidation:
    def test_bad_interval_rejected(self):
        with pytest.raises(TuningError):
            CalibratedRuntime(FakeApp(), [], check_interval=0)

    def test_records_have_quality_on_checked_invocations(self):
        rt = CalibratedRuntime(FakeApp(), _ladder(0.95), toq=0.9, check_interval=2)
        rt.invoke({})
        rt.invoke({})
        assert rt.stats.records[0].quality is None
        assert rt.stats.records[1].quality == pytest.approx(0.95)
