"""Tests for the quality metrics, including metric-axiom property tests."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra.numpy import arrays

from repro.runtime.quality import (
    L1_NORM,
    L2_NORM,
    MEAN_RELATIVE,
    QualityMetric,
    l1_norm_error,
    l2_norm_error,
    mean_relative_error,
    relative_errors,
)

finite = arrays(
    np.float64,
    st.integers(1, 64),
    elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
)


class TestMetricAxioms:
    @given(finite)
    @settings(max_examples=60)
    def test_zero_error_on_identical_outputs(self, x):
        for fn in (mean_relative_error, l1_norm_error, l2_norm_error):
            assert fn(x, x) == pytest.approx(0.0, abs=1e-12)

    @given(finite)
    @settings(max_examples=60)
    def test_errors_are_nonnegative(self, x):
        noisy = x + 1.0
        for fn in (mean_relative_error, l1_norm_error, l2_norm_error):
            assert fn(noisy, x) >= 0.0

    @given(finite, st.floats(0.001, 0.2))
    @settings(max_examples=60)
    def test_error_scales_with_perturbation(self, x, eps):
        small = l1_norm_error(x * (1 + eps / 2), x)
        large = l1_norm_error(x * (1 + eps), x)
        assert large >= small - 1e-12


class TestMetricValues:
    def test_l1_norm_is_relative(self):
        exact = np.array([10.0, 10.0])
        approx = np.array([11.0, 9.0])
        assert l1_norm_error(approx, exact) == pytest.approx(0.1)

    def test_l2_norm(self):
        exact = np.array([3.0, 4.0])
        approx = np.array([3.0, 4.0]) + np.array([3.0, 4.0]) * 0.1
        assert l2_norm_error(approx, exact) == pytest.approx(0.1)

    def test_mean_relative(self):
        exact = np.array([1.0, 2.0])
        approx = np.array([1.1, 2.4])
        assert mean_relative_error(approx, exact) == pytest.approx(0.15)

    def test_zero_exact_values_use_epsilon_floor(self):
        err = mean_relative_error(np.array([0.1]), np.array([0.0]))
        assert np.isfinite(err) and err > 1.0

    def test_per_element_errors(self):
        errs = relative_errors(np.array([1.1, 2.0]), np.array([1.0, 2.0]))
        np.testing.assert_allclose(errs, [0.1, 0.0], atol=1e-12)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            l1_norm_error(np.ones(3), np.ones(4))


class TestQualityMetricWrapper:
    def test_quality_is_one_minus_error(self):
        exact = np.array([10.0])
        approx = np.array([10.5])
        assert L1_NORM.quality(approx, exact) == pytest.approx(0.95)

    def test_quality_floored_at_zero(self):
        assert MEAN_RELATIVE.quality(np.array([100.0]), np.array([1.0])) == 0.0

    def test_unknown_metric_rejected(self):
        with pytest.raises(KeyError):
            QualityMetric("l7")

    def test_named_instances(self):
        assert L2_NORM.name == "l2" and MEAN_RELATIVE.name == "mean_relative"


class TestNonFiniteInputs:
    """Regression: a NaN/Inf output must score as a hard violation, not
    poison the monitor with NaN comparisons (NaN < toq is always False)."""

    METRICS = (mean_relative_error, l1_norm_error, l2_norm_error)
    POISONS = (np.nan, np.inf, -np.inf)

    @pytest.mark.parametrize("poison", POISONS)
    def test_poisoned_approx_scores_infinite_error(self, poison):
        exact = np.array([1.0, 2.0, 3.0])
        approx = np.array([1.0, poison, 3.0])
        for fn in self.METRICS:
            err = fn(approx, exact)
            assert err == np.inf and not np.isnan(err)

    @pytest.mark.parametrize("poison", POISONS)
    def test_poisoned_exact_scores_infinite_error(self, poison):
        exact = np.array([1.0, poison])
        approx = np.array([1.0, 2.0])
        for fn in self.METRICS:
            assert fn(approx, exact) == np.inf

    @pytest.mark.parametrize("poison", POISONS)
    def test_quality_of_poisoned_output_is_zero(self, poison):
        exact = np.array([1.0, 2.0])
        approx = np.array([poison, 2.0])
        for metric in (MEAN_RELATIVE, L1_NORM, L2_NORM):
            quality = metric.quality(approx, exact)
            assert quality == 0.0  # never NaN: NaN < toq compares False

    def test_all_nan_output_still_scores_zero(self):
        exact = np.ones(4)
        approx = np.full(4, np.nan)
        assert L1_NORM.quality(approx, exact) == 0.0

    @given(finite)
    @settings(max_examples=40)
    def test_finite_inputs_never_return_non_finite_error(self, x):
        for fn in self.METRICS:
            assert np.isfinite(fn(x + 0.5, x))
