"""Round-trip serialization of ParaproxConfig and TuningResult, and the
resumable tuner built on top of it."""

import json

import pytest

from repro import DeviceKind, Paraprox, ParaproxConfig
from repro.apps.gaussian import GaussianFilterApp
from repro.device import spec_for
from repro.errors import ConfigError, SerializationError, TuningError
from repro.runtime.tuner import GreedyTuner, TuningResult


class TestConfigRoundTrip:
    def test_default_round_trips(self):
        config = ParaproxConfig()
        clone = ParaproxConfig.from_dict(config.to_dict())
        assert clone == config
        json.dumps(config.to_dict())  # JSON-serialisable as promised

    def test_custom_round_trips_with_tuple_restoration(self):
        config = ParaproxConfig(
            skipping_rates=(2, 16), memo_modes=("nearest", "linear"),
            memo_start_bits=7, guard_divisions=True,
        )
        clone = ParaproxConfig.from_dict(config.to_dict())
        assert clone == config
        assert isinstance(clone.skipping_rates, tuple)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown keys"):
            ParaproxConfig.from_dict({"skip_rates": [2]})

    def test_non_dict_rejected(self):
        with pytest.raises(ConfigError):
            ParaproxConfig.from_dict([1, 2])

    @pytest.mark.parametrize(
        "bad",
        [
            {"skipping_rates": (0,)},
            {"skipping_rates": (1,)},
            {"skipping_rates": (2.5,)},
            {"skipping_rates": 4},
            {"reaching_distances": (0,)},
            {"stencil_schemes": ("diagonal",)},
            {"scan_skip_fractions": (0.75,)},
            {"scan_skip_fractions": (0.0,)},
            {"memo_modes": ("cubic",)},
            {"memo_spaces": ("texture",)},
            {"memo_extra_tables": -1},
            {"memo_start_bits": 0},
        ],
    )
    def test_bad_knobs_raise_at_construction(self, bad):
        with pytest.raises(ConfigError):
            ParaproxConfig(**bad)

    def test_config_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            ParaproxConfig(skipping_rates=(0,))


class TestToqValidation:
    def test_percentage_mistake_gets_a_hint(self):
        with pytest.raises(ValueError, match="0.9"):
            Paraprox(target_quality=90)

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5, float("nan"), "0.9", None])
    def test_out_of_range_toq_rejected(self, bad):
        with pytest.raises(ValueError):
            Paraprox(target_quality=bad)

    def test_boundary_values_accepted(self):
        assert Paraprox(target_quality=1.0).toq == 1.0
        assert Paraprox(target_quality=0.01).toq == 0.01


class TestTuningResultRoundTrip:
    @pytest.fixture()
    def result(self):
        return Paraprox(target_quality=0.9).optimize(
            GaussianFilterApp(scale=0.05), DeviceKind.GPU
        )

    def test_round_trip_preserves_every_field(self, result):
        data = result.to_dict()
        json.dumps(data)
        clone = TuningResult.from_dict(data)
        assert clone.app == result.app
        assert clone.device == result.device
        assert clone.toq == result.toq
        assert clone.chosen.name == result.chosen.name
        assert [p.name for p in clone.profiles] == [
            p.name for p in result.profiles
        ]
        for original, restored in zip(result.profiles, clone.profiles):
            assert restored.quality == pytest.approx(original.quality)
            assert restored.cycles == pytest.approx(original.cycles)
            assert restored.speedup == pytest.approx(original.speedup)

    def test_rebind_restores_live_variants(self, result):
        variants = Paraprox(target_quality=0.9).compile(
            GaussianFilterApp(scale=0.05)
        )
        clone = TuningResult.from_dict(result.to_dict()).rebind(variants)
        for p in clone.profiles:
            if p.name != "exact":
                assert p.variant is not None

    def test_rebind_missing_chosen_raises(self, result):
        if result.chosen.variant is None:
            pytest.skip("exact chosen; nothing to unbind")
        clone = TuningResult.from_dict(result.to_dict())
        with pytest.raises(TuningError, match="rebind"):
            clone.rebind([])

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("app"),
            lambda d: d.update(toq=7.0),
            lambda d: d.update(chosen="no_such_variant"),
            lambda d: d["profiles"][0].pop("cycles"),
            lambda d: d["profiles"][0].update(quality="high"),
        ],
    )
    def test_malformed_data_raises_serialization_error(self, result, mutate):
        data = result.to_dict()
        mutate(data)
        with pytest.raises(SerializationError):
            TuningResult.from_dict(data)

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(SerializationError):
            TuningResult.from_dict("{}")

    def test_resumed_defaults_false_and_round_trips(self, result):
        assert result.resumed is False
        data = result.to_dict()
        assert data["resumed"] is False
        assert TuningResult.from_dict(data).resumed is False
        data["resumed"] = True
        assert TuningResult.from_dict(data).resumed is True

    def test_resumed_absent_key_stays_false(self, result):
        data = result.to_dict()
        del data["resumed"]  # snapshots persisted before the field existed
        assert TuningResult.from_dict(data).resumed is False


class TestTunerResume:
    def test_resume_skips_reprofiling_when_valid(self):
        app = GaussianFilterApp(scale=0.05)
        paraprox = Paraprox(target_quality=0.9)
        variants = paraprox.compile(app)
        tuner = GreedyTuner(spec_for(DeviceKind.GPU), toq=0.9)
        first = tuner.profile(app, variants, app.generate_inputs(seed=app.seed))
        resumed = tuner.resume(app, variants, first.to_dict())
        assert getattr(resumed, "resumed", False)
        assert resumed.chosen.name == first.chosen.name
        assert resumed.chosen.variant is not None or first.chosen.variant is None

    def test_resume_reprofiles_on_variant_set_change(self):
        app = GaussianFilterApp(scale=0.05)
        paraprox = Paraprox(target_quality=0.9)
        variants = paraprox.compile(app)
        tuner = GreedyTuner(spec_for(DeviceKind.GPU), toq=0.9)
        first = tuner.profile(app, variants, app.generate_inputs(seed=app.seed))
        fewer = list(variants)[:-1]
        resumed = tuner.resume(app, fewer, first.to_dict())
        assert not getattr(resumed, "resumed", False)
        assert len(resumed.profiles) == len(fewer) + 1  # + exact

    def test_resume_reprofiles_on_toq_change(self):
        app = GaussianFilterApp(scale=0.05)
        variants = Paraprox(target_quality=0.9).compile(app)
        tuner09 = GreedyTuner(spec_for(DeviceKind.GPU), toq=0.9)
        first = tuner09.profile(app, variants, app.generate_inputs(seed=app.seed))
        tuner05 = GreedyTuner(spec_for(DeviceKind.GPU), toq=0.5)
        resumed = tuner05.resume(app, variants, first.to_dict())
        assert not getattr(resumed, "resumed", False)
        assert resumed.toq == 0.5

    def test_resume_sets_the_dataclass_field(self):
        from dataclasses import fields

        assert any(f.name == "resumed" for f in fields(TuningResult))
        app = GaussianFilterApp(scale=0.05)
        variants = Paraprox(target_quality=0.9).compile(app)
        tuner = GreedyTuner(spec_for(DeviceKind.GPU), toq=0.9)
        first = tuner.profile(app, variants, app.generate_inputs(seed=app.seed))
        resumed = tuner.resume(app, variants, first.to_dict())
        assert resumed.resumed is True
        assert resumed.to_dict()["resumed"] is True

    def test_resume_survives_garbage(self):
        app = GaussianFilterApp(scale=0.05)
        variants = Paraprox(target_quality=0.9).compile(app)
        tuner = GreedyTuner(spec_for(DeviceKind.GPU), toq=0.9)
        resumed = tuner.resume(app, variants, {"not": "a result"})
        assert resumed.chosen is not None  # fell back to profiling
