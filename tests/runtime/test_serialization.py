"""Round-trip serialization of ParaproxConfig and TuningResult, and the
resumable tuner built on top of it."""

import json
from functools import lru_cache

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import DeviceKind, Paraprox, ParaproxConfig
from repro.apps.gaussian import GaussianFilterApp
from repro.device import spec_for
from repro.errors import ConfigError, SerializationError, TuningError
from repro.runtime.tuner import GreedyTuner, TuningResult


class TestConfigRoundTrip:
    def test_default_round_trips(self):
        config = ParaproxConfig()
        clone = ParaproxConfig.from_dict(config.to_dict())
        assert clone == config
        json.dumps(config.to_dict())  # JSON-serialisable as promised

    def test_custom_round_trips_with_tuple_restoration(self):
        config = ParaproxConfig(
            skipping_rates=(2, 16), memo_modes=("nearest", "linear"),
            memo_start_bits=7, guard_divisions=True,
        )
        clone = ParaproxConfig.from_dict(config.to_dict())
        assert clone == config
        assert isinstance(clone.skipping_rates, tuple)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown keys"):
            ParaproxConfig.from_dict({"skip_rates": [2]})

    def test_non_dict_rejected(self):
        with pytest.raises(ConfigError):
            ParaproxConfig.from_dict([1, 2])

    @pytest.mark.parametrize(
        "bad",
        [
            {"skipping_rates": (0,)},
            {"skipping_rates": (1,)},
            {"skipping_rates": (2.5,)},
            {"skipping_rates": 4},
            {"reaching_distances": (0,)},
            {"stencil_schemes": ("diagonal",)},
            {"scan_skip_fractions": (0.75,)},
            {"scan_skip_fractions": (0.0,)},
            {"memo_modes": ("cubic",)},
            {"memo_spaces": ("texture",)},
            {"memo_extra_tables": -1},
            {"memo_start_bits": 0},
        ],
    )
    def test_bad_knobs_raise_at_construction(self, bad):
        with pytest.raises(ConfigError):
            ParaproxConfig(**bad)

    def test_config_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            ParaproxConfig(skipping_rates=(0,))


class TestExecutorKnobRoundTrip:
    """The PR-6 shard-executor knob must survive the disk cache."""

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_executor_round_trips(self, executor):
        config = ParaproxConfig(executor=executor)
        data = config.to_dict()
        assert data["executor"] == executor
        clone = ParaproxConfig.from_dict(data)
        assert clone.executor == executor
        assert clone == config

    @pytest.mark.parametrize(
        "bad", ["fork", "THREAD", "", None, 1, True, ["thread"]]
    )
    def test_unknown_executor_rejected_at_construction(self, bad):
        with pytest.raises(ConfigError, match="executor"):
            ParaproxConfig(executor=bad)

    @pytest.mark.parametrize("bad", ["fork", "Process", "", 0])
    def test_unknown_executor_rejected_via_from_dict(self, bad):
        data = ParaproxConfig().to_dict()
        data["executor"] = bad
        with pytest.raises(ConfigError, match="executor"):
            ParaproxConfig.from_dict(data)

    @given(_garbage=st.deferred(lambda: _GARBAGE_VALUES))
    @settings(max_examples=100, deadline=None)
    def test_fuzzed_executor_loads_valid_or_raises_config_error(self, _garbage):
        data = ParaproxConfig().to_dict()
        data["executor"] = _garbage
        try:
            clone = ParaproxConfig.from_dict(data)
        except ConfigError:
            return
        assert clone.executor in ("thread", "process")
        # A loadable value must round-trip stably.
        assert ParaproxConfig.from_dict(clone.to_dict()) == clone


class TestToqValidation:
    def test_percentage_mistake_gets_a_hint(self):
        with pytest.raises(ValueError, match="0.9"):
            Paraprox(target_quality=90)

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5, float("nan"), "0.9", None])
    def test_out_of_range_toq_rejected(self, bad):
        with pytest.raises(ValueError):
            Paraprox(target_quality=bad)

    def test_boundary_values_accepted(self):
        assert Paraprox(target_quality=1.0).toq == 1.0
        assert Paraprox(target_quality=0.01).toq == 0.01


class TestTuningResultRoundTrip:
    @pytest.fixture()
    def result(self):
        return Paraprox(target_quality=0.9).optimize(
            GaussianFilterApp(scale=0.05), DeviceKind.GPU
        )

    def test_round_trip_preserves_every_field(self, result):
        data = result.to_dict()
        json.dumps(data)
        clone = TuningResult.from_dict(data)
        assert clone.app == result.app
        assert clone.device == result.device
        assert clone.toq == result.toq
        assert clone.chosen.name == result.chosen.name
        assert [p.name for p in clone.profiles] == [
            p.name for p in result.profiles
        ]
        for original, restored in zip(result.profiles, clone.profiles):
            assert restored.quality == pytest.approx(original.quality)
            assert restored.cycles == pytest.approx(original.cycles)
            assert restored.speedup == pytest.approx(original.speedup)

    def test_rebind_restores_live_variants(self, result):
        variants = Paraprox(target_quality=0.9).compile(
            GaussianFilterApp(scale=0.05)
        )
        clone = TuningResult.from_dict(result.to_dict()).rebind(variants)
        for p in clone.profiles:
            if p.name != "exact":
                assert p.variant is not None

    def test_rebind_missing_chosen_raises(self, result):
        if result.chosen.variant is None:
            pytest.skip("exact chosen; nothing to unbind")
        clone = TuningResult.from_dict(result.to_dict())
        with pytest.raises(TuningError, match="rebind"):
            clone.rebind([])

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("app"),
            lambda d: d.update(toq=7.0),
            lambda d: d.update(chosen="no_such_variant"),
            lambda d: d["profiles"][0].pop("cycles"),
            lambda d: d["profiles"][0].update(quality="high"),
        ],
    )
    def test_malformed_data_raises_serialization_error(self, result, mutate):
        data = result.to_dict()
        mutate(data)
        with pytest.raises(SerializationError):
            TuningResult.from_dict(data)

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(SerializationError):
            TuningResult.from_dict("{}")

    def test_resumed_defaults_false_and_round_trips(self, result):
        assert result.resumed is False
        data = result.to_dict()
        assert data["resumed"] is False
        assert TuningResult.from_dict(data).resumed is False
        data["resumed"] = True
        assert TuningResult.from_dict(data).resumed is True

    def test_resumed_absent_key_stays_false(self, result):
        data = result.to_dict()
        del data["resumed"]  # snapshots persisted before the field existed
        assert TuningResult.from_dict(data).resumed is False


class TestTunerResume:
    def test_resume_skips_reprofiling_when_valid(self):
        app = GaussianFilterApp(scale=0.05)
        paraprox = Paraprox(target_quality=0.9)
        variants = paraprox.compile(app)
        tuner = GreedyTuner(spec_for(DeviceKind.GPU), toq=0.9)
        first = tuner.profile(app, variants, app.generate_inputs(seed=app.seed))
        resumed = tuner.resume(app, variants, first.to_dict())
        assert getattr(resumed, "resumed", False)
        assert resumed.chosen.name == first.chosen.name
        assert resumed.chosen.variant is not None or first.chosen.variant is None

    def test_resume_reprofiles_on_variant_set_change(self):
        app = GaussianFilterApp(scale=0.05)
        paraprox = Paraprox(target_quality=0.9)
        variants = paraprox.compile(app)
        tuner = GreedyTuner(spec_for(DeviceKind.GPU), toq=0.9)
        first = tuner.profile(app, variants, app.generate_inputs(seed=app.seed))
        fewer = list(variants)[:-1]
        resumed = tuner.resume(app, fewer, first.to_dict())
        assert not getattr(resumed, "resumed", False)
        assert len(resumed.profiles) == len(fewer) + 1  # + exact

    def test_resume_reprofiles_on_toq_change(self):
        app = GaussianFilterApp(scale=0.05)
        variants = Paraprox(target_quality=0.9).compile(app)
        tuner09 = GreedyTuner(spec_for(DeviceKind.GPU), toq=0.9)
        first = tuner09.profile(app, variants, app.generate_inputs(seed=app.seed))
        tuner05 = GreedyTuner(spec_for(DeviceKind.GPU), toq=0.5)
        resumed = tuner05.resume(app, variants, first.to_dict())
        assert not getattr(resumed, "resumed", False)
        assert resumed.toq == 0.5

    def test_resume_sets_the_dataclass_field(self):
        from dataclasses import fields

        assert any(f.name == "resumed" for f in fields(TuningResult))
        app = GaussianFilterApp(scale=0.05)
        variants = Paraprox(target_quality=0.9).compile(app)
        tuner = GreedyTuner(spec_for(DeviceKind.GPU), toq=0.9)
        first = tuner.profile(app, variants, app.generate_inputs(seed=app.seed))
        resumed = tuner.resume(app, variants, first.to_dict())
        assert resumed.resumed is True
        assert resumed.to_dict()["resumed"] is True

    def test_resume_survives_garbage(self):
        app = GaussianFilterApp(scale=0.05)
        variants = Paraprox(target_quality=0.9).compile(app)
        tuner = GreedyTuner(spec_for(DeviceKind.GPU), toq=0.9)
        resumed = tuner.resume(app, variants, {"not": "a result"})
        assert resumed.chosen is not None  # fell back to profiling


class TestFromDictHardening:
    """Malformed persisted snapshots must fail loudly, with the offending
    key/index named, and must never escape as anything other than the
    serialization error types."""

    def test_profiles_must_be_a_list(self):
        data = _tuning_dict()
        data["profiles"] = {"name": "rate2"}
        with pytest.raises(SerializationError, match="list"):
            TuningResult.from_dict(data)

    def test_profile_rows_must_be_dicts(self):
        data = _tuning_dict()
        data["profiles"][1] = ["rate2", 0.95]
        with pytest.raises(SerializationError, match="profile 1"):
            TuningResult.from_dict(data)

    def test_missing_keys_are_named(self):
        data = _tuning_dict()
        del data["device"]
        del data["chosen"]
        with pytest.raises(SerializationError, match="missing keys"):
            TuningResult.from_dict(data)

    @pytest.mark.parametrize("toq", [0.0, -1, 2.0, "0.9", None, [0.9]])
    def test_toq_out_of_range_or_wrong_type(self, toq):
        data = _tuning_dict()
        data["toq"] = toq
        with pytest.raises(SerializationError, match="toq"):
            TuningResult.from_dict(data)

    def test_config_mixed_type_keys_still_report_unknowns(self):
        # A corrupted snapshot can hold non-string keys; the unknown-key
        # report must not crash on an unorderable sort.
        with pytest.raises(ConfigError, match="unknown keys"):
            ParaproxConfig.from_dict({1: "x", "zzz": 2, ("a",): 3})


_GARBAGE_VALUES = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-10, 10),
        st.floats(allow_nan=True, allow_infinity=True),
        st.text(max_size=8),
    ),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=4), children, max_size=3),
    max_leaves=8,
)
_GARBAGE_DICTS = st.dictionaries(
    st.one_of(st.text(max_size=8), st.integers(-5, 5)),
    _GARBAGE_VALUES,
    max_size=6,
)


@lru_cache(maxsize=1)
def _tuning_template() -> str:
    result = Paraprox(target_quality=0.9).optimize(
        GaussianFilterApp(scale=0.05), DeviceKind.GPU
    )
    return json.dumps(result.to_dict())


def _tuning_dict() -> dict:
    return json.loads(_tuning_template())


class TestFromDictFuzz:
    @given(_GARBAGE_DICTS)
    @settings(max_examples=150, deadline=None)
    def test_tuning_garbage_raises_only_serialization_errors(self, data):
        try:
            TuningResult.from_dict(data)
        except SerializationError:
            pass  # the contract: this type and nothing else

    @given(_GARBAGE_DICTS)
    @settings(max_examples=150, deadline=None)
    def test_config_garbage_raises_only_config_errors(self, data):
        try:
            ParaproxConfig.from_dict(data)
        except ConfigError:
            pass

    @given(
        st.sampled_from(["app", "device", "toq", "chosen", "profiles", "resumed"]),
        _GARBAGE_VALUES,
    )
    @settings(max_examples=100, deadline=None)
    def test_mutated_real_snapshot_loads_or_fails_cleanly(self, key, value):
        data = _tuning_dict()
        data[key] = value
        try:
            clone = TuningResult.from_dict(data)
        except SerializationError:
            return
        # If it loaded, the loaded object must round-trip stably.
        assert TuningResult.from_dict(clone.to_dict()).to_dict() == clone.to_dict()

    @given(st.integers(0, 3), st.sampled_from(["name", "quality", "cycles", "speedup", "knobs"]), _GARBAGE_VALUES)
    @settings(max_examples=100, deadline=None)
    def test_mutated_profile_rows_load_or_fail_cleanly(self, row, key, value):
        data = _tuning_dict()
        rows = data["profiles"]
        rows[row % len(rows)][key] = value
        try:
            TuningResult.from_dict(data)
        except SerializationError:
            pass
