"""Tests for the greedy TOQ tuner."""

import pytest

from repro.apps.blackscholes import BlackScholesApp
from repro.apps.gaussian import MeanFilterApp
from repro.approx.compiler import Paraprox
from repro.device import DeviceKind, spec_for
from repro.errors import TuningError
from repro.runtime.tuner import GreedyTuner, VariantProfile


def _profiles(specs):
    """Fabricate profiles: (name, quality, speedup)."""
    out = []
    for name, quality, speedup in specs:
        p = VariantProfile(
            variant=None if name == "exact" else object(),
            quality=quality,
            cycles=1.0 / speedup,
            speedup=speedup,
        )
        if name != "exact":
            p.variant = type("V", (), {"name": name})()
        out.append(p)
    return out


class TestChoicePolicy:
    def setup_method(self):
        self.tuner = GreedyTuner(spec_for(DeviceKind.GPU), toq=0.90)

    def test_fastest_eligible_wins(self):
        profiles = _profiles(
            [("exact", 1.0, 1.0), ("a", 0.95, 2.0), ("b", 0.91, 3.0), ("c", 0.80, 9.0)]
        )
        chosen = self.tuner.choose(profiles)
        assert chosen.name == "b"

    def test_falls_back_to_exact_when_nothing_qualifies(self):
        profiles = _profiles([("exact", 1.0, 1.0), ("a", 0.5, 10.0)])
        assert self.tuner.choose(profiles).name == "exact"

    def test_speedup_tie_broken_by_quality(self):
        profiles = _profiles(
            [("exact", 1.0, 1.0), ("worse", 0.91, 3.0), ("better", 0.97, 3.0)]
        )
        assert self.tuner.choose(profiles).name == "better"

    def test_full_tie_broken_by_name(self):
        profiles = _profiles(
            [("exact", 1.0, 1.0), ("zeta", 0.95, 3.0), ("alpha", 0.95, 3.0)]
        )
        assert self.tuner.choose(profiles).name == "alpha"

    def test_choice_is_order_independent(self):
        import itertools

        specs = [
            ("exact", 1.0, 1.0),
            ("zeta", 0.95, 3.0),
            ("alpha", 0.95, 3.0),
            ("mid", 0.99, 2.0),
        ]
        names = {
            self.tuner.choose(_profiles(list(perm))).name
            for perm in itertools.permutations(specs)
        }
        assert names == {"alpha"}

    def test_bad_toq_rejected(self):
        with pytest.raises(TuningError):
            GreedyTuner(spec_for(DeviceKind.GPU), toq=0.0)
        with pytest.raises(TuningError):
            GreedyTuner(spec_for(DeviceKind.GPU), toq=1.5)


class TestProfilingIntegration:
    def test_profile_includes_exact_baseline(self):
        app = MeanFilterApp(scale=0.05)
        paraprox = Paraprox(target_quality=0.90)
        variants = paraprox.compile(app)
        tuner = GreedyTuner(spec_for(DeviceKind.GPU), toq=0.90)
        result = tuner.profile(app, variants, app.generate_inputs(0))
        names = [p.name for p in result.profiles]
        assert "exact" in names
        exact_profile = next(p for p in result.profiles if p.name == "exact")
        assert exact_profile.speedup == 1.0 and exact_profile.quality == 1.0

    def test_chosen_meets_toq(self):
        app = MeanFilterApp(scale=0.05)
        paraprox = Paraprox(target_quality=0.95)
        result = paraprox.optimize(app, DeviceKind.GPU)
        assert result.quality >= 0.95

    def test_stricter_toq_never_faster(self):
        app = BlackScholesApp(scale=0.01)
        lax = Paraprox(target_quality=0.90).optimize(app, DeviceKind.GPU)
        strict = Paraprox(target_quality=0.995).optimize(app, DeviceKind.GPU)
        assert strict.speedup <= lax.speedup + 1e-9
        assert strict.quality >= 0.995

    def test_frontier_sorted_by_quality(self):
        app = MeanFilterApp(scale=0.05)
        result = Paraprox(target_quality=0.5).optimize(app, DeviceKind.GPU)
        qualities = [p.quality for p in result.frontier()]
        assert qualities == sorted(qualities, reverse=True)

    def test_summary_and_json_round_trip(self):
        import json

        app = MeanFilterApp(scale=0.05)
        result = Paraprox(target_quality=0.90).optimize(app, DeviceKind.GPU)
        summary = result.summary()
        assert summary["app"] == "Mean Filter"
        assert summary["chosen"]["name"] == result.chosen.name
        assert any(p["name"] == "exact" for p in summary["profiles"])
        # JSON-serialisable end to end (knobs contain tuples, enums...)
        restored = json.loads(result.to_json())
        assert restored["toq"] == 0.90

    def test_repeats_average_multiple_input_sets(self):
        app = MeanFilterApp(scale=0.05)
        paraprox = Paraprox(target_quality=0.90)
        variants = paraprox.compile(app)
        tuner = GreedyTuner(spec_for(DeviceKind.GPU), toq=0.90)
        result = tuner.profile(app, variants, app.generate_inputs(0), repeats=3)
        assert result.chosen.quality > 0.0
