"""The unified launch-options surface: precedence, merging, shims.

One ambient stack (:func:`repro.options`) replaced the backend, parallel
and guard stacks plus the ``launch(backend=..., parallel=...)`` keywords;
these tests pin the precedence chain and prove every legacy spelling
still works while warning.
"""

import threading

import numpy as np
import pytest

import kernel_zoo as zoo
import repro
from repro import LaunchOptions
from repro._options import UNSET, current_options
from repro.engine import Grid, default_backend, launch, use_backend
from repro.engine.trace import Trace
from repro.errors import ConfigError
from repro.parallel import ParallelPolicy, default_policy, use_parallel
from repro.resilience import GuardPolicy, use_guard
from repro.resilience.guard import current_policy


def _square_args(n=64, seed=0):
    rng = np.random.default_rng(seed)
    return [
        np.zeros(n, dtype=np.float32),
        rng.random(n, dtype=np.float32),
        np.int32(n),
    ]


class TestLaunchOptions:
    def test_defaults_are_all_unset(self):
        opts = LaunchOptions()
        assert opts.backend is None
        assert opts.parallel is None
        assert opts.min_shard_threads is None
        assert opts.executor is None
        assert opts.guard is UNSET

    def test_validates_backend_and_executor(self):
        with pytest.raises(ConfigError):
            LaunchOptions(backend="bogus")
        with pytest.raises(ConfigError):
            LaunchOptions(executor="bogus")
        with pytest.raises(ConfigError):
            LaunchOptions(min_shard_threads=0)
        with pytest.raises(ConfigError):
            LaunchOptions(parallel="many")

    def test_merged_over_overrides_only_set_fields(self):
        base = LaunchOptions(backend="codegen", parallel=4)
        over = LaunchOptions(parallel=2, executor="process")
        merged = over.merged_over(base)
        assert merged.backend == "codegen"  # inherited
        assert merged.parallel == 2  # overridden
        assert merged.executor == "process"  # added

    def test_guard_none_is_an_explicit_value(self):
        """guard=None means 'explicitly unguarded', distinct from UNSET."""
        base = LaunchOptions(guard=GuardPolicy())
        cleared = LaunchOptions(guard=None).merged_over(base)
        assert cleared.guard is None
        untouched = LaunchOptions().merged_over(base)
        assert untouched.guard is not None and untouched.guard is not UNSET

    def test_describe_reports_set_fields_only(self):
        desc = LaunchOptions(backend="interp", guard=None).describe()
        assert desc == {"backend": "interp", "guard": "off"}


class TestScope:
    def test_scope_sets_and_restores(self):
        assert current_options().backend is None
        with repro.options(backend="codegen"):
            assert current_options().backend == "codegen"
        assert current_options().backend is None

    def test_nested_scopes_merge_field_by_field(self):
        with repro.options(backend="codegen", parallel=4):
            with repro.options(parallel=2):
                opts = current_options()
                assert opts.backend == "codegen"
                assert opts.parallel == 2
            assert current_options().parallel == 4

    def test_scope_accepts_a_ready_record(self):
        record = LaunchOptions(backend="interp")
        with repro.options(record) as merged:
            assert merged.backend == "interp"

    def test_record_and_kwargs_together_rejected(self):
        with pytest.raises(ConfigError):
            repro.options(LaunchOptions(), backend="interp")

    def test_scope_is_thread_local(self):
        seen = {}

        def probe():
            seen["backend"] = current_options().backend

        with repro.options(backend="codegen"):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["backend"] is None, "worker threads start from defaults"

    def test_per_call_options_beat_the_scope(self):
        args = _square_args()
        with repro.options(backend="codegen"):
            trace = launch(
                zoo.square_map,
                Grid.for_elements(64),
                args,
                options=LaunchOptions(backend="interp"),
            )
        # Only the interpreter records per-op events.
        assert isinstance(trace, Trace) and trace.op_counts


class TestPrecedenceChain:
    def test_scope_beats_session_default_which_beats_config(self):
        from repro import ParaproxConfig
        from repro.apps.gaussian import GaussianFilterApp
        from repro.serve import ApproxSession

        app = GaussianFilterApp(scale=0.05)
        config = ParaproxConfig(backend="interp", parallel_workers=1)
        session = ApproxSession(
            app,
            target_quality=0.9,
            config=config,
            options=LaunchOptions(backend="codegen"),
        )
        # session default overrides the config knob
        assert session.options.backend == "codegen"
        assert session.backend == "codegen"
        # explicit ctor field overrides the options record
        session2 = ApproxSession(
            app,
            target_quality=0.9,
            config=config,
            backend="auto",
            options=LaunchOptions(backend="codegen", parallel=2),
        )
        assert session2.options.backend == "auto"
        assert session2.parallel_workers == 2

    def test_config_executor_knob_flows_into_session_defaults(self):
        from repro import ParaproxConfig
        from repro.apps.gaussian import GaussianFilterApp
        from repro.serve import ApproxSession

        config = ParaproxConfig(executor="process")
        session = ApproxSession(
            GaussianFilterApp(scale=0.05), target_quality=0.9, config=config
        )
        assert session.options.executor == "process"
        with pytest.raises(ConfigError):
            ParaproxConfig(executor="bogus")

    def test_config_executor_round_trips(self):
        from repro import ParaproxConfig

        config = ParaproxConfig(executor="process")
        assert ParaproxConfig.from_dict(config.to_dict()).executor == "process"


class TestDeprecatedShims:
    def test_use_backend_warns_and_still_scopes(self):
        with pytest.warns(DeprecationWarning, match="use_backend"):
            with use_backend("codegen") as name:
                assert name == "codegen"
                assert default_backend() == "codegen"
        assert default_backend() == "interp"

    def test_use_parallel_warns_and_still_scopes(self):
        with pytest.warns(DeprecationWarning, match="use_parallel"):
            with use_parallel(3) as policy:
                assert policy.workers == 3
                assert default_policy().workers == 3
        assert default_policy().serial

    def test_use_parallel_replaces_wholesale(self):
        """The old stack replaced the whole policy, not field-by-field."""
        inner = ParallelPolicy(workers=2)
        with pytest.warns(DeprecationWarning):
            with repro.options(min_shard_threads=7), use_parallel(inner):
                assert default_policy().min_shard_threads == inner.min_shard_threads

    def test_use_guard_warns_and_still_scopes(self):
        policy = GuardPolicy(retries=1)
        with pytest.warns(DeprecationWarning, match="use_guard"):
            with use_guard(policy):
                assert current_policy() is policy
        assert current_policy() is None

    def test_launch_keywords_warn_and_forward(self):
        args = _square_args()
        with pytest.warns(DeprecationWarning, match="backend"):
            trace = launch(
                zoo.square_map, Grid.for_elements(64), args, backend="interp"
            )
        assert trace.op_counts

    def test_launch_keywords_stay_most_explicit(self):
        """The deprecated keywords keep their old top precedence — they
        override even an options= record, so migrating call sites one
        argument at a time never changes behaviour."""
        args = _square_args()
        with pytest.warns(DeprecationWarning):
            trace = launch(
                zoo.square_map,
                Grid.for_elements(64),
                args,
                backend="interp",
                options=LaunchOptions(backend="codegen"),
            )
        assert trace.op_counts  # interpreter (the keyword) ran, not codegen

    def test_strict_filter_surfaces_misuse(self, recwarn):
        """-W error::DeprecationWarning style checks can catch old API."""
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with pytest.raises(DeprecationWarning):
                use_backend("interp")


class TestLaunchEquivalence:
    def test_all_spellings_produce_identical_output(self):
        grid = Grid.for_elements(256)
        outs = []
        for style in ("kwargs", "scope", "options"):
            args = _square_args(n=256, seed=3)
            if style == "kwargs":
                with pytest.warns(DeprecationWarning):
                    launch(zoo.square_map, grid, args, backend="codegen")
            elif style == "scope":
                with repro.options(backend="codegen"):
                    launch(zoo.square_map, grid, args)
            else:
                launch(
                    zoo.square_map,
                    grid,
                    args,
                    options=LaunchOptions(backend="codegen"),
                )
            outs.append(args[1].copy())
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[0], outs[2])
