"""Tests for the app registry, synthetic images, and case-study functions."""

import numpy as np
import pytest
from scipy import special

from repro.apps import APP_CLASSES, all_apps, make_app
from repro.apps.images import (
    adjacent_percent_differences,
    difference_histogram,
    synthetic_image,
)
from repro.apps.mapfuncs import BassApp, CreditApp, GompertzApp, LgammaApp
from repro.engine import call_device_function


class TestRegistry:
    def test_thirteen_apps(self):
        assert len(APP_CLASSES) == 13

    def test_make_app_by_name(self):
        app = make_app("blackscholes")
        assert app.info.name == "BlackScholes"

    def test_make_app_scale_override(self):
        app = make_app("gaussian", scale=0.3)
        assert app.scale == 0.3

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown app"):
            make_app("bitcoin_miner")

    def test_all_apps_order_and_metrics(self):
        apps = all_apps()
        assert [a.info.name for a in apps][:3] == [
            "BlackScholes",
            "Quasirandom Generator",
            "Gamma Correction",
        ]
        for a in apps:
            assert a.info.error_metric in (
                "L1-norm",
                "L2-norm",
                "Mean relative error",
            )

    def test_inputs_reproducible_by_seed(self):
        a1 = make_app("gaussian").generate_inputs(5)
        a2 = make_app("gaussian").generate_inputs(5)
        np.testing.assert_array_equal(a1["img"], a2["img"])


class TestSyntheticImages:
    def test_range_and_dtype(self):
        img = synthetic_image(64, 48, seed=0)
        assert img.shape == (48, 64)
        assert img.dtype == np.float32
        assert img.min() > 0.0 and img.max() <= 1.0

    def test_smooth_images_have_local_similarity(self):
        # The Fig-5 property is a population statistic: aggregate over a
        # handful of images (single seeds vary with their random shading).
        diffs = np.concatenate(
            [
                adjacent_percent_differences(
                    synthetic_image(128, 128, seed=s, smoothness=1.0)
                )
                for s in range(6)
            ]
        )
        assert (diffs < 10).mean() > 0.65

    def test_noise_images_do_not(self):
        img = synthetic_image(128, 128, seed=1, smoothness=0.0)
        diffs = adjacent_percent_differences(img)
        assert (diffs < 10).mean() < 0.1

    def test_histogram_sums_to_100(self):
        pct, edges = difference_histogram([synthetic_image(64, 64)])
        assert pct.sum() == pytest.approx(100.0)
        assert len(pct) == len(edges) - 1

    def test_seed_changes_image(self):
        a = synthetic_image(32, 32, seed=0)
        b = synthetic_image(32, 32, seed=1)
        assert not np.array_equal(a, b)


class TestCaseStudyFunctions:
    def test_lgamma_against_scipy(self):
        app = LgammaApp(n=256)
        inputs = app.generate_inputs(0)
        out, _t = app.run_exact(inputs)
        ref = special.gammaln(inputs["x"].astype(np.float64))
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-4)

    def test_gompertz_is_a_cdf(self):
        app = GompertzApp(n=512)
        x = np.linspace(0, 10, 512).astype(np.float32)
        out, _t = app.run_exact({"x": x})
        assert out[0] == pytest.approx(0.0, abs=1e-5)
        assert 0.9 < out[-1] <= 1.0
        assert np.all(np.diff(out) >= -1e-6)  # monotone

    def test_credit_months_increase_with_rate(self):
        app = CreditApp(n=256)
        x = np.linspace(5e-5, 6e-4, 256).astype(np.float32)
        out, _t = app.run_exact({"x": x})
        assert np.all(out > 0)
        assert out[-1] > out[0]

    def test_bass_is_a_unimodal_adoption_curve(self):
        app = BassApp(n=512)
        x = np.linspace(0, 20, 512).astype(np.float32)
        out, _t = app.run_exact({"x": x})
        peak = int(np.argmax(out))
        assert 0 < peak < 511
        assert np.all(out >= 0)

    def test_all_four_detected_as_pure(self):
        from repro.analysis.purity import is_pure

        for app_cls in (CreditApp, GompertzApp, LgammaApp, BassApp):
            app = app_cls()
            fn = app.kernel.module.device_functions()[0]
            assert is_pure(fn, app.kernel.module)
