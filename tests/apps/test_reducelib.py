"""Tests for the three-phase tree reduction substrate (§3.3.2)."""

import numpy as np
import pytest

from repro.apps.reducelib import ReduceProgram, reference_sum
from repro.errors import ExecutionError


class TestExactPipeline:
    def test_sum_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.random(100_000).astype(np.float32)
        got = ReduceProgram(chunk=64).run(x)
        assert got == pytest.approx(reference_sum(x), rel=1e-4)

    def test_non_multiple_sizes(self):
        for n in (1, 7, 255, 257, 16385):
            x = np.ones(n, dtype=np.float32)
            assert ReduceProgram(chunk=16).run(x) == pytest.approx(n, rel=1e-5)

    def test_three_launches_traced(self):
        prog = ReduceProgram(chunk=32)
        prog.run(np.ones(10_000, dtype=np.float32))
        assert prog.trace.launches == 3

    def test_wrong_dtype_rejected(self):
        with pytest.raises(ExecutionError, match="float32"):
            ReduceProgram().run(np.ones(16, dtype=np.float64))

    def test_bad_chunk_rejected(self):
        with pytest.raises(ExecutionError):
            ReduceProgram(chunk=0)


class TestPerPhaseVariants:
    @pytest.fixture(scope="class")
    def setup(self):
        prog = ReduceProgram(chunk=64)
        return prog, prog.variants(skipping_rates=(2, 4))

    def test_phases_one_and_three_perforable(self, setup):
        _prog, variants = setup
        phases = {v.phase for v in variants}
        # Phase II is a shared-memory *tree* (stores, not a scalar
        # accumulation), so only the scalar-loop phases perforate — the
        # runtime still gets approximate kernels "for each loop" that is
        # a reduction loop.
        assert phases == {1, 3}
        assert len(variants) == 4  # 2 phases x 2 rates

    def test_phase1_variant_samples_the_data(self, setup):
        prog, variants = setup
        rng = np.random.default_rng(1)
        x = rng.random(200_000).astype(np.float32)
        exact = reference_sum(x)
        v = next(v for v in variants if v.phase == 1 and v.skipping_rate == 2)
        got = prog.run_variant(x, v)
        assert got == pytest.approx(exact, rel=0.02)  # adjusted estimate

    def test_phase3_variant_samples_block_sums(self, setup):
        prog, variants = setup
        rng = np.random.default_rng(2)
        x = rng.random(200_000).astype(np.float32)
        exact = reference_sum(x)
        v = next(v for v in variants if v.phase == 3 and v.skipping_rate == 2)
        got = prog.run_variant(x, v)
        assert got == pytest.approx(exact, rel=0.05)

    def test_phase1_cheaper_than_phase3_perforation(self, setup):
        """Phase I dominates the work, so perforating it saves far more —
        the information the paper's runtime uses to pick a phase."""
        prog, variants = setup
        from repro.device import CostModel, GTX560

        cm = CostModel(GTX560)
        x = np.random.default_rng(3).random(100_000).astype(np.float32)

        def cycles_for(v):
            p = ReduceProgram(chunk=64)
            p.run_variant(x, v)
            return cm.cycles(p.trace)

        exact_prog = ReduceProgram(chunk=64)
        exact_prog.run(x)
        exact_cycles = cm.cycles(exact_prog.trace)
        v1 = next(v for v in variants if v.phase == 1 and v.skipping_rate == 4)
        v3 = next(v for v in variants if v.phase == 3 and v.skipping_rate == 4)
        assert cycles_for(v1) < 0.5 * exact_cycles
        assert cycles_for(v3) > 0.9 * exact_cycles  # phase 3 is tiny

    def test_variant_quality_degrades_with_rate(self, setup):
        prog, variants = setup
        rng = np.random.default_rng(4)
        x = rng.random(100_000).astype(np.float32)
        exact = reference_sum(x)
        errs = []
        for rate in (2, 4):
            v = next(
                v for v in variants if v.phase == 1 and v.skipping_rate == rate
            )
            errs.append(abs(prog.run_variant(x, v) - exact) / exact)
        assert errs[1] >= errs[0] * 0.5  # noisier, modulo sampling luck
