"""Paper-size spot checks (Table-1 input sizes).

Gated behind ``REPRO_PAPER_SCALE=1`` because a full-size run takes minutes;
the default suite exercises the same code paths at reduced scales.
"""

import os

import numpy as np
import pytest

paper_scale = pytest.mark.skipif(
    os.environ.get("REPRO_PAPER_SCALE") != "1",
    reason="set REPRO_PAPER_SCALE=1 to run Table-1-size inputs",
)


@paper_scale
def test_blackscholes_at_4m_elements():
    from repro import DeviceKind, Paraprox
    from repro.apps.blackscholes import BlackScholesApp

    app = BlackScholesApp(scale=1.0)
    assert app.n == 4_000_000
    result = Paraprox(target_quality=0.90).optimize(app, DeviceKind.GPU)
    assert result.quality >= 0.90
    assert result.speedup > 1.5


@paper_scale
def test_gaussian_filter_at_512x512():
    from repro import DeviceKind, Paraprox
    from repro.apps.gaussian import GaussianFilterApp

    app = GaussianFilterApp(scale=1.0)
    assert app.side == 512
    result = Paraprox(target_quality=0.90).optimize(app, DeviceKind.GPU)
    assert result.quality >= 0.90
    assert result.speedup > 1.2


@paper_scale
def test_cumulative_histogram_at_1m_elements():
    from repro import DeviceKind, Paraprox
    from repro.apps.cumhist import CumulativeHistogramApp

    app = CumulativeHistogramApp(scale=1.0)
    result = Paraprox(target_quality=0.90).optimize(app, DeviceKind.GPU)
    assert result.quality >= 0.90
    assert result.speedup > 1.3
