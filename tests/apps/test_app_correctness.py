"""Exactness tests: every benchmark's kernel output must match its NumPy
reference implementation (the approximations are then judged against these
verified-exact baselines)."""

import numpy as np
import pytest

from repro.apps import blackscholes, boxmuller, convsep, cumhist, denoise
from repro.apps import gamma, gaussian, hotspot, kde, matmul, naivebayes, quasirandom
from repro.apps.scanlib import reference_scan


class TestBlackScholes:
    def test_matches_scipy_reference(self):
        app = blackscholes.BlackScholesApp(scale=0.005)
        inputs = app.generate_inputs(1)
        out, _t = app.run_exact(inputs)
        calls = out[: app.n]
        ref = blackscholes.reference(
            inputs["price"], inputs["strike"], inputs["years"],
            blackscholes.RISKFREE, blackscholes.VOLATILITY,
        )
        np.testing.assert_allclose(calls, ref, rtol=5e-3, atol=5e-3)

    def test_put_call_parity(self):
        app = blackscholes.BlackScholesApp(scale=0.005)
        inputs = app.generate_inputs(2)
        out, _t = app.run_exact(inputs)
        calls, puts = out[: app.n], out[app.n :]
        parity = (
            calls
            - inputs["price"]
            + inputs["strike"]
            * np.exp(-blackscholes.RISKFREE * inputs["years"])
        )
        np.testing.assert_allclose(puts, parity, rtol=1e-4, atol=1e-4)


class TestQuasirandom:
    def test_matches_norm_ppf(self):
        app = quasirandom.QuasirandomApp(scale=0.002)
        inputs = app.generate_inputs(1)
        out, _t = app.run_exact(inputs)
        ref = quasirandom.reference(inputs["offset"], app.n)
        np.testing.assert_allclose(out, ref, atol=5e-3)

    def test_output_is_standard_normal_ish(self):
        app = quasirandom.QuasirandomApp(scale=0.05)
        out, _t = app.run_exact(app.generate_inputs(2))
        assert abs(float(out.mean())) < 0.05
        assert abs(float(out.std()) - 1.0) < 0.05


class TestGamma:
    def test_matches_reference(self):
        app = gamma.GammaCorrectionApp(scale=0.005)
        inputs = app.generate_inputs(1)
        out, _t = app.run_exact(inputs)
        ref = gamma.reference(inputs["img"], app.gamma)
        np.testing.assert_allclose(out, ref, atol=1e-5)

    def test_output_in_unit_range(self):
        app = gamma.GammaCorrectionApp(scale=0.005)
        out, _t = app.run_exact(app.generate_inputs(3))
        assert out.min() >= 0.0 and out.max() <= 1.0


class TestBoxMuller:
    def test_matches_reference(self):
        app = boxmuller.BoxMullerApp(scale=0.001)
        inputs = app.generate_inputs(1)
        out, _t = app.run_exact(inputs)
        ref = boxmuller.reference(inputs["u"], inputs["perm"])
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-3)

    def test_payoff_nonnegative(self):
        app = boxmuller.BoxMullerApp(scale=0.001)
        out, _t = app.run_exact(app.generate_inputs(2))
        assert out.min() >= 0.0


class TestHotSpot:
    def test_matches_reference(self):
        app = hotspot.HotSpotApp(scale=0.01)
        inputs = app.generate_inputs(1)
        out, _t = app.run_exact(inputs)
        ref = hotspot.reference(inputs["temp"], inputs["power"])
        np.testing.assert_allclose(out, ref, rtol=1e-5)


class TestConvSep:
    def test_matches_reference(self):
        app = convsep.ConvolutionSeparableApp(scale=0.005)
        inputs = app.generate_inputs(1)
        out, _t = app.run_exact(inputs)
        ref = convsep.reference(inputs["img"], app.taps)
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_taps_normalised(self):
        assert convsep.gaussian_taps().sum() == pytest.approx(1.0, abs=1e-6)


class TestFilters:
    def test_gaussian_matches_reference(self):
        app = gaussian.GaussianFilterApp(scale=0.02)
        inputs = app.generate_inputs(1)
        out, _t = app.run_exact(inputs)
        np.testing.assert_allclose(out, gaussian.reference(inputs["img"]), rtol=1e-5)

    def test_mean_matches_reference(self):
        app = gaussian.MeanFilterApp(scale=0.02)
        inputs = app.generate_inputs(1)
        out, _t = app.run_exact(inputs)
        np.testing.assert_allclose(
            out, gaussian.mean_reference(inputs["img"]), rtol=1e-5
        )

    def test_borders_passed_through(self):
        app = gaussian.MeanFilterApp(scale=0.02)
        inputs = app.generate_inputs(2)
        out, _t = app.run_exact(inputs)
        np.testing.assert_array_equal(out[0, :], inputs["img"][0, :])


class TestMatMul:
    def test_matches_numpy(self):
        app = matmul.MatrixMultiplyApp(scale=0.025)
        inputs = app.generate_inputs(1)
        out, _t = app.run_exact(inputs)
        ref = matmul.reference(inputs["a"], inputs["b"])
        np.testing.assert_allclose(out, ref, rtol=2e-5)


class TestDenoise:
    def test_matches_reference(self):
        app = denoise.ImageDenoisingApp(scale=0.001)
        inputs = app.generate_inputs(1)
        out, _t = app.run_exact(inputs)
        ref = denoise.reference(inputs["img"])
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_denoising_reduces_noise(self):
        app = denoise.ImageDenoisingApp(scale=0.002)
        inputs = app.generate_inputs(2)
        out, _t = app.run_exact(inputs)
        interior = slice(4, -4)
        assert out[interior, interior].std() < inputs["img"][interior, interior].std()


class TestNaiveBayes:
    def test_counts_match_reference(self):
        app = naivebayes.NaiveBayesApp(scale=0.02)
        inputs = app.generate_inputs(1)
        out, _t = app.run_exact(inputs)
        split = app.nfeat * naivebayes.VALUES * naivebayes.CLASSES
        counts, class_counts = naivebayes.reference(
            inputs["data"], inputs["labels"], app.nfeat
        )
        np.testing.assert_array_equal(out[:split], counts)
        np.testing.assert_array_equal(out[split:], class_counts)


class TestKDE:
    def test_matches_reference(self):
        app = kde.KernelDensityApp(scale=0.002, queries=64)
        inputs = app.generate_inputs(1)
        out, _t = app.run_exact(inputs)
        ref = kde.reference(
            inputs["queries"].reshape(-1, app.nfeat),
            inputs["refs"].reshape(-1, app.nfeat),
        )
        np.testing.assert_allclose(out, ref, rtol=1e-4)


class TestCumulativeHistogram:
    def test_matches_reference(self):
        app = cumhist.CumulativeHistogramApp(scale=0.01)
        inputs = app.generate_inputs(1)
        out, _t = app.run_exact(inputs)
        ref = cumhist.reference(inputs["values"], app.nbins)
        np.testing.assert_allclose(out, ref, rtol=1e-4)

    def test_in_kernel_histogram_matches_bincount(self):
        app = cumhist.CumulativeHistogramApp(scale=0.01)
        inputs = app.generate_inputs(2)
        hist = app.build_histogram(inputs)
        ref = np.bincount(inputs["values"], minlength=app.nbins)
        np.testing.assert_array_equal(hist.astype(np.int64), ref)

    def test_final_value_is_total_count(self):
        app = cumhist.CumulativeHistogramApp(scale=0.01)
        inputs = app.generate_inputs(3)
        out, _t = app.run_exact(inputs)
        assert float(out[-1]) == pytest.approx(app.n, rel=1e-5)
