"""Tests for the two-pass Convolution Separable app and its paired
stencil/reduction variants."""

import numpy as np
import pytest

from repro import DeviceKind, Paraprox, ParaproxConfig
from repro.apps.convsep import ConvolutionSeparableApp, ConvSepVariant
from repro.patterns.base import Pattern


@pytest.fixture(scope="module")
def app_and_variants():
    app = ConvolutionSeparableApp(scale=0.005)
    px = Paraprox(target_quality=0.90)
    return app, px.compile(app)


class TestVariantGeneration:
    def test_both_families_present(self, app_and_variants):
        _app, variants = app_and_variants
        kinds = {v.pattern for v in variants}
        assert kinds == {Pattern.STENCIL, Pattern.REDUCTION}

    def test_variants_pair_row_and_column_kernels(self, app_and_variants):
        _app, variants = app_and_variants
        for v in variants:
            assert isinstance(v, ConvSepVariant)
            assert v.row.kernel in v.row.module
            assert v.col.kernel in v.col.module
            assert v.row.kernel != v.col.kernel

    def test_matched_knobs_across_passes(self, app_and_variants):
        _app, variants = app_and_variants
        for v in variants:
            if v.pattern is Pattern.REDUCTION:
                assert (
                    v.row.knobs["skipping_rate"] == v.col.knobs["skipping_rate"]
                )
            else:
                # The passes have transposed tiles (1x17 vs 17x1), so the
                # *effective* knobs must match: same reaching distance and
                # the same number of loads kept per tile.
                assert (
                    v.row.knobs["reaching_distance"]
                    == v.col.knobs["reaching_distance"]
                )
                assert v.row.knobs["loads_kept"] == v.col.knobs["loads_kept"]

    def test_stencil_targets_image_not_taps(self, app_and_variants):
        _app, variants = app_and_variants
        stencil = [v for v in variants if v.pattern is Pattern.STENCIL]
        assert stencil
        for v in stencil:
            # the rewritten row kernel still reads all 17 taps exactly
            from repro.kernel.visitors import walk
            from repro.kernel import ir

            taps_loads = [
                n
                for n in walk(v.row.module[v.row.kernel])
                if isinstance(n, ir.Load) and n.array.name == "taps"
            ]
            assert len(taps_loads) == 17


class TestVariantExecution:
    def test_all_variants_run_and_rank_sanely(self, app_and_variants):
        app, variants = app_and_variants
        inputs = app.generate_inputs(11)
        exact, _t = app.run_exact(inputs)
        for v in variants:
            out, trace = app.run_variant(v, inputs)
            q = app.quality(out, exact)
            assert 0.0 <= q <= 1.0
            assert trace.launches == 2  # both passes traced

    def test_mild_knobs_keep_high_quality(self, app_and_variants):
        app, variants = app_and_variants
        inputs = app.generate_inputs(12)
        exact, _t = app.run_exact(inputs)
        mild = min(
            (v for v in variants if v.pattern is Pattern.REDUCTION),
            key=lambda v: v.knobs["skipping_rate"],
        )
        out, _t = app.run_variant(mild, inputs)
        assert app.quality(out, exact) > 0.95
