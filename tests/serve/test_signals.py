"""Graceful SIGTERM drain, exercised end-to-end in a subprocess.

The child installs the handlers, parks a slow request on the front-end,
prints READY, and waits to be killed.  The parent sends SIGTERM and
asserts the in-flight Future resolved (the drain let it finish) and the
process still died with the SIGTERM status its supervisor expects.
"""

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.serve import signals
from repro.serve.frontend import ServeFrontend

CHILD = textwrap.dedent(
    """
    import sys, time
    from repro.serve import ServeFrontend, install_signal_handlers

    install_signal_handlers(timeout=10.0)
    frontend = ServeFrontend(batch_window_s=0.001)

    def slow():
        time.sleep(0.5)
        return "finished"

    future = frontend._enqueue("default", ("slow",), slow)
    future.add_done_callback(
        lambda f: print("RESOLVED", f.result(), flush=True)
    )
    print("READY", flush=True)
    time.sleep(30)  # killed long before this returns
    print("NEVER", flush=True)
    """
)


class TestSigtermDrain:
    @pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
    def test_sigterm_drains_in_flight_requests_then_dies(self):
        src = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "..", "src")
        )
        existing = os.environ.get("PYTHONPATH")
        env = dict(
            os.environ,
            PYTHONPATH=src + (os.pathsep + existing if existing else ""),
        )
        child = subprocess.Popen(
            [sys.executable, "-c", CHILD],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            assert child.stdout.readline().strip() == "READY"
            child.send_signal(signal.SIGTERM)
            out, err = child.communicate(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.communicate()
        assert "RESOLVED finished" in out, (
            f"in-flight request lost on SIGTERM\nstdout: {out}\nstderr: {err}"
        )
        assert "NEVER" not in out, "process must still terminate"
        assert child.returncode == -signal.SIGTERM


class TestHandlerBookkeeping:
    def test_install_is_idempotent_and_uninstall_restores(self):
        previous = signal.getsignal(signal.SIGTERM)
        signals.install_signal_handlers()
        installed = signal.getsignal(signal.SIGTERM)
        assert installed is not previous
        signals.install_signal_handlers()  # second install keeps the first
        assert signal.getsignal(signal.SIGTERM) is installed
        signals.uninstall_signal_handlers()
        assert signal.getsignal(signal.SIGTERM) is previous

    def test_drain_closes_tracked_frontends(self):
        frontend = ServeFrontend(batch_window_s=0.001)
        assert frontend in signals.live_frontends()
        signals.drain(timeout=5.0)
        assert frontend._closed
        # Draining a process with only closed front-ends is a no-op.
        signals.drain(timeout=5.0)
