"""Brownout overload control: hysteresis, ladder selection, integration.

The controller is tested against a fake clock (no sleeps), the
degradation ladder against hand-built tuning profiles, and the front-end
integration against a fake session — the full real-session path is the
saturation drill (``python -m repro.serve.overload --drill``).
"""

import threading
import time
from types import SimpleNamespace

import pytest

from repro.apps.gaussian import GaussianFilterApp
from repro.errors import BackpressureError, ServeError
from repro.serve import (
    ApproxSession,
    OverloadConfig,
    OverloadController,
    PressureSample,
    ServeFrontend,
    degraded_variant,
)


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _controller(clock, **overrides):
    knobs = dict(
        levels=3, high_water=0.75, low_water=0.25, cooldown_s=1.0,
        queue_delay_target_s=0.05,
    )
    knobs.update(overrides)
    return OverloadController(OverloadConfig(**knobs), clock=clock)


HIGH = PressureSample(queue_delay_s=1.0)  # pressure 4.0 (capped)
LOW = PressureSample(queue_delay_s=0.0)
MID = PressureSample(queue_delay_s=0.025)  # pressure 0.5: in the band


class TestControllerHysteresis:
    def test_escalates_one_level_per_observation_up_to_shed(self):
        clock = FakeClock()
        controller = _controller(clock)
        levels = [controller.observe(HIGH) for _ in range(6)]
        assert levels == [1, 2, 3, 4, 4, 4], "one step per window, capped at SHED"
        assert controller.is_shedding
        assert controller.state_name() == "SHED"

    def test_band_pressure_holds_the_level(self):
        clock = FakeClock()
        controller = _controller(clock)
        controller.observe(HIGH)
        for _ in range(5):
            clock.advance(10.0)
            assert controller.observe(MID) == 1

    def test_recovery_needs_a_full_cooldown_per_rung(self):
        clock = FakeClock()
        controller = _controller(clock, cooldown_s=1.0)
        controller.observe(HIGH)
        controller.observe(HIGH)
        assert controller.level == 2
        assert controller.observe(LOW) == 2, "first low reading starts the timer"
        clock.advance(0.5)
        assert controller.observe(LOW) == 2, "cooldown not yet served"
        clock.advance(0.6)
        assert controller.observe(LOW) == 1, "one rung after a full cooldown"
        assert controller.observe(LOW) == 1, "each rung earns its own cooldown"
        clock.advance(1.1)
        assert controller.observe(LOW) == 0
        assert controller.state_name() == "NORMAL"

    def test_high_reading_voids_recovery_credit(self):
        clock = FakeClock()
        controller = _controller(clock, cooldown_s=1.0)
        controller.observe(HIGH)
        controller.observe(HIGH)
        controller.observe(LOW)
        clock.advance(0.9)
        controller.observe(HIGH)  # pressure returned: back up, credit gone
        assert controller.level == 3
        clock.advance(0.2)
        assert controller.observe(LOW) == 3, "old credit must not count"

    def test_band_reading_resets_the_cooldown_timer(self):
        clock = FakeClock()
        controller = _controller(clock, cooldown_s=1.0)
        controller.observe(HIGH)
        controller.observe(LOW)
        clock.advance(0.9)
        controller.observe(MID)  # wobbled back into the band
        clock.advance(0.9)
        assert controller.observe(LOW) == 1, "timer restarted at the wobble"
        clock.advance(1.1)
        assert controller.observe(LOW) == 0

    def test_transitions_are_monotone_and_recorded(self):
        clock = FakeClock()
        controller = _controller(clock, cooldown_s=0.5)
        for _ in range(5):
            controller.observe(HIGH)
        while controller.level > 0:
            clock.advance(0.6)
            controller.observe(LOW)
        transitions = controller.transitions
        assert len(transitions) == 8  # 4 up, 4 down
        assert all(abs(t.to_level - t.from_level) == 1 for t in transitions)
        assert [t.reason for t in transitions[:4]] == ["pressure"] * 4
        assert [t.reason for t in transitions[4:]] == ["recovery"] * 4

    def test_state_names(self):
        controller = _controller(FakeClock())
        assert controller.state_name(0) == "NORMAL"
        assert controller.state_name(1) == "BROWNOUT-1"
        assert controller.state_name(3) == "BROWNOUT-3"
        assert controller.state_name(4) == "SHED"

    def test_pressure_is_the_worst_signal_and_delay_is_capped(self):
        controller = _controller(FakeClock())
        assert controller.pressure_of(PressureSample(0.025, 0.0, 0.0)) == 0.5
        assert controller.pressure_of(PressureSample(0.0, 0.9, 0.1)) == 0.9
        assert controller.pressure_of(PressureSample(0.0, 0.0, 0.6)) == 0.6
        assert controller.pressure_of(PressureSample(99.0, 0.0, 0.0)) == 4.0

    def test_config_validation(self):
        with pytest.raises(ServeError):
            OverloadConfig(levels=0)
        with pytest.raises(ServeError):
            OverloadConfig(low_water=0.8, high_water=0.75)
        with pytest.raises(ServeError):
            OverloadConfig(queue_delay_target_s=0.0)


# ---------------------------------------------------------------- ladder


def _profile(name, quality, speedup, predicted=False):
    return SimpleNamespace(
        variant=SimpleNamespace(name=name),
        name=name,
        quality=quality,
        speedup=speedup,
        predicted=predicted,
    )


def _fake_session(profiles, toq=0.9, current="chosen", blocked=(),
                  registry=None, registry_key=None):
    blocked = set(blocked)
    return SimpleNamespace(
        toq=toq,
        tuning=SimpleNamespace(profiles=profiles),
        metrics=SimpleNamespace(launches=7),
        breaker=SimpleNamespace(blocked=lambda name, index: name in blocked),
        registry=registry,
        registry_key=registry_key,
        current_variant=current,
    )


LADDER = [
    _profile("chosen", 0.95, 1.5),
    _profile("mid", 0.70, 2.5),
    _profile("fast", 0.40, 4.0),
    _profile("reckless", 0.10, 8.0),
]


class TestDegradedVariant:
    def test_level_zero_and_untuned_keep_the_tuners_choice(self):
        assert degraded_variant(_fake_session(LADDER), 0, 3, 0.0) is None
        untuned = _fake_session(LADDER)
        untuned.tuning = None
        assert degraded_variant(untuned, 2, 3, 0.0) is None

    def test_bar_interpolates_from_toq_to_floor(self):
        session = _fake_session(LADDER)
        # floor 0.0, levels 3: bars are 0.6 / 0.3 / 0.0.
        assert degraded_variant(session, 1, 3, 0.0) == "mid"
        assert degraded_variant(session, 2, 3, 0.0) == "fast"
        assert degraded_variant(session, 3, 3, 0.0) == "reckless"
        # Levels past K stay at the floor bar.
        assert degraded_variant(session, 9, 3, 0.0) == "reckless"

    def test_tenant_floor_bounds_the_degradation(self):
        session = _fake_session(LADDER)
        # floor 0.65: even full brownout may not pick below it.
        assert degraded_variant(session, 3, 3, 0.65) == "mid"
        # A floor above every approximate rung keeps the tuner's choice.
        assert degraded_variant(session, 3, 3, 0.96) is None

    def test_quarantined_variants_are_skipped(self):
        session = _fake_session(LADDER, blocked={"fast"})
        assert degraded_variant(session, 2, 3, 0.0) == "mid"

    def test_predicted_profiles_are_not_served(self):
        ladder = LADDER[:2] + [_profile("surrogate", 0.5, 9.0, predicted=True)]
        session = _fake_session(ladder)
        assert degraded_variant(session, 3, 3, 0.0) == "mid"

    def test_no_override_when_pick_is_already_serving(self):
        session = _fake_session(LADDER, current="mid")
        assert degraded_variant(session, 1, 3, 0.0) is None

    def test_registry_knee_seeds_the_choice(self):
        registry = SimpleNamespace(
            knee_for=lambda key, toq: SimpleNamespace(variant="mid")
        )
        session = _fake_session(
            LADDER, registry=registry, registry_key="k1"
        )
        # The fastest candidate at bar 0.3 is "fast", but the registry
        # knee names "mid" and it is usable, so fleet knowledge wins.
        assert degraded_variant(session, 2, 3, 0.0) == "mid"

    def test_unusable_knee_falls_back_to_fastest(self):
        registry = SimpleNamespace(
            knee_for=lambda key, toq: SimpleNamespace(variant="unknown")
        )
        session = _fake_session(LADDER, registry=registry, registry_key="k1")
        assert degraded_variant(session, 2, 3, 0.0) == "fast"


# ----------------------------------------------------------- integration


class FakeSession:
    """Duck-typed ApproxSession: records the variant each launch served."""

    toq = 0.9
    key = "fake-session"

    def __init__(self):
        self.tuning = SimpleNamespace(profiles=LADDER)
        self.metrics = SimpleNamespace(launches=0)
        self.breaker = SimpleNamespace(blocked=lambda name, index: False)
        self.registry = None
        self.registry_key = None
        self.current_variant = "chosen"
        self.served = []

    def attach_registry(self, registry):
        pass

    def launch(self, inputs, variant=None):
        self.served.append(variant)
        return variant or "chosen"


def _force_level(controller, level):
    for _ in range(level):
        controller.observe(PressureSample(queue_delay_s=10.0))
    assert controller.level == level


class TestFrontendIntegration:
    def _frontend(self, **config):
        knobs = dict(cooldown_s=30.0, queue_delay_target_s=0.05)
        knobs.update(config)
        return ServeFrontend(
            batch_window_s=0.001, overload=OverloadConfig(**knobs)
        )

    def test_brownout_level_overrides_degradable_sessions(self):
        with self._frontend() as frontend:
            session = FakeSession()
            _force_level(frontend.overload, 2)
            out = frontend.submit_app(session, None).result(timeout=10)
            # Level 2, floor 0.0 -> bar 0.3 -> fastest clearing it.
            assert out == "fast"
            assert session.served == ["fast"]

    def test_non_degradable_tenant_keeps_the_sessions_choice(self):
        with self._frontend() as frontend:
            frontend.register_tenant("pinned", degradable=False, priority=1)
            session = FakeSession()
            _force_level(frontend.overload, 3)
            out = frontend.submit_app(session, None, tenant="pinned").result(
                timeout=10
            )
            assert out == "chosen"
            assert session.served == [None]

    def test_normal_level_never_overrides(self):
        with self._frontend() as frontend:
            session = FakeSession()
            out = frontend.submit_app(session, None).result(timeout=10)
            assert out == "chosen"
            assert session.served == [None]

    def test_shed_rejects_only_lowest_priority_tenants(self):
        with self._frontend() as frontend:
            frontend.register_tenant("paying", priority=1)
            session = FakeSession()
            _force_level(frontend.overload, frontend.overload.shed_level)
            with pytest.raises(BackpressureError, match="shed"):
                frontend.submit_app(session, None)  # default: priority 0
            out = frontend.submit_app(session, None, tenant="paying").result(
                timeout=10
            )
            assert out is not None
            rejects = frontend.metrics._rejects.labels(reason="shed").value
            assert rejects >= 1

    def test_controller_recovers_through_idle_ticks(self):
        with self._frontend(cooldown_s=0.05) as frontend:
            _force_level(frontend.overload, 1)
            deadline = time.monotonic() + 10
            while frontend.overload.level > 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert frontend.overload.level == 0, (
                "an idle front-end must still recover to NORMAL"
            )

    def test_deadline_misses_feed_the_pressure_signal(self):
        with self._frontend() as frontend:
            session = FakeSession()
            before = frontend.deadline_misses()
            gate = threading.Event()
            blocker = frontend._enqueue("default", ("gate",), lambda: gate.wait(5))
            future = frontend.submit_app(session, None, deadline_s=0.01)
            time.sleep(0.1)  # let the queued request overrun its deadline
            gate.set()
            future.result(timeout=10)
            blocker.result(timeout=10)
            assert frontend.deadline_misses() > before


# ----------------------------------------------------- session override


class TestSessionOverride:
    @pytest.fixture(scope="class")
    def session(self):
        with ApproxSession(
            GaussianFilterApp(scale=0.05), target_quality=0.9
        ) as session:
            session.tune()
            yield session

    def test_override_serves_the_requested_rung_untouched_tuner(self, session):
        recal = session._recalibrator
        rung_before = recal.rung
        chosen = session.current_variant
        ladder_names = [p.name for p in session.tuning.profiles
                        if p.variant is not None]
        other = next(n for n in ladder_names if n != chosen)
        out = session.launch(
            session.app.generate_inputs(seed=session.app.seed), variant=other
        )
        assert out is not None
        assert session.last_launch.variant == other
        assert recal.rung == rung_before, "override must not move the ladder"
        assert session.current_variant == chosen

    def test_exact_override(self, session):
        session.launch(
            session.app.generate_inputs(seed=session.app.seed), variant="exact"
        )
        assert session.last_launch.variant == "exact"

    def test_unresolvable_override_falls_back_to_normal_path(self, session):
        session.launch(
            session.app.generate_inputs(seed=session.app.seed),
            variant="no-such-variant",
        )
        assert session.last_launch.variant == session.current_variant

    def test_overridden_samples_skip_the_monitor(self, session):
        monitor = session.monitor
        estimate_before = monitor.estimate
        ladder_names = [p.name for p in session.tuning.profiles
                        if p.variant is not None]
        worst = ladder_names[-1]
        # Enough overridden launches to cross several sampling cadences.
        inputs = session.app.generate_inputs(seed=session.app.seed)
        for _ in range(session.monitor.config.sample_every * 2):
            session.launch(inputs, variant=worst)
        assert monitor.estimate == estimate_before, (
            "browned-out quality must not enter the drift window"
        )
