"""Variant-cache semantics: keys, hit/miss levels, and the warm-path speed."""

import time

import pytest

from repro import ApproxSession, DeviceKind, Paraprox, ParaproxConfig
from repro.apps.blackscholes import BlackScholesApp
from repro.apps.gaussian import GaussianFilterApp
from repro.device import spec_for
from repro.serve import CacheEntry, VariantCache, app_fingerprint, cache_key


GPU = spec_for(DeviceKind.GPU)


class TestCacheKey:
    def test_stable_across_app_instances(self):
        config = ParaproxConfig()
        k1 = cache_key(GaussianFilterApp(scale=0.05), config, GPU, 0.9)
        k2 = cache_key(GaussianFilterApp(scale=0.05), config, GPU, 0.9)
        assert k1 == k2

    def test_sensitive_to_kernel_config_device_and_toq(self):
        config = ParaproxConfig()
        base = cache_key(GaussianFilterApp(scale=0.05), config, GPU, 0.9)
        other_kernel = cache_key(BlackScholesApp(scale=0.01), config, GPU, 0.9)
        other_config = cache_key(
            GaussianFilterApp(scale=0.05),
            ParaproxConfig(reaching_distances=(1,)),
            GPU,
            0.9,
        )
        other_device = cache_key(
            GaussianFilterApp(scale=0.05), config, spec_for(DeviceKind.CPU), 0.9
        )
        other_toq = cache_key(GaussianFilterApp(scale=0.05), config, GPU, 0.8)
        assert len({base, other_kernel, other_config, other_device, other_toq}) == 5

    def test_multi_kernel_app_fingerprint(self):
        from repro.apps.cumhist import CumulativeHistogramApp

        fp1 = app_fingerprint(CumulativeHistogramApp(scale=0.02))
        fp2 = app_fingerprint(CumulativeHistogramApp(scale=0.02))
        fp3 = app_fingerprint(CumulativeHistogramApp(scale=0.04))
        assert fp1 == fp2
        assert fp1 != fp3


class TestVariantCache:
    def test_memory_only_hit(self):
        cache = VariantCache(cache_dir=None)
        vs = Paraprox().compile(GaussianFilterApp(scale=0.05))
        cache.put(CacheEntry(key="k", variants=vs))
        assert cache.tier("k") == "memory"
        assert cache.get("k").variants is vs
        assert cache.tier("missing") == "miss"
        assert cache.get("missing") is None

    def test_disk_round_trip(self, tmp_path):
        cache = VariantCache(cache_dir=tmp_path)
        vs = Paraprox().compile(GaussianFilterApp(scale=0.05))
        cache.put(CacheEntry(key="k", variants=vs, tuning={"x": 1}))

        fresh = VariantCache(cache_dir=tmp_path)
        assert fresh.tier("k") == "disk"
        entry = fresh.get("k")
        assert entry is not None
        assert entry.variants.names() == vs.names()
        assert entry.tuning == {"x": 1}
        # promoted to memory after the disk hit
        assert fresh.tier("k") == "memory"

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = VariantCache(cache_dir=tmp_path)
        (tmp_path / "bad.pkl").write_bytes(b"not a pickle")
        assert cache.get("bad") is None

    def test_invalidate_and_clear(self, tmp_path):
        cache = VariantCache(cache_dir=tmp_path)
        vs = Paraprox().compile(GaussianFilterApp(scale=0.05))
        cache.put(CacheEntry(key="k", variants=vs))
        cache.invalidate("k")
        assert cache.tier("k") == "miss"
        cache.put(CacheEntry(key="k2", variants=vs))
        cache.clear()
        assert cache.tier("k2") == "miss"
        assert len(list(tmp_path.glob("*.pkl"))) == 0


class TestSessionCompileCache:
    def test_repeat_compile_is_cache_hit_and_10x_faster(self, tmp_path):
        session = ApproxSession(
            GaussianFilterApp(scale=0.05),
            target_quality=0.9,
            cache_dir=tmp_path,
        )
        t0 = time.monotonic()
        cold = session.compile()
        t1 = time.monotonic()
        warm = session.compile()
        t2 = time.monotonic()
        cold_seconds = t1 - t0
        warm_seconds = t2 - t1
        assert warm is cold  # the same in-process object, not a rebuild
        snap = session.metrics_snapshot()
        assert snap["cache"]["compile_misses"] == 1
        assert snap["cache"]["compile_hits"] == 1
        # Monotonic-clock guard: both intervals must be sane before the
        # ratio means anything (perf_counter/monotonic never go backwards).
        assert cold_seconds > 0 and warm_seconds >= 0
        assert cold_seconds >= 1e-4, "cold compile implausibly fast"
        assert warm_seconds * 10 <= cold_seconds, (
            f"warm path {warm_seconds:.6f}s not 10x faster than "
            f"cold {cold_seconds:.6f}s"
        )

    def test_fresh_session_hits_disk_and_resumes_tuning(self, tmp_path):
        first = ApproxSession(
            GaussianFilterApp(scale=0.05), target_quality=0.9, cache_dir=tmp_path
        )
        first.compile()
        tuned = first.tune()

        second = ApproxSession(
            GaussianFilterApp(scale=0.05), target_quality=0.9, cache_dir=tmp_path
        )
        variants = second.compile()
        assert variants.names() == first.compile().names()
        # exact kernel is reattached after the disk round trip
        assert variants.exact is second.app.kernel
        resumed = second.tune()
        assert getattr(resumed, "resumed", False)
        assert resumed.chosen.name == tuned.chosen.name
        snap = second.metrics_snapshot()
        assert snap["cache"]["compile_hits"] == 1
        assert snap["cache"]["compile_misses"] == 0
        assert snap["cache"]["tune_hits"] == 1

    def test_force_recompile_bypasses_cache(self, tmp_path):
        session = ApproxSession(
            GaussianFilterApp(scale=0.05), target_quality=0.9, cache_dir=tmp_path
        )
        session.compile()
        session.compile(force=True)
        snap = session.metrics_snapshot()
        assert snap["cache"]["compile_misses"] == 2

    def test_config_change_changes_key(self, tmp_path):
        a = ApproxSession(
            GaussianFilterApp(scale=0.05), target_quality=0.9, cache_dir=tmp_path
        )
        b = ApproxSession(
            GaussianFilterApp(scale=0.05),
            target_quality=0.9,
            cache_dir=tmp_path,
            config=ParaproxConfig(reaching_distances=(1,)),
        )
        assert a.key != b.key
        a.compile()
        assert b.cache.tier(b.key) == "miss"
