"""Multi-tenant front-end: batching determinism, admission, backpressure.

The dispatcher is a real thread, so the deterministic tests park it on a
gated request first — everything enqueued behind the gate is then
batched and ordered with no timing dependence (``_take_batch`` selects
by key and global sequence number, never by arrival jitter).
"""

import threading
import time

import numpy as np
import pytest

import kernel_zoo as zoo
from repro import LaunchOptions
from repro.engine import Grid
from repro.errors import AdmissionError, BackpressureError, ServeError
from repro.parallel import shutdown_process_pool
from repro.serve import ServeFrontend, Tenant

N = 1 << 12


def _square_args(n=N, seed=0):
    rng = np.random.default_rng(seed)
    return [np.zeros(n, np.float32), rng.random(n, dtype=np.float32), n]


def _gated_frontend(**kwargs):
    """A frontend whose dispatcher is parked on a blocker request.

    Returns after the blocker's batch has been *counted*, so batch-count
    deltas measured by the caller cover only the caller's requests.
    """
    frontend = ServeFrontend(**kwargs)
    gate = threading.Event()
    counted = frontend.metrics.batches.value + 1
    blocker = frontend._enqueue("default", ("gate",), lambda: gate.wait(10))
    deadline = time.monotonic() + 5
    while (
        frontend.metrics.batches.value < counted
        and time.monotonic() < deadline
    ):
        time.sleep(0.001)  # dispatcher picks the blocker up
    assert frontend.metrics.batches.value >= counted, (
        "dispatcher never took the blocker"
    )
    return frontend, gate, blocker


class TestBatching:
    def test_compatible_requests_fuse_into_one_batch(self):
        frontend, gate, blocker = _gated_frontend(
            batch_window_s=0.001, max_batch=8
        )
        try:
            order = []
            batches_before = frontend.metrics.batches.value
            futures = [
                frontend._enqueue("default", ("k",), lambda i=i: order.append(i) or i)
                for i in range(4)
            ]
            gate.set()
            assert [f.result(timeout=10) for f in futures] == [0, 1, 2, 3]
            assert order == [0, 1, 2, 3], "batch preserves sequence order"
            # ONE fused batch for all four same-key requests.
            assert frontend.metrics.batches.value - batches_before == 1
        finally:
            gate.set()
            frontend.close()

    def test_interleaved_tenants_keep_fifo_order(self):
        frontend, gate, blocker = _gated_frontend(batch_window_s=0.001)
        try:
            frontend.register_tenant("alpha")
            frontend.register_tenant("beta")
            order = []
            futures = []
            for i, tenant in enumerate(["alpha", "beta"] * 3):
                tag = f"{tenant}:{i}"
                futures.append(
                    frontend._enqueue(
                        tenant, ("k",), lambda t=tag: order.append(t) or t
                    )
                )
            gate.set()
            for future in futures:
                future.result(timeout=10)
            assert order == [f"{t}:{i}" for i, t in
                             enumerate(["alpha", "beta"] * 3)]
        finally:
            gate.set()
            frontend.close()

    def test_mismatched_keys_stay_in_separate_batches(self):
        frontend, gate, blocker = _gated_frontend(batch_window_s=0.001)
        try:
            batches_before = frontend.metrics.batches.value
            futures = [
                frontend._enqueue("default", ("a",), lambda: "a1"),
                frontend._enqueue("default", ("b",), lambda: "b1"),
                frontend._enqueue("default", ("a",), lambda: "a2"),
            ]
            gate.set()
            assert [f.result(timeout=10) for f in futures] == ["a1", "b1", "a2"]
            # a-batch (anchored by head; a2 joins across the interleaved
            # b) + b-batch
            assert frontend.metrics.batches.value - batches_before == 2
        finally:
            gate.set()
            frontend.close()

    def test_max_batch_caps_fusion(self):
        frontend, gate, blocker = _gated_frontend(
            batch_window_s=0.001, max_batch=2
        )
        try:
            batched_before = frontend.metrics.batches.value
            futures = [
                frontend._enqueue("default", ("k",), lambda i=i: i)
                for i in range(4)
            ]
            gate.set()
            for future in futures:
                future.result(timeout=10)
            # four same-key requests under max_batch=2 -> two batches
            assert frontend.metrics.batches.value - batched_before == 2
        finally:
            gate.set()
            frontend.close()


class TestAdmission:
    def test_unknown_tenant_rejected(self):
        with ServeFrontend() as frontend:
            with pytest.raises(AdmissionError, match="unknown tenant"):
                frontend.submit(
                    zoo.square_map,
                    Grid.for_elements(64),
                    _square_args(64),
                    tenant="ghost",
                )

    def test_toq_floor_rejects_weak_session(self):
        class _Stub:
            key = "stub-session"
            toq = 0.85

        with ServeFrontend() as frontend:
            frontend.register_tenant("strict", toq_floor=0.95)
            with pytest.raises(AdmissionError, match="target quality"):
                frontend.submit_app(_Stub(), inputs=None, tenant="strict")

    def test_tenant_budget_backpressure(self):
        frontend, gate, blocker = _gated_frontend()
        try:
            frontend.register_tenant("small", max_queue_depth=1)
            frontend._enqueue("small", ("k",), lambda: 1)
            with pytest.raises(BackpressureError, match="small"):
                frontend._enqueue("small", ("k",), lambda: 2)
            # other tenants are unaffected by 'small' being at budget
            frontend._enqueue("default", ("k",), lambda: 3)
        finally:
            gate.set()
            frontend.close()

    def test_global_queue_backpressure(self):
        frontend, gate, blocker = _gated_frontend(max_queue_depth=2)
        try:
            frontend._enqueue("default", ("k",), lambda: 1)
            frontend._enqueue("default", ("k",), lambda: 2)
            with pytest.raises(BackpressureError, match="queue is full"):
                frontend._enqueue("default", ("k",), lambda: 3)
        finally:
            gate.set()
            frontend.close()

    def test_rejects_are_counted_by_reason(self):
        with ServeFrontend() as frontend:
            rejects = frontend.metrics._rejects.labels(reason="unknown_tenant")
            before = rejects.value
            with pytest.raises(AdmissionError):
                frontend.submit(
                    zoo.square_map,
                    Grid.for_elements(64),
                    _square_args(64),
                    tenant="ghost",
                )
            assert rejects.value == before + 1

    def test_tenant_validation(self):
        with pytest.raises(ServeError):
            Tenant("t", max_queue_depth=0)
        with pytest.raises(ServeError):
            Tenant("t", toq_floor=1.5)


class TestLifecycle:
    def test_closed_frontend_rejects_submissions(self):
        frontend = ServeFrontend()
        frontend.close()
        with pytest.raises(ServeError, match="closed"):
            frontend._enqueue("default", ("k",), lambda: 1)

    def test_close_drains_inflight_work(self):
        frontend = ServeFrontend()
        futures = [
            frontend._enqueue("default", ("k",), lambda i=i: i)
            for i in range(3)
        ]
        frontend.close()
        assert [f.result(timeout=1) for f in futures] == [0, 1, 2]
        assert frontend.outstanding() == 0

    def test_request_exception_lands_in_future(self):
        def boom():
            raise ValueError("kernel went sideways")

        with ServeFrontend() as frontend:
            future = frontend._enqueue("default", ("k",), boom)
            with pytest.raises(ValueError, match="sideways"):
                future.result(timeout=10)
            assert frontend.outstanding() == 0


class TestEndToEnd:
    def test_kernel_launch_is_bit_exact_under_process_executor(self):
        shutdown_process_pool()
        serial = _square_args(seed=3)
        from repro.engine import launch

        launch(
            zoo.square_map,
            Grid.for_elements(N),
            serial,
            options=LaunchOptions(backend="codegen"),
        )
        options = LaunchOptions(
            backend="codegen", parallel=2, executor="process",
            min_shard_threads=1,
        )
        try:
            with ServeFrontend(options=options) as frontend:
                args = _square_args(seed=3)
                trace = frontend.launch(
                    zoo.square_map, Grid.for_elements(N), args
                )
                assert trace is not None
                assert np.array_equal(args[0], serial[0])
        finally:
            shutdown_process_pool()

    def test_session_launches_fuse_and_serialize(self):
        from repro import ApproxSession
        from repro.apps.gaussian import GaussianFilterApp

        app = GaussianFilterApp(scale=0.05)
        session = ApproxSession(app, target_quality=0.9)
        with session, ServeFrontend() as frontend:
            first = frontend.submit_app(session, app.generate_inputs(seed=3))
            second = frontend.submit_app(session, app.generate_inputs(seed=4))
            assert first.result(timeout=60) is not None
            assert second.result(timeout=60) is not None
            assert session.metrics_snapshot()["launches"] == 2


class TestCloseDrain:
    def test_close_waits_for_a_slow_batch_then_drains_the_queue(self):
        """Regression: a queued request behind a slow in-flight batch must
        be dispatched during close(), not failed, while the timeout has
        not expired."""
        frontend = ServeFrontend(batch_window_s=0.001)
        release = threading.Event()

        def slow():
            release.wait(5)
            return "slow"

        slow_future = frontend._enqueue("default", ("slow",), slow)
        time.sleep(0.05)  # dispatcher picks the slow batch up
        queued = frontend._enqueue("default", ("queued",), lambda: "queued")
        closer = threading.Thread(target=frontend.close, kwargs={"timeout": 10})
        closer.start()
        time.sleep(0.05)
        release.set()
        closer.join(timeout=10)
        assert not closer.is_alive()
        assert slow_future.result(timeout=1) == "slow"
        assert queued.result(timeout=1) == "queued", (
            "close() must drain through dispatch, not fail pending futures"
        )
        assert frontend.outstanding() == 0

    def test_close_timeout_fails_only_undispatched_leftovers(self):
        frontend = ServeFrontend(batch_window_s=0.001)
        release = threading.Event()

        def hung():
            release.wait(30)
            return "eventually"

        hung_future = frontend._enqueue("default", ("hung",), hung)
        time.sleep(0.05)  # dispatcher is now stuck inside the batch
        leftover = frontend._enqueue("default", ("leftover",), lambda: 1)
        frontend.close(timeout=0.2)
        with pytest.raises(ServeError, match="closed before dispatch"):
            leftover.result(timeout=1)
        # Unblock the hung batch: its future must still resolve cleanly
        # (close never touches dispatched requests).
        release.set()
        assert hung_future.result(timeout=10) == "eventually"

    def test_close_from_dispatcher_thread_does_not_deadlock(self):
        frontend = ServeFrontend(batch_window_s=0.001)
        seen = []

        def closing_request():
            frontend.close(timeout=1)
            seen.append("ran")
            return "done"

        first = frontend._enqueue("default", ("k",), closing_request)
        second = frontend._enqueue("default", ("k2",), lambda: "after")
        assert first.result(timeout=10) == "done"
        # The dispatch loop itself drains what was already admitted.
        assert second.result(timeout=10) == "after"
        frontend.close()
        assert seen == ["ran"]


class TestConcurrency:
    TENANTS = 8

    def test_concurrent_submits_racing_close_all_resolve(self):
        """8 submitter threads race close(): every accepted Future must
        resolve (result or ServeError), nothing hangs, bookkeeping
        returns to zero."""
        frontend = ServeFrontend(batch_window_s=0.001, max_queue_depth=512)
        start = threading.Barrier(self.TENANTS + 1)
        futures = []
        futures_lock = threading.Lock()
        rejected = []

        def submitter(worker):
            start.wait(5)
            for i in range(40):
                try:
                    future = frontend._enqueue(
                        "default", ("k", worker), lambda i=i: i
                    )
                except ServeError:
                    rejected.append(worker)  # closed under us: fine
                    return
                with futures_lock:
                    futures.append(future)

        threads = [
            threading.Thread(target=submitter, args=(w,))
            for w in range(self.TENANTS)
        ]
        for thread in threads:
            thread.start()
        start.wait(5)
        time.sleep(0.01)  # let submissions interleave with dispatch
        frontend.close(timeout=10)
        for thread in threads:
            thread.join(timeout=10)
            assert not thread.is_alive()
        resolved = 0
        for future in futures:
            try:
                future.result(timeout=10)
                resolved += 1
            except ServeError:
                pass  # failed leftover: still resolved, never hung
        assert resolved > 0, "some requests must have been served"
        assert frontend.queue_depth() == 0
        assert frontend.outstanding() == 0

    def test_backpressure_and_admission_errors_under_contention(self):
        """8 threads hammer a tiny queue: every rejection is a typed
        error, every accepted request resolves, and the queue empties."""
        frontend, gate, blocker = _gated_frontend(
            batch_window_s=0.001, max_queue_depth=4
        )
        frontend.register_tenant("narrow", max_queue_depth=2)
        outcomes = {"served": 0, "backpressure": 0, "admission": 0}
        lock = threading.Lock()
        start = threading.Barrier(self.TENANTS)

        def worker(idx):
            start.wait(5)
            tenant = ["default", "narrow", "ghost"][idx % 3]
            for i in range(20):
                try:
                    future = frontend._enqueue(tenant, ("k",), lambda: 1)
                except BackpressureError:
                    with lock:
                        outcomes["backpressure"] += 1
                    time.sleep(0.001)
                    continue
                except AdmissionError:
                    with lock:
                        outcomes["admission"] += 1
                    continue
                gate.set()  # open the gate so the queue keeps draining
                future.result(timeout=10)
                with lock:
                    outcomes["served"] += 1

        threads = [
            threading.Thread(target=worker, args=(w,))
            for w in range(self.TENANTS)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
                assert not thread.is_alive()
        finally:
            gate.set()
            frontend.close()
        assert outcomes["admission"] > 0, "unknown tenant must be refused"
        assert outcomes["backpressure"] > 0, "tiny queue must push back"
        assert outcomes["served"] > 0
        assert frontend.queue_depth() == 0
        assert frontend.outstanding() == 0
        assert frontend.outstanding("narrow") == 0
