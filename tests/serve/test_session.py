"""Session lifecycle, monitor/recalibrator units, metrics and event log."""

import json

import pytest

from repro import ApproxSession, DeviceKind, MonitorConfig, Paraprox
from repro.apps.gaussian import GaussianFilterApp
from repro.errors import ServeError
from repro.serve import QualityMonitor, Recalibrator
from repro.serve.monitor import DRIFT, HEADROOM, OK, VIOLATION


class TestQualityMonitor:
    def test_sampling_cadence(self):
        monitor = QualityMonitor(0.9, MonitorConfig(sample_every=4))
        sampled = [i for i in range(12) if monitor.should_sample(i)]
        assert sampled == [3, 7, 11]

    def test_violation_on_sample_below_toq(self):
        monitor = QualityMonitor(0.9, MonitorConfig(window=4))
        assert monitor.observe(0.95) == OK
        assert monitor.observe(0.85) == VIOLATION

    def test_windowed_estimate_triggers_violation(self):
        monitor = QualityMonitor(0.9, MonitorConfig(window=3, advance_after=0))
        monitor.observe(0.91)
        monitor.observe(0.91)
        # 0.90 alone is at the TOQ, but the window mean dips below it only
        # when a genuinely low sample arrives.
        assert monitor.observe(0.90) == OK
        assert monitor.estimate == pytest.approx((0.91 + 0.91 + 0.90) / 3)

    def test_drift_needs_min_samples_and_baseline(self):
        monitor = QualityMonitor(
            0.9, MonitorConfig(window=4, min_samples=2, drift_drop=0.04,
                               advance_after=0)
        )
        monitor.set_baseline(0.99)
        assert monitor.observe(0.93) == OK  # one sample: below min_samples
        assert monitor.observe(0.93) == DRIFT  # mean 0.93 < 0.99 - 0.04

    def test_headroom_after_clean_streak(self):
        monitor = QualityMonitor(
            0.9, MonitorConfig(advance_after=2, margin=0.02)
        )
        monitor.set_baseline(0.95)
        assert monitor.observe(0.95) == OK
        assert monitor.observe(0.95) == HEADROOM
        # streak resets after the signal
        assert monitor.observe(0.95) == OK

    def test_reset_clears_window(self):
        monitor = QualityMonitor(0.9, MonitorConfig(window=4))
        monitor.observe(0.5)
        monitor.reset()
        assert monitor.estimate is None
        assert monitor.observe(0.95) == OK

    def test_bad_config_rejected(self):
        with pytest.raises(ServeError):
            MonitorConfig(sample_every=0)
        with pytest.raises(ServeError):
            QualityMonitor(toq=0.0)


class TestRecalibrator:
    @pytest.fixture()
    def tuning(self):
        return Paraprox(target_quality=0.9).optimize(
            GaussianFilterApp(scale=0.05), DeviceKind.GPU
        )

    def test_starts_at_chosen_and_walks_to_exact(self, tuning):
        recal = Recalibrator(tuning, toq=0.9)
        assert recal.current_name == tuning.chosen.name
        steps = 0
        while recal.step_down():
            steps += 1
        assert recal.at_exact
        assert recal.current is None
        assert recal.current_name == "exact"
        assert recal.speedup_estimate == 1.0
        assert not recal.step_down()  # bottoms out
        assert steps >= 1

    def test_ladder_only_holds_toq_meeting_variants(self, tuning):
        recal = Recalibrator(tuning, toq=0.9)
        assert all(p.quality >= 0.9 for p in recal.ladder)

    def test_step_up_recovers(self, tuning):
        recal = Recalibrator(tuning, toq=0.9)
        start = recal.current_name
        recal.step_down()
        assert recal.step_up()
        assert recal.current_name == start
        while recal.step_up():
            pass
        assert recal.at_top

    def test_unbound_tuning_result_rejected(self, tuning):
        from repro.runtime.tuner import TuningResult

        unbound = TuningResult.from_dict(tuning.to_dict())
        if len(unbound.profiles) > 1:  # app produced approximate variants
            with pytest.raises(ServeError):
                Recalibrator(unbound, toq=0.9)


class TestSessionLifecycle:
    def test_launch_lazily_compiles_and_tunes(self):
        app = GaussianFilterApp(scale=0.05)
        session = ApproxSession(app, target_quality=0.9)
        out = session.launch(app.generate_inputs(seed=3))
        assert out is not None
        snap = session.metrics_snapshot()
        assert snap["launches"] == 1
        assert snap["cache"]["compile_misses"] == 1
        assert snap["session"]["current_variant"] != "untuned"

    def test_launch_counts_kernel_launches_via_engine_hook(self):
        app = GaussianFilterApp(scale=0.05)
        session = ApproxSession(app, target_quality=0.9)
        session.launch(app.generate_inputs(seed=3))
        snap = session.metrics_snapshot()
        assert snap["kernel_launches"] >= 1

    def test_sampled_launch_records_quality(self):
        app = GaussianFilterApp(scale=0.05)
        session = ApproxSession(
            app, target_quality=0.9, monitor=MonitorConfig(sample_every=1)
        )
        session.launch(app.generate_inputs(seed=3))
        record = session.metrics.records[-1]
        assert record.sampled
        assert record.quality is not None
        assert 0.0 <= record.quality <= 1.0
        assert record.speedup_estimate > 0

    def test_snapshot_shape(self):
        app = GaussianFilterApp(scale=0.05)
        session = ApproxSession(app, target_quality=0.9)
        session.launch(app.generate_inputs(seed=3))
        snap = session.metrics_snapshot()
        for key in (
            "launches",
            "sampled_checks",
            "sampling_overhead",
            "toq_violations",
            "drift_events",
            "recalibrations",
            "cache",
            "timings",
            "transitions",
            "recent_launches",
            "session",
        ):
            assert key in snap
        assert snap["session"]["toq"] == 0.9
        assert snap["session"]["ladder"]
        # the snapshot is JSON-serialisable as promised
        json.dumps(snap)

    def test_event_log_shim_forwards_to_trace_stream(self, tmp_path):
        """``event_log=`` warns and lands the launch story in the unified
        trace stream instead of a session-private log."""
        from repro.obs import trace as obs_trace

        app = GaussianFilterApp(scale=0.05)
        log = tmp_path / "events.jsonl"
        was_enabled = obs_trace.enabled()
        try:
            with pytest.warns(DeprecationWarning, match="event_log"):
                session = ApproxSession(
                    app,
                    target_quality=0.9,
                    monitor=MonitorConfig(sample_every=1),
                    event_log=log,
                )
            with session:
                session.launch(app.generate_inputs(seed=3))
                session.launch(app.generate_inputs(seed=4))
        finally:
            obs_trace.disable()
            obs_trace.drain_records()
            if was_enabled:
                obs_trace.enable()
        records = [json.loads(line) for line in log.read_text().splitlines()]
        launches = [
            r
            for r in records
            if r["type"] == "span" and r["name"] == "serve.launch"
        ]
        assert len(launches) == 2
        assert session.metrics.event_log is None

    def test_closed_session_rejects_use(self):
        app = GaussianFilterApp(scale=0.05)
        session = ApproxSession(app, target_quality=0.9)
        session.close()
        with pytest.raises(ServeError):
            session.launch(app.generate_inputs(seed=3))

    def test_invalid_toq_propagates(self):
        with pytest.raises(ValueError):
            ApproxSession(GaussianFilterApp(scale=0.05), target_quality=90)
