"""Acceptance: an input-distribution shift drops quality below the TOQ, the
monitor triggers recalibration, and subsequent launches meet the TOQ again
— with the transition visible in the metrics snapshot."""

import numpy as np

from repro import ApproxSession, DeviceKind, MonitorConfig
from repro.apps.kde import KernelDensityApp

TOQ = 0.80


class DriftingKDE(KernelDensityApp):
    """KDE whose inputs become concentration-heavy after the drift point:
    most reference mass moves far from the queries, so perforated sampling
    of the reduction becomes much noisier (paper §3.5 scenario)."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.drifted = False

    def generate_inputs(self, seed=None):
        inputs = super().generate_inputs(seed)
        if self.drifted:
            rng = np.random.default_rng((seed or 0) + 1)
            refs = inputs["refs"].reshape(-1, self.nfeat)
            far = rng.normal(6.0, 0.05, refs.shape).astype(np.float32)
            keep = rng.random(len(refs)) < 0.05
            refs = np.where(keep[:, None], refs, far)
            inputs["refs"] = np.ascontiguousarray(refs.ravel())
        return inputs


def make_session(app) -> ApproxSession:
    return ApproxSession(
        app,
        target_quality=TOQ,
        device=DeviceKind.GPU,
        monitor=MonitorConfig(
            sample_every=2,
            window=3,
            min_samples=2,
            drift_drop=0.30,  # KDE quality varies a few points per seed
            advance_after=0,  # no step-up: keeps the walk one-directional
        ),
    )


def test_session_recalibrates_after_drift_and_meets_toq_again():
    app = DriftingKDE()
    session = make_session(app)
    tuning = session.tune()
    assert tuning.chosen.variant is not None  # an approximate variant won
    served_at_start = session.current_variant

    # Phase 1: stable distribution — the tuned variant holds the TOQ.
    for i in range(12):
        session.launch(app.generate_inputs(seed=1000 + i))
    before = session.metrics_snapshot()
    assert before["toq_violations"] == 0
    assert before["transitions"] == []
    assert session.current_variant == served_at_start

    # Phase 2: the input distribution shifts.
    app.drifted = True
    for i in range(12, 30):
        session.launch(app.generate_inputs(seed=1000 + i))

    after = session.metrics_snapshot()
    # The monitor caught the violation and recalibrated within the window.
    assert after["toq_violations"] >= 1
    assert after["recalibrations"]["down"] >= 1
    assert after["transitions"], "transition history must be visible"
    first = after["transitions"][0]
    assert first["from_variant"] == served_at_start
    assert first["quality"] < TOQ
    assert session.current_variant != served_at_start

    # Subsequent sampled launches meet the TOQ again.
    tail = [
        r for r in after["recent_launches"] if r["sampled"] and r["quality"] is not None
    ][-3:]
    assert tail, "monitoring must keep sampling after recalibration"
    assert all(r["quality"] >= TOQ for r in tail)


def test_drift_events_are_counted_separately():
    """A quality decay that stays above the TOQ registers as drift (a
    proactive step-down), not a violation."""
    app = DriftingKDE()
    session = ApproxSession(
        app,
        target_quality=0.30,  # far below any measured quality
        device=DeviceKind.GPU,
        monitor=MonitorConfig(
            sample_every=1, window=3, min_samples=2, drift_drop=0.10,
            advance_after=0,
        ),
    )
    session.tune()
    for i in range(4):
        session.launch(app.generate_inputs(seed=2000 + i))
    app.drifted = True
    for i in range(4, 10):
        session.launch(app.generate_inputs(seed=2000 + i))
    snap = session.metrics_snapshot()
    assert snap["drift_events"] >= 1
    assert snap["recalibrations"]["down"] >= 1
