"""Tests for 2-D launch geometry and the _x/_y thread intrinsics."""

import numpy as np
import pytest

from repro.engine import Grid, launch
from repro.errors import ExecutionError
from repro.kernel import kernel
from repro.kernel.dsl import *  # noqa: F401,F403
from repro.kernel.printer import print_function


@kernel
def coords_kernel(xs: array_i32, ys: array_i32, w: i32, h: i32):
    x = global_id_x()
    y = global_id_y()
    if (x < w) and (y < h):
        xs[y * w + x] = x
        ys[y * w + x] = y


@kernel
def transpose_kernel(out: array_f32, src: array_f32, w: i32, h: i32):
    x = global_id_x()
    y = global_id_y()
    if (x < w) and (y < h):
        out[x * h + y] = src[y * w + x]


@kernel
def tile_ids(out: array_i32, w: i32, h: i32):
    x = global_id_x()
    y = global_id_y()
    if (x < w) and (y < h):
        out[y * w + x] = block_id_y() * grid_dim_x() + block_id_x()


class TestGridGeometry:
    def test_threads_and_blocks(self):
        g = Grid(4, 16, blocks_y=2, threads_per_block_y=8)
        assert g.block_threads == 128
        assert g.total_blocks == 8
        assert g.threads == 1024
        assert g.is_2d

    def test_1d_defaults(self):
        g = Grid(4, 64)
        assert not g.is_2d
        assert g.threads == 256

    def test_for_image_rounds_up(self):
        g = Grid.for_image(33, 17)
        assert (g.blocks, g.blocks_y) == (3, 2)

    def test_negative_dims_rejected(self):
        with pytest.raises(ExecutionError):
            Grid(1, 16, blocks_y=0)


class TestExecution:
    def test_coordinate_coverage(self):
        w, h = 40, 24
        xs = np.full((h, w), -1, dtype=np.int32)
        ys = np.full((h, w), -1, dtype=np.int32)
        launch(coords_kernel, Grid.for_image(w, h), [xs, ys, w, h])
        np.testing.assert_array_equal(xs, np.tile(np.arange(w), (h, 1)))
        np.testing.assert_array_equal(ys, np.tile(np.arange(h)[:, None], (1, w)))

    def test_transpose(self):
        rng = np.random.default_rng(0)
        w, h = 48, 20
        src = rng.random((h, w)).astype(np.float32)
        out = np.zeros((w, h), dtype=np.float32)
        launch(transpose_kernel, Grid.for_image(w, h), [out, src, w, h])
        np.testing.assert_array_equal(out, src.T)

    def test_block_ids_tile_the_image(self):
        w = h = 32
        out = np.zeros((h, w), dtype=np.int32)
        launch(tile_ids, Grid.for_image(w, h, tx=16, ty=16), [out, w, h])
        assert out[0, 0] == 0 and out[0, 31] == 1
        assert out[31, 0] == 2 and out[31, 31] == 3

    def test_1d_intrinsics_consistent_on_1d_grids(self):
        # for a pure 1-D launch, global_id_x == global_id
        @kernel
        def check(out: array_i32, n: i32):
            i = global_id()
            ix = global_id_x()
            if i < n:
                out[i] = ix

        out = np.zeros(100, dtype=np.int32)
        launch(check, Grid.for_elements(100), [out, 100])
        np.testing.assert_array_equal(out, np.arange(100))

    def test_warps_run_along_x(self):
        """Coalescing statistics assume x-fastest linearization: row-major
        image stores from a 2-D launch must be (mostly) coalesced."""
        w, h = 64, 64
        xs = np.zeros((h, w), dtype=np.int32)
        ys = np.zeros((h, w), dtype=np.int32)
        trace = launch(coords_kernel, Grid.for_image(w, h), [xs, ys, w, h])
        stats = trace.mem[("global", "store", "xs")]
        assert stats.transactions_per_warp <= 3.0


class TestPrinting:
    def test_cuda_y_intrinsics(self):
        text = print_function(coords_kernel.fn, "cuda")
        assert "blockIdx.y * blockDim.y + threadIdx.y" in text

    def test_opencl_y_intrinsics(self):
        text = print_function(coords_kernel.fn, "opencl")
        assert "get_global_id(1)" in text


class TestPipelineWith2D:
    def test_stencil_detection_on_2d_kernel(self):
        """A natively 2-D stencil kernel still yields the (f+i)*w+(g+j)
        affine shape the detector needs."""

        @kernel
        def blur2d(out: array_f32, img: array_f32, w: i32, h: i32):
            x = global_id_x()
            y = global_id_y()
            if (x > 0) and (x < w - 1) and (y > 0) and (y < h - 1):
                acc = img[(y - 1) * w + x]
                acc += img[y * w + (x - 1)]
                acc += img[y * w + x]
                acc += img[y * w + (x + 1)]
                acc += img[(y + 1) * w + x]
                out[y * w + x] = acc / 5.0

        from repro.patterns import detect_stencil

        match = detect_stencil(blur2d.fn)
        assert match is not None
        assert (match.tile.rows, match.tile.cols) == (3, 3)
        assert len(match.tile.offsets) == 5

    def test_stencil_transform_on_2d_kernel(self):
        @kernel
        def blur2d_b(out: array_f32, img: array_f32, w: i32, h: i32):
            x = global_id_x()
            y = global_id_y()
            if (x > 0) and (x < w - 1) and (y > 0) and (y < h - 1):
                acc = img[(y - 1) * w + x]
                acc += img[y * w + (x - 1)]
                acc += img[y * w + x]
                acc += img[y * w + (x + 1)]
                acc += img[(y + 1) * w + x]
                out[y * w + x] = acc / 5.0

        from repro.approx.stencil import StencilTransform
        from repro.patterns import detect_stencil
        from repro.apps.images import synthetic_image

        match = detect_stencil(blur2d_b.fn)
        variants = StencilTransform(
            schemes=("center",), reaching_distances=(1,)
        ).generate(blur2d_b.module, "blur2d_b", match)
        img = synthetic_image(32, 32, seed=1)
        out = np.zeros_like(img)
        trace = launch(
            variants[0].module[variants[0].kernel],
            Grid.for_image(32, 32),
            [out, img, 32, 32],
            module=variants[0].module,
        )
        # all five loads redirected to the centre and CSE'd to one
        interior_threads = 32 * 32
        assert trace.accesses("global", "load", "img") < 1.2 * interior_threads
