"""Tests for the vectorized interpreter: numerical semantics, predication,
atomics, shared memory, bounds checking."""

import numpy as np
import pytest

import kernel_zoo as zoo
from repro.engine import Grid, launch
from repro.errors import ExecutionError


def black_scholes_ref(s, x, t, r, v):
    """NumPy ground truth mirroring the zoo kernel."""
    k = 1.0 / (1.0 + 0.2316419 * np.abs(0))  # placeholder, replaced below

    def cnd(d):
        k = 1.0 / (1.0 + 0.2316419 * np.abs(d))
        w = k * (
            0.31938153
            + k
            * (-0.356563782 + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429)))
        )
        ret = 1.0 - 0.3989422804 * np.exp(-0.5 * d * d) * w
        return np.where(d > 0, ret, 1.0 - ret)

    srt = v * np.sqrt(t)
    d1 = (np.log(s / x) + (r + 0.5 * v * v) * t) / srt
    d2 = d1 - srt
    return s * cnd(d1) - x * np.exp(-r * t) * cnd(d2)


class TestMapExecution:
    def test_black_scholes_matches_reference(self):
        rng = np.random.default_rng(7)
        n = 1000
        s = (rng.random(n) * 90 + 10).astype(np.float32)
        x = (rng.random(n) * 90 + 10).astype(np.float32)
        t = (rng.random(n) * 9 + 0.2).astype(np.float32)
        out = np.zeros(n, dtype=np.float32)
        launch(zoo.black_scholes, Grid.for_elements(n), [out, s, x, t, 0.02, 0.30, n])
        ref = black_scholes_ref(
            s.astype(np.float64), x.astype(np.float64), t.astype(np.float64), 0.02, 0.30
        )
        np.testing.assert_allclose(out, ref, rtol=2e-4, atol=2e-4)

    def test_guard_prevents_out_of_range_threads(self):
        # Grid rounds up to 256-thread blocks; guarded lanes must not write.
        n = 100
        x = np.ones(n, dtype=np.float32)
        out = np.zeros(n, dtype=np.float32)
        launch(zoo.noop, Grid.for_elements(n), [out, x, n])
        np.testing.assert_array_equal(out, x)

    def test_writes_alias_caller_buffer(self):
        x = np.arange(8, dtype=np.float32)
        out = np.zeros(8, dtype=np.float32)
        launch(zoo.noop, Grid(1, 8), [out, x, 8])
        assert out[5] == 5.0


class TestDivergence:
    def test_mean_filter_interior_and_border(self):
        img = zoo.make_image(16, 16, seed=1)
        out = np.zeros_like(img)
        launch(zoo.mean3x3, Grid.for_elements(img.size), [out, img, 16, 16, ])
        # interior pixel: true 3x3 mean
        expected = img[4:7, 4:7].mean()
        assert out[5, 5] == pytest.approx(expected, rel=1e-6)
        # border pixel: copied through the else-branch
        assert out[0, 3] == img[0, 3]

    def test_both_arms_of_divergent_if_execute(self):
        img = zoo.make_image(8, 8, seed=2)
        out = np.full_like(img, -1.0)
        launch(zoo.mean3x3, Grid.for_elements(img.size), [out, img, 8, 8])
        assert not (out == -1.0).any()


class TestReductionAndAtomics:
    def test_chunked_sum(self):
        n, chunk = 1000, 10
        x = np.arange(n, dtype=np.float32)
        out = np.zeros(100, dtype=np.float32)
        launch(zoo.sum_chunks, Grid.for_elements(100, 32), [out, x, n, chunk])
        ref = x.reshape(100, 10).sum(axis=1)
        np.testing.assert_allclose(out, ref, rtol=1e-6)

    def test_atomic_histogram_counts_collisions(self):
        n = 512
        x = np.zeros(n, dtype=np.int32)  # every thread hits bin 0
        hist = np.zeros(4, dtype=np.int32)
        launch(zoo.atomic_histogram, Grid.for_elements(8, 8), [hist, x, n, 64])
        assert hist[0] == n

    def test_atomic_histogram_uniform_bins(self):
        rng = np.random.default_rng(3)
        n = 1024
        x = rng.integers(0, 16, n).astype(np.int32)
        hist = np.zeros(16, dtype=np.int32)
        launch(zoo.atomic_histogram, Grid.for_elements(16, 16), [hist, x, n, 64])
        ref = np.bincount(x, minlength=16)
        np.testing.assert_array_equal(hist, ref)

    def test_min_reduce(self):
        rng = np.random.default_rng(4)
        x = rng.random(640).astype(np.float32)
        out = np.zeros(10, dtype=np.float32)
        launch(zoo.min_reduce, Grid.for_elements(10, 2), [out, x, 640, 64])
        np.testing.assert_allclose(out, x.reshape(10, 64).min(axis=1))


class TestSharedMemoryScan:
    def test_block_scan_matches_cumsum(self):
        b = zoo.SCAN_BLOCK
        rng = np.random.default_rng(5)
        x = rng.random(4 * b).astype(np.float32)
        partial = np.zeros_like(x)
        sums = np.zeros(4, dtype=np.float32)
        launch(zoo.scan_phase1, Grid(4, b), [partial, sums, x])
        for blk in range(4):
            seg = x[blk * b : (blk + 1) * b]
            np.testing.assert_allclose(
                partial[blk * b : (blk + 1) * b], np.cumsum(seg), rtol=1e-5
            )
            assert sums[blk] == pytest.approx(seg.sum(), rel=1e-5)


class TestErrorHandling:
    def test_out_of_bounds_raises(self):
        x = np.ones(8, dtype=np.float32)
        out = np.zeros(8, dtype=np.float32)
        with pytest.raises(ExecutionError, match="out of range"):
            # n larger than the buffers: unguarded lanes index past the end
            launch(zoo.noop, Grid(1, 32), [out, x, 32])

    def test_wrong_dtype_rejected(self):
        x = np.ones(8, dtype=np.float64)
        out = np.zeros(8, dtype=np.float32)
        with pytest.raises(ExecutionError, match="dtype"):
            launch(zoo.noop, Grid(1, 8), [out, x, 8])

    def test_wrong_arity_rejected(self):
        with pytest.raises(ExecutionError, match="takes"):
            launch(zoo.noop, Grid(1, 8), [np.zeros(8, dtype=np.float32)])

    def test_non_contiguous_array_rejected(self):
        x = np.ones((8, 8), dtype=np.float32)[:, ::2]
        out = np.zeros(32, dtype=np.float32)
        with pytest.raises(ExecutionError, match="contiguous"):
            launch(zoo.noop, Grid(1, 32), [out, x, 32])

    def test_keyword_argument_binding(self):
        x = np.ones(8, dtype=np.float32)
        out = np.zeros(8, dtype=np.float32)
        launch(zoo.noop, Grid(1, 8), {"out": out, "x": x, "n": 8})
        np.testing.assert_array_equal(out, x)

    def test_missing_keyword_rejected(self):
        with pytest.raises(ExecutionError, match="missing"):
            launch(zoo.noop, Grid(1, 8), {"out": np.zeros(8, dtype=np.float32)})
