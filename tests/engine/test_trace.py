"""Tests for execution-trace accounting: op counts, coalescing, working
sets, atomic chains."""

import numpy as np
import pytest

from repro.engine.trace import (
    SEGMENT_BYTES,
    WARP_SIZE,
    MemStats,
    Trace,
    _max_run_length,
)


class TestOpCounting:
    def test_count_and_total(self):
        t = Trace()
        t.count_op("alu", "f32", 10)
        t.count_op("alu", "i32", 5)
        t.count_op("sfu", "f32", 3)
        assert t.total_ops() == 18
        assert t.ops_in_class("alu") == 15
        assert t.ops_in_class("sfu") == 3

    def test_zero_counts_ignored(self):
        t = Trace()
        t.count_op("alu", "f32", 0)
        assert t.total_ops() == 0

    def test_merge_accumulates(self):
        a, b = Trace(), Trace()
        a.count_op("alu", "f32", 1)
        b.count_op("alu", "f32", 2)
        b.count_launch(64)
        a.merge(b)
        assert a.total_ops() == 3
        assert a.launches == 1 and a.threads_launched == 64

    def test_copy_is_independent(self):
        a = Trace()
        a.count_op("alu", "f32", 1)
        b = a.copy()
        b.count_op("alu", "f32", 1)
        assert a.total_ops() == 1 and b.total_ops() == 2


class TestCoalescing:
    def _record(self, addresses, element_size=4, space="global", kind="load"):
        t = Trace()
        t.record_access(space, kind, element_size, len(addresses), np.asarray(addresses))
        return t.mem[(space, kind, "")]

    def test_sequential_addresses_coalesce(self):
        stats = self._record(np.arange(64))
        # 64 consecutive f32 = 256 bytes = 2 segments over 2 warps
        assert stats.transactions_per_warp == pytest.approx(1.0)

    def test_strided_addresses_serialize(self):
        stats = self._record(np.arange(64) * 64)  # 256B stride: 1 tx each
        assert stats.transactions_per_warp == pytest.approx(WARP_SIZE)

    def test_broadcast_address_is_one_transaction(self):
        stats = self._record(np.zeros(64, dtype=np.int64))
        assert stats.transactions_per_warp == pytest.approx(1.0)

    def test_partial_warp(self):
        stats = self._record(np.arange(7))
        assert stats.warps == 1
        assert stats.transactions == 1

    def test_element_size_matters(self):
        f64_stats = self._record(np.arange(32), element_size=8)
        assert f64_stats.transactions_per_warp == pytest.approx(2.0)


class TestWorkingSet:
    def test_working_set_tracks_distinct_segments(self):
        t = Trace()
        t.record_access("global", "load", 4, 64, np.arange(64))
        stats = t.mem[("global", "load", "")]
        assert stats.working_set_bytes == 2 * SEGMENT_BYTES

    def test_repeat_accesses_do_not_grow_working_set(self):
        t = Trace()
        for _ in range(5):
            t.record_access("global", "load", 4, 64, np.arange(64))
        assert t.mem[("global", "load", "")].working_set_bytes == 2 * SEGMENT_BYTES

    def test_saturation(self):
        stats = MemStats()
        stats.note_segments(np.arange(1 << 17))
        assert stats.segments_saturated
        assert stats.working_set_bytes > (1 << 16) * SEGMENT_BYTES


class TestAtomicChains:
    def test_max_run_length_all_equal(self):
        rows = np.zeros((1, 32), dtype=np.int64)
        assert _max_run_length(rows) == 32

    def test_max_run_length_all_distinct(self):
        rows = np.arange(32, dtype=np.int64)[None, :]
        assert _max_run_length(rows) == 1

    def test_max_run_length_mixed(self):
        row = np.sort(np.array([5, 5, 5, 1, 2, 3, 4, 6], dtype=np.int64))[None, :]
        assert _max_run_length(row) == 3

    def test_atomic_chain_recorded(self):
        t = Trace()
        t.record_access("global", "atomic", 4, 32, np.zeros(32, dtype=np.int64))
        stats = t.mem[("global", "atomic", "")]
        assert stats.atomic_chain_per_warp == pytest.approx(32.0)

    def test_conflict_free_atomics(self):
        t = Trace()
        t.record_access("global", "atomic", 4, 32, np.arange(32))
        assert t.mem[("global", "atomic", "")].atomic_chain_per_warp == 1.0


class TestSpaceSpecificStats:
    def test_shared_records_bank_conflicts(self):
        t = Trace()
        # all 32 threads hit bank 0 (addresses multiple of 32)
        t.record_access("shared", "load", 4, 32, np.arange(32) * 32, "sh")
        stats = t.mem[("shared", "load", "sh")]
        assert stats.transactions_per_warp == pytest.approx(32.0)

    def test_shared_conflict_free(self):
        t = Trace()
        t.record_access("shared", "load", 4, 32, np.arange(32), "sh")
        assert t.mem[("shared", "load", "sh")].transactions_per_warp == 1.0

    def test_constant_counts_distinct_words(self):
        t = Trace()
        # 32 consecutive words: 1 segment but 32 distinct broadcast words
        t.record_access("constant", "load", 4, 32, np.arange(32), "lut")
        assert t.mem[("constant", "load", "lut")].transactions_per_warp == 32.0

    def test_accesses_filter_by_array(self):
        t = Trace()
        t.record_access("global", "load", 4, 10, None, "a")
        t.record_access("global", "load", 4, 20, None, "b")
        assert t.accesses("global", "load") == 30
        assert t.accesses("global", "load", array="a") == 10
