"""Deeper interpreter semantics: C arithmetic rules, nested divergence,
returns under masks, uniformity enforcement — including hypothesis
properties comparing against C semantics."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.engine import Grid, launch
from repro.engine.interpreter import _c_divide, _c_mod
from repro.errors import ExecutionError
from repro.kernel import device, kernel
from repro.kernel.dsl import *  # noqa: F401,F403
from repro.kernel.types import F32, I32

ints = st.integers(-1000, 1000)
nonzero = ints.filter(lambda v: v != 0)


class TestCArithmetic:
    @given(ints, nonzero)
    @settings(max_examples=200)
    def test_integer_division_truncates_toward_zero(self, a, b):
        got = int(_c_divide(np.int64(a), np.int64(b), I32))
        want = int(a / b)  # float division + int() truncates toward zero
        assert got == want

    @given(ints, nonzero)
    @settings(max_examples=200)
    def test_remainder_sign_follows_dividend(self, a, b):
        r = int(_c_mod(np.int64(a), np.int64(b), I32))
        assert a == int(_c_divide(np.int64(a), np.int64(b), I32)) * b + r
        if r != 0:
            assert (r > 0) == (a > 0)

    def test_float_division_is_ieee(self):
        out = _c_divide(np.float32(1.0), np.float32(4.0), F32)
        assert float(out) == 0.25


@kernel
def nested_divergence(out: array_f32, x: array_f32, n: i32):
    i = global_id()
    if i < n:
        v = x[i]
        if v > 0.5:
            if v > 0.75:
                out[i] = 4.0
            else:
                out[i] = 3.0
        else:
            if v > 0.25:
                out[i] = 2.0
            else:
                out[i] = 1.0


@kernel
def early_return_quartiles(out: array_f32, x: array_f32, n: i32):
    i = global_id()
    if i >= n:
        return
    v = x[i]
    if v > 0.75:
        out[i] = 4.0
        return
    if v > 0.5:
        out[i] = 3.0
        return
    if v > 0.25:
        out[i] = 2.0
        return
    out[i] = 1.0


@device
def sign_via_returns(x: f32) -> f32:
    if x > 0.0:
        return 1.0
    if x < 0.0:
        return -1.0
    return 0.0


@kernel
def sign_kernel(out: array_f32, x: array_f32, n: i32):
    i = global_id()
    if i < n:
        out[i] = sign_via_returns(x[i])


class TestDivergence:
    def _quartile_ref(self, x):
        return np.select(
            [x > 0.75, x > 0.5, x > 0.25], [4.0, 3.0, 2.0], default=1.0
        ).astype(np.float32)

    def test_nested_ifs(self):
        rng = np.random.default_rng(0)
        x = rng.random(1000).astype(np.float32)
        out = np.zeros_like(x)
        launch(nested_divergence, Grid.for_elements(1000), [out, x, 1000])
        np.testing.assert_array_equal(out, self._quartile_ref(x))

    def test_early_returns_in_kernel(self):
        rng = np.random.default_rng(1)
        x = rng.random(1000).astype(np.float32)
        out = np.zeros_like(x)
        launch(early_return_quartiles, Grid.for_elements(1000), [out, x, 1000])
        np.testing.assert_array_equal(out, self._quartile_ref(x))

    def test_returned_lanes_stop_writing(self):
        # lanes beyond n return before any store: out stays zero there
        x = np.ones(64, dtype=np.float32)
        out = np.zeros(64, dtype=np.float32)
        launch(early_return_quartiles, Grid(1, 64), [out, x, 32])
        assert (out[32:] == 0).all()
        assert (out[:32] == 4.0).all()

    def test_device_function_multi_return(self):
        x = np.array([-2.0, -0.0, 0.0, 3.0], dtype=np.float32)
        out = np.zeros(4, dtype=np.float32)
        launch(sign_kernel, Grid(1, 4), [out, x, 4])
        np.testing.assert_array_equal(out, [-1.0, 0.0, 0.0, 1.0])


@kernel
def divergent_loop_bound(out: array_f32, x: array_f32, n: i32):
    i = global_id()
    m = i + 1  # thread-dependent
    for k in range(0, m):
        out[i] = f32(k)


@kernel
def zero_step(out: array_f32, n: i32):
    for k in range(0, 4, 0):
        out[0] = 1.0


class TestUniformityEnforcement:
    def test_divergent_loop_bound_rejected(self):
        out = np.zeros(8, dtype=np.float32)
        x = np.zeros(8, dtype=np.float32)
        with pytest.raises(ExecutionError, match="uniform"):
            launch(divergent_loop_bound, Grid(1, 8), [out, x, 8])

    def test_zero_step_rejected(self):
        with pytest.raises(ExecutionError, match="zero loop step"):
            launch(zero_step, Grid(1, 4), [np.zeros(4, dtype=np.float32), 4])


@kernel
def masked_atomic(hist: array_f32, x: array_f32, n: i32):
    i = global_id()
    if x[i] > 0.5:
        atomic_add(hist, 0, 1.0)


class TestMaskedSideEffects:
    def test_atomics_respect_masks(self):
        rng = np.random.default_rng(2)
        x = rng.random(256).astype(np.float32)
        hist = np.zeros(1, dtype=np.float32)
        launch(masked_atomic, Grid.for_elements(256), [hist, x, 256])
        assert hist[0] == float((x > 0.5).sum())

    def test_masked_stores_do_not_touch_inactive_lanes(self):
        x = np.linspace(0, 1, 64, dtype=np.float32)
        out = np.full(64, -5.0, dtype=np.float32)
        launch(nested_divergence, Grid(1, 64), [out, x, 32])
        assert (out[32:] == -5.0).all()
