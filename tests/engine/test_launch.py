"""Tests for launch geometry, argument binding and Program orchestration."""

import numpy as np
import pytest

import kernel_zoo as zoo
from repro.engine import Grid, Program, bind_arguments
from repro.engine.interpreter import call_device_function
from repro.errors import ExecutionError


class TestGrid:
    def test_threads(self):
        assert Grid(4, 64).threads == 256

    def test_for_elements_rounds_up(self):
        g = Grid.for_elements(1000, 256)
        assert g.blocks == 4 and g.threads == 1024

    def test_for_elements_minimum_one_block(self):
        assert Grid.for_elements(1).blocks == 1

    def test_rejects_non_positive(self):
        with pytest.raises(ExecutionError):
            Grid(0, 32)
        with pytest.raises(ExecutionError):
            Grid(1, 0)


class TestBinding:
    def test_positional_binding(self):
        out = np.zeros(4, dtype=np.float32)
        x = np.ones(4, dtype=np.float32)
        bound = bind_arguments(zoo.noop.fn, [out, x, 4])
        assert bound["n"] == 4
        assert bound["out"] is not None

    def test_scalar_cast_to_declared_dtype(self):
        out = np.zeros(4, dtype=np.float32)
        x = np.ones(4, dtype=np.float32)
        bound = bind_arguments(zoo.noop.fn, [out, x, 4.9])
        assert bound["n"] == 4  # i32 truncation
        assert bound["n"].dtype == np.int32

    def test_array_flattened_as_view(self):
        out = np.zeros((2, 2), dtype=np.float32)
        x = np.ones(4, dtype=np.float32)
        bound = bind_arguments(zoo.noop.fn, [out, x, 4])
        bound["out"][3] = 7.0
        assert out[1, 1] == 7.0

    def test_scalar_passed_for_array_rejected(self):
        with pytest.raises(ExecutionError, match="must be a numpy array"):
            bind_arguments(zoo.noop.fn, [1.0, np.ones(4, dtype=np.float32), 4])

    def test_unexpected_keyword_rejected(self):
        with pytest.raises(ExecutionError, match="unexpected"):
            bind_arguments(
                zoo.noop.fn,
                {
                    "out": np.zeros(4, dtype=np.float32),
                    "x": np.ones(4, dtype=np.float32),
                    "n": 4,
                    "bogus": 1,
                },
            )


class TestProgram:
    def test_program_accumulates_traces(self):
        prog = Program()
        x = np.ones(64, dtype=np.float32)
        out = np.zeros(64, dtype=np.float32)
        prog.launch(zoo.noop, Grid(1, 64), [out, x, 64])
        prog.launch(zoo.noop, Grid(1, 64), [out, x, 64])
        assert prog.trace.launches == 2
        prog.reset_trace()
        assert prog.trace.launches == 0


class TestCallDeviceFunction:
    def test_vectorized_evaluation(self):
        d = np.linspace(-3, 3, 100).astype(np.float32)
        out = call_device_function(zoo.cnd, None, [d])
        assert out.shape == (100,)
        assert out[0] < 0.01 and out[-1] > 0.99
        # symmetric CDF
        np.testing.assert_allclose(out + out[::-1], 1.0, atol=1e-6)

    def test_broadcasting_scalars(self):
        out = call_device_function(zoo.bs_body, None, [100.0, 100.0, 1.0, 0.02, 0.3])
        assert out.shape == (1,)
        assert 5.0 < float(out[0]) < 25.0

    def test_kernel_rejected(self):
        with pytest.raises(ExecutionError, match="not a device function"):
            call_device_function(zoo.noop.fn, zoo.noop.module, [1.0])
