"""Worker pools, the ambient parallelism policy, and parallel_map."""

import threading
import time

import pytest

from repro.errors import ConfigError
from repro.parallel.pool import (
    AUTO_WORKERS,
    DEFAULT_MIN_SHARD_THREADS,
    ParallelPolicy,
    default_policy,
    host_worker_count,
    parallel_map,
    pool_stats,
    pools_snapshot,
    resolve_policy,
    resolve_workers,
    use_parallel,
)


class TestResolveWorkers:
    def test_positive_ints_pass_through(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7

    def test_auto_resolves_to_host_cores(self):
        assert resolve_workers(AUTO_WORKERS) == host_worker_count()
        assert host_worker_count() >= 1

    @pytest.mark.parametrize("bad", [0, -1, True, False, 2.5, "four", None, []])
    def test_invalid_values_raise_config_error(self, bad):
        with pytest.raises(ConfigError):
            resolve_workers(bad)


class TestPolicy:
    def test_defaults_are_serial(self):
        policy = ParallelPolicy()
        assert policy.serial
        assert policy.min_shard_threads == DEFAULT_MIN_SHARD_THREADS

    def test_auto_workers_resolve_at_construction(self):
        policy = ParallelPolicy(workers=AUTO_WORKERS)
        assert policy.workers == host_worker_count()

    @pytest.mark.parametrize("bad", [0, -3, True, 1.5, "many"])
    def test_bad_min_shard_threads_rejected(self, bad):
        with pytest.raises(ConfigError):
            ParallelPolicy(workers=2, min_shard_threads=bad)

    def test_ambient_default_is_serial(self):
        assert default_policy().serial

    def test_use_parallel_scopes_and_nests(self):
        assert default_policy().workers == 1
        with use_parallel(4):
            assert default_policy().workers == 4
            with use_parallel(2, min_shard_threads=16):
                assert default_policy().workers == 2
                assert default_policy().min_shard_threads == 16
            assert default_policy().workers == 4
            # inner scope did not leak its threshold
            assert default_policy().min_shard_threads == DEFAULT_MIN_SHARD_THREADS
        assert default_policy().serial

    def test_use_parallel_accepts_a_policy(self):
        policy = ParallelPolicy(workers=3, min_shard_threads=1)
        with use_parallel(policy) as active:
            assert active is policy
            assert default_policy() is policy

    def test_policy_scope_is_thread_local(self):
        seen = {}

        def worker():
            seen["policy"] = default_policy()

        with use_parallel(4):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # a fresh thread starts from the serial default, not the spawning
        # thread's scope — profile workers must not inherit shard policies
        assert seen["policy"].serial

    def test_resolve_policy_none_uses_ambient(self):
        with use_parallel(3):
            assert resolve_policy(None).workers == 3
        assert resolve_policy(None).serial

    def test_resolve_policy_int_keeps_ambient_threshold(self):
        with use_parallel(2, min_shard_threads=64):
            policy = resolve_policy(5)
            assert policy.workers == 5
            assert policy.min_shard_threads == 64

    def test_resolve_policy_passes_policy_through(self):
        policy = ParallelPolicy(workers=2)
        assert resolve_policy(policy) is policy


class TestParallelMap:
    def test_preserves_item_order(self):
        def slow_identity(i):
            # later items finish first; order must still hold
            time.sleep(0.02 * (4 - i))
            return i * 10

        assert parallel_map("test", 4, slow_identity, range(4)) == [0, 10, 20, 30]

    def test_serial_bypass_with_one_worker(self):
        before = pool_stats("test").snapshot()["batches"]
        assert parallel_map("test", 1, lambda i: i + 1, [1, 2, 3]) == [2, 3, 4]
        assert pool_stats("test").snapshot()["batches"] == before

    def test_serial_bypass_with_one_item(self):
        before = pool_stats("test").snapshot()["batches"]
        assert parallel_map("test", 8, lambda i: i + 1, [41]) == [42]
        assert pool_stats("test").snapshot()["batches"] == before

    def test_first_exception_in_item_order_propagates(self):
        def boom(i):
            if i in (1, 3):
                raise ValueError(f"item {i}")
            return i

        with pytest.raises(ValueError, match="item 1"):
            parallel_map("test", 4, boom, range(4))

    def test_empty_items(self):
        assert parallel_map("test", 4, lambda i: i, []) == []

    def test_stats_record_tasks_and_workers(self):
        before = pool_stats("test").snapshot()
        parallel_map("test", 3, lambda i: i, range(5))
        after = pool_stats("test").snapshot()
        assert after["tasks"] == before["tasks"] + 5
        assert after["batches"] == before["batches"] + 1
        assert after["max_workers"] >= 3

    def test_pools_snapshot_lists_used_pools(self):
        parallel_map("test", 2, lambda i: i, range(2))
        snap = pools_snapshot()
        assert "test" in snap
        assert set(snap["test"]) == {
            "tasks", "batches", "max_workers", "workers_restarted"
        }


class TestHostWorkerCount:
    """Container CPU limits must cap ``workers="auto"`` resolution."""

    def _fake_files(self, monkeypatch, files):
        import builtins
        import io

        real_open = builtins.open

        def fake_open(path, *args, **kwargs):
            spath = str(path)
            if spath in files:
                content = files[spath]
                if content is None:
                    raise OSError(f"unreadable {spath}")
                return io.StringIO(content)
            return real_open(path, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", fake_open)

    def _fake_affinity(self, monkeypatch, cores):
        import os

        monkeypatch.setattr(
            os, "sched_getaffinity", lambda _pid: set(range(cores)),
            raising=False,
        )

    def test_cgroup_v2_quota_caps_affinity(self, monkeypatch):
        self._fake_affinity(monkeypatch, 64)
        self._fake_files(
            monkeypatch, {"/sys/fs/cgroup/cpu.max": "200000 100000\n"}
        )
        assert host_worker_count() == 2

    def test_cgroup_v2_unlimited_defers_to_affinity(self, monkeypatch):
        self._fake_affinity(monkeypatch, 6)
        self._fake_files(
            monkeypatch, {"/sys/fs/cgroup/cpu.max": "max 100000\n"}
        )
        assert host_worker_count() == 6

    def test_cgroup_v1_fallback(self, monkeypatch):
        self._fake_affinity(monkeypatch, 64)
        self._fake_files(
            monkeypatch,
            {
                "/sys/fs/cgroup/cpu.max": None,  # no cgroup v2
                "/sys/fs/cgroup/cpu/cpu.cfs_quota_us": "400000\n",
                "/sys/fs/cgroup/cpu/cpu.cfs_period_us": "100000\n",
            },
        )
        assert host_worker_count() == 4

    def test_sub_core_quota_still_yields_one_worker(self, monkeypatch):
        self._fake_affinity(monkeypatch, 8)
        self._fake_files(
            monkeypatch, {"/sys/fs/cgroup/cpu.max": "50000 100000\n"}
        )
        assert host_worker_count() == 1

    def test_no_cgroup_files_defers_to_affinity(self, monkeypatch):
        self._fake_affinity(monkeypatch, 3)
        self._fake_files(
            monkeypatch,
            {
                "/sys/fs/cgroup/cpu.max": None,
                "/sys/fs/cgroup/cpu/cpu.cfs_quota_us": None,
            },
        )
        assert host_worker_count() == 3

    def test_garbled_quota_is_ignored(self, monkeypatch):
        self._fake_affinity(monkeypatch, 5)
        self._fake_files(
            monkeypatch, {"/sys/fs/cgroup/cpu.max": "banana\n"}
        )
        assert host_worker_count() == 5
