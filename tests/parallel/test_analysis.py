"""Shardability classification of every kernel in the zoo."""

import pytest

import kernel_zoo as zoo
from repro.parallel.analysis import analyze_function, analyze_shardability

#: Every kernel in the zoo with its expected classification.  This list
#: is exhaustive on purpose: a new zoo kernel must be classified here or
#: the completeness test fails.
EXPECTED = {
    "black_scholes": True,
    "square_map": True,
    "gather_expensive": True,
    "impure_map": False,  # printf in a reachable device function
    "mean3x3": True,
    "row_stencil": True,
    "sum_chunks": True,
    "atomic_histogram": False,  # global atomics need a combine, not a merge
    "min_reduce": True,
    "scan_phase1": True,  # shared memory + barriers are per-block: fine
    "noop": True,
    "clamp_map": True,
    "divergent_return": True,
    "tile_scale2d": True,
}


def _zoo_kernels():
    return {
        name: obj
        for name, obj in vars(zoo).items()
        if getattr(getattr(obj, "fn", None), "kind", None) == "kernel"
    }


def test_every_zoo_kernel_is_classified():
    assert set(_zoo_kernels()) == set(EXPECTED)


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_zoo_classification(name):
    k = _zoo_kernels()[name]
    result = analyze_shardability(k.fn, k.module)
    assert result.shardable == EXPECTED[name], result.describe()
    if result.shardable:
        assert result.reasons == []
    else:
        assert result.reasons, "serial classification must carry reasons"


def test_unshardable_reasons_are_specific():
    hist = zoo.atomic_histogram
    result = analyze_function(hist.fn, hist.module)
    assert any("atomic" in r for r in result.reasons)
    impure = zoo.impure_map
    result = analyze_function(impure.fn, impure.module)
    assert any("printf" in r for r in result.reasons)


def test_written_arrays_in_declaration_order():
    scan = zoo.scan_phase1
    result = analyze_function(scan.fn, scan.module)
    assert result.written_arrays == ["partial", "sums"]


def test_disjoint_writes_for_elementwise_stores():
    # out[i] with i = global_id(): provably thread-private -> zero-copy
    result = analyze_function(zoo.square_map.fn, zoo.square_map.module)
    assert result.disjoint_writes
    # sums[block_id()]: block-private, still zero-copy eligible
    result = analyze_function(zoo.scan_phase1.fn, zoo.scan_phase1.module)
    assert result.disjoint_writes
    # out[y*w+x] multiplies two varying intrinsics by a runtime param:
    # not provably disjoint, so the overlay path must handle it
    result = analyze_function(zoo.tile_scale2d.fn, zoo.tile_scale2d.module)
    assert result.shardable and not result.disjoint_writes


def test_analysis_is_cached_by_fingerprint():
    k = zoo.square_map
    first = analyze_shardability(k.fn, k.module)
    second = analyze_shardability(k.fn, k.module)
    assert first is second


def test_describe_mentions_mode():
    k = zoo.square_map
    text = analyze_shardability(k.fn, k.module).describe()
    assert "zero-copy" in text
    text = analyze_shardability(
        zoo.atomic_histogram.fn, zoo.atomic_histogram.module
    ).describe()
    assert "serial" in text
