"""Sharded execution: planning, bit-exactness, and transparent fallback.

The differential cases mirror ``tests/codegen/test_differential.py``'s
zoo coverage: if a kernel exercises a semantics corner for codegen, the
same corner must survive sharding.
"""

import numpy as np
import pytest

import kernel_zoo as zoo
from repro.engine import Grid, launch, use_backend
from repro.errors import ExecutionError
from repro.parallel import use_parallel
from repro.parallel.check import diff_kernel_sharded
from repro.parallel.pool import ParallelPolicy
from repro.parallel.shard import STATS, plan_shards


class TestPlanShards:
    @pytest.mark.parametrize(
        "blocks,workers", [(1, 1), (4, 2), (7, 3), (100, 8), (3, 16), (2, 2)]
    )
    def test_plan_properties(self, blocks, workers):
        plan = plan_shards(blocks, workers)
        assert len(plan) <= workers
        assert all(b1 > b0 for b0, b1 in plan), "every shard non-empty"
        # contiguous cover of [0, blocks)
        assert plan[0][0] == 0 and plan[-1][1] == blocks
        for (_, prev_end), (start, _) in zip(plan, plan[1:]):
            assert start == prev_end
        sizes = [b1 - b0 for b0, b1 in plan]
        assert max(sizes) - min(sizes) <= 1, "balanced to within one block"

    def test_more_workers_than_blocks(self):
        assert plan_shards(3, 16) == [(0, 1), (1, 2), (2, 3)]

    def test_remainder_goes_to_leading_shards(self):
        assert plan_shards(7, 3) == [(0, 3), (3, 5), (5, 7)]


def _rand(n, seed=0):
    return np.random.default_rng(seed).random(n, dtype=np.float32)


# Shardable zoo kernels with launch recipes (same shapes as the codegen
# differential suite).  atomic_histogram / impure_map are covered by the
# fallback tests below instead.
SHARDABLE_CASES = {
    "black_scholes": lambda n: (
        zoo.black_scholes,
        Grid.for_elements(n),
        [
            np.zeros(n, np.float32),
            _rand(n, 1) * 100 + 1,
            _rand(n, 2) * 100 + 1,
            _rand(n, 3) + 0.1,
            0.02,
            0.3,
            n,
        ],
    ),
    "square_map": lambda n: (
        zoo.square_map,
        Grid.for_elements(n),
        [np.zeros(n, np.float32), _rand(n), n],
    ),
    "clamp_map": lambda n: (
        zoo.clamp_map,
        Grid.for_elements(n),
        [np.zeros(n, np.float32), _rand(n) * 2 - 0.5, n],
    ),
    "divergent_return": lambda n: (
        zoo.divergent_return,
        Grid.for_elements(n),
        [np.zeros(n, np.float32), _rand(n), n],
    ),
    "tile_scale2d": lambda n: (
        # 2-D grid; not provably disjoint -> copy + overlay assembly
        zoo.tile_scale2d,
        Grid.for_image(50, 30),
        [np.zeros(1500, np.float32), _rand(1500), 50, 30, 1.7],
    ),
    "mean3x3": lambda n: (
        zoo.mean3x3,
        Grid.for_image(32, 24),
        [np.zeros(32 * 24, np.float32), _rand(32 * 24), 32, 24],
    ),
    "row_stencil": lambda n: (
        zoo.row_stencil,
        Grid.for_elements(n),
        [np.zeros(n, np.float32), _rand(n), n],
    ),
    "sum_chunks": lambda n: (
        # n=1000 gives 250 output threads = one block; quadruple the data
        # so the grid actually has blocks to shard
        zoo.sum_chunks,
        Grid.for_elements(n),
        [np.zeros(n, np.float32), _rand(n * 4), n * 4, 4],
    ),
    "min_reduce": lambda n: (
        zoo.min_reduce,
        Grid.for_elements(1024),
        [np.full(1024, 3.4e38, np.float32), _rand(8192, 5), 8192, 8],
    ),
    "scan_phase1": lambda n: (
        # shared memory + barriers: blocks stay whole, sbid/nsb remapping
        zoo.scan_phase1,
        Grid(4, zoo.SCAN_BLOCK),
        [
            np.zeros(4 * zoo.SCAN_BLOCK, np.float32),
            np.zeros(4, np.float32),
            _rand(4 * zoo.SCAN_BLOCK, 6),
        ],
    ),
    "gather_expensive": lambda n: (
        zoo.gather_expensive,
        Grid.for_elements(n),
        [
            np.zeros(n, np.float32),
            _rand(n, 7) * 50 + 1,
            np.random.default_rng(8).integers(0, n, n).astype(np.int32),
            n,
        ],
    ),
    "noop": lambda n: (
        zoo.noop,
        Grid.for_elements(n),
        [np.zeros(n, np.float32), _rand(n), n],
    ),
}


@pytest.mark.parametrize("workers", [2, 3, 4])
@pytest.mark.parametrize("name", sorted(SHARDABLE_CASES))
def test_sharded_bit_exact(name, workers):
    kernel, grid, args = SHARDABLE_CASES[name](1000)
    before = STATS.sharded_launches
    result = diff_kernel_sharded(kernel, grid, args, workers=workers)
    assert result.ok, result.describe()
    assert STATS.sharded_launches == before + 1, (
        f"{name} should actually have sharded"
    )


class TestTransparentFallback:
    def _policy(self):
        return ParallelPolicy(workers=4, min_shard_threads=1)

    def test_unshardable_kernel_runs_serial(self):
        n = 1024
        rng = np.random.default_rng(4)
        data = rng.integers(0, 16, n).astype(np.int32)
        hist_parallel = np.zeros(16, np.int32)
        hist_serial = np.zeros(16, np.int32)
        before = STATS.snapshot()
        launch(
            zoo.atomic_histogram,
            Grid.for_elements(n),
            [hist_parallel, data, n, 1],
            backend="codegen",
            parallel=self._policy(),
        )
        after = STATS.snapshot()
        assert after["serial_unshardable"] == before["serial_unshardable"] + 1
        assert after["sharded_launches"] == before["sharded_launches"]
        launch(
            zoo.atomic_histogram,
            Grid.for_elements(n),
            [hist_serial, data, n, 1],
            backend="codegen",
        )
        np.testing.assert_array_equal(hist_parallel, hist_serial)

    def test_small_grid_runs_serial(self):
        n = 64
        out = np.zeros(n, np.float32)
        before = STATS.snapshot()
        launch(
            zoo.square_map,
            Grid.for_elements(n),
            [out, _rand(n), n],
            backend="codegen",
            parallel=ParallelPolicy(workers=4),  # default 2048-thread floor
        )
        after = STATS.snapshot()
        assert after["serial_small_grid"] == before["serial_small_grid"] + 1
        assert after["sharded_launches"] == before["sharded_launches"]

    def test_single_block_grid_runs_serial(self):
        threads = 256
        out = np.zeros(threads, np.float32)
        before = STATS.snapshot()
        launch(
            zoo.square_map,
            Grid(1, threads),
            [out, _rand(threads), threads],
            backend="codegen",
            parallel=self._policy(),
        )
        after = STATS.snapshot()
        assert after["serial_small_grid"] == before["serial_small_grid"] + 1

    def test_ambient_scope_shards_without_launch_arg(self):
        n = 4096
        out = np.zeros(n, np.float32)
        before = STATS.sharded_launches
        with use_parallel(4, min_shard_threads=1):
            launch(
                zoo.square_map,
                Grid.for_elements(n),
                [out, _rand(n), n],
                backend="codegen",
            )
        assert STATS.sharded_launches == before + 1

    def test_interp_backend_never_shards(self):
        n = 4096
        out = np.zeros(n, np.float32)
        before = STATS.snapshot()
        with use_backend("interp"), use_parallel(4, min_shard_threads=1):
            launch(zoo.square_map, Grid.for_elements(n), [out, _rand(n), n])
        after = STATS.snapshot()
        assert after == before  # sharding is a codegen-path feature


class TestAssemblyModes:
    def test_zero_copy_counted_for_disjoint_stores(self):
        n = 4096
        out = np.zeros(n, np.float32)
        before = STATS.snapshot()
        launch(
            zoo.square_map,
            Grid.for_elements(n),
            [out, _rand(n), n],
            backend="codegen",
            parallel=ParallelPolicy(workers=4, min_shard_threads=1),
        )
        after = STATS.snapshot()
        assert after["zero_copy"] == before["zero_copy"] + 1
        assert after["overlay"] == before["overlay"]

    def test_overlay_counted_for_unproven_stores(self):
        out = np.zeros(1500, np.float32)
        before = STATS.snapshot()
        launch(
            zoo.tile_scale2d,
            Grid.for_image(50, 30),
            [out, _rand(1500), 50, 30, 1.7],
            backend="codegen",
            parallel=ParallelPolicy(workers=4, min_shard_threads=1),
        )
        after = STATS.snapshot()
        assert after["overlay"] == before["overlay"] + 1

    def test_shards_run_matches_plan(self):
        n = 4096
        out = np.zeros(n, np.float32)
        before = STATS.shards_run
        launch(
            zoo.square_map,
            Grid.for_elements(n),
            [out, _rand(n), n],
            backend="codegen",
            parallel=ParallelPolicy(workers=3, min_shard_threads=1),
        )
        assert STATS.shards_run == before + 3


class TestErrorPropagation:
    def test_bounds_violation_raises_under_sharding(self):
        n = 4096
        out = np.zeros(n // 2, np.float32)  # too small: threads n//2..n-1 OOB
        with pytest.raises(ExecutionError):
            launch(
                zoo.square_map,
                Grid.for_elements(n),
                [out, _rand(n), n],
                backend="codegen",
                bounds_check=True,
                parallel=ParallelPolicy(workers=4, min_shard_threads=1),
            )
