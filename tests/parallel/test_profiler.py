"""Concurrent variant profiling: cache semantics, determinism, sessions."""

import numpy as np
import pytest

from repro import DeviceKind, Paraprox
from repro.apps.gaussian import MeanFilterApp
from repro.device import spec_for
from repro.parallel.profiler import ProfileCache, profile_key, variant_identity
from repro.runtime.tuner import GreedyTuner
from repro.serve.session import ApproxSession


class TestProfileCache:
    def test_get_put_and_counters(self):
        cache = ProfileCache()
        assert cache.get(("k",)) is None
        cache.put(("k",), (0.9, 100.0))
        assert cache.get(("k",)) == (0.9, 100.0)
        assert cache.snapshot() == {
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "max_entries": 4096,
        }

    def test_eviction_keeps_size_bounded(self):
        cache = ProfileCache(max_entries=3)
        for i in range(5):
            cache.put((i,), (1.0, float(i)))
        assert len(cache) == 3
        # LRU with no intervening gets: the oldest entries went first
        assert cache.get((0,)) is None
        assert cache.get((4,)) == (1.0, 4.0)
        assert cache.snapshot()["evictions"] == 2

    def test_get_refreshes_recency(self):
        cache = ProfileCache(max_entries=2)
        cache.put(("a",), (1.0, 1.0))
        cache.put(("b",), (1.0, 2.0))
        cache.get(("a",))  # "a" is now the most recently used
        cache.put(("c",), (1.0, 3.0))  # evicts "b", not "a"
        assert cache.get(("a",)) == (1.0, 1.0)
        assert cache.get(("b",)) is None

    def test_max_entries_validated(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ProfileCache(max_entries=0)

    def test_put_existing_key_does_not_evict(self):
        cache = ProfileCache(max_entries=2)
        cache.put(("a",), (1.0, 1.0))
        cache.put(("b",), (1.0, 2.0))
        cache.put(("a",), (1.0, 3.0))  # overwrite, not insert
        assert len(cache) == 2
        assert cache.get(("a",)) == (1.0, 3.0)
        assert cache.get(("b",)) == (1.0, 2.0)

    def test_clear_resets_everything(self):
        cache = ProfileCache()
        cache.put(("k",), (1.0, 1.0))
        cache.get(("k",))
        cache.clear()
        assert cache.snapshot() == {
            "entries": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "max_entries": 4096,
        }


class TestProfileCacheConcurrentEviction:
    """LRU eviction under concurrent profiling workers (workers=4)."""

    WORKERS = 4

    def _hammer(self, worker_fn):
        import threading

        barrier = threading.Barrier(self.WORKERS)
        errors = []

        def run(worker):
            try:
                barrier.wait(timeout=30)
                worker_fn(worker)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(w,)) for w in range(self.WORKERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors

    def test_capacity_invariant_holds_during_concurrent_churn(self):
        cache = ProfileCache(max_entries=8)
        observed_over_capacity = []

        def worker(w):
            for i in range(500):
                cache.put((w, i), (1.0, float(i)))
                if len(cache) > cache.max_entries:
                    observed_over_capacity.append((w, i))

        self._hammer(worker)
        assert not observed_over_capacity
        assert len(cache) == 8

    def test_eviction_counter_has_no_lost_updates(self):
        # Disjoint key ranges, each key put exactly once: every insert
        # past capacity must evict, so entries + evictions == total puts.
        # A racy unlocked counter would drop increments under contention.
        cache = ProfileCache(max_entries=16)
        per_worker = 400

        def worker(w):
            for i in range(per_worker):
                cache.put((w, i), (1.0, float(i)))

        self._hammer(worker)
        snapshot = cache.snapshot()
        assert snapshot["entries"] == 16
        assert (
            snapshot["entries"] + snapshot["evictions"]
            == self.WORKERS * per_worker
        )

    def test_hit_miss_counters_consistent_under_mixed_load(self):
        # Read-through pattern over a shared hot set larger than capacity:
        # every get is exactly one hit or one miss, never both or neither.
        cache = ProfileCache(max_entries=8)
        gets_per_worker = 300

        def worker(w):
            for i in range(gets_per_worker):
                key = (i % 24,)
                if cache.get(key) is None:
                    cache.put(key, (1.0, float(i)))

        self._hammer(worker)
        snapshot = cache.snapshot()
        assert (
            snapshot["hits"] + snapshot["misses"]
            == self.WORKERS * gets_per_worker
        )
        assert snapshot["entries"] <= 8

    def test_tuner_correct_with_evicting_cache_and_four_workers(self):
        # A cache too small for the variant set forces evictions *during*
        # concurrent profiling; the tuning outcome must match serial
        # tuning with no cache at all.
        app = MeanFilterApp(scale=0.05)
        variants = Paraprox(target_quality=0.9).compile(app)
        inputs = app.generate_inputs(seed=app.seed)
        spec = spec_for(DeviceKind.GPU)

        serial = GreedyTuner(spec, toq=0.9).profile(app, variants, inputs)
        cache = ProfileCache(max_entries=2)
        concurrent = GreedyTuner(
            spec, toq=0.9, workers=4, profile_cache=cache
        ).profile(app, variants, inputs)

        assert concurrent.chosen.name == serial.chosen.name
        assert [p.name for p in concurrent.profiles] == [
            p.name for p in serial.profiles
        ]
        assert len(cache) <= 2


class TestIdentityKeys:
    @pytest.fixture()
    def variants(self):
        return list(Paraprox(target_quality=0.5).compile(MeanFilterApp(scale=0.05)))

    def test_variant_identity_is_stable(self, variants):
        assert variant_identity(variants[0]) == variant_identity(variants[0])

    def test_variant_identity_distinguishes_variants(self, variants):
        identities = {variant_identity(v) for v in variants}
        assert len(identities) == len(variants)

    def test_identity_falls_back_to_name_and_knobs(self):
        class Bare:
            name = "thing"
            knobs = {"rate": 2}

        assert "thing" in variant_identity(Bare())
        assert "rate" in variant_identity(Bare())

    def test_profile_key_varies_with_inputs(self, variants):
        app = MeanFilterApp(scale=0.05)
        key1 = profile_key(
            app.name, "gpu", variants[0], app.generate_inputs(seed=1)
        )
        key2 = profile_key(
            app.name, "gpu", variants[0], app.generate_inputs(seed=2)
        )
        assert key1 != key2
        again = profile_key(
            app.name, "gpu", variants[0], app.generate_inputs(seed=1)
        )
        assert key1 == again


class TestConcurrentTuning:
    def _tune(self, workers, cache=None):
        app = MeanFilterApp(scale=0.05)
        variants = Paraprox(target_quality=0.9).compile(app)
        tuner = GreedyTuner(
            spec_for(DeviceKind.GPU), toq=0.9, workers=workers, profile_cache=cache
        )
        return tuner.profile(app, variants, app.generate_inputs(seed=app.seed))

    def test_concurrent_profile_matches_serial(self):
        serial = self._tune(workers=1)
        concurrent = self._tune(workers=4)
        assert concurrent.to_dict() == serial.to_dict()

    def test_profile_order_preserved_under_concurrency(self):
        app = MeanFilterApp(scale=0.05)
        variants = Paraprox(target_quality=0.9).compile(app)
        result = self._tune(workers=4)
        assert [p.name for p in result.profiles] == ["exact"] + [
            v.name for v in variants
        ]

    def test_cache_skips_remeasurement(self):
        app = MeanFilterApp(scale=0.05)
        variants = Paraprox(target_quality=0.9).compile(app)
        inputs = app.generate_inputs(seed=app.seed)
        cache = ProfileCache()
        runs = []
        inner = app.run_variant

        def counting_run_variant(variant, ins):
            runs.append(variant.name)
            return inner(variant, ins)

        app.run_variant = counting_run_variant
        tuner = GreedyTuner(
            spec_for(DeviceKind.GPU), toq=0.9, workers=1, profile_cache=cache
        )
        first = tuner.profile(app, variants, inputs)
        measured = len(runs)
        assert measured == len(list(variants))
        second = tuner.profile(app, variants, inputs)
        assert len(runs) == measured, "warm profile must not re-measure"
        assert cache.hits >= measured
        assert first.to_dict() == second.to_dict()

    def test_cache_remeasures_on_new_inputs(self):
        app = MeanFilterApp(scale=0.05)
        variants = Paraprox(target_quality=0.9).compile(app)
        cache = ProfileCache()
        tuner = GreedyTuner(
            spec_for(DeviceKind.GPU), toq=0.9, workers=1, profile_cache=cache
        )
        tuner.profile(app, variants, app.generate_inputs(seed=1))
        before = len(cache)
        tuner.profile(app, variants, app.generate_inputs(seed=2))
        assert len(cache) == 2 * before  # different inputs -> different keys

    def test_workers_validated(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            GreedyTuner(spec_for(DeviceKind.GPU), toq=0.9, workers=0)


class TestSessionIntegration:
    def test_session_owns_a_profile_cache_across_retunes(self):
        with ApproxSession(MeanFilterApp(scale=0.05), target_quality=0.9) as session:
            session.tune()
            warm = session.profile_cache.snapshot()
            assert warm["entries"] > 0
            session.tune(force=True)
            again = session.profile_cache.snapshot()
            assert again["entries"] == warm["entries"]
            assert again["hits"] > warm["hits"], "retune must hit the memo"

    def test_metrics_snapshot_reports_parallel_section(self):
        with ApproxSession(
            MeanFilterApp(scale=0.05), target_quality=0.9, parallel=2
        ) as session:
            session.tune()
            out = session.launch(session.app.generate_inputs(seed=3))
            assert isinstance(out, np.ndarray)
            snap = session.metrics_snapshot()
        parallel = snap["parallel"]
        assert parallel["workers"] == 2
        assert set(parallel["shards"]) == {
            "sharded_launches",
            "shards_run",
            "zero_copy",
            "overlay",
            "serial_unshardable",
            "serial_small_grid",
        }
        assert parallel["profile_cache"]["entries"] > 0
        assert isinstance(parallel["pools"], dict)

    def test_session_parallel_arg_overrides_config(self):
        with ApproxSession(
            MeanFilterApp(scale=0.05), target_quality=0.9, parallel=3
        ) as session:
            assert session.parallel_workers == 3
        with ApproxSession(MeanFilterApp(scale=0.05), target_quality=0.9) as session:
            assert session.parallel_workers == 1  # config default

    def test_config_knob_flows_through(self):
        from repro import ParaproxConfig

        config = ParaproxConfig(parallel_workers=2)
        with ApproxSession(
            MeanFilterApp(scale=0.05), target_quality=0.9, config=config
        ) as session:
            assert session.parallel_workers == 2

    def test_config_rejects_bad_parallel_workers(self):
        from repro import ParaproxConfig
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ParaproxConfig(parallel_workers=0)
        with pytest.raises(ConfigError):
            ParaproxConfig(parallel_workers="fast")
