"""Process shard executor: bit-exactness, containment, fault injection.

The process lane must be indistinguishable from serial codegen execution
— same bytes in the caller's buffers, same exceptions — while surviving
worker death and hung shards.  Faults are injected through the
``REPRO_PROC_INJECT`` environment hook: workers inherit the environment
at spawn (fork), so every test that sets it shuts the pool down first.
"""

import dataclasses

import numpy as np
import pytest

import kernel_zoo as zoo
import repro
from repro import LaunchOptions
from repro.codegen.cache import get_compiled
from repro.engine import Grid, bind_arguments, launch
from repro.engine.launch import resolve_kernel, resolve_module
from repro.errors import ExecutionError
from repro.parallel import procpool, shutdown_process_pool
from repro.parallel.analysis import analyze_shardability
from repro.parallel.shard import plan_shards
from repro.resilience import GuardPolicy

#: Two workers is enough to prove the lane on a single-core container.
PROC = LaunchOptions(
    backend="codegen", parallel=2, executor="process", min_shard_threads=1
)
N = 1 << 12


@pytest.fixture(autouse=True)
def _fresh_pool(monkeypatch):
    """Isolate every test's worker set (and its inherited environment)."""
    monkeypatch.delenv(procpool.INJECT_ENV, raising=False)
    shutdown_process_pool()
    yield
    shutdown_process_pool()


def _square_args(n=N, seed=0):
    rng = np.random.default_rng(seed)
    return [np.zeros(n, np.float32), rng.random(n, dtype=np.float32), n]


def _run_serial(kernel, grid, args):
    ref = [a.copy() if isinstance(a, np.ndarray) else a for a in args]
    launch(kernel, grid, ref, options=LaunchOptions(backend="codegen"))
    return ref


class TestBitExactness:
    def test_direct_mode_matches_serial(self):
        grid = Grid.for_elements(N)
        args = _square_args()
        serial = _run_serial(zoo.square_map, grid, args)
        before = procpool.stats_snapshot()
        launch(zoo.square_map, grid, args, options=PROC)
        after = procpool.stats_snapshot()
        assert np.array_equal(args[0], serial[0])
        assert after["launches"] == before["launches"] + 1
        assert after["direct"] == before["direct"] + 1
        assert after["shm_bytes"] > before["shm_bytes"]
        assert after["shards_run"] > before["shards_run"]

    def test_diff_mode_matches_serial_on_2d_grid(self):
        # tile_scale2d's writes are not provably disjoint, so the lane
        # must assemble via per-shard byte diffs against the pristine
        # staging copy.
        grid = Grid.for_image(50, 30)
        args = [np.zeros(1500, np.float32),
                np.random.default_rng(4).random(1500, dtype=np.float32),
                50, 30, 1.7]
        serial = _run_serial(zoo.tile_scale2d, grid, args)
        before = procpool.stats_snapshot()
        launch(zoo.tile_scale2d, grid, args, options=PROC)
        after = procpool.stats_snapshot()
        assert np.array_equal(args[0], serial[0])
        assert after["diff"] == before["diff"] + 1

    def test_forced_diff_mode_on_disjoint_kernel(self):
        """Diff assembly is correct even where direct would have been
        legal — the overlay must reconstruct the exact same bytes."""
        fn = resolve_kernel(zoo.square_map)
        mod = resolve_module(zoo.square_map)
        grid = Grid.for_elements(N)
        compiled = get_compiled(fn, mod, grid, True)
        args = _square_args(seed=9)
        serial = _run_serial(zoo.square_map, grid, args)
        bound = bind_arguments(fn, args)
        analysis = analyze_shardability(fn, mod, fingerprint=compiled.fingerprint)
        forced = dataclasses.replace(analysis, disjoint_writes=False)
        plan = plan_shards(grid.total_blocks, 2)
        mode = procpool.run_process_sharded(
            fn, mod, compiled, grid, bound, plan, 2, forced
        )
        assert mode == "diff"
        assert np.array_equal(args[0], serial[0])

    def test_shards_stride_across_workers(self):
        """Every shard of the plan runs exactly once (the striding
        assignment covers the plan with no overlap)."""
        grid = Grid.for_elements(N)
        plan = plan_shards(grid.total_blocks, 2)
        args = _square_args(seed=2)
        before = procpool.stats_snapshot()
        launch(zoo.square_map, grid, args, options=PROC)
        after = procpool.stats_snapshot()
        assert after["shards_run"] - before["shards_run"] == len(plan)


class TestContainment:
    def test_dead_worker_is_replaced_and_task_retried(self, tmp_path, monkeypatch):
        once = tmp_path / "die-once"
        # Shard 0's worker hard-exits the first time it sees the shard;
        # the once-file makes the respawned worker run it normally.
        monkeypatch.setenv(procpool.INJECT_ENV, f"die@0:{once}")
        grid = Grid.for_elements(N)
        args = _square_args(seed=5)
        serial = _run_serial(zoo.square_map, grid, args)
        before = procpool.stats_snapshot()
        launch(zoo.square_map, grid, args, options=PROC)
        after = procpool.stats_snapshot()
        assert once.exists(), "the injected fault actually fired"
        assert np.array_equal(args[0], serial[0])
        assert after["workers_replaced"] >= before["workers_replaced"] + 1

    def test_persistent_death_falls_back_to_serial(self, monkeypatch):
        # No once-file: the shard kills every worker that picks it up.
        # After the respawn budget the launch must still produce exact
        # results via in-parent re-execution.
        monkeypatch.setenv(procpool.INJECT_ENV, "die@0:")
        grid = Grid.for_elements(N)
        args = _square_args(seed=6)
        serial = _run_serial(zoo.square_map, grid, args)
        before = procpool.stats_snapshot()
        launch(zoo.square_map, grid, args, options=PROC)
        after = procpool.stats_snapshot()
        assert np.array_equal(args[0], serial[0])
        assert after["serial_reexecutions"] == before["serial_reexecutions"] + 1

    def test_hung_shard_hits_guard_deadline(self, monkeypatch):
        monkeypatch.setenv(procpool.INJECT_ENV, "hang@0:30")
        grid = Grid.for_elements(N)
        args = _square_args(seed=7)
        serial = _run_serial(zoo.square_map, grid, args)
        before = procpool.stats_snapshot()
        with repro.options(guard=GuardPolicy(deadline_seconds=0.5)):
            launch(zoo.square_map, grid, args, options=PROC)
        after = procpool.stats_snapshot()
        assert np.array_equal(args[0], serial[0])
        assert after["deadline_timeouts"] == before["deadline_timeouts"] + 1
        assert after["serial_reexecutions"] == before["serial_reexecutions"] + 1

    def test_kernel_exception_propagates_and_buffers_stay_clean(self):
        rng = np.random.default_rng(8)
        idx = rng.integers(0, N, N).astype(np.int32)
        idx[-1] = N + 7  # out of range, in the last block's territory
        out = np.zeros(N, np.float32)
        args = [out, rng.random(N, dtype=np.float32) * 50 + 1, idx, N]
        with pytest.raises(ExecutionError, match="out of range"):
            launch(zoo.gather_expensive, Grid.for_elements(N), args, options=PROC)
        # Direct mode runs on staged copies; a failed launch must leave
        # the caller's buffers untouched.
        assert not out.any()


class TestPoolLifecycle:
    def test_pool_grows_and_never_shrinks(self):
        pool = procpool.get_process_pool(2)
        assert pool.size >= 2
        bigger = procpool.get_process_pool(3)
        assert bigger is pool and pool.size >= 3
        assert procpool.get_process_pool(1).size >= 3

    def test_shutdown_then_relaunch(self):
        grid = Grid.for_elements(N)
        args = _square_args(seed=11)
        serial = _run_serial(zoo.square_map, grid, args)
        launch(zoo.square_map, grid, args, options=PROC)
        shutdown_process_pool()
        args2 = _square_args(seed=11)
        launch(zoo.square_map, grid, args2, options=PROC)
        assert np.array_equal(args2[0], serial[0])


class TestObservability:
    def test_proc_spans_reach_the_trace_stream(self):
        from repro.obs import trace as obs_trace

        was_enabled = obs_trace.enabled()
        obs_trace.enable()
        try:
            obs_trace.drain_records()
            grid = Grid.for_elements(N)
            launch(zoo.square_map, grid, _square_args(seed=12), options=PROC)
            records = obs_trace.drain_records()
        finally:
            if not was_enabled:
                obs_trace.disable()
        names = [r["name"] for r in records if r["type"] == "span"]
        assert "proc.launch" in names
        shard_spans = [
            r for r in records
            if r["type"] == "span" and r["name"] == "proc.shard"
        ]
        assert shard_spans, "worker-reported shard spans are emitted"
        parent = next(r for r in records if r["name"] == "proc.launch")
        assert all(s["trace_id"] == parent["trace_id"] for s in shard_spans)
