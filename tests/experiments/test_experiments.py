"""Smoke + shape tests for the experiment harness (the heavyweight shape
assertions live in benchmarks/; these cover the result containers and the
fast experiments)."""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.base import ExperimentResult, geometric_mean
from repro.experiments import fig05, fig18, table1


class TestResultContainer:
    def _result(self):
        r = ExperimentResult("figX", "demo", ["a", "b"])
        r.rows = [{"a": 1, "b": 2.5}, {"a": 2, "b": 3.5}]
        return r

    def test_column(self):
        assert self._result().column("a") == [1, 2]

    def test_row_for(self):
        assert self._result().row_for("a", 2)["b"] == 3.5
        with pytest.raises(KeyError):
            self._result().row_for("a", 99)

    def test_to_text_contains_header_and_rows(self):
        text = self._result().to_text()
        assert "figX" in text and "2.500" in text

    def test_missing_cells_render_empty(self):
        r = ExperimentResult("f", "t", ["a", "b"])
        r.rows = [{"a": 1}]
        assert "1" in r.to_text()

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0


class TestExperimentRegistry:
    def test_every_paper_artifact_has_an_experiment(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1",
            "ablations",
            "scale_study",
            "fig04",
            "fig05",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "fig18",
        }

    def test_modules_expose_run(self):
        for module in ALL_EXPERIMENTS.values():
            assert callable(module.run)


class TestFastExperiments:
    def test_table1_covers_all_apps(self):
        result = table1.run()
        assert len(result.rows) == 13
        assert all(r["detected_patterns"] for r in result.rows)

    def test_fig05_bands(self):
        result = fig05.run()
        assert result.rows[0]["natural_images_pct"] > 70.0

    def test_fig18_monotone(self):
        result = fig18.run(points=5)
        q = result.column("quality")
        assert q == sorted(q)

    def test_cli_runs_selected_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig18", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "fig18" in out and "quality" in out

    def test_cli_save_writes_text_and_json(self, tmp_path, capsys):
        from repro.experiments.__main__ import main
        from repro.experiments.base import ExperimentResult

        assert main(["fig18", "--save", str(tmp_path)]) == 0
        capsys.readouterr()
        assert (tmp_path / "fig18.txt").exists()
        restored = ExperimentResult.from_json(
            (tmp_path / "fig18.json").read_text()
        )
        assert restored.experiment == "fig18"
        assert len(restored.rows) == 9

    def test_json_round_trip_preserves_rows(self):
        from repro.experiments.base import ExperimentResult

        r = ExperimentResult("figX", "demo", ["a", "b"])
        r.rows = [{"a": 1, "b": 2.5}]
        r.notes = ["hello"]
        back = ExperimentResult.from_json(r.to_json())
        assert back.rows == r.rows and back.notes == r.notes
