"""A zoo of kernels shared across the test suite.

Kernels must live in a real source file (the frontend reads them with
``inspect.getsource``), so the common ones are collected here instead of
being defined inline in tests.
"""

import numpy as np

from repro.kernel import kernel, device
from repro.kernel.dsl import *  # noqa: F401,F403


# -- map / memoization candidates -------------------------------------------


@device
def cnd(d: f32) -> f32:
    """Cumulative normal distribution (polynomial approximation)."""
    k = 1.0 / (1.0 + 0.2316419 * fabs(d))
    w = k * (
        0.31938153
        + k * (-0.356563782 + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429)))
    )
    ret = 1.0 - 0.3989422804 * exp(-0.5 * d * d) * w
    return ret if d > 0.0 else 1.0 - ret


@device
def bs_body(s: f32, x: f32, t: f32, r: f32, v: f32) -> f32:
    """Black-Scholes call price (the paper's BlackScholesBody)."""
    srt = v * sqrt(t)
    d1 = (log(s / x) + (r + 0.5 * v * v) * t) / srt
    d2 = d1 - srt
    return s * cnd(d1) - x * exp(-r * t) * cnd(d2)


@kernel
def black_scholes(
    call: array_f32, sp: array_f32, xp: array_f32, tp: array_f32, r: f32, v: f32, n: i32
):
    i = global_id()
    if i < n:
        call[i] = bs_body(sp[i], xp[i], tp[i], r, v)


@device
def cheap_square(x: f32) -> f32:
    """Too cheap to be worth memoizing (fails the Eq.-1 test)."""
    return x * x


@kernel
def square_map(out: array_f32, x: array_f32, n: i32):
    i = global_id()
    if i < n:
        out[i] = cheap_square(x[i])


@kernel
def gather_expensive(out: array_f32, x: array_f32, idx: array_i32, n: i32):
    i = global_id()
    if i < n:
        out[i] = bs_body(x[idx[i]], 100.0, 1.0, 0.02, 0.3)


@device
def impure_fn(x: f32) -> f32:
    printf(x)
    return x


@kernel
def impure_map(out: array_f32, x: array_f32, n: i32):
    i = global_id()
    if i < n:
        out[i] = impure_fn(x[i])


# -- stencil -----------------------------------------------------------------


@kernel
def mean3x3(out: array_f32, img: array_f32, w: i32, h: i32):
    gid = global_id()
    y = gid / w
    x = gid % w
    if (y > 0) and (y < h - 1) and (x > 0) and (x < w - 1):
        acc = 0.0
        acc += img[(y - 1) * w + (x - 1)]
        acc += img[(y - 1) * w + x]
        acc += img[(y - 1) * w + (x + 1)]
        acc += img[y * w + (x - 1)]
        acc += img[y * w + x]
        acc += img[y * w + (x + 1)]
        acc += img[(y + 1) * w + (x - 1)]
        acc += img[(y + 1) * w + x]
        acc += img[(y + 1) * w + (x + 1)]
        out[gid] = acc / 9.0
    else:
        if (y >= 0) and (y < h) and (x >= 0):
            out[gid] = img[gid]


@kernel
def row_stencil(out: array_f32, x: array_f32, n: i32):
    i = global_id()
    if (i >= 3) and (i < n - 3):
        acc = 0.0
        for j in range(-3, 4):
            acc += x[i + j]
        out[i] = acc / 7.0


# -- reduction ---------------------------------------------------------------


@kernel
def sum_chunks(out: array_f32, x: array_f32, n: i32, chunk: i32):
    """Phase-I style reduction: each thread sums a contiguous chunk."""
    i = global_id()
    acc = 0.0
    for k in range(0, 4096):
        idx = i * chunk + k
        if (k < chunk) and (idx < n):
            acc += x[idx]
    if i * chunk < n:
        out[i] = acc


@kernel
def atomic_histogram(hist: array_i32, x: array_i32, n: i32, chunk: i32):
    i = global_id()
    for k in range(0, 64):
        idx = i * chunk + k
        if (k < chunk) and (idx < n):
            atomic_add(hist, x[idx], 1)


@kernel
def min_reduce(out: array_f32, x: array_f32, n: i32, chunk: i32):
    i = global_id()
    best = 3.4e38
    for k in range(0, 4096):
        idx = i * chunk + k
        if (k < chunk) and (idx < n):
            best = fmin(best, x[idx])
    if i * chunk < n:
        out[i] = best


# -- scan (three-phase, paper Fig 9) ----------------------------------------

SCAN_BLOCK = 64


@kernel
def scan_phase1(partial: array_f32, sums: array_f32, x: array_f32):
    """In-block Hillis-Steele inclusive scan; also emits per-block sums."""
    sh = shared(SCAN_BLOCK, f32)
    t = thread_id()
    g = global_id()
    sh[t] = x[g]
    barrier()
    for d in range(0, 6):
        off = 1 << d
        prev = sh[t - off] if t >= off else 0.0
        barrier()
        sh[t] = sh[t] + prev
        barrier()
    partial[g] = sh[t]
    if t == SCAN_BLOCK - 1:
        sums[block_id()] = sh[t]


@kernel
def noop(out: array_f32, x: array_f32, n: i32):
    i = global_id()
    if i < n:
        out[i] = x[i]


def make_image(w=64, h=64, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((h, w)).astype(np.float32)


# -- codegen differential coverage ------------------------------------------


@device
def clamp01(x: f32) -> f32:
    """Multiple divergent returns inside a device function."""
    if x < 0.0:
        return 0.0
    if x > 1.0:
        return 1.0
    return x


@kernel
def clamp_map(out: array_f32, x: array_f32, n: i32):
    i = global_id()
    if i < n:
        out[i] = clamp01(x[i] * 1.5 - 0.25)


@kernel
def divergent_return(out: array_f32, x: array_f32, n: i32):
    """Lanes deactivate at different program points (guard + data return)."""
    i = global_id()
    if i >= n:
        return
    v = x[i]
    if v < 0.25:
        out[i] = 0.0
        return
    out[i] = sqrt(v)


@kernel
def tile_scale2d(out: array_f32, img: array_f32, w: i32, h: i32, gain: f32):
    """True 2-D launch addressing through the x/y intrinsic pairs."""
    x = global_id_x()
    y = global_id_y()
    if (x < w) and (y < h):
        out[y * w + x] = img[y * w + x] * gain
