"""The ``python -m repro.registry`` maintenance CLI."""

import json

import pytest

from repro.registry.__main__ import main
from repro.registry.pareto import ParetoPoint
from repro.registry.store import VariantRegistry


def P(variant, quality=0.9, speedup=2.0, **kw):
    kw.setdefault("knobs", {"rate": 2})
    return ParetoPoint(variant=variant, quality=quality, speedup=speedup, **kw)


@pytest.fixture()
def store(tmp_path):
    root = tmp_path / "reg"
    registry = VariantRegistry(root)
    registry.record_many(
        "app:k/gpu/s1",
        [P("fast", 0.92, 4.0), P("safe", 0.99, 1.5), P("dom", 0.5, 1.0)],
    )
    return root


class TestInspect:
    def test_inspect_prints_keys_and_fronts(self, store, capsys):
        assert main(["inspect", str(store)]) == 0
        out = capsys.readouterr().out
        assert "app:k/gpu/s1" in out
        assert "fast" in out and "safe" in out
        assert "3 points" in out

    def test_bare_directory_means_inspect(self, store, capsys):
        assert main([str(store)]) == 0
        assert "app:k/gpu/s1" in capsys.readouterr().out

    def test_inspect_json_is_machine_readable(self, store, capsys):
        assert main(["inspect", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        detail = payload["keys_detail"]["app:k/gpu/s1"]
        assert detail["points"] == 3
        assert {p["variant"] for p in detail["front"]} == {"fast", "safe"}
        assert detail["surrogate"]["trained"] is True

    def test_no_arguments_prints_help(self, capsys):
        assert main([]) == 2
        assert "inspect" in capsys.readouterr().out


class TestMergeAndGc:
    def test_merge_absorbs_sources(self, tmp_path, capsys):
        a, b, dest = tmp_path / "a", tmp_path / "b", tmp_path / "dest"
        VariantRegistry(a).record("k1", P("x"))
        VariantRegistry(b).record("k2", P("y"))
        assert main(["merge", str(dest), str(a), str(b)]) == 0
        assert set(VariantRegistry(dest).keys()) == {"k1", "k2"}
        assert "merged 2 points" in capsys.readouterr().out

    def test_gc_prunes_dominated_points(self, store, capsys):
        assert main(["gc", str(store)]) == 0
        survivors = {
            p.variant for p in VariantRegistry(store).points("app:k/gpu/s1")
        }
        assert survivors == {"fast", "safe"}
        assert "3 -> 2 points" in capsys.readouterr().out

    def test_gc_keep_all_compacts_without_pruning(self, store):
        assert main(["gc", str(store), "--keep-all"]) == 0
        assert len(VariantRegistry(store).points("app:k/gpu/s1")) == 3


class TestIngest:
    def test_ingest_folds_stamped_samples(self, store, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        lines = [
            json.dumps(
                {"kind": "quality_sample", "registry_key": "app:k/gpu/s1",
                 "variant": "fast", "quality": 0.70}
            ),
            "not json at all",
            json.dumps({"kind": "quality_sample", "variant": "fast",
                        "quality": 0.1}),
        ]
        trace.write_text("\n".join(lines) + "\n", encoding="utf-8")
        assert main(["ingest", str(store), str(trace)]) == 0
        assert "ingested 1 quality" in capsys.readouterr().out
        fast = next(
            p for p in VariantRegistry(store).points("app:k/gpu/s1")
            if p.variant == "fast"
        )
        assert fast.samples == 2
        assert fast.quality == pytest.approx((0.92 + 0.70) / 2)


class TestSmoke:
    def test_smoke_two_processes_share_one_store(self, tmp_path, capsys):
        root = tmp_path / "smoke"
        assert main(
            ["--smoke", "--procs", "2", "--rounds", "2", "--dir", str(root)]
        ) == 0
        out = capsys.readouterr().out
        assert "smoke OK" in out
        registry = VariantRegistry(root)
        assert registry.recovered_lines == 0
        assert all(len(registry.points(k)) == 8 for k in registry.keys())
