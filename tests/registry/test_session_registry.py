"""Serving integration: sessions and frontends over a shared registry."""

import numpy as np
import pytest

from repro.apps.gaussian import MeanFilterApp
from repro.obs import trace as obs_trace
from repro.obs.timeline import timeline
from repro.registry import VariantRegistry
from repro.serve import ApproxSession, ServeFrontend
from repro.serve.monitor import MonitorConfig


def make_session(registry=None, **kw):
    return ApproxSession(
        MeanFilterApp(scale=0.05), target_quality=0.9, registry=registry, **kw
    )


class TestSessionSeedModes:
    def test_registryless_session_reports_disabled(self):
        with make_session() as session:
            session.tune()
            snap = session.metrics_snapshot()
        assert snap["registry"] == {"enabled": False}

    def test_first_session_is_cold_second_is_warm(self):
        registry = VariantRegistry()
        with make_session(registry) as session:
            first = session.tune()
            assert first.seed_mode == "cold"
        with make_session(registry) as session:
            second = session.tune()
            assert second.seed_mode == "warm"
            assert second.chosen.name == first.chosen.name
            snap = session.metrics_snapshot()
        assert snap["registry"]["seed_mode"] == "warm"
        assert snap["registry"]["key"]
        assert snap["registry"]["keys"] == 1

    def test_path_argument_opens_a_store(self, tmp_path):
        with make_session(tmp_path / "reg") as session:
            session.tune()
            assert isinstance(session.registry, VariantRegistry)
        assert list((tmp_path / "reg").glob("seg-*.jsonl"))

    def test_warm_restart_retunes_from_the_registry(self):
        registry = VariantRegistry()
        with make_session(registry) as session:
            cold = session.tune()
            restarted = session.warm_restart()
            assert restarted.seed_mode == "warm"
            assert restarted.chosen.name == cold.chosen.name
            # warm_restart discards the persisted result: this is a real
            # re-tune, not a resume.
            assert not restarted.resumed

    def test_plain_retune_resumes_without_measuring(self):
        registry = VariantRegistry()
        with make_session(registry) as session:
            session.tune()
        with make_session(registry) as session:
            session.tune()
            snap = session.metrics_snapshot()
            assert snap["registry"]["seed_mode"] == "warm"


class TestAttachRegistry:
    def test_attach_before_tune_takes_effect(self):
        registry = VariantRegistry()
        with make_session() as session:
            session.attach_registry(registry)
            assert session.registry is registry
            session.tune()
        assert registry.keys()

    def test_attach_does_not_replace_an_existing_registry(self):
        mine = VariantRegistry()
        other = VariantRegistry()
        with make_session(mine) as session:
            session.attach_registry(other)
            assert session.registry is mine

    def test_frontend_sessions_adopt_the_shared_registry(self):
        registry = VariantRegistry()
        with ServeFrontend(registry=registry) as frontend:
            with make_session() as session:
                inputs = session.app.generate_inputs(seed=3)
                out = frontend.submit_app(session, inputs).result(timeout=60)
                assert isinstance(out, np.ndarray)
                assert session.registry is registry
        assert registry.keys()

    def test_frontend_without_registry_leaves_sessions_alone(self):
        with ServeFrontend() as frontend:
            with make_session() as session:
                inputs = session.app.generate_inputs(seed=3)
                frontend.submit_app(session, inputs).result(timeout=60)
                assert session.registry is None


class TestTimelineStamping:
    def _drain(self):
        timeline().clear()
        obs_trace.drain_records()

    def test_quality_samples_carry_the_registry_key(self):
        registry = VariantRegistry()
        was_enabled = obs_trace.enabled()
        obs_trace.enable()
        self._drain()
        try:
            with make_session(
                registry, monitor=MonitorConfig(sample_every=1)
            ) as session:
                session.tune()
                inputs = session.app.generate_inputs(seed=5)
                for _ in range(3):
                    session.launch(inputs)
                key = session.metrics_snapshot()["registry"]["key"]
            samples = [
                e for e in timeline().entries() if e["kind"] == "quality_sample"
            ]
            assert samples
            assert all(e["registry_key"] == key for e in samples)
        finally:
            self._drain()
            if not was_enabled:
                obs_trace.disable()

    def test_registryless_samples_omit_the_key(self):
        was_enabled = obs_trace.enabled()
        obs_trace.enable()
        self._drain()
        try:
            with make_session(
                monitor=MonitorConfig(sample_every=1)
            ) as session:
                session.tune()
                session.launch(session.app.generate_inputs(seed=5))
            samples = [
                e for e in timeline().entries() if e["kind"] == "quality_sample"
            ]
            assert samples
            assert all("registry_key" not in e for e in samples)
        finally:
            self._drain()
            if not was_enabled:
                obs_trace.disable()

    def test_exported_timeline_feeds_back_into_the_registry(self):
        registry = VariantRegistry()
        was_enabled = obs_trace.enabled()
        obs_trace.enable()
        self._drain()
        try:
            with make_session(
                registry, monitor=MonitorConfig(sample_every=1)
            ) as session:
                session.tune()
                inputs = session.app.generate_inputs(seed=5)
                for _ in range(3):
                    session.launch(inputs)
            entries = list(timeline().entries())
            absorbed = registry.ingest_timeline(entries)
            assert absorbed >= 1
        finally:
            self._drain()
            if not was_enabled:
                obs_trace.disable()


class TestSnapshotShape:
    def test_registry_section_contains_store_stats(self):
        registry = VariantRegistry()
        with make_session(registry) as session:
            session.tune()
            snap = session.metrics_snapshot()["registry"]
        assert snap["root"] is None  # in-memory store
        assert snap["points"] >= 1
        assert snap["seed_mode"] in ("cold", "warm")
        assert isinstance(snap["key"], str) and snap["key"]
