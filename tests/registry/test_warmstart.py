"""Registry-seeded tuning: warm starts, budgets, fallbacks, write-back."""

import pytest

from repro import DeviceKind, Paraprox
from repro.apps.gaussian import MeanFilterApp
from repro.device import spec_for
from repro.registry import VariantRegistry
from repro.runtime.tuner import GreedyTuner


@pytest.fixture()
def setup():
    app = MeanFilterApp(scale=0.05)
    variants = list(Paraprox(target_quality=0.9).compile(app))
    inputs = app.generate_inputs(seed=app.seed)
    spec = spec_for(DeviceKind.GPU)
    return app, variants, inputs, spec


def tune(setup, registry, exclude=(), seed=None):
    app, variants, inputs, spec = setup
    if seed is not None:
        inputs = app.generate_inputs(seed=seed)
    tuner = GreedyTuner(spec, toq=0.9, registry=registry)
    result = tuner.profile(app, variants, inputs, exclude=exclude)
    return tuner, result


class TestSeedModes:
    def test_no_registry_reports_off_mode(self, setup):
        tuner, result = tune(setup, registry=None)
        assert tuner.last_seed_mode == "off"
        assert result.seed_mode == "cold"
        assert tuner.last_registry_key is None

    def test_first_tune_is_cold_and_populates_registry(self, setup):
        registry = VariantRegistry()
        tuner, _ = tune(setup, registry)
        assert tuner.last_seed_mode == "cold"
        assert tuner.last_measured == len(setup[1])
        assert registry.points(tuner.last_registry_key)

    def test_second_tune_is_warm_and_agrees_with_cold(self, setup):
        registry = VariantRegistry()
        _, cold = tune(setup, registry)
        tuner, warm = tune(setup, registry)
        assert tuner.last_seed_mode == "warm"
        assert warm.seed_mode == "warm"
        assert warm.chosen.name == cold.chosen.name
        assert warm.chosen.quality >= 0.9

    def test_warm_budget_is_at_most_half_the_ladder(self, setup):
        registry = VariantRegistry()
        tune(setup, registry)
        tuner, _ = tune(setup, registry)
        assert tuner.last_measured <= max(1, len(setup[1]) // 2)

    def test_warm_start_transfers_across_input_seeds(self, setup):
        registry = VariantRegistry()
        _, cold = tune(setup, registry, seed=0)
        tuner, warm = tune(setup, registry, seed=1234)
        assert tuner.last_seed_mode == "warm"
        assert warm.chosen.name == cold.chosen.name


class TestPredictedProfiles:
    def test_unmeasured_rungs_are_marked_predicted(self, setup):
        registry = VariantRegistry()
        tune(setup, registry)
        tuner, warm = tune(setup, registry)
        predicted = [p for p in warm.profiles if p.predicted]
        measured = [
            p for p in warm.profiles if not p.predicted and not p.is_exact
        ]
        assert len(measured) == tuner.last_measured
        assert len(predicted) == len(setup[1]) - tuner.last_measured

    def test_chosen_is_never_a_predicted_profile(self, setup):
        registry = VariantRegistry()
        tune(setup, registry)
        _, warm = tune(setup, registry)
        assert not warm.chosen.predicted

    def test_predicted_profiles_survive_serialization(self, setup):
        from repro.runtime.tuner import TuningResult

        registry = VariantRegistry()
        tune(setup, registry)
        _, warm = tune(setup, registry)
        clone = TuningResult.from_dict(warm.to_dict())
        assert [p.predicted for p in clone.profiles] == [
            p.predicted for p in warm.profiles
        ]
        assert clone.seed_mode == "warm"


class TestFallbacks:
    def test_thin_evidence_falls_back_to_cold(self, setup):
        registry = VariantRegistry(min_points=99)
        tune(setup, registry)
        tuner, _ = tune(setup, registry)
        assert tuner.last_seed_mode == "cold"

    def test_stale_variant_names_fall_back_to_cold(self, setup):
        from repro.registry.pareto import ParetoPoint

        app, variants, inputs, spec = setup
        registry = VariantRegistry()
        tuner = GreedyTuner(spec, toq=0.9, registry=registry)
        key = registry.resolve_key(app, spec, inputs)
        registry.record_many(
            key,
            [
                ParetoPoint(variant=f"renamed-{i}", quality=0.95, speedup=2.0)
                for i in range(4)
            ],
        )
        tuner.profile(app, variants, inputs)
        assert tuner.last_seed_mode == "cold"

    def test_infeasible_front_falls_back_to_cold(self, setup):
        from repro.registry.pareto import ParetoPoint

        app, variants, inputs, spec = setup
        registry = VariantRegistry()
        key = registry.resolve_key(app, spec, inputs)
        registry.record_many(
            key,
            [
                ParetoPoint(
                    variant=v.name, quality=0.10 + 0.01 * i, speedup=2.0 + i
                )
                for i, v in enumerate(variants)
            ],
        )
        tuner = GreedyTuner(spec, toq=0.9, registry=registry)
        tuner.profile(app, variants, inputs)
        assert tuner.last_seed_mode == "cold"

    def test_warm_miss_steps_down_to_a_safer_rung(self, setup):
        # Poison the registry so the knee points at the *riskiest* rung;
        # refinement must measure its way down to something feasible.
        from repro.registry.pareto import ParetoPoint

        app, variants, inputs, spec = setup
        cold = GreedyTuner(spec, toq=0.9).profile(app, variants, inputs)
        truth = {p.name: p for p in cold.profiles if not p.is_exact}
        registry = VariantRegistry()
        key = registry.resolve_key(app, spec, inputs)
        registry.record_many(
            key,
            [
                ParetoPoint(
                    variant=name,
                    quality=0.99,  # lies: everything claims feasibility
                    speedup=truth[name].speedup,
                )
                for name in truth
            ],
        )
        tuner = GreedyTuner(spec, toq=0.9, registry=registry)
        result = tuner.profile(app, variants, inputs)
        assert tuner.last_seed_mode == "warm"
        # The chosen rung is genuinely feasible (measured, not believed).
        assert not result.chosen.predicted
        assert result.chosen.is_exact or result.chosen.quality >= 0.9


class TestExclusionsAndWriteBack:
    def test_excluded_variant_is_never_chosen_warm(self, setup):
        registry = VariantRegistry()
        _, cold = tune(setup, registry)
        banned = cold.chosen.name
        if cold.chosen.is_exact:
            pytest.skip("cold tuning already falls back to exact")
        _, warm = tune(setup, registry, exclude=(banned,))
        assert warm.chosen.name != banned

    def test_every_measured_profile_is_written_back(self, setup):
        registry = VariantRegistry()
        tuner, _ = tune(setup, registry)
        stored = {p.variant for p in registry.points(tuner.last_registry_key)}
        assert stored == {v.name for v in setup[1]}

    def test_predicted_profiles_are_not_written_back(self, setup):
        registry = VariantRegistry()
        tune(setup, registry)
        before = {
            (p.variant, p.samples)
            for key in registry.keys()
            for p in registry.points(key)
        }
        tuner, warm = tune(setup, registry)
        measured = {
            p.name for p in warm.profiles if not p.predicted and not p.is_exact
        }
        after = {
            (p.variant, p.samples)
            for key in registry.keys()
            for p in registry.points(key)
        }
        bumped = {v for (v, s) in after - before}
        assert bumped == measured
