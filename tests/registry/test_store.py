"""The on-disk registry: durability, concurrency, recovery, maintenance."""

import json
import threading

import pytest

from repro.registry.pareto import ParetoPoint
from repro.registry.store import VariantRegistry, resolve_registry


def P(variant, quality=0.9, speedup=2.0, **kw):
    kw.setdefault("knobs", {"rate": 4})
    kw.setdefault("identity", f"id-{variant}")
    return ParetoPoint(variant=variant, quality=quality, speedup=speedup, **kw)


class TestBasics:
    def test_memory_registry_round_trips(self):
        registry = VariantRegistry()
        registry.record("k", P("a"))
        front = registry.lookup("k")
        assert [p.variant for p in front] == ["a"]
        assert registry.stats()["root"] is None

    def test_disk_registry_survives_reopen(self, tmp_path):
        VariantRegistry(tmp_path).record_many(
            "k", [P("a", 0.95, 2.0), P("b", 0.85, 4.0)]
        )
        reopened = VariantRegistry(tmp_path)
        assert {p.variant for p in reopened.lookup("k")} == {"a", "b"}

    def test_lookup_miss_is_empty(self, tmp_path):
        assert VariantRegistry(tmp_path).lookup("nope") == []

    def test_repeat_records_merge_not_duplicate(self, tmp_path):
        registry = VariantRegistry(tmp_path)
        registry.record("k", P("a", 0.90, samples=1))
        registry.record("k", P("a", 0.96, samples=1))
        points = registry.points("k")
        assert len(points) == 1 and points[0].samples == 2

    def test_knee_for_applies_margin(self, tmp_path):
        registry = VariantRegistry(tmp_path, margin=0.0)
        registry.record_many("k", [P("safe", 0.99, 1.5), P("mid", 0.95, 3.0)])
        assert registry.knee_for("k", toq=0.90).variant == "mid"

    def test_record_observation_refines_existing_point(self, tmp_path):
        registry = VariantRegistry(tmp_path)
        registry.record("k", P("a", 0.90, 2.0, samples=1))
        assert registry.record_observation("k", "a", 0.80)
        point = registry.points("k")[0]
        assert point.quality == pytest.approx(0.85)
        assert point.speedup == pytest.approx(2.0)  # reused, not diluted

    def test_record_observation_unknown_variant_is_noop(self, tmp_path):
        registry = VariantRegistry(tmp_path)
        assert not registry.record_observation("k", "ghost", 0.9)

    def test_ingest_timeline_folds_stamped_samples(self, tmp_path):
        registry = VariantRegistry(tmp_path)
        registry.record("k", P("a", 0.90, 2.0))
        absorbed = registry.ingest_timeline(
            [
                {"kind": "quality_sample", "registry_key": "k",
                 "variant": "a", "quality": 0.70},
                {"kind": "quality_sample", "variant": "a", "quality": 0.1},
                {"kind": "quality_sample", "registry_key": "k",
                 "variant": "exact", "quality": 1.0},
                {"kind": "knob_change", "registry_key": "k", "variant": "a"},
            ]
        )
        assert absorbed == 1
        assert registry.points("k")[0].quality == pytest.approx(0.80)


class TestCrossProcessVisibility:
    def test_second_handle_sees_appends_on_lookup(self, tmp_path):
        writer = VariantRegistry(tmp_path)
        reader = VariantRegistry(tmp_path)
        writer.record("k", P("a"))
        assert [p.variant for p in reader.lookup("k")] == ["a"]

    def test_interleaved_writers_lose_nothing(self, tmp_path):
        one = VariantRegistry(tmp_path)
        two = VariantRegistry(tmp_path)
        one.record("k", P("a"))
        two.record("k", P("b"))
        one.record("k", P("c"))
        assert {p.variant for p in VariantRegistry(tmp_path).points("k")} == {
            "a", "b", "c",
        }

    def test_threaded_writers_keep_store_consistent(self, tmp_path):
        registry = VariantRegistry(tmp_path, segment_bytes=1024)
        barrier = threading.Barrier(4)

        def worker(w):
            barrier.wait(timeout=30)
            for i in range(20):
                registry.record_many(
                    f"key-{i % 2}", [P(f"w{w}-v{i}", 0.9, 1.0 + i)]
                )

        threads = [
            threading.Thread(target=worker, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        reopened = VariantRegistry(tmp_path)
        assert reopened.recovered_lines == 0
        assert sum(
            len(reopened.points(k)) for k in reopened.keys()
        ) == 4 * 20


class TestCrashRecovery:
    def _segment(self, tmp_path):
        segments = sorted(tmp_path.glob("seg-*.jsonl"))
        assert segments
        return segments[-1]

    def test_torn_final_line_is_dropped(self, tmp_path):
        registry = VariantRegistry(tmp_path)
        registry.record_many("k", [P("a"), P("b")])
        seg = self._segment(tmp_path)
        raw = seg.read_bytes()
        seg.write_bytes(raw[:-7])  # crash mid-append: no trailing newline
        recovered = VariantRegistry(tmp_path)
        assert {p.variant for p in recovered.points("k")} == {"a"}
        assert recovered.recovered_lines == 1

    def test_corrupt_line_poisons_rest_of_segment_only(self, tmp_path):
        registry = VariantRegistry(tmp_path)
        registry.record("k", P("a"))
        seg = self._segment(tmp_path)
        with seg.open("a", encoding="utf-8") as fh:
            fh.write("{definitely not json\n")
        # A later record in the SAME segment is unreachable (framing
        # cannot be trusted past the corruption)...
        with seg.open("a", encoding="utf-8") as fh:
            fh.write(
                json.dumps(
                    {"v": 1, "op": "point", "key": "k",
                     "point": P("lost").to_dict()}
                ) + "\n"
            )
        half = VariantRegistry(tmp_path)
        assert {p.variant for p in half.points("k")} == {"a"}
        assert half.recovered_lines >= 1
        # ...but new writes rotate past the poisoned tail into a fresh
        # segment, so nothing else is ever appended where replay cannot
        # reach it.
        half.record("k", P("b"))
        assert len(sorted(tmp_path.glob("seg-*.jsonl"))) == 2
        assert {p.variant for p in VariantRegistry(tmp_path).points("k")} == {
            "a", "b",
        }

    def test_truncated_compacted_segment_rebuilds_from_last_good_generation(
        self, tmp_path
    ):
        registry = VariantRegistry(tmp_path)
        registry.record_many("k", [P("a", 0.99, 1.5), P("b", 0.85, 4.0)])
        registry.compact()
        seg = self._segment(tmp_path)
        raw = seg.read_bytes()
        seg.write_bytes(raw[: len(raw) // 2])  # crash mid-compaction-write
        survivor = VariantRegistry(tmp_path)
        # Whatever survived parses cleanly; nothing crashes, and the next
        # write self-heals into a fresh good generation.
        assert survivor.recovered_lines >= 0
        survivor.record("k", P("c"))
        healed = VariantRegistry(tmp_path)
        assert "c" in {p.variant for p in healed.points("k")}

    def test_vanished_segment_forces_full_rebuild(self, tmp_path):
        registry = VariantRegistry(tmp_path, segment_bytes=1)  # rotate every write
        registry.record("k", P("a"))
        registry.record("k", P("b"))
        other = VariantRegistry(tmp_path)
        other.compact()  # collapses to one fresh segment
        registry.refresh()  # first handle must notice and rebuild
        assert {p.variant for p in registry.points("k")} == {"a", "b"}


class TestMaintenance:
    def test_segment_rotation(self, tmp_path):
        registry = VariantRegistry(tmp_path, segment_bytes=256)
        for i in range(20):
            registry.record("k", P(f"v{i}"))
        assert len(list(tmp_path.glob("seg-*.jsonl"))) > 1

    def test_compact_collapses_segments(self, tmp_path):
        registry = VariantRegistry(tmp_path, segment_bytes=256)
        for i in range(20):
            registry.record("k", P(f"v{i}", 0.9, 1.0 + i))
        removed = registry.compact()
        assert removed > 1
        assert len(list(tmp_path.glob("seg-*.jsonl"))) == 1
        assert len(VariantRegistry(tmp_path).points("k")) == 20

    def test_gc_keeps_only_the_front(self, tmp_path):
        registry = VariantRegistry(tmp_path)
        registry.record_many(
            "k",
            [P("best", 0.99, 9.0)] + [P(f"dom{i}", 0.5, 1.0) for i in range(5)],
        )
        registry.compact(front_only=True)
        assert [p.variant for p in VariantRegistry(tmp_path).points("k")] == [
            "best"
        ]

    def test_compaction_generation_supersedes_older_segments(self, tmp_path):
        registry = VariantRegistry(tmp_path)
        registry.record("k", P("a"))
        generation = registry.generation()
        registry.compact()
        assert registry.generation() == generation + 1

    def test_merge_from_absorbs_other_registry(self, tmp_path):
        a = VariantRegistry(tmp_path / "a")
        b = VariantRegistry(tmp_path / "b")
        a.record("k1", P("x"))
        b.record("k2", P("y"))
        merged = a.merge_from(b)
        assert merged == 1
        assert set(a.keys()) == {"k1", "k2"}


class TestResolveRegistry:
    def test_none_stays_disabled(self):
        assert resolve_registry(None) is None

    def test_instance_passes_through(self):
        registry = VariantRegistry()
        assert resolve_registry(registry) is registry

    def test_path_opens_directory(self, tmp_path):
        registry = resolve_registry(tmp_path / "reg")
        assert isinstance(registry, VariantRegistry)
        assert (tmp_path / "reg").is_dir()

    def test_auto_without_env_is_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_REGISTRY_DIR", raising=False)
        assert resolve_registry("auto") is None

    def test_auto_with_env_opens_it(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_REGISTRY_DIR", str(tmp_path / "auto"))
        registry = resolve_registry("auto")
        assert registry is not None and registry.root == tmp_path / "auto"

    def test_env_overrides_tune_margin(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_REGISTRY_MARGIN", "0.05")
        monkeypatch.setenv("REPRO_REGISTRY_MIN_POINTS", "7")
        registry = VariantRegistry(tmp_path)
        assert registry.margin == 0.05 and registry.min_points == 7
