"""Pareto-front machinery: dominance, knee selection, point merging."""

import pytest

from repro.errors import SerializationError
from repro.registry.pareto import (
    ParetoPoint,
    dominates,
    feasible,
    knee,
    merge_points,
    pareto_front,
)


def P(variant, quality, speedup, **kw):
    return ParetoPoint(variant=variant, quality=quality, speedup=speedup, **kw)


class TestDominance:
    def test_strictly_better_dominates(self):
        assert dominates(P("a", 0.95, 3.0), P("b", 0.90, 2.0))

    def test_better_on_one_axis_equal_on_other_dominates(self):
        assert dominates(P("a", 0.95, 2.0), P("b", 0.90, 2.0))
        assert dominates(P("a", 0.90, 3.0), P("b", 0.90, 2.0))

    def test_equal_points_do_not_dominate(self):
        assert not dominates(P("a", 0.9, 2.0), P("b", 0.9, 2.0))

    def test_tradeoff_points_do_not_dominate_each_other(self):
        a, b = P("a", 0.95, 2.0), P("b", 0.90, 3.0)
        assert not dominates(a, b) and not dominates(b, a)


class TestFront:
    def test_front_drops_dominated_points(self):
        points = [
            P("slow_good", 0.99, 1.5),
            P("mid", 0.95, 2.0),
            P("dominated", 0.94, 1.8),
            P("fast_bad", 0.80, 6.0),
        ]
        front = pareto_front(points)
        assert [p.variant for p in front] == ["slow_good", "mid", "fast_bad"]

    def test_front_of_empty_is_empty(self):
        assert pareto_front([]) == []

    def test_front_is_sorted_quality_descending(self):
        front = pareto_front([P("a", 0.8, 5.0), P("b", 0.99, 1.1)])
        assert [p.variant for p in front] == ["b", "a"]

    def test_single_dominating_point_collapses_front(self):
        front = pareto_front(
            [P("t8", 0.92, 2.0), P("t16", 0.95, 4.0), P("t32", 0.98, 6.0)]
        )
        assert [p.variant for p in front] == ["t32"]


class TestKnee:
    FRONT = [P("safe", 0.99, 1.5), P("mid", 0.95, 3.0), P("risky", 0.85, 6.0)]

    def test_knee_is_fastest_toq_feasible(self):
        assert knee(self.FRONT, toq=0.90, margin=0.0).variant == "mid"

    def test_margin_tightens_feasibility(self):
        # mid (0.95) fails toq 0.945 + margin 0.01; only safe clears it.
        assert knee(self.FRONT, toq=0.945, margin=0.01).variant == "safe"

    def test_no_feasible_point_gives_none(self):
        assert knee(self.FRONT, toq=0.999, margin=0.0) is None

    def test_feasible_filters_by_margin(self):
        names = [p.variant for p in feasible(self.FRONT, 0.90, 0.0)]
        assert names == ["safe", "mid"]


class TestMergeAndSerialization:
    def test_merge_same_identity_averages_by_samples(self):
        held = {}
        merge_points(held, [P("v", 0.90, 2.0, identity="i1", samples=3)])
        merge_points(held, [P("v", 0.96, 2.6, identity="i1", samples=1)])
        merged = held["v"]
        assert merged.samples == 4
        assert merged.quality == pytest.approx((0.90 * 3 + 0.96) / 4)
        assert merged.speedup == pytest.approx((2.0 * 3 + 2.6) / 4)

    def test_merge_identity_change_replaces(self):
        held = {}
        merge_points(held, [P("v", 0.90, 2.0, identity="old", samples=9)])
        merge_points(held, [P("v", 0.50, 1.1, identity="new", samples=1)])
        assert held["v"].quality == 0.50 and held["v"].samples == 1

    def test_unknown_cycles_never_dilute(self):
        held = {}
        merge_points(held, [P("v", 0.9, 2.0, identity="i", cycles=100.0)])
        merge_points(held, [P("v", 0.9, 2.0, identity="i", cycles=0.0)])
        assert held["v"].cycles == pytest.approx(100.0)

    def test_round_trip(self):
        point = P("v", 0.9, 2.0, cycles=10.0, knobs={"rate": 4}, identity="i")
        clone = ParetoPoint.from_dict(point.to_dict())
        assert clone == point

    @pytest.mark.parametrize(
        "bad",
        [
            {},
            {"variant": "v"},
            {"variant": "v", "quality": "high", "speedup": 2.0},
            {"variant": "v", "quality": 0.9, "speedup": 2.0, "knobs": 7},
            [1, 2, 3],
        ],
    )
    def test_bad_data_raises_serialization_error(self, bad):
        with pytest.raises(SerializationError):
            ParetoPoint.from_dict(bad)
