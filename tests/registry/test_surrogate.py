"""Knob-space surrogate: fitting, prediction, diagnostics."""

import pytest

from repro.registry.pareto import ParetoPoint
from repro.registry.surrogate import Surrogate, fit_surrogate


def P(variant, quality, speedup, knobs, samples=1):
    return ParetoPoint(
        variant=variant,
        quality=quality,
        speedup=speedup,
        knobs=knobs,
        samples=samples,
    )


RATE_LADDER = [
    P("r1", 0.99, 1.0, {"rate": 1}),
    P("r2", 0.95, 2.0, {"rate": 2}),
    P("r4", 0.90, 4.0, {"rate": 4}),
    P("r8", 0.80, 8.0, {"rate": 8}),
]


class TestFitting:
    def test_untrained_predict_raises(self):
        with pytest.raises(ValueError):
            Surrogate().predict({"rate": 2})

    def test_trained_flag_and_len(self):
        model = Surrogate().fit(RATE_LADDER)
        assert model.trained and len(model) == 4
        assert not Surrogate().trained

    def test_points_without_knobs_are_ignored(self):
        model = Surrogate().fit([P("bare", 0.9, 2.0, {})])
        assert not model.trained

    def test_fit_surrogate_helper_fits(self):
        model = fit_surrogate(RATE_LADDER)
        assert model.trained and len(model) == 4


class TestPrediction:
    def test_exact_training_point_is_recovered_closely(self):
        model = Surrogate().fit(RATE_LADDER)
        quality, speedup = model.predict({"rate": 8})
        assert quality == pytest.approx(0.80, abs=0.05)
        assert speedup == pytest.approx(8.0, abs=1.0)

    def test_interpolation_lands_between_neighbours(self):
        model = Surrogate().fit(RATE_LADDER)
        quality, speedup = model.predict({"rate": 3})
        assert 0.90 < quality < 0.99
        assert 1.0 < speedup < 8.0

    def test_prediction_is_monotone_along_a_monotone_ladder(self):
        model = Surrogate().fit(RATE_LADDER)
        qualities = [model.predict({"rate": r})[0] for r in (1, 2, 4, 8)]
        assert qualities == sorted(qualities, reverse=True)

    def test_samples_weight_the_estimate(self):
        noisy = Surrogate().fit(
            [
                P("a", 0.90, 2.0, {"rate": 2}, samples=9),
                P("b", 0.50, 2.0, {"rate": 2}, samples=1),
            ]
        )
        quality, _ = noisy.predict({"rate": 2})
        assert quality == pytest.approx((0.90 * 9 + 0.50) / 10, abs=0.01)

    def test_categorical_knobs_split_the_space(self):
        model = Surrogate().fit(
            [
                P("mean", 0.95, 2.0, {"mode": "mean", "rate": 2}),
                P("skip", 0.70, 5.0, {"mode": "skip", "rate": 2}),
            ]
        )
        q_mean, _ = model.predict({"mode": "mean", "rate": 2})
        q_skip, _ = model.predict({"mode": "skip", "rate": 2})
        assert q_mean > q_skip

    def test_empty_knob_query_falls_back_to_mean(self):
        model = Surrogate().fit(RATE_LADDER)
        quality, speedup = model.predict({})
        assert 0.80 <= quality <= 0.99
        assert 1.0 <= speedup <= 8.0


class TestDiagnostics:
    def test_loo_error_zero_with_fewer_than_two_points(self):
        model = Surrogate().fit([P("only", 0.9, 2.0, {"rate": 2})])
        assert model.loo_error() == (0.0, 0.0)

    def test_loo_error_small_on_smooth_ladder(self):
        model = Surrogate().fit(RATE_LADDER)
        q_err, s_err = model.loo_error()
        assert 0.0 <= q_err < 0.2
        assert 0.0 <= s_err < 5.0

    def test_loo_error_leaves_model_intact(self):
        model = Surrogate().fit(RATE_LADDER)
        model.loo_error()
        assert len(model) == 4
        assert model.predict({"rate": 2})  # still trained
