"""Every shipped example must run to completion and print its story."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(name: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "GPU" in out and "CPU" in out
    assert "speedup" in out and "chosen variant" in out


def test_image_pipeline():
    out = _run("image_pipeline.py")
    for stage in ("denoise", "blur", "tone-map"):
        assert stage in out
    assert "pixel difference" in out


def test_custom_kernel():
    out = _run("custom_kernel.py")
    assert "__global__ void score_loans" in out
    assert "pattern: map" in out
    assert "quality on fresh inputs" in out


def test_ml_sampling():
    out = _run("ml_sampling.py")
    assert "classifier decisions unchanged" in out
    assert "overlap" in out


def test_edge_detection():
    out = _run("edge_detection.py")
    assert "tile 3x3" in out
    assert "quality collapses" in out  # the center-scheme failure mode


def test_video_stream():
    out = _run("video_stream.py")
    assert "streamed 48 frames" in out
    assert "effective stream speedup" in out
    assert "quality-check overhead" in out


def test_online_calibration():
    out = _run("online_calibration.py", timeout=400)
    assert "drifts" in out
    assert "back_off" in out  # the drift must trigger at least one back-off
    assert "final variant" in out


def test_serving_frontend():
    out = _run("serving_frontend.py", timeout=400)
    assert "probe refused" in out  # TOQ-floor admission control
    assert "shed by backpressure" in out
    assert "requests through" in out  # batching actually fused requests
