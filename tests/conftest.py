"""Shared pytest configuration: make the test-local kernel zoo importable."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
