"""Session-level resilience: quarantine, tuner exclusion, re-admission."""

import json

import numpy as np
import pytest

from repro import ApproxSession, DeviceKind, MonitorConfig
from repro.apps.gaussian import GaussianFilterApp
from repro.resilience.breaker import CLOSED, OPEN, BreakerConfig
from repro.resilience.faults import (
    SITE_OUTPUT,
    SITE_QUALITY,
    FaultPlan,
    FaultSpec,
    use_faults,
)
from repro.resilience.guard import STATS, GuardPolicy


@pytest.fixture(autouse=True)
def _reset_guard_stats():
    STATS.reset()
    yield
    STATS.reset()


FAST_GUARD = GuardPolicy(retries=0, backoff_seconds=0.0)

# Corrupt only the primary (variant) rung: the exact rungs stay clean, so
# every faulted launch still serves a correct answer at depth 1.
VARIANT_NAN = FaultSpec(SITE_OUTPUT, mode="nan", match="variant")


def make_session(
    threshold=2, after=50, successes=1, sample_every=1000, **kwargs
) -> ApproxSession:
    return ApproxSession(
        GaussianFilterApp(scale=0.05),
        target_quality=0.9,
        device=DeviceKind.GPU,
        guard=FAST_GUARD,
        breaker=BreakerConfig(
            fault_threshold=threshold,
            probation_after=after,
            probation_successes=successes,
        ),
        monitor=MonitorConfig(sample_every=sample_every),
        **kwargs,
    )


class TestQuarantine:
    def test_faulted_launches_serve_exact_and_open_the_breaker(self):
        session = make_session(threshold=2)
        session.tune()
        chosen = session.current_variant
        app = session.app
        inputs = app.generate_inputs(seed=3)
        golden, _ = app.run_exact(inputs)

        plan = FaultPlan([VARIANT_NAN])
        with use_faults(plan):
            first = session.launch(inputs)
            assert session.breaker.state(chosen) == CLOSED  # one strike
            second = session.launch(inputs)

        # Both faulted launches still produced the exact answer.
        np.testing.assert_array_equal(np.asarray(first), np.asarray(golden))
        np.testing.assert_array_equal(np.asarray(second), np.asarray(golden))
        assert plan.total_fired() == 2
        assert STATS.validation_trips == 2

        # The second consecutive fault opened the breaker and the session
        # stepped off the variant immediately.
        assert session.breaker.state(chosen) == OPEN
        assert chosen in session.breaker.quarantined()
        assert session.current_variant != chosen

        records = session.metrics.records
        assert all(r.served != "variant" for r in records)
        assert all(r.fallback_depth >= 1 for r in records)
        assert records[-1].action == "quarantine"
        transitions = session.metrics.transitions
        assert transitions[-1].reason == "quarantine"
        assert transitions[-1].from_variant == chosen

    def test_success_between_faults_keeps_the_breaker_closed(self):
        session = make_session(threshold=2)
        session.tune()
        chosen = session.current_variant
        inputs = session.app.generate_inputs(seed=3)

        one_shot = FaultSpec(
            SITE_OUTPUT, mode="nan", match="variant", max_fires=1
        )
        with use_faults(FaultPlan([one_shot])):
            session.launch(inputs)  # fault
        session.launch(inputs)  # clean: resets the consecutive count
        with use_faults(FaultPlan([one_shot])):
            session.launch(inputs)  # fault again, but not consecutive
        assert session.breaker.state(chosen) == CLOSED
        assert session.current_variant == chosen

    def test_quarantined_variant_is_not_served_while_blocked(self):
        session = make_session(threshold=1, after=1000, sample_every=1)
        session.tune()
        chosen = session.current_variant
        inputs = session.app.generate_inputs(seed=3)

        with use_faults(FaultPlan([VARIANT_NAN])):
            session.launch(inputs)
        assert chosen in session.breaker.quarantined()
        for _ in range(6):
            session.launch(inputs)
        # Sampling is on every launch, so headroom signals fire — but the
        # recalibrator must never promote back onto the quarantined rung.
        served = [r.variant for r in list(session.metrics.records)[1:]]
        assert chosen not in served


class TestTunerExclusion:
    def test_retuning_avoids_the_quarantined_variant(self):
        session = make_session(threshold=1)
        session.tune()
        chosen = session.current_variant
        inputs = session.app.generate_inputs(seed=3)
        with use_faults(FaultPlan([VARIANT_NAN])):
            session.launch(inputs)
        assert chosen in session.breaker.quarantined()

        retuned = session.tune(force=True)
        assert retuned.chosen.name != chosen
        assert session.current_variant != chosen

    def test_choose_excludes_by_name_but_never_exact(self):
        from repro.device import spec_for
        from repro.runtime.tuner import GreedyTuner

        session = make_session()
        tuning = session.tune()
        tuner = GreedyTuner(spec_for(DeviceKind.GPU), toq=0.9)
        names = {p.name for p in tuning.profiles if not p.is_exact}
        assert names  # gaussian produces approximate variants
        picked = tuner.choose(tuning.profiles, exclude=names)
        assert picked.is_exact  # everything else excluded -> exact survives


class TestReadmission:
    def test_probation_readmits_after_the_window(self):
        session = make_session(threshold=1, after=2, successes=1)
        session.tune()
        chosen = session.current_variant
        inputs = session.app.generate_inputs(seed=3)

        with use_faults(FaultPlan([VARIANT_NAN])):
            session.launch(inputs)  # launch 0: fault -> quarantine
        assert session.breaker.state(chosen) == OPEN
        session.launch(inputs)  # launch 1: clean, still inside the window

        # Window passed at launch index 2.  Steer the recalibrator back
        # onto the quarantined rung (standing in for a headroom signal)
        # and serve: blocked() flips to probation, the clean launch is
        # the probation success, and the breaker closes.
        recal = session._recalibrator
        while recal.current_name != chosen and recal.step_up():
            pass
        assert recal.current_name == chosen
        session.launch(inputs)  # launch 2: probation probe, succeeds
        assert session.breaker.state(chosen) == CLOSED
        assert chosen not in session.breaker.quarantined()
        assert session.metrics.records[-1].variant == chosen

        snap = session.metrics_snapshot()
        assert snap["resilience"]["quarantines"] == 1
        assert snap["resilience"]["readmissions"] == 1


class TestQualityContainment:
    def test_evaluator_crash_is_contained_and_counted(self):
        session = make_session(sample_every=1)
        inputs = session.app.generate_inputs(seed=3)
        with use_faults(FaultPlan([FaultSpec(SITE_QUALITY)])):
            out = session.launch(inputs)
        assert out is not None
        record = session.metrics.records[-1]
        assert record.sampled
        assert record.quality is None
        assert any(f.startswith("quality:") for f in record.faults)
        # The serving variant is not charged for an evaluator fault.
        assert session.breaker.quarantined() == set()


class TestResilienceSnapshot:
    def test_snapshot_shape_and_serialisability(self):
        session = make_session(threshold=1)
        session.tune()
        inputs = session.app.generate_inputs(seed=3)
        with use_faults(FaultPlan([VARIANT_NAN])):
            session.launch(inputs)
        session.launch(inputs)

        snap = session.metrics_snapshot()
        res = snap["resilience"]
        assert set(res) >= {
            "guard",
            "faults",
            "fallback_depths",
            "fallback_launches",
            "quarantines",
            "readmissions",
            "breakers",
            "guard_policy",
        }
        assert res["guard"]["guarded_launches"] == 2
        assert res["guard"]["validation_trips"] == 1
        assert res["fallback_launches"] == 1
        assert res["fallback_depths"]["1"] == 1
        assert any("output.validate" in key for key in res["faults"])
        assert res["quarantines"] == 1
        breakers = res["breakers"]
        assert any(entry["state"] == OPEN for entry in breakers.values())
        assert res["guard_policy"]["enabled"] is True
        json.dumps(snap)
