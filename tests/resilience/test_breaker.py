"""Circuit-breaker state machine: quarantine, probation, re-admission."""

import pytest

from repro.errors import ResilienceError
from repro.resilience.breaker import (
    CLOSED,
    OPEN,
    PROBATION,
    BreakerConfig,
    VariantBreaker,
)


def make_breaker(threshold=3, after=10, successes=2) -> VariantBreaker:
    return VariantBreaker(
        BreakerConfig(
            fault_threshold=threshold,
            probation_after=after,
            probation_successes=successes,
        )
    )


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fault_threshold": 0},
            {"probation_after": 0},
            {"probation_successes": 0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ResilienceError):
            BreakerConfig(**kwargs)


class TestOpening:
    def test_unknown_variant_is_closed_and_unblocked(self):
        breaker = make_breaker()
        assert breaker.state("v") == CLOSED
        assert not breaker.blocked("v", 0)
        assert breaker.quarantined() == set()

    def test_opens_after_threshold_consecutive_faults(self):
        breaker = make_breaker(threshold=3)
        assert not breaker.record_fault("v", 0, "crash")
        assert not breaker.record_fault("v", 1, "crash")
        assert breaker.record_fault("v", 2, "crash")  # third strike opens
        assert breaker.state("v") == OPEN
        assert breaker.blocked("v", 3)
        assert breaker.quarantined() == {"v"}

    def test_success_resets_the_consecutive_count(self):
        breaker = make_breaker(threshold=2)
        breaker.record_fault("v", 0, "crash")
        breaker.record_success("v", 1)
        assert not breaker.record_fault("v", 2, "crash")
        assert breaker.state("v") == CLOSED

    def test_faults_while_open_do_not_re_open(self):
        breaker = make_breaker(threshold=1)
        assert breaker.record_fault("v", 0, "crash")
        assert not breaker.record_fault("v", 1, "crash")

    def test_breakers_are_per_variant(self):
        breaker = make_breaker(threshold=1)
        breaker.record_fault("a", 0, "crash")
        assert breaker.blocked("a", 1)
        assert not breaker.blocked("b", 1)


class TestProbation:
    def test_window_is_measured_in_launches(self):
        breaker = make_breaker(threshold=1, after=10)
        breaker.record_fault("v", 5, "crash")  # reopen_at = 15
        assert breaker.blocked("v", 14)
        assert not breaker.blocked("v", 15)  # window passed -> probation
        assert breaker.state("v") == PROBATION

    def test_probation_closes_after_consecutive_successes(self):
        breaker = make_breaker(threshold=1, after=5, successes=2)
        breaker.record_fault("v", 0, "crash")
        assert not breaker.blocked("v", 5)
        breaker.record_success("v", 5)
        assert breaker.state("v") == PROBATION
        breaker.record_success("v", 6)
        assert breaker.state("v") == CLOSED
        assert breaker.quarantined() == set()

    def test_one_strike_on_probation_reopens(self):
        breaker = make_breaker(threshold=3, after=5)
        for i in range(3):
            breaker.record_fault("v", i, "crash")
        assert not breaker.blocked("v", 10)  # probation
        assert breaker.record_fault("v", 10, "crash")  # single strike
        assert breaker.state("v") == OPEN
        assert breaker.blocked("v", 11)
        # and the window restarted from the probation fault
        assert not breaker.blocked("v", 15)


class TestReporting:
    def test_events_record_every_transition(self):
        breaker = make_breaker(threshold=1, after=5, successes=1)
        breaker.record_fault("v", 0, "worker_crash")
        breaker.blocked("v", 5)
        breaker.record_success("v", 5)
        events = breaker.drain_events()
        assert [e["state"] for e in events] == [OPEN, PROBATION, CLOSED]
        assert events[0]["reason"] == "worker_crash"
        assert events[2]["reason"] == "probation_passed"
        assert breaker.drain_events() == []  # drained

    def test_snapshot_counts_faults_and_quarantines(self):
        breaker = make_breaker(threshold=1)
        breaker.record_fault("v", 0, "crash")
        snap = breaker.snapshot()
        assert snap["v"]["state"] == OPEN
        assert snap["v"]["faults_total"] == 1
        assert snap["v"]["quarantines"] == 1
        assert snap["v"]["reopen_at"] == 10
