"""Dead-worker recovery: pools with no live threads are replaced, not
deadlocked on.

``ThreadPoolExecutor`` never respawns a worker that exited, and its
``_adjust_thread_count`` counts dead threads against ``max_workers`` — so
a pool whose workers are all gone accepts submissions that can never run.
These tests manufacture that state for real (drain the workers via the
executor's own shutdown path, then reopen the flag so the pool *looks*
serviceable) and assert the health check routes around it.
"""

import threading

from repro.parallel.pool import (
    get_pool,
    parallel_map,
    pool_stats,
    replace_pool,
)


def _kill_workers(pool) -> None:
    """Leave ``pool`` open-looking but with every worker thread dead.

    ``shutdown(wait=True)`` is the executor's own worker-exit path;
    clearing the flag afterwards reproduces the pathological state a
    died-in-place worker set leaves behind: ``submit`` enqueues, nothing
    will ever dequeue.
    """
    pool.shutdown(wait=True)
    pool._shutdown = False
    assert all(not t.is_alive() for t in pool._threads)


def _run_with_timeout(fn, timeout=10.0):
    """Run ``fn`` on a daemon thread so a regression to the old deadlock
    fails the test instead of hanging the suite."""
    box = {}

    def target():
        box["result"] = fn()

    t = threading.Thread(target=target, daemon=True)
    t.start()
    t.join(timeout)
    assert not t.is_alive(), "call deadlocked on a dead pool"
    return box["result"]


class TestDeadPoolRecovery:
    def test_parallel_map_survives_an_all_dead_pool(self):
        kind = "recovery-map"
        pool = get_pool(kind, 2)
        # Warm the pool so worker threads actually exist, then kill them.
        assert parallel_map(kind, 2, lambda i: i, range(4)) == [0, 1, 2, 3]
        _kill_workers(pool)
        before = pool_stats(kind).snapshot()["workers_restarted"]
        result = _run_with_timeout(
            lambda: parallel_map(kind, 2, lambda i: i * 2, range(4))
        )
        assert result == [0, 2, 4, 6]
        assert pool_stats(kind).snapshot()["workers_restarted"] == before + 1

    def test_get_pool_replaces_dead_pool(self):
        kind = "recovery-get"
        pool = get_pool(kind, 2)
        pool.submit(lambda: None).result()
        _kill_workers(pool)
        fresh = get_pool(kind, 2)
        assert fresh is not pool
        assert fresh.submit(lambda: 42).result(timeout=5) == 42

    def test_healthy_pool_is_not_replaced(self):
        kind = "recovery-keep"
        pool = get_pool(kind, 2)
        pool.submit(lambda: None).result()
        assert get_pool(kind, 2) is pool

    def test_unused_pool_counts_as_healthy(self):
        # No submissions yet means no threads yet; that's fine — workers
        # spawn on first submit.
        kind = "recovery-cold"
        pool = get_pool(kind, 2)
        assert get_pool(kind, 2) is pool

    def test_replace_pool_counts_a_restart_and_keeps_size(self):
        kind = "recovery-force"
        pool = get_pool(kind, 4)
        before = pool_stats(kind).snapshot()["workers_restarted"]
        fresh = replace_pool(kind, 2)
        assert fresh is not pool
        assert pool_stats(kind).snapshot()["workers_restarted"] == before + 1
        # Pool sizes only grow: the replacement keeps the larger size.
        assert fresh._max_workers == 4
