"""Guarded launches: containment, retries, deadlines, the fallback ladder."""

import threading
import time

import numpy as np
import pytest

import kernel_zoo as zoo
from repro.apps.registry import make_app
from repro.engine import Grid, launch, use_backend
from repro.errors import ResilienceError, ShardTimeout, WorkerDeath
from repro.parallel import ParallelPolicy, use_parallel
from repro.resilience.faults import (
    SITE_OUTPUT,
    SITE_WORKER,
    FaultPlan,
    FaultSpec,
    use_faults,
)
from repro.resilience.guard import (
    STATS,
    GuardPolicy,
    current_policy,
    guarded_map,
    run_ladder,
    use_guard,
)
from repro.resilience.validate import corrupt_output, validate_output


@pytest.fixture(autouse=True)
def _reset_guard_stats():
    STATS.reset()
    yield
    STATS.reset()


FAST = GuardPolicy(retries=2, backoff_seconds=0.0, deadline_seconds=5.0)


class TestGuardPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retries": -1},
            {"backoff_seconds": -0.1},
            {"deadline_seconds": 0.0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ResilienceError):
            GuardPolicy(**kwargs)

    def test_use_guard_scopes_per_thread(self):
        assert current_policy() is None
        with use_guard(FAST):
            assert current_policy() is FAST
            seen = []
            t = threading.Thread(target=lambda: seen.append(current_policy()))
            t.start()
            t.join()
            assert seen == [None]  # thread-local, unlike fault plans
        assert current_policy() is None


class TestValidateOutput:
    def test_finite_output_passes(self):
        assert validate_output(np.ones(8, np.float32)) is None
        assert validate_output((np.ones(4), np.arange(4))) is None

    def test_non_array_and_integer_outputs_pass(self):
        assert validate_output(42) is None
        assert validate_output(np.arange(8)) is None

    @pytest.mark.parametrize("poison", [np.nan, np.inf, -np.inf])
    def test_non_finite_values_flagged(self, poison):
        arr = np.ones(8, np.float32)
        arr[3] = poison
        note = validate_output(arr)
        assert note is not None and "non-finite" in note

    def test_value_limit_flags_magnitude(self):
        arr = np.array([1.0, -50.0, 2.0])
        assert validate_output(arr, value_limit=10.0) is not None
        assert validate_output(arr, value_limit=100.0) is None

    def test_corrupt_output_writes_poison(self):
        arr = np.ones(100, np.float32)
        assert corrupt_output(arr, "nan")
        assert np.isnan(arr[0])
        assert not corrupt_output(np.arange(4), "nan")  # ints can't hold NaN


class TestGuardedMap:
    def test_results_in_item_order(self):
        def slow_first(i):
            if i == 0:
                time.sleep(0.02)
            return i * 10

        assert guarded_map("test", 4, slow_first, range(6), FAST) == [
            0, 10, 20, 30, 40, 50
        ]

    def test_transient_failures_are_retried(self):
        failures = {1: 2, 3: 1}  # item -> times to fail before succeeding
        lock = threading.Lock()

        def flaky(i):
            with lock:
                if failures.get(i, 0) > 0:
                    failures[i] -= 1
                    raise ValueError(f"transient {i}")
            return i

        assert guarded_map("test", 4, flaky, range(5), FAST) == list(range(5))
        assert STATS.shard_retries == 3

    def test_exhausted_retries_reraise_the_shard_exception(self):
        def always(i):
            if i == 2:
                raise ValueError("persistent")
            return i

        with pytest.raises(ValueError, match="persistent"):
            guarded_map("test", 4, always, range(4), FAST)

    def test_worker_death_replaces_pool_and_recovers(self):
        died = []
        lock = threading.Lock()

        def mortal(i):
            with lock:
                if i == 1 and not died:
                    died.append(i)
                    raise WorkerDeath("injected")
            return i

        assert guarded_map("test", 2, mortal, range(4), FAST) == list(range(4))
        assert STATS.pool_replacements >= 1

    def test_deadline_expiry_raises_shard_timeout(self):
        policy = GuardPolicy(retries=0, deadline_seconds=0.05)

        def hang(i):
            if i == 1:
                time.sleep(0.5)
            return i

        started = time.monotonic()
        with pytest.raises(ShardTimeout):
            guarded_map("test", 2, hang, range(2), policy)
        assert time.monotonic() - started < 0.45  # did not wait out the hang
        assert STATS.shard_timeouts == 1

    def test_serial_bypass_for_one_worker(self):
        assert guarded_map("test", 1, lambda i: i + 1, range(3), FAST) == [
            1, 2, 3
        ]


class TestGuardedShardedLaunch:
    def _launch_square(self, n=4096, policy=None, workers=4):
        x = np.random.default_rng(0).random(n, dtype=np.float32)
        out = np.zeros(n, np.float32)
        pp = ParallelPolicy(workers=workers, min_shard_threads=1)
        with use_guard(policy):
            launch(
                zoo.square_map,
                Grid.for_elements(n),
                [out, x, n],
                backend="codegen",
                parallel=pp,
            )
        return out, x * x

    def test_guarded_launch_is_bit_exact(self):
        out, expected = self._launch_square(policy=FAST)
        np.testing.assert_array_equal(out, expected)
        assert STATS.guarded_sharded == 1

    def test_worker_crashes_fall_back_to_serial_reexecution(self):
        plan = FaultPlan([FaultSpec(SITE_WORKER, mode="exception")])
        with use_faults(plan):
            out, expected = self._launch_square(policy=FAST)
        np.testing.assert_array_equal(out, expected)
        assert STATS.serial_reexecutions == 1
        assert plan.total_fired() > 0

    def test_hung_workers_hit_the_deadline_then_serial(self):
        policy = GuardPolicy(retries=0, deadline_seconds=0.05)
        plan = FaultPlan(
            [FaultSpec(SITE_WORKER, mode="hang", hang_seconds=0.4)]
        )
        with use_faults(plan):
            out, expected = self._launch_square(policy=policy)
        np.testing.assert_array_equal(out, expected)
        assert STATS.shard_timeouts == 1
        assert STATS.serial_reexecutions == 1

    def test_unguarded_launch_unchanged(self):
        out, expected = self._launch_square(policy=None)
        np.testing.assert_array_equal(out, expected)
        assert STATS.guarded_sharded == 0


class TestRunLadder:
    @pytest.fixture(scope="class")
    def app(self):
        return make_app("gamma", seed=0)

    @pytest.fixture(scope="class")
    def setup(self, app):
        inputs = app.generate_inputs(seed=app.seed)
        with use_backend("interp"), use_parallel(1):
            golden, _ = app.run_exact(inputs)
        return inputs, np.asarray(golden)

    def test_disabled_policy_is_a_passthrough(self, app, setup):
        inputs, golden = setup
        out, report = run_ladder(
            app, inputs, None, backend="interp",
            policy=GuardPolicy(enabled=False),
        )
        np.testing.assert_array_equal(np.asarray(out), golden)
        assert report.served == "exact" and report.primary_ok
        assert STATS.guarded_launches == 0

    def test_healthy_primary_serves_at_depth_zero(self, app, setup):
        inputs, golden = setup
        out, report = run_ladder(
            app, inputs, None, backend="interp", policy=FAST
        )
        np.testing.assert_array_equal(np.asarray(out), golden)
        assert report.depth == 0 and report.primary_ok
        assert not report.faults

    def test_corrupted_primary_falls_back_to_exact(self, app, setup):
        inputs, golden = setup
        plan = FaultPlan([FaultSpec(SITE_OUTPUT, mode="nan", max_fires=1)])
        with use_faults(plan):
            out, report = run_ladder(
                app, inputs, None, backend="codegen", policy=FAST
            )
        np.testing.assert_array_equal(np.asarray(out), golden)
        assert report.depth > 0
        assert any(a.site == "output.validate" for a in report.faults)
        assert STATS.validation_trips == 1

    def test_final_rung_exceptions_propagate(self, app, setup):
        inputs, _golden = setup

        class Broken:
            name = "broken"

            def run_exact(self, _inputs):
                raise RuntimeError("the bedrock itself is broken")

            def run_variant(self, _variant, _inputs):
                raise RuntimeError("variant broken too")

        with pytest.raises(RuntimeError, match="bedrock"):
            run_ladder(Broken(), inputs, None, backend="interp", policy=FAST)
        # Non-final rungs were contained before the final one propagated.
        assert STATS.containments >= 1


class TestBackoffJitter:
    """Full-jitter retry backoff: bounded, decorrelated, reproducible."""

    def test_delay_stays_within_the_cap(self):
        from repro.resilience.guard import _backoff_delay

        draws = [_backoff_delay(0.2) for _ in range(256)]
        assert all(0.0 <= d <= 0.2 for d in draws)
        # Full jitter, not a fixed fraction of the cap.
        assert len({round(d, 9) for d in draws}) > 1

    def test_non_positive_cap_means_no_sleep(self):
        from repro.resilience.guard import _backoff_delay

        assert _backoff_delay(0.0) == 0.0
        assert _backoff_delay(-1.0) == 0.0

    def test_seeded_plan_makes_jitter_deterministic(self):
        from repro.resilience.guard import _backoff_delay

        runs = []
        for _ in range(2):
            with use_faults(FaultPlan([], seed=7)):
                runs.append([_backoff_delay(1.0) for _ in range(16)])
        assert runs[0] == runs[1]
        with use_faults(FaultPlan([], seed=8)):
            other = [_backoff_delay(1.0) for _ in range(16)]
        assert other != runs[0]

    def test_backoff_rng_is_independent_of_fault_firing(self):
        # Drawing jitter must not perturb the deterministic fault
        # firing sequence of a seeded plan (and vice versa).
        fired = []
        for warm in (0, 16):
            plan = FaultPlan(
                [FaultSpec(SITE_WORKER, probability=0.5)], seed=123
            )
            with use_faults(plan):
                from repro.resilience.guard import _backoff_delay

                for _ in range(warm):
                    _backoff_delay(1.0)
                fired.append(
                    [plan.poll(SITE_WORKER) is not None for _ in range(32)]
                )
        assert fired[0] == fired[1]
