"""Chaos-harness smoke tests (the full sweep runs as ``python -m
repro.resilience``; these keep the harness itself honest in the suite)."""

import pytest

from repro.apps.registry import make_app
from repro.resilience.check import (
    ChaosResult,
    check_apps,
    golden_output,
    main,
    run_chaos,
    summarize,
)
from repro.resilience.faults import FAULT_CLASSES
from repro.resilience.guard import STATS


@pytest.fixture(autouse=True)
def _reset_guard_stats():
    STATS.reset()
    yield
    STATS.reset()


@pytest.fixture(scope="module")
def gamma():
    app = make_app("gamma", seed=0)
    inputs = app.generate_inputs(seed=app.seed)
    return app, inputs, golden_output(app, inputs)


class TestRunChaos:
    @pytest.mark.parametrize("fault_class", sorted(FAULT_CLASSES))
    def test_every_class_is_contained_and_bit_exact(self, gamma, fault_class):
        app, inputs, golden = gamma
        result = run_chaos(
            app, fault_class, seed=0, inputs=inputs, golden=golden
        )
        assert result.ok, result.describe()
        assert result.error == ""

    def test_fault_free_run_serves_at_depth_zero(self, gamma):
        app, inputs, golden = gamma
        # worker_crash with a high seed may roll a low-probability spec
        # that never fires; seed 0 is pinned by the determinism test
        # below, so just assert the bookkeeping here.
        result = run_chaos(
            app, "worker_crash", seed=0, inputs=inputs, golden=golden
        )
        assert result.exact
        assert result.served  # a ladder rung label, not ""

    def test_results_are_seed_deterministic(self, gamma):
        app, inputs, golden = gamma
        runs = [
            run_chaos(app, "nan_output", seed=4, inputs=inputs, golden=golden)
            for _ in range(2)
        ]
        assert runs[0].fired == runs[1].fired
        assert runs[0].served == runs[1].served
        assert runs[0].depth == runs[1].depth

    def test_describe_flags_failures(self):
        good = ChaosResult("a", "compile", 0, exact=True)
        bad = ChaosResult("a", "compile", 0, error="boom")
        assert good.ok and "[ok]" in good.describe()
        assert not bad.ok and "[FAIL]" in bad.describe() and "boom" in bad.describe()


class TestCheckApps:
    def test_smoke_sweep_over_two_apps(self):
        results = check_apps(
            names=["gamma", "blackscholes"],
            seeds=(0,),
            fault_classes=["compile", "cache_load", "quality"],
            verbose=False,
        )
        assert len(results) == 2 * 3
        assert all(r.ok for r in results), [
            r.describe() for r in results if not r.ok
        ]

    def test_summarize_counts_passes_and_fires(self):
        results = [
            ChaosResult("a", "compile", 0, fired=2, exact=True),
            ChaosResult("a", "compile", 1, fired=1, exact=True),
            ChaosResult("a", "quality", 0, fired=1, error="boom"),
        ]
        passed, total, fired = summarize(results)
        assert (passed, total) == (2, 3)
        assert fired == {"compile": 3, "quality": 1}


class TestMain:
    def test_cli_passes_on_one_app(self, capsys):
        code = main(["gamma", "--seeds", "0", "--classes", "nan_output"])
        out = capsys.readouterr().out
        assert code == 0
        assert "1/1 chaos runs bit-exact" in out
