"""Fault-plan semantics: determinism, budgets, combined exception types."""

import threading

import pytest

from repro.errors import (
    CodegenError,
    InjectedFault,
    ResilienceError,
    WorkerDeath,
)
from repro.resilience.faults import (
    FAULT_CLASSES,
    MODES,
    SITES,
    SITE_COMPILE,
    SITE_WORKER,
    FaultPlan,
    FaultSpec,
    active_plan,
    maybe_inject,
    random_plan,
    use_faults,
)


class TestFaultSpec:
    def test_defaults(self):
        spec = FaultSpec(SITE_WORKER)
        assert spec.mode == "exception"
        assert spec.probability == 1.0
        assert spec.max_fires is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"site": "nowhere"},
            {"site": SITE_WORKER, "mode": "explode"},
            {"site": SITE_WORKER, "probability": 0.0},
            {"site": SITE_WORKER, "probability": 1.5},
            {"site": SITE_WORKER, "max_fires": 0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ResilienceError):
            FaultSpec(**kwargs)


class TestFaultPlan:
    def test_poll_respects_budget(self):
        plan = FaultPlan([FaultSpec(SITE_WORKER, max_fires=2)])
        assert plan.poll(SITE_WORKER) is not None
        assert plan.poll(SITE_WORKER) is not None
        assert plan.poll(SITE_WORKER) is None
        assert plan.fired[SITE_WORKER] == 2
        assert plan.total_fired() == 2

    def test_poll_filters_by_site_and_match(self):
        plan = FaultPlan([FaultSpec(SITE_WORKER, match="mm_kernel")])
        assert plan.poll(SITE_COMPILE, "mm_kernel") is None
        assert plan.poll(SITE_WORKER, "other_kernel") is None
        assert plan.poll(SITE_WORKER, "mm_kernel:0-4") is not None

    def test_seeded_probability_is_deterministic(self):
        outcomes = []
        for _ in range(2):
            plan = FaultPlan(
                [FaultSpec(SITE_WORKER, probability=0.5)], seed=123
            )
            outcomes.append(
                [plan.poll(SITE_WORKER) is not None for _ in range(32)]
            )
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])

    def test_describe_names_sites_and_budgets(self):
        plan = FaultPlan([FaultSpec(SITE_WORKER, mode="hang", max_fires=3)])
        assert "shard.worker/hang x3" in plan.describe()
        assert FaultPlan([]).describe() == "(empty plan)"

    def test_concurrent_polls_respect_total_budget(self):
        plan = FaultPlan([FaultSpec(SITE_WORKER, max_fires=10)])
        hits = []

        def worker():
            for _ in range(20):
                if plan.poll(SITE_WORKER) is not None:
                    hits.append(1)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(hits) == 10


class TestActivePlan:
    def test_no_plan_by_default(self):
        assert active_plan() is None
        assert maybe_inject(SITE_WORKER) is None

    def test_use_faults_scopes_and_nests(self):
        outer = FaultPlan([FaultSpec(SITE_WORKER)])
        inner = FaultPlan([FaultSpec(SITE_COMPILE)])
        with use_faults(outer):
            assert active_plan() is outer
            with use_faults(inner):
                assert active_plan() is inner
            assert active_plan() is outer
        assert active_plan() is None

    def test_plan_visible_across_threads(self):
        # Process-global on purpose: pool workers never inherit
        # thread-local scopes.
        seen = []
        plan = FaultPlan([FaultSpec(SITE_WORKER)])
        with use_faults(plan):
            t = threading.Thread(target=lambda: seen.append(active_plan()))
            t.start()
            t.join()
        assert seen == [plan]


class TestMaybeInject:
    def test_exception_mode_raises_combined_type(self):
        plan = FaultPlan([FaultSpec(SITE_COMPILE, max_fires=1)])
        with use_faults(plan):
            with pytest.raises(CodegenError) as excinfo:
                maybe_inject(SITE_COMPILE, "k", exc=CodegenError)
        # The injected failure is BOTH the site's natural type and an
        # InjectedFault, so production fallbacks engage while tests can
        # still tell injections apart.
        assert isinstance(excinfo.value, InjectedFault)

    def test_dead_mode_raises_worker_death(self):
        plan = FaultPlan([FaultSpec(SITE_WORKER, mode="dead")])
        with use_faults(plan):
            with pytest.raises(WorkerDeath):
                maybe_inject(SITE_WORKER)

    def test_hang_mode_returns_after_sleeping(self):
        plan = FaultPlan(
            [FaultSpec(SITE_WORKER, mode="hang", hang_seconds=0.01)]
        )
        with use_faults(plan):
            spec = maybe_inject(SITE_WORKER)
        assert spec is not None and spec.mode == "hang"

    def test_nan_mode_returns_spec_for_caller(self):
        from repro.resilience.faults import SITE_OUTPUT

        plan = FaultPlan([FaultSpec(SITE_OUTPUT, mode="nan")])
        with use_faults(plan):
            spec = maybe_inject(SITE_OUTPUT)
        assert spec is not None and spec.mode == "nan"


class TestRandomPlan:
    def test_known_classes_cover_all_sites(self):
        from repro.resilience.faults import SITE_OVERLOAD

        # Every injectable-failure site has a chaos class.  The overload
        # seam is the one exception: it feeds a synthetic pressure signal
        # to the serving front-end (its drill is
        # ``python -m repro.serve.overload --drill``), it never fires in
        # the guarded-ladder chaos harness.
        assert {site for site, _modes in FAULT_CLASSES.values()} == set(
            SITES
        ) - {SITE_OVERLOAD}
        for fault_class in FAULT_CLASSES:
            plan = random_plan(fault_class, seed=0)
            assert len(plan.specs) == 1
            assert plan.specs[0].mode in MODES

    def test_same_seed_same_plan(self):
        a = random_plan("worker_crash", seed=5)
        b = random_plan("worker_crash", seed=5)
        assert a.specs == b.specs

    def test_seeds_vary_the_plan(self):
        specs = {random_plan("nan_output", seed=s).specs[0] for s in range(16)}
        assert len(specs) > 1

    def test_unknown_class_rejected(self):
        with pytest.raises(ResilienceError):
            random_plan("meteor_strike")
