"""Codegen v2: approx-specialized lowering stays bit-exact and observable.

The v2 emitter may fold constants, reassociate integer chains, elide
identity casts and lower proven-in-range LUT loads as gathers — but only
for kernels carrying :class:`~repro.approx.base.ApproxMeta`, and never in
a way the differential harness can distinguish from the interpreter.
"""

import numpy as np
import pytest

from repro.approx.base import ApproxMeta, tag_approx, variant_lowering
from repro.approx.compiler import Paraprox
from repro.apps.registry import make_app
from repro.codegen import (
    check_approx_apps,
    classify_lowering,
    clear_cache,
    fingerprint_kernel,
    lower_kernel_ex,
    stats_snapshot,
    v2_enabled,
)
from repro.codegen.cache import _CACHE, get_compiled
from repro.codegen.check import diff_variant
from repro.engine import Grid
from repro.engine.launch import resolve_kernel, resolve_module
from repro.kernel import kernel
from repro.kernel.dsl import *  # noqa: F401,F403
from repro.kernel.visitors import clone


@kernel
def _const_chain(out: array_i32, x: array_i32, n: i32):
    gid = global_id()
    if gid < n:
        # 3 constant adds around one variable term: v2 reassociates the
        # int32 chain into (x + const); v1 must leave the tree alone.
        out[gid] = 1 + x[gid] + 2 + 3


def _tagged(fn_kernel, transform="test", knobs=None, tables=()):
    """A clone of the kernel tagged as an approximate variant."""
    fn = resolve_kernel(fn_kernel)
    mod = resolve_module(fn_kernel, None)
    tagged = clone(fn)
    meta = ApproxMeta(
        transform=transform,
        knobs=ApproxMeta.knob_tuple(knobs if knobs is not None else {"k": 1}),
        tables=tuple(tables),
    )
    tag_approx(tagged, meta)
    return tagged, mod


class TestModeSelection:
    def test_untagged_kernels_stay_v1(self):
        fn = resolve_kernel(_const_chain)
        mod = resolve_module(_const_chain, None)
        mode, detail = classify_lowering(fn, mod)
        assert mode == "codegen-v1"
        assert "no approx metadata" in detail

    def test_tagged_kernels_take_v2(self):
        tagged, mod = _tagged(_const_chain)
        mode, detail = classify_lowering(tagged, mod)
        assert mode == "codegen-v2"
        assert "reassociated" in detail

    def test_env_kill_switch_forces_v1(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN_V2", "0")
        assert not v2_enabled()
        tagged, mod = _tagged(_const_chain)
        mode, detail = classify_lowering(tagged, mod)
        assert mode == "codegen-v1"
        assert "REPRO_CODEGEN_V2=0" in detail

    def test_cache_keys_separate_modes(self):
        clear_cache()
        tagged, mod = _tagged(_const_chain)
        grid = Grid.for_elements(64)
        get_compiled(resolve_kernel(_const_chain), mod, grid)
        get_compiled(tagged, mod, grid)
        modes = {key[3] for key in _CACHE}
        assert modes == {"v1", "v2"}


class TestFoldAndReassociate:
    def test_v1_source_keeps_constants_v2_folds_them(self):
        fn = resolve_kernel(_const_chain)
        mod = resolve_module(_const_chain, None)
        tagged, _ = _tagged(_const_chain)
        v1_src, _, _, v1_info = lower_kernel_ex(fn, mod, True, "v1")
        v2_src, _, _, v2_info = lower_kernel_ex(tagged, mod, True, "v2")
        assert v1_info == {
            "folded": 0, "reassociated": 0, "table_gathers": 0, "cast_elisions": 0,
        }
        assert v2_info["reassociated"] >= 1
        # The reassociated chain collapses 1+2+3 into one trailing
        # constant: two of the three adds disappear from the source.
        assert v2_src.count("np.add") < v1_src.count("np.add")

    def test_v2_is_bit_exact_against_v1(self):
        mod = resolve_module(_const_chain, None)
        tagged, _ = _tagged(_const_chain)
        grid = Grid.for_elements(128)
        rng = np.random.default_rng(0)
        x = rng.integers(-(2**30), 2**30, 128, dtype=np.int32)
        outs = {}
        for mode, fn in (("v1", resolve_kernel(_const_chain)), ("v2", tagged)):
            clear_cache()
            compiled = get_compiled(fn, mod, grid)
            assert compiled.lowering == f"codegen-{mode}"
            out = np.zeros(128, np.int32)
            compiled.run(grid, {"out": out, "x": x.copy(), "n": np.int32(128)})
            outs[mode] = out
        assert outs["v1"].tobytes() == outs["v2"].tobytes()

    def test_v2_stats_counters_move(self):
        clear_cache()
        before = stats_snapshot()
        tagged, mod = _tagged(_const_chain)
        get_compiled(tagged, mod, Grid.for_elements(32))
        after = stats_snapshot()
        assert after["v2_compiles"] == before["v2_compiles"] + 1
        assert after["v2_folds"] > before["v2_folds"]


class TestFingerprint:
    def test_knob_values_split_fingerprints(self):
        fn = resolve_kernel(_const_chain)
        mod = resolve_module(_const_chain, None)
        a, _ = _tagged(_const_chain, transform="memoization", knobs={"bits": 8})
        b, _ = _tagged(_const_chain, transform="memoization", knobs={"bits": 6})
        assert fingerprint_kernel(a, mod) != fingerprint_kernel(b, mod)
        assert fingerprint_kernel(a, mod) != fingerprint_kernel(fn, mod)

    def test_meta_is_frozen_into_the_kernel(self):
        tagged, _ = _tagged(_const_chain)
        meta = tagged.approx
        assert isinstance(meta, ApproxMeta)
        assert meta.transform == "test" and meta.knobs == (("k", 1),)


class TestVariantSurface:
    @pytest.fixture(scope="class")
    def variants(self):
        app = make_app("gaussian", seed=0)
        return Paraprox(target_quality=0.9).compile(app)

    def test_describe_includes_lowering_outcome(self, variants):
        text = variants.describe()
        assert "codegen-v2" in text

    def test_lowering_outcomes_cover_every_variant(self, variants):
        outcomes = variants.lowering_outcomes()
        assert set(outcomes) == {v.name for v in variants}
        for entry in outcomes.values():
            assert entry["mode"] in ("codegen-v2", "codegen-v1", "interpreter")
            assert entry["detail"]

    def test_variant_lowering_matches_compiled_kernel(self, variants):
        v = next(iter(variants))
        mode, _detail = variant_lowering(v)
        assert mode == "codegen-v2"


class TestDifferential:
    def test_gaussian_variants_bit_exact(self):
        app = make_app("gaussian", seed=0)
        variants = Paraprox(target_quality=0.9).compile(app)
        inputs = app.generate_inputs()
        for v in variants:
            result = diff_variant(app, v, inputs)
            assert result.ok, result.describe()

    def test_memoized_blackscholes_uses_table_gather(self):
        app = make_app("blackscholes", seed=0)
        variants = Paraprox(target_quality=0.9).compile(app)
        memo = [v for v in variants if "memo" in v.name]
        assert memo, [v.name for v in variants]
        mode, detail = variant_lowering(memo[0])
        assert mode == "codegen-v2"
        assert "table_gathers" in detail
        result = diff_variant(app, memo[0])
        assert result.ok, result.describe()

    def test_harness_runs_capped_sweep(self):
        per_app = check_approx_apps(["gamma"], verbose=False, per_transform=1)
        assert set(per_app) == {"gamma"}
        assert all(r.ok for r in per_app["gamma"])
