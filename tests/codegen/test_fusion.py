"""Cross-launch fusion: learn/defer/fuse protocol and the elision contract.

Fusion is opt-in (``LaunchOptions(fuse=True)``) and must (a) never change
any *output* byte, (b) genuinely elide writes to the caller's
intermediate array on fused pairs, and (c) degrade to plain sequential
launches at every window boundary (mismatch, interp launch, ladder rung,
explicit flush).
"""

import numpy as np
import pytest

import kernel_zoo as zoo
import repro
from repro.apps.convsep import (
    ConvolutionSeparableApp,
    conv_col_kernel,
    conv_row_kernel,
    gaussian_taps,
)
from repro.engine import Grid, LaunchOptions, launch
from repro.engine import fusion
from repro.errors import ConfigError


@pytest.fixture(autouse=True)
def _clean_window():
    fusion.reset()
    yield
    fusion.reset()


def _chain(n=512, fuse=False, sentinel=np.float32(-3.0)):
    """square_map twice: out = x**4 through an intermediate tmp."""
    x = np.random.default_rng(7).random(n, dtype=np.float32)
    tmp = np.full(n, sentinel, np.float32)
    out = np.zeros(n, np.float32)
    grid = Grid.for_elements(n)
    with repro.options(backend="codegen", fuse=fuse):
        launch(zoo.square_map, grid, [tmp, x, np.int32(n)])
        launch(zoo.square_map, grid, [out, tmp, np.int32(n)])
    fusion.flush()
    return x, tmp, out


class TestProtocol:
    def test_first_pair_learns_second_pair_fuses(self):
        baseline = fusion.stats_snapshot()
        _x, _tmp, out1 = _chain(fuse=True)  # learns (runs normally)
        _x, tmp2, out2 = _chain(fuse=True)  # defers + fuses
        stats = fusion.stats_snapshot()
        assert stats["plans_learned"] == baseline["plans_learned"] + 1
        assert stats["fused_runs"] == baseline["fused_runs"] + 1
        assert out1.tobytes() == out2.tobytes()
        # The fused pair never wrote the caller's intermediate.
        assert np.all(tmp2 == np.float32(-3.0))

    def test_fused_outputs_match_unfused_bit_exactly(self):
        _x, tmp_plain, out_plain = _chain(fuse=False)
        _chain(fuse=True)  # learn
        _x, _tmp, out_fused = _chain(fuse=True)
        assert out_fused.tobytes() == out_plain.tobytes()
        assert not np.all(tmp_plain == np.float32(-3.0))  # unfused writes tmp

    def test_fuse_off_never_engages(self):
        baseline = fusion.stats_snapshot()
        _chain(fuse=False)
        _chain(fuse=False)
        stats = fusion.stats_snapshot()
        assert stats["plans_learned"] == baseline["plans_learned"]
        assert stats["deferred"] == baseline["deferred"]

    def test_mismatched_consumer_flushes_producer(self):
        n = 256
        x = np.random.default_rng(1).random(n, dtype=np.float32)
        tmp = np.full(n, np.float32(-3.0), np.float32)
        out = np.zeros(n, np.float32)
        grid = Grid.for_elements(n)
        with repro.options(backend="codegen", fuse=True):
            # learn the plan
            launch(zoo.square_map, grid, [tmp, x, np.int32(n)])
            launch(zoo.square_map, grid, [out, tmp, np.int32(n)])
            tmp[:] = np.float32(-3.0)
            baseline = fusion.stats_snapshot()
            launch(zoo.square_map, grid, [tmp, x, np.int32(n)])  # deferred
            assert np.all(tmp == np.float32(-3.0))  # not yet run
            # unrelated kernel: not the consumer -> producer must flush
            launch(zoo.noop, grid, [np.zeros(n, np.float32), x, np.int32(n)])
        stats = fusion.stats_snapshot()
        assert stats["flushes"] == baseline["flushes"] + 1
        np.testing.assert_array_equal(tmp, x * x)

    def test_interp_launch_is_a_window_boundary(self):
        n = 256
        x = np.random.default_rng(2).random(n, dtype=np.float32)
        tmp = np.full(n, np.float32(-3.0), np.float32)
        grid = Grid.for_elements(n)
        with repro.options(backend="codegen", fuse=True):
            launch(zoo.square_map, grid, [tmp, x, np.int32(n)])
            launch(zoo.square_map, grid, [np.zeros(n, np.float32), tmp, np.int32(n)])
            tmp[:] = np.float32(-3.0)
            launch(zoo.square_map, grid, [tmp, x, np.int32(n)])  # deferred
        with repro.options(backend="interp"):
            launch(zoo.noop, grid, [np.zeros(n, np.float32), x, np.int32(n)])
        np.testing.assert_array_equal(tmp, x * x)  # flushed by the interp launch

    def test_explicit_flush_is_idempotent(self):
        fusion.flush()
        fusion.flush()
        assert fusion.plan_count() == 0


class TestEligibility:
    def test_grid_mismatch_does_not_learn(self):
        n = 256
        x = np.random.default_rng(3).random(n, dtype=np.float32)
        tmp = np.zeros(n, np.float32)
        with repro.options(backend="codegen", fuse=True):
            launch(zoo.square_map, Grid.for_elements(n), [tmp, x, np.int32(n)])
            launch(
                zoo.square_map,
                Grid(blocks=2, threads_per_block=128),
                [np.zeros(n, np.float32), tmp, np.int32(n)],
            )
        # Same element count but different grids: Grid equality decides.
        assert fusion.plan_count() == 0

    def test_unrelated_launches_do_not_learn(self):
        n = 256
        x = np.random.default_rng(4).random(n, dtype=np.float32)
        grid = Grid.for_elements(n)
        with repro.options(backend="codegen", fuse=True):
            launch(zoo.square_map, grid, [np.zeros(n, np.float32), x, np.int32(n)])
            launch(zoo.square_map, grid, [np.zeros(n, np.float32), x, np.int32(n)])
        assert fusion.plan_count() == 0

    def test_options_fuse_field_is_validated(self):
        with pytest.raises(ConfigError):
            LaunchOptions(fuse="yes")
        assert LaunchOptions(fuse=True).fuse is True
        assert LaunchOptions().fuse is None


class Test2DAndSharded:
    def _run_2d(self, fuse, workers=None):
        w = h = 48
        img = np.random.default_rng(5).random((h, w)).astype(np.float32)
        mid = np.full(h * w, np.float32(-9.0), np.float32)
        out = np.zeros(h * w, np.float32)
        grid = Grid.for_image(w, h, tx=16, ty=16)
        opts = {"backend": "codegen", "fuse": fuse}
        if workers is not None:
            opts["parallel"] = workers
            opts["min_shard_threads"] = 1
        with repro.options(**opts):
            for _ in range(2):  # first pair learns, second fuses
                launch(
                    zoo.tile_scale2d,
                    grid,
                    [mid, img.reshape(-1), np.int32(w), np.int32(h), np.float32(2.0)],
                )
                launch(
                    zoo.tile_scale2d,
                    grid,
                    [out, mid, np.int32(w), np.int32(h), np.float32(0.5)],
                )
                if fuse:
                    mid[:] = np.float32(-9.0)
        fusion.flush()
        return mid, out

    def test_2d_grid_pair_fuses_bit_exactly(self):
        _mid, out_plain = self._run_2d(fuse=False)
        baseline = fusion.stats_snapshot()
        mid, out_fused = self._run_2d(fuse=True)
        stats = fusion.stats_snapshot()
        assert stats["fused_runs"] == baseline["fused_runs"] + 1
        assert out_fused.tobytes() == out_plain.tobytes()
        assert np.all(mid == np.float32(-9.0))

    def test_sharded_fused_pair_bit_exact(self):
        _mid, out_plain = self._run_2d(fuse=False)
        baseline = fusion.stats_snapshot()
        mid, out_fused = self._run_2d(fuse=True, workers=2)
        stats = fusion.stats_snapshot()
        assert stats["fused_runs"] == baseline["fused_runs"] + 1
        assert out_fused.tobytes() == out_plain.tobytes()
        assert np.all(mid == np.float32(-9.0))


class TestConvSep:
    """The acceptance pipeline: ConvSep's row->col pair with tmp elided."""

    def _run(self, fuse):
        app = ConvolutionSeparableApp(scale=0.01, seed=0)
        img = app.generate_inputs()["img"].astype(np.float32)
        h, w = img.shape
        taps = gaussian_taps()
        grid = Grid.for_elements(h * w)
        src = img.reshape(-1).copy()
        tmp = np.full(h * w, np.float32(-7.0), np.float32)
        out = np.zeros(h * w, np.float32)
        with repro.options(backend="codegen", fuse=fuse):
            for _ in range(2):
                launch(conv_row_kernel, grid, [tmp, src, taps, np.int32(w), np.int32(h)])
                launch(conv_col_kernel, grid, [out, tmp, taps, np.int32(w), np.int32(h)])
                if fuse:
                    tmp[:] = np.float32(-7.0)
        fusion.flush()
        return tmp, out

    def test_intermediate_elided_outputs_exact(self):
        _tmp, out_plain = self._run(fuse=False)
        tmp, out_fused = self._run(fuse=True)
        assert out_fused.tobytes() == out_plain.tobytes()
        assert np.all(tmp == np.float32(-7.0))


class TestServeIntegration:
    def test_session_metrics_expose_fusion_block(self):
        from repro.serve import ApproxSession

        app = ConvolutionSeparableApp(scale=0.01, seed=0)
        with ApproxSession(app, target_quality=0.9) as session:
            session.launch(app.generate_inputs())
            snapshot = session.metrics_snapshot()
        block = snapshot["codegen"]["fusion"]
        assert set(block) == {
            "plans_learned", "deferred", "fused_runs", "elided_writes", "flushes",
        }

    def test_session_metrics_expose_variant_lowerings(self):
        from repro.serve import ApproxSession

        app = ConvolutionSeparableApp(scale=0.01, seed=0)
        with ApproxSession(app, target_quality=0.9) as session:
            session.launch(app.generate_inputs())
            snapshot = session.metrics_snapshot()
        variants = snapshot["codegen"]["variants"]
        assert variants  # the compiled ladder surfaces its lowering outcomes
        for entry in variants.values():
            assert entry["mode"] in ("codegen-v2", "codegen-v1", "interpreter")
