"""Differential tests: interpreter vs codegen must agree bit-for-bit.

Parametrized over every registered application plus zoo kernels covering
the semantics corners: divergent control flow with early returns, device
functions with multiple returns, 2-D grids, shared memory + barriers,
atomics, and uniform loops.
"""

import numpy as np
import pytest

import kernel_zoo as zoo
from repro.apps.registry import APP_CLASSES, make_app
from repro.codegen import diff_app, diff_kernel
from repro.engine import Grid


@pytest.mark.parametrize("name", sorted(APP_CLASSES))
def test_app_bit_exact_across_backends(name):
    app = make_app(name, seed=0)
    result = diff_app(app)
    assert result.ok, result.describe()


def _rand(n, seed=0):
    return np.random.default_rng(seed).random(n, dtype=np.float32)


ZOO_CASES = {
    "black_scholes": lambda n: (
        zoo.black_scholes,
        Grid.for_elements(n),
        [
            np.zeros(n, np.float32),
            _rand(n, 1) * 100 + 1,
            _rand(n, 2) * 100 + 1,
            _rand(n, 3) + 0.1,
            0.02,
            0.3,
            n,
        ],
    ),
    "square_map": lambda n: (
        zoo.square_map,
        Grid.for_elements(n),
        [np.zeros(n, np.float32), _rand(n), n],
    ),
    "clamp_map": lambda n: (
        # device function with multiple divergent returns
        zoo.clamp_map,
        Grid.for_elements(n),
        [np.zeros(n, np.float32), _rand(n) * 2 - 0.5, n],
    ),
    "divergent_return": lambda n: (
        # kernel-level early returns deactivate lanes at different points
        zoo.divergent_return,
        Grid.for_elements(n),
        [np.zeros(n, np.float32), _rand(n), n],
    ),
    "tile_scale2d": lambda n: (
        # true 2-D grid through the x/y intrinsic pairs
        zoo.tile_scale2d,
        Grid.for_image(50, 30),
        [np.zeros(1500, np.float32), _rand(1500), 50, 30, 1.7],
    ),
    "mean3x3": lambda n: (
        zoo.mean3x3,
        Grid.for_image(32, 24),
        [np.zeros(32 * 24, np.float32), _rand(32 * 24), 32, 24],
    ),
    "row_stencil": lambda n: (
        zoo.row_stencil,
        Grid.for_elements(n),
        [np.zeros(n, np.float32), _rand(n), n],
    ),
    "sum_chunks": lambda n: (
        # uniform for-loop over chunks
        zoo.sum_chunks,
        Grid.for_elements(n // 4),
        [np.zeros(n // 4, np.float32), _rand(n), n, 4],
    ),
    "atomic_histogram": lambda n: (
        zoo.atomic_histogram,
        Grid.for_elements(n),
        [
            np.zeros(16, np.int32),
            np.random.default_rng(4).integers(0, 16, n).astype(np.int32),
            n,
            1,
        ],
    ),
    "min_reduce": lambda n: (
        zoo.min_reduce,
        Grid.for_elements(2),
        [np.full(2, 3.4e38, np.float32), _rand(8192, 5), 8192, 4096],
    ),
    "scan_phase1": lambda n: (
        # shared memory + barriers + guarded-load ternary
        zoo.scan_phase1,
        Grid(4, zoo.SCAN_BLOCK),
        [
            np.zeros(4 * zoo.SCAN_BLOCK, np.float32),
            np.zeros(4, np.float32),
            _rand(4 * zoo.SCAN_BLOCK, 6),
        ],
    ),
    "gather_expensive": lambda n: (
        zoo.gather_expensive,
        Grid.for_elements(n),
        [
            np.zeros(n, np.float32),
            _rand(n, 7) * 50 + 1,
            np.random.default_rng(8).integers(0, n, n).astype(np.int32),
            n,
        ],
    ),
}


@pytest.mark.parametrize("name", sorted(ZOO_CASES))
def test_zoo_kernel_bit_exact_across_backends(name):
    kernel, grid, args = ZOO_CASES[name](1000)
    result = diff_kernel(kernel, grid, args)
    assert result.ok, result.describe()


def test_diff_kernel_reports_divergence_readably():
    # Feed deliberately different kernels through the comparator helper to
    # make sure a real divergence would be reported, not masked.
    from repro.codegen.check import _compare_arrays

    a = np.arange(4, dtype=np.float32)
    b = a.copy()
    b[2] = 7.0
    note = _compare_arrays("out", a, b)
    assert note is not None and "element 2" in note
    assert _compare_arrays("out", a, a.copy()) is None


def test_approx_variants_bit_exact_across_backends():
    """Generated *approximate* variants must also lower identically —
    the serving hot path runs variants, not the exact kernel."""
    from repro.approx.compiler import Paraprox
    from repro.engine import use_backend

    app = make_app("meanfilter", seed=0)
    variants = Paraprox(target_quality=0.5).compile(app)
    assert len(variants) > 0
    inputs = app.generate_inputs(seed=1)
    for variant in list(variants)[:4]:
        outs = {}
        for backend in ("interp", "codegen"):
            with use_backend(backend):
                out, _trace = app.run_variant(variant, inputs)
            outs[backend] = np.asarray(out)
        assert outs["interp"].tobytes() == outs["codegen"].tobytes(), (
            f"variant {getattr(variant, 'name', variant)!r} diverges"
        )
