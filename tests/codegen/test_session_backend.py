"""ApproxSession serving through the codegen backend."""

import pytest

from repro.apps.registry import make_app
from repro.errors import ConfigError
from repro.serve import ApproxSession


def _serve(backend=None, launches=4):
    app = make_app("meanfilter", seed=0)
    with ApproxSession(app, target_quality=0.5, backend=backend) as session:
        session.tune()
        for seed in range(launches):
            session.launch(app.generate_inputs(seed=seed))
        return session.metrics_snapshot()


def test_default_session_backend_serves_via_codegen():
    snapshot = _serve()
    assert snapshot["session"]["backend"] == "auto"
    # Served launches carry no trace/observer, so "auto" resolves to the
    # compiled path for every kernel launch.
    assert set(snapshot["backend_launches"]) == {"codegen"}
    assert snapshot["backend_launches"]["codegen"] == snapshot["kernel_launches"]
    assert snapshot["backend_launches"]["codegen"] > 0


def test_session_codegen_compile_stats_attributed():
    snapshot = _serve(backend="codegen", launches=5)
    codegen = snapshot["codegen"]
    # Every served kernel launch either compiled a specialization or hit
    # the in-process compile cache (earlier tests may have warmed it).
    served = snapshot["backend_launches"]["codegen"]
    assert codegen["compiles"] + codegen["cache_hits"] == served
    assert codegen["cache_hits"] >= 1
    assert codegen["fallbacks"] == 0


def test_session_can_pin_the_interpreter():
    snapshot = _serve(backend="interp")
    assert snapshot["session"]["backend"] == "interp"
    assert set(snapshot["backend_launches"]) == {"interp"}


def test_session_rejects_unknown_backend():
    app = make_app("meanfilter", seed=0)
    with pytest.raises(ConfigError) as exc:
        ApproxSession(app, backend="tensorrt")
    assert "'tensorrt'" in str(exc.value) and "'codegen'" in str(exc.value)


def test_per_launch_records_carry_backend_counts():
    app = make_app("meanfilter", seed=0)
    with ApproxSession(app, target_quality=0.5, backend="codegen") as session:
        session.tune()
        session.launch(app.generate_inputs(seed=1))
        snapshot = session.metrics_snapshot()
    record = snapshot["recent_launches"][-1]
    assert record["backends"].get("codegen", 0) == record["kernel_launches"]
