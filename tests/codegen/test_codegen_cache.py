"""Compile cache, fingerprints and the stats counters."""

import numpy as np
import pytest

import kernel_zoo as zoo
from repro.codegen import (
    cache_size,
    clear_cache,
    fingerprint_kernel,
    get_compiled,
    lower_kernel,
    stats_snapshot,
)
from repro.codegen.cache import STATS
from repro.engine import Grid, launch


@pytest.fixture(autouse=True)
def _isolated_cache():
    clear_cache()
    yield
    clear_cache()


def _fn(kernel_fn):
    return kernel_fn.fn, kernel_fn.module


class TestFingerprint:
    def test_stable_for_same_kernel(self):
        fn, mod = _fn(zoo.square_map)
        assert fingerprint_kernel(fn, mod) == fingerprint_kernel(fn, mod)

    def test_distinct_kernels_differ(self):
        sq, sq_mod = _fn(zoo.square_map)
        bs, bs_mod = _fn(zoo.black_scholes)
        assert fingerprint_kernel(sq, sq_mod) != fingerprint_kernel(bs, bs_mod)

    def test_covers_reachable_device_functions(self):
        # black_scholes reaches cnd/bs_body; their bodies are part of the
        # fingerprint, so two kernels with identical top-level bodies but
        # different callees cannot collide.
        from repro.codegen.fingerprint import reachable_device_functions

        fn, mod = _fn(zoo.black_scholes)
        names = [f.name for f in reachable_device_functions(fn, mod)]
        assert "cnd" in names and "bs_body" in names


class TestCompileCache:
    def test_hit_returns_same_object_and_counts(self):
        fn, mod = _fn(zoo.square_map)
        grid = Grid.for_elements(128)
        base = stats_snapshot()
        first = get_compiled(fn, mod, grid, True)
        second = get_compiled(fn, mod, grid, True)
        assert first is second
        now = stats_snapshot()
        assert now["compiles"] == base["compiles"] + 1
        assert now["cache_hits"] == base["cache_hits"] + 1
        assert now["source_bytes"] > base["source_bytes"]
        assert now["compile_seconds"] > base["compile_seconds"]

    def test_grid_shape_class_is_part_of_the_key(self):
        fn, mod = _fn(zoo.square_map)
        get_compiled(fn, mod, Grid.for_elements(128), True)
        assert cache_size() == 1
        get_compiled(fn, mod, Grid.for_image(16, 8), True)
        assert cache_size() == 2
        # Another 1-D grid shape reuses the 1-D specialization.
        get_compiled(fn, mod, Grid.for_elements(4096), True)
        assert cache_size() == 2

    def test_bounds_check_is_part_of_the_key(self):
        fn, mod = _fn(zoo.square_map)
        checked = get_compiled(fn, mod, Grid.for_elements(64), True)
        unchecked = get_compiled(fn, mod, Grid.for_elements(64), False)
        assert checked is not unchecked
        assert cache_size() == 2

    def test_clear_cache(self):
        fn, mod = _fn(zoo.square_map)
        get_compiled(fn, mod, Grid.for_elements(64), True)
        assert cache_size() == 1
        clear_cache()
        assert cache_size() == 0

    def test_compiled_kernel_carries_inspectable_source(self):
        fn, mod = _fn(zoo.black_scholes)
        compiled = get_compiled(fn, mod, Grid.for_elements(64), True)
        assert f"def _kernel_{fn.name}" in compiled.source
        assert "def _dev_cnd" in compiled.source
        assert compiled.fingerprint == fingerprint_kernel(fn, mod)
        assert compiled.grid_class == "1d"

    def test_launches_share_one_compile(self):
        base = stats_snapshot()
        n = 128
        for _ in range(5):
            args = [
                np.zeros(n, np.float32),
                np.ones(n, np.float32),
                np.int32(n),
            ]
            launch(zoo.square_map, Grid.for_elements(n), args, backend="codegen")
        now = stats_snapshot()
        assert now["compiles"] == base["compiles"] + 1
        assert now["cache_hits"] == base["cache_hits"] + 4


class TestLowering:
    def test_lower_kernel_returns_compilable_source(self):
        fn, mod = _fn(zoo.square_map)
        source, exec_globals, entry = lower_kernel(fn, mod)
        assert entry == f"_kernel_{fn.name}"
        compile(source, "<test>", "exec")  # must be valid Python
        assert "np.errstate" in source

    def test_stats_snapshot_shape(self):
        snap = stats_snapshot()
        assert set(snap) >= {
            "compiles",
            "cache_hits",
            "compile_seconds",
            "source_bytes",
            "fallbacks",
        }
        assert STATS.snapshot() == stats_snapshot()
