"""Backend seam: selection, validation, fallback and observability."""

import numpy as np
import pytest

import kernel_zoo as zoo
from repro.codegen import CodegenError
from repro.codegen.cache import STATS
from repro.engine import (
    BACKENDS,
    Grid,
    Trace,
    default_backend,
    launch,
    launch_hook,
    use_backend,
    validate_backend,
)
from repro.errors import ConfigError, ExecutionError


def _square_args(n=256):
    x = np.random.default_rng(0).random(n, dtype=np.float32)
    return [np.zeros(n, np.float32), x, np.int32(n)]


def _events_for(**launch_kwargs):
    events = []
    with launch_hook(events.append):
        launch(zoo.square_map, Grid.for_elements(256), _square_args(), **launch_kwargs)
    assert len(events) == 1
    return events[0]


class TestValidation:
    def test_known_backends(self):
        assert BACKENDS == ("interp", "codegen", "auto")
        for name in BACKENDS:
            assert validate_backend(name) == name

    def test_unknown_backend_names_choices(self):
        with pytest.raises(ConfigError) as exc:
            validate_backend("jit")
        message = str(exc.value)
        assert "'jit'" in message
        for name in BACKENDS:
            assert repr(name) in message

    def test_launch_rejects_unknown_backend(self):
        with pytest.raises(ConfigError):
            launch(zoo.square_map, Grid.for_elements(8), _square_args(8), backend="llvm")

    def test_config_rejects_unknown_backend(self):
        from repro.approx.compiler import ParaproxConfig

        with pytest.raises(ConfigError) as exc:
            ParaproxConfig(backend="cuda")
        assert "'cuda'" in str(exc.value) and "'auto'" in str(exc.value)

    def test_paraprox_compile_rejects_unknown_backend(self):
        from repro.approx.compiler import Paraprox
        from repro.apps.registry import make_app

        with pytest.raises(ConfigError):
            Paraprox(0.9).compile(make_app("meanfilter", seed=0), backend="nope")


class TestSelection:
    def test_default_is_interp(self):
        assert default_backend() == "interp"
        assert _events_for().backend == "interp"

    def test_use_backend_nests_and_restores(self):
        with use_backend("codegen"):
            assert default_backend() == "codegen"
            with use_backend("interp"):
                assert default_backend() == "interp"
            assert default_backend() == "codegen"
        assert default_backend() == "interp"

    def test_explicit_codegen_event(self):
        assert _events_for(backend="codegen").backend == "codegen"

    def test_auto_picks_codegen_without_trace(self):
        assert _events_for(backend="auto").backend == "codegen"

    def test_auto_picks_interp_with_trace(self):
        event = _events_for(backend="auto", trace=Trace())
        assert event.backend == "interp"

    def test_auto_picks_interp_with_call_observer(self):
        event = _events_for(backend="auto", call_observer=lambda *a: None)
        assert event.backend == "interp"

    def test_explicit_codegen_rejects_call_observer(self):
        with pytest.raises(ExecutionError, match="call_observer"):
            launch(
                zoo.square_map,
                Grid.for_elements(8),
                _square_args(8),
                backend="codegen",
                call_observer=lambda *a: None,
            )

    def test_ambient_backend_applies_to_launch(self):
        with use_backend("codegen"):
            assert _events_for().backend == "codegen"


class TestFallback:
    def test_auto_falls_back_to_interp_on_codegen_error(self, monkeypatch):
        from repro.codegen import cache as cache_mod

        def boom(*args, **kwargs):
            raise CodegenError("synthetic lowering failure")

        monkeypatch.setattr(cache_mod, "get_compiled", boom)
        before = STATS.fallbacks
        args = _square_args(64)
        event = []
        with launch_hook(event.append):
            launch(zoo.square_map, Grid.for_elements(64), args, backend="auto")
        assert STATS.fallbacks == before + 1
        assert event[0].backend == "interp"
        np.testing.assert_array_equal(args[0], args[1] * args[1])

    def test_explicit_codegen_propagates_codegen_error(self, monkeypatch):
        from repro.codegen import cache as cache_mod

        def boom(*args, **kwargs):
            raise CodegenError("synthetic lowering failure")

        monkeypatch.setattr(cache_mod, "get_compiled", boom)
        with pytest.raises(CodegenError, match="synthetic"):
            launch(
                zoo.square_map,
                Grid.for_elements(8),
                _square_args(8),
                backend="codegen",
            )


class TestErrorParity:
    """Runtime faults must carry the interpreter's exact message."""

    def _raise_oob(self, backend):
        n = 64
        # out/x hold only 10 elements but all 64 lanes pass the guard.
        args = [np.zeros(10, np.float32), np.zeros(10, np.float32), np.int32(n)]
        with pytest.raises(ExecutionError) as exc:
            launch(zoo.square_map, Grid.for_elements(n), args, backend=backend)
        return str(exc.value)

    def test_out_of_bounds_message_matches(self):
        assert self._raise_oob("interp") == self._raise_oob("codegen")

    def test_bounds_check_off_clamps_identically(self):
        # With checks disabled both backends clamp indices into range; the
        # clamped results must still agree bit-for-bit.
        n = 64
        outs = {}
        for backend in ("interp", "codegen"):
            out = np.zeros(10, np.float32)
            x = np.arange(10, dtype=np.float32)
            launch(
                zoo.square_map,
                Grid.for_elements(n),
                [out, x, np.int32(n)],
                backend=backend,
                bounds_check=False,
            )
            outs[backend] = out
        assert outs["interp"].tobytes() == outs["codegen"].tobytes()
