"""The quality-drift timeline: entries, correlation ids, trace mirroring."""

from repro.obs import trace as obs_trace
from repro.obs.timeline import (
    BREAKER,
    DRIFT,
    KNOB_CHANGE,
    QUALITY_SAMPLE,
    TOQ_VIOLATION,
    timeline,
)


class TestDisabled:
    def test_record_is_a_noop_while_tracing_is_off(self, untraced):
        assert timeline().record(QUALITY_SAMPLE, quality=0.9) is None
        assert timeline().entries() == []


class TestEntries:
    def test_quality_sample_carries_correlation_ids(self, traced_memory):
        timeline().quality_sample(
            session="s9",
            launch_id=7,
            trace_id="t3",
            variant="v",
            quality=0.95,
            estimate=0.94,
            toq=0.9,
            speedup=2.0,
            verdict="ok",
        )
        (entry,) = timeline().entries(kind=QUALITY_SAMPLE)
        assert entry["session"] == "s9"
        assert entry["launch_id"] == 7
        assert entry["trace_id"] == "t3"
        assert entry["quality"] == 0.95

    def test_verdict_knob_change_and_breaker_kinds(self, traced_memory):
        timeline().verdict(
            TOQ_VIOLATION, session="s9", launch_id=1, trace_id=None,
            variant="v", quality=0.5,
        )
        timeline().verdict(
            DRIFT, session="s9", launch_id=2, trace_id=None,
            variant="v", quality=0.6,
        )
        timeline().knob_change(
            session="s9", launch_id=2, trace_id=None,
            from_variant="v", to_variant="exact", reason="drift",
        )
        timeline().breaker(
            session="s9", launch_id=3, trace_id=None,
            variant="v", state="open", reason="crash",
        )
        kinds = [e["kind"] for e in timeline().entries(session="s9")]
        assert kinds == [TOQ_VIOLATION, DRIFT, KNOB_CHANGE, BREAKER]

    def test_session_filter(self, traced_memory):
        timeline().breaker(
            session="a", launch_id=0, trace_id=None,
            variant="v", state="open", reason="r",
        )
        timeline().breaker(
            session="b", launch_id=0, trace_id=None,
            variant="v", state="open", reason="r",
        )
        assert len(timeline().entries(session="a")) == 1

    def test_entries_are_seq_ordered(self, traced_memory):
        for i in range(3):
            timeline().record(KNOB_CHANGE, launch_id=i)
        seqs = [e["seq"] for e in timeline().entries()]
        assert seqs == sorted(seqs)

    def test_clear(self, traced_memory):
        timeline().record(KNOB_CHANGE, launch_id=0)
        timeline().clear()
        assert timeline().entries() == []


class TestTraceMirroring:
    def test_entries_are_mirrored_into_the_trace_stream(self, traced_memory):
        timeline().breaker(
            session="s9", launch_id=3, trace_id="t1",
            variant="v", state="open", reason="crash",
        )
        mirrored = [
            r for r in obs_trace.drain_records() if r.get("type") == "event"
        ]
        assert len(mirrored) == 1
        assert mirrored[0]["kind"] == BREAKER
        assert mirrored[0]["launch_id"] == 3
