"""Embedded HTTP endpoint: spec parsing, routes, readiness, wiring."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigError
from repro.obs.http import DEFAULT_HOST, ObsHTTPServer, parse_http_spec
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SLOEngine, SLOObjective
from repro.serve import signals


def _get(server, path):
    """(status, body-text) for a GET against the embedded server."""
    url = f"http://127.0.0.1:{server.port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


class TestSpecParsing:
    def test_disabled_values(self):
        assert parse_http_spec(None) is None
        assert parse_http_spec(False) is None
        assert parse_http_spec("") is None

    def test_true_means_ephemeral_loopback(self):
        assert parse_http_spec(True) == (DEFAULT_HOST, 0)

    def test_port_forms(self):
        assert parse_http_spec(9464) == (DEFAULT_HOST, 9464)
        assert parse_http_spec("9464") == (DEFAULT_HOST, 9464)
        assert parse_http_spec("0.0.0.0:9464") == ("0.0.0.0", 9464)

    def test_junk_raises(self):
        with pytest.raises(ConfigError):
            parse_http_spec("not-a-port")


class TestEndpoints:
    @pytest.fixture
    def server(self):
        registry = MetricsRegistry()
        registry.counter("repro_http_test_total", "test counter").inc(3)
        with ObsHTTPServer(port=0, registry=registry) as server:
            yield server

    def test_metrics_serves_the_exposition(self, server):
        status, body = _get(server, "/metrics")
        assert status == 200
        assert "repro_http_test_total 3" in body

    def test_healthz_is_always_ok(self, server):
        assert _get(server, "/healthz") == (200, "ok\n")

    def test_readyz_follows_the_drain_flag(self, server):
        assert _get(server, "/readyz")[0] == 200
        signals._DRAINING.set()
        try:
            assert _get(server, "/readyz") == (503, "draining\n")
        finally:
            signals.reset_draining()
        assert _get(server, "/readyz")[0] == 200

    def test_readyz_follows_an_attached_frontend(self):
        class _Closed:
            _closed = True

        server = ObsHTTPServer(
            port=0, registry=MetricsRegistry(), frontend=_Closed()
        )
        with server:
            assert _get(server, "/readyz")[0] == 503

    def test_slo_without_engine_serves_an_empty_default(self, server):
        status, body = _get(server, "/slo")
        assert status == 200
        assert json.loads(body) == {
            "objectives": [],
            "max_state": "OK",
            "pressure_hint": 0.0,
        }

    def test_debug_vars_is_the_registry_snapshot(self, server):
        status, body = _get(server, "/debug/vars")
        assert status == 200
        assert json.loads(body)["repro_http_test_total"] == 3

    def test_debug_profile_404s_without_a_profiler(self, server, monkeypatch):
        # The CI shard may run with an env-activated global profiler the
        # endpoint would fall back to; hide it for the 404 case.
        from repro.obs import profile as obs_profile

        monkeypatch.setattr(obs_profile, "_ACTIVE", None)
        assert _get(server, "/debug/profile")[0] == 404

    def test_debug_profile_serves_the_active_stacks(self, server):
        from repro.obs.profile import SamplingProfiler

        profiler = SamplingProfiler(
            interval_s=0.002, registry=MetricsRegistry()
        )
        server.profiler = profiler
        try:
            with profiler:
                deadline = time.monotonic() + 5
                while (
                    profiler.sample_count() < 3
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
            status, body = _get(server, "/debug/profile")
        finally:
            server.profiler = None
        assert status == 200
        assert body.strip(), "no collapsed stacks served"

    def test_unknown_path_404s(self, server):
        assert _get(server, "/nope")[0] == 404

    def test_index_lists_the_routes(self, server):
        status, body = _get(server, "/")
        assert status == 200
        assert "/metrics" in body and "/slo" in body

    def test_query_strings_and_trailing_slashes_normalise(self, server):
        assert _get(server, "/healthz/?verbose=1")[0] == 200


class TestSLOEndpoint:
    def test_slo_serves_the_engine_state(self):
        registry = MetricsRegistry()
        engine = SLOEngine(
            objectives=(SLOObjective.availability("avail"),),
            registry=registry,
        )
        with ObsHTTPServer(port=0, registry=registry, slo=engine) as server:
            status, body = _get(server, "/slo")
        assert status == 200
        state = json.loads(body)
        assert state["objectives"][0]["name"] == "avail"
        assert state["max_state"] == "OK"


class TestLifecycle:
    def test_start_is_idempotent_and_stop_releases_the_port(self):
        server = ObsHTTPServer(port=0, registry=MetricsRegistry())
        server.start()
        port = server.port
        assert server.start() is server
        assert server.port == port
        server.stop()
        with pytest.raises(Exception):
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=1
            )

    def test_frontend_serve_http_wires_the_endpoint(self):
        from repro.serve import ServeFrontend

        frontend = ServeFrontend(serve_http=True)
        try:
            assert frontend.http is not None
            status, body = _get(frontend.http, "/metrics")
            assert status == 200
            assert "repro_frontend_requests_total" in body
            assert _get(frontend.http, "/readyz")[0] == 200
        finally:
            frontend.close()
        # close() stops the listener after the drain completes.
        assert frontend.http._httpd is None

    def test_frontend_env_opt_in(self, monkeypatch):
        from repro.serve import ServeFrontend

        monkeypatch.setenv("REPRO_OBS_HTTP", "127.0.0.1:0")
        frontend = ServeFrontend()
        try:
            assert frontend.http is not None
            assert _get(frontend.http, "/healthz")[0] == 200
        finally:
            frontend.close()

    def test_frontend_defaults_to_no_endpoint(self, monkeypatch):
        from repro.serve import ServeFrontend

        monkeypatch.delenv("REPRO_OBS_HTTP", raising=False)
        frontend = ServeFrontend()
        try:
            assert frontend.http is None
        finally:
            frontend.close()
