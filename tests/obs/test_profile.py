"""Sampling profiler: attribution, collapsed output, rendering."""

import threading
import time

import pytest

from repro.obs import span
from repro.obs.export import load_collapsed, render_flame, render_top
from repro.obs.profile import (
    SEAMS,
    SamplingProfiler,
    active_profiler,
)
from repro.obs import profile as obs_profile
from repro.obs.registry import MetricsRegistry


def _busy(stop, tag):
    """A worker with a recognisable frame, spinning until told to stop."""
    while not stop.is_set():
        sum(range(200))


def _profiled_worker(profiler, target, min_samples=5, timeout=5.0):
    """Run ``target(stop)`` in a thread while the profiler samples it."""
    stop = threading.Event()
    worker = threading.Thread(target=target, args=(stop,), daemon=True)
    worker.start()
    try:
        with profiler:
            deadline = time.monotonic() + timeout
            while (
                profiler.sample_count() < min_samples
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
    finally:
        stop.set()
        worker.join(timeout=5)
    assert profiler.sample_count() >= min_samples, "profiler never sampled"


class TestSampling:
    def test_samples_accumulate_and_metrics_count(self):
        registry = MetricsRegistry()
        profiler = SamplingProfiler(interval_s=0.002, registry=registry)
        _profiled_worker(profiler, lambda stop: _busy(stop, "plain"))
        assert registry.get("repro_profile_samples_total").value >= 5
        collapsed = profiler.collapsed_stacks()
        assert "_busy" in collapsed

    def test_spans_become_synthetic_root_frames(self, traced_memory):
        registry = MetricsRegistry()
        profiler = SamplingProfiler(interval_s=0.002, registry=registry)

        def target(stop):
            with span("shard.run", kernel="blackscholes", variant="loop[4]"):
                _busy(stop, "in-span")

        _profiled_worker(profiler, target)
        spanned = [
            line
            for line in profiler.collapsed_stacks().splitlines()
            if line.startswith("shard.run;")
        ]
        assert spanned, "no stack rooted at the span name"

    def test_seam_attribution_reads_span_attrs(self, traced_memory):
        registry = MetricsRegistry()
        profiler = SamplingProfiler(interval_s=0.002, registry=registry)

        def target(stop):
            with span("engine.launch", kernel="sobel"):
                with span("shard.run", kernel="sobel", variant="tile[8]"):
                    _busy(stop, "seamed")

        _profiled_worker(profiler, target)
        top = profiler.top()
        assert top, "no seam-attributed samples"
        hottest = top[0]
        # Innermost seam wins: shard.run, not the enclosing engine.launch.
        assert hottest["seam"] == "shard.run"
        assert hottest["kernel"] == "sobel"
        assert hottest["variant"] == "tile[8]"
        assert hottest["seconds"] == pytest.approx(
            hottest["samples"] * profiler.interval_s
        )
        seam_metric = registry.get("repro_profile_seam_samples_total")
        assert seam_metric.labels(seam="shard.run").value >= 1

    def test_reset_clears_accumulated_data(self):
        profiler = SamplingProfiler(interval_s=0.002, registry=MetricsRegistry())
        _profiled_worker(profiler, lambda stop: _busy(stop, "reset"))
        profiler.reset()
        assert profiler.sample_count() == 0
        assert profiler.collapsed_stacks() == ""

    def test_start_is_idempotent_and_stop_joins(self):
        profiler = SamplingProfiler(interval_s=0.002, registry=MetricsRegistry())
        profiler.start()
        assert profiler.start() is profiler
        assert profiler.running
        profiler.stop()
        assert not profiler.running
        profiler.stop()  # second stop is a no-op


class TestGlobalProfiler:
    def test_start_stop_roundtrip(self):
        # The CI shard runs with REPRO_OBS_PROFILE=1, so a global
        # profiler may already be live; restore its state on exit.
        was_running = (
            active_profiler() is not None and active_profiler().running
        )
        profiler = obs_profile.start(
            interval_s=0.005, registry=MetricsRegistry()
        )
        try:
            assert active_profiler() is profiler
            assert profiler.running
        finally:
            obs_profile.stop()
        assert not profiler.running
        if was_running:
            obs_profile.start()


class TestCollapsedFormat:
    def test_export_and_reload_roundtrip(self, tmp_path):
        profiler = SamplingProfiler(interval_s=0.002, registry=MetricsRegistry())
        _profiled_worker(profiler, lambda stop: _busy(stop, "export"))
        path = tmp_path / "profile.collapsed"
        profiler.export_collapsed(path)
        stacks = load_collapsed(path)
        assert stacks
        assert sum(stacks.values()) > 0
        assert all(
            isinstance(k, tuple) and isinstance(v, int)
            for k, v in stacks.items()
        )

    def test_render_flame_folds_and_percentages(self):
        stacks = {
            ("main", "hot", "inner"): 90,
            ("main", "cold"): 10,
        }
        text = render_flame(stacks, min_percent=5.0)
        assert "total: 100 samples" in text
        assert "hot" in text and "90" in text

    def test_render_flame_folds_rare_branches(self):
        stacks = {("main", "hot"): 999, ("main", "rare"): 1}
        text = render_flame(stacks, min_percent=5.0)
        assert "rare" not in text

    def test_render_top_ranks_leaf_self_time(self):
        stacks = {
            ("a", "leaf1"): 70,
            ("b", "leaf2"): 30,
        }
        text = render_top(stacks, limit=10)
        lines = [l for l in text.splitlines() if "leaf" in l]
        assert "leaf1" in lines[0]

    def test_seams_cover_the_instrumented_spans(self):
        # The attribution seams must track the production span names.
        assert "engine.launch" in SEAMS
        assert "shard.run" in SEAMS
        assert "serve.batch" in SEAMS
        assert "proc.launch" in SEAMS
