"""Trace-file analysis and the ``python -m repro.obs`` CLI."""

import json

from repro.obs.__main__ import main
from repro.obs.export import build_trees, load_trace, render_tree, summarize


def _span(name, span_id, parent_id=None, trace_id="t0", **attrs):
    return {
        "type": "span",
        "name": name,
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "start": float(int(span_id[1:])),
        "duration": 0.01,
        "thread": "MainThread",
        "seq": int(span_id[1:]),
        "status": "ok",
        "error": "",
        "attrs": attrs,
        "events": [],
    }


def _write_trace(path, records):
    path.write_text("\n".join(json.dumps(r) for r in records) + "\n")


def _sample_records():
    return [
        _span("serve.launch", "s0", fallback_depth=1, served="exact_codegen"),
        _span("ladder.rung", "s1", parent_id="s0", rung="variant"),
        _span("ladder.rung", "s2", parent_id="s0", rung="exact_codegen"),
        _span("engine.launch", "s3", parent_id="s2", backend="codegen"),
        {
            "type": "event",
            "kind": "quality_sample",
            "seq": 10,
            "launch_id": 0,
            "variant": "v",
            "quality": 0.91,
            "estimate": 0.92,
            "speedup": 1.5,
            "verdict": "ok",
        },
        {
            "type": "event",
            "kind": "knob_change",
            "seq": 11,
            "launch_id": 0,
            "from_variant": "v",
            "to_variant": "exact",
            "reason": "toq_violation",
        },
    ]


class TestLoadTrace:
    def test_splits_spans_from_events(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path, _sample_records())
        spans, events = load_trace(path)
        assert len(spans) == 4
        assert len(events) == 2

    def test_torn_and_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = json.dumps(_span("a", "s0"))
        path.write_text(good + "\n\n{\"type\": \"span\", \"na")
        spans, events = load_trace(path)
        assert len(spans) == 1 and events == []


class TestTrees:
    def test_build_trees_links_children(self, tmp_path):
        spans, _ = (_sample_records()[:4], None)
        forest = build_trees(spans)
        (root,) = forest["t0"]
        assert root["name"] == "serve.launch"
        rungs = [c["name"] for c in root["children"]]
        assert rungs == ["ladder.rung", "ladder.rung"]
        assert root["children"][1]["children"][0]["name"] == "engine.launch"

    def test_orphan_parents_become_roots(self):
        forest = build_trees([_span("lost", "s5", parent_id="missing")])
        assert forest["t0"][0]["name"] == "lost"

    def test_render_tree_indents_by_depth(self):
        forest = build_trees(_sample_records()[:4])
        lines = render_tree(forest["t0"])
        assert lines[0].startswith("serve.launch")
        assert lines[1].startswith("  ladder.rung")
        assert lines[3].startswith("    engine.launch")


class TestSummarize:
    def test_report_sections(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path, _sample_records())
        report = summarize(path)
        assert "4 spans across 1 traces, 2 events" in report
        assert "-- Top spans by total time" in report
        assert "depth 1: 1 launch(es)" in report
        assert "served by rung: exact_codegen=1" in report
        assert "-- Quality timeline" in report
        assert "quality=0.9100" in report
        assert "KNOB v -> exact (toq_violation)" in report
        assert "-- Span tree (t0)" in report


class TestCli:
    def test_summarize_command(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        _write_trace(path, _sample_records())
        assert main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Trace summary" in out and "serve.launch" in out

    def test_tree_command_filters_by_trace_id(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        _write_trace(path, _sample_records())
        assert main(["tree", str(path), "--trace-id", "t0"]) == 0
        assert "serve.launch" in capsys.readouterr().out
        assert main(["tree", str(path), "--trace-id", "t9"]) == 1

    def test_metrics_command_renders_prometheus(self, capsys):
        from repro.obs import get_registry

        get_registry().counter("repro_cli_smoke_total", "smoke").inc()
        assert main(["metrics"]) == 0
        assert "repro_cli_smoke_total 1" in capsys.readouterr().out
