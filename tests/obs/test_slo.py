"""SLO engine: objectives, burn-rate math, the alert FSM, the drill."""

import pytest

from repro.errors import ConfigError
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import (
    OK,
    PAGE,
    WARN,
    SLOEngine,
    SLOObjective,
    run_drill,
)
from repro.obs.timeline import timeline


class TestObjectiveValidation:
    def test_unknown_kind_raises(self):
        with pytest.raises(ConfigError):
            SLOObjective(name="x", kind="throughput")

    def test_target_must_be_a_proper_fraction(self):
        with pytest.raises(ConfigError):
            SLOObjective(name="x", kind="latency", target=1.0)
        with pytest.raises(ConfigError):
            SLOObjective(name="x", kind="latency", target=0.0)

    def test_fast_window_must_be_shorter(self):
        with pytest.raises(ConfigError):
            SLOObjective(
                name="x", kind="latency",
                fast_window_s=300.0, slow_window_s=60.0,
            )

    def test_warn_burn_must_not_exceed_page_burn(self):
        with pytest.raises(ConfigError):
            SLOObjective(
                name="x", kind="latency", warn_burn=8.0, page_burn=4.0
            )

    def test_budget_is_one_minus_target(self):
        objective = SLOObjective(name="x", kind="latency", target=0.99)
        assert objective.budget == pytest.approx(0.01)

    def test_constructors_wire_the_serving_metrics(self):
        latency = SLOObjective.latency("l", tenant="a", threshold_s=0.1)
        assert latency.hist_metric == "repro_frontend_tenant_wait_seconds"
        assert latency.labels == (("tenant", "a"),)

        miss = SLOObjective.deadline_miss_rate("m", tenant="a")
        assert miss.bad_metric == "repro_frontend_tenant_deadline_misses_total"
        assert miss.total_metric == "repro_frontend_requests_total"

        quality = SLOObjective.quality("q", session="s1")
        assert quality.bad_metric == "repro_session_toq_violations_total"
        assert quality.labels == (("session", "s1"),)

        avail = SLOObjective.availability("a")
        assert avail.total_includes_bad is False


class _Clock:
    """A settable fake clock handed to SLOEngine."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _miss_rate_engine(registry, **overrides):
    """Engine with one deadline-miss objective: 10% budget, 60s/300s."""
    defaults = dict(
        target=0.9, fast_window_s=60.0, slow_window_s=300.0,
        warn_burn=1.0, page_burn=4.0, clear_after_s=120.0,
    )
    defaults.update(overrides)
    clock = _Clock()
    engine = SLOEngine(
        objectives=(
            SLOObjective.deadline_miss_rate("miss", tenant="t", **defaults),
        ),
        registry=registry,
        clock=clock,
    )
    bad = registry.counter(
        "repro_frontend_tenant_deadline_misses_total", "misses",
        labelnames=("tenant",),
    ).labels(tenant="t")
    total = registry.counter(
        "repro_frontend_requests_total", "requests", labelnames=("tenant",)
    ).labels(tenant="t")
    return engine, clock, bad, total


class TestBurnMath:
    def test_counter_burn_is_bad_rate_over_budget(self):
        registry = MetricsRegistry()
        engine, clock, bad, total = _miss_rate_engine(registry)
        engine.evaluate(0.0)  # baseline sample
        total.inc(100)
        bad.inc(5)  # 5% bad against a 10% budget -> burn 0.5
        engine.evaluate(10.0)
        (objective,) = engine.state()["objectives"]
        assert objective["burn_fast"] == pytest.approx(0.5)
        assert objective["burn_slow"] == pytest.approx(0.5)
        assert objective["state"] == "OK"

    def test_no_traffic_means_no_burn(self):
        registry = MetricsRegistry()
        engine, clock, bad, total = _miss_rate_engine(registry)
        engine.evaluate(0.0)
        engine.evaluate(10.0)
        (objective,) = engine.state()["objectives"]
        assert objective["burn_fast"] == 0.0

    def test_missing_metric_families_burn_zero(self):
        registry = MetricsRegistry()
        engine = SLOEngine(
            objectives=(SLOObjective.deadline_miss_rate("m", tenant="t"),),
            registry=registry,
        )
        engine.evaluate(0.0)
        engine.evaluate(10.0)
        assert engine.state()["objectives"][0]["burn_fast"] == 0.0

    def test_availability_counts_offered_load(self):
        registry = MetricsRegistry()
        engine = SLOEngine(
            objectives=(SLOObjective.availability("avail", target=0.9),),
            registry=registry,
        )
        requests = registry.counter(
            "repro_frontend_requests_total", "requests", labelnames=("tenant",)
        )
        rejects = registry.counter(
            "repro_frontend_rejects_total", "rejects"
        )
        engine.evaluate(0.0)
        requests.labels(tenant="a").inc(60)
        requests.labels(tenant="b").inc(35)  # totals sum across tenants
        rejects.inc(5)  # offered = 95 admitted + 5 rejected
        engine.evaluate(10.0)
        (objective,) = engine.state()["objectives"]
        assert objective["burn_fast"] == pytest.approx(0.5)  # 5% / 10%

    def test_latency_burn_interpolates_the_histogram(self):
        registry = MetricsRegistry()
        clock = _Clock()
        engine = SLOEngine(
            objectives=(
                SLOObjective.latency(
                    "lat", tenant="t", threshold_s=0.1, target=0.9
                ),
            ),
            registry=registry,
            clock=clock,
        )
        wait = registry.histogram(
            "repro_frontend_tenant_wait_seconds", "wait",
            labelnames=("tenant",),
            buckets=(0.01, 0.1, 1.0),
        ).labels(tenant="t")
        engine.evaluate(0.0)
        for _ in range(90):
            wait.observe(0.005)
        for _ in range(10):
            wait.observe(0.5)  # 10% miss the 100ms bound
        engine.evaluate(10.0)
        (objective,) = engine.state()["objectives"]
        assert objective["burn_fast"] == pytest.approx(1.0)

    def test_latency_burn_survives_a_pre_series_baseline(self):
        # Live cold start: the engine's first evaluation runs before the
        # tenant's histogram series exists (it appears with the first
        # request).  That baseline must read as zero counts, not blind
        # the objective until it ages out of the slow window.
        registry = MetricsRegistry()
        engine = SLOEngine(
            objectives=(
                SLOObjective.latency(
                    "lat", tenant="t", threshold_s=0.1, target=0.9
                ),
            ),
            registry=registry,
        )
        hist = registry.histogram(
            "repro_frontend_tenant_wait_seconds", "wait",
            labelnames=("tenant",),
            buckets=(0.01, 0.1, 1.0),
        )
        engine.evaluate(0.0)  # family exists, series does not yet
        wait = hist.labels(tenant="t")
        for _ in range(100):
            wait.observe(0.5)  # every request misses the bound
        engine.evaluate(10.0)
        (objective,) = engine.state()["objectives"]
        assert objective["burn_fast"] == pytest.approx(10.0)


class TestAlertFSM:
    def test_escalates_one_level_per_evaluation(self):
        registry = MetricsRegistry()
        engine, clock, bad, total = _miss_rate_engine(registry)
        engine.evaluate(0.0)
        total.inc(100)
        bad.inc(50)  # burn 5.0, over page_burn from the start
        engine.evaluate(10.0)
        assert engine.alerts() == {"miss": "WARN"}  # one step, not a jump
        engine.evaluate(20.0)
        assert engine.alerts() == {"miss": "PAGE"}

    def test_requires_both_windows_over_threshold(self):
        registry = MetricsRegistry()
        engine, clock, bad, total = _miss_rate_engine(registry)
        # Five minutes of healthy history fills the slow window...
        for tick in range(31):
            engine.evaluate(tick * 10.0)
            total.inc(100)
        # ...so one bad fast-window burst dilutes to <1.0 slow burn.
        bad.inc(250)
        engine.evaluate(310.0)
        (objective,) = engine.state()["objectives"]
        assert objective["burn_fast"] >= 4.0
        assert objective["burn_slow"] < 1.0
        assert objective["state"] == "OK"

    def test_recovery_waits_out_the_hysteresis(self):
        registry = MetricsRegistry()
        engine, clock, bad, total = _miss_rate_engine(registry)
        engine.evaluate(0.0)
        total.inc(100)
        bad.inc(20)  # burn 2.0 -> WARN
        engine.evaluate(10.0)
        assert engine.alerts() == {"miss": "WARN"}
        # Burn drops to zero; the level holds until clear_after_s passes.
        now = 10.0
        while engine.alerts() == {"miss": "WARN"}:
            now += 10.0
            total.inc(100)
            engine.evaluate(now)
            assert now < 400.0, "WARN never cleared"
        # clear_since starts at the first sub-threshold evaluation (320s:
        # the 300s slow window still sees the burst until it ages out).
        assert engine.alerts() == {"miss": "OK"}
        assert now >= 10.0 + 120.0

    def test_pressure_hint_tracks_the_worst_alert(self):
        registry = MetricsRegistry()
        engine, clock, bad, total = _miss_rate_engine(registry)
        assert engine.pressure_hint() == 0.0
        engine.evaluate(0.0)
        total.inc(100)
        bad.inc(50)
        engine.evaluate(10.0)
        assert engine.pressure_hint() == 0.5
        engine.evaluate(20.0)
        assert engine.pressure_hint() == 1.0

    def test_transitions_land_in_metrics(self):
        registry = MetricsRegistry()
        engine, clock, bad, total = _miss_rate_engine(registry)
        engine.evaluate(0.0)
        total.inc(100)
        bad.inc(50)
        engine.evaluate(10.0)
        engine.evaluate(20.0)
        state = registry.get("repro_slo_state")
        assert state.labels(objective="miss").value == PAGE
        transitions = registry.get("repro_slo_transitions_total")
        assert transitions.labels(objective="miss", to_state="WARN").value == 1
        assert transitions.labels(objective="miss", to_state="PAGE").value == 1
        assert registry.get("repro_slo_evaluations_total").value == 3

    def test_transitions_land_in_the_timeline(self, traced_memory):
        registry = MetricsRegistry()
        engine, clock, bad, total = _miss_rate_engine(registry)
        engine.evaluate(0.0)
        total.inc(100)
        bad.inc(50)
        engine.evaluate(10.0)
        (entry,) = timeline().entries(kind="slo")
        assert entry["objective"] == "miss"
        assert entry["tenant"] == "t"
        assert (entry["from_state"], entry["to_state"]) == ("OK", "WARN")
        assert entry["burn_fast"] > 0.0


class TestEngine:
    def test_duplicate_objective_name_raises(self):
        engine = SLOEngine(registry=MetricsRegistry())
        engine.add(SLOObjective.availability("a"))
        with pytest.raises(ConfigError):
            engine.add(SLOObjective.availability("a"))

    def test_maybe_evaluate_is_rate_limited(self):
        registry = MetricsRegistry()
        clock = _Clock()
        engine = SLOEngine(
            objectives=(SLOObjective.availability("a"),),
            registry=registry,
            clock=clock,
            min_interval_s=1.0,
        )
        clock.now = 5.0
        engine.maybe_evaluate()
        clock.now = 5.5  # within min_interval_s of the last pass
        engine.maybe_evaluate()
        clock.now = 6.1
        engine.maybe_evaluate()
        assert registry.get("repro_slo_evaluations_total").value == 2

    def test_state_shape_matches_the_slo_endpoint(self):
        engine = SLOEngine(
            objectives=(
                SLOObjective.latency("l", tenant="t", threshold_s=0.25),
            ),
            registry=MetricsRegistry(),
        )
        state = engine.state()
        assert state["max_state"] == "OK"
        assert state["pressure_hint"] == 0.0
        (objective,) = state["objectives"]
        assert objective["name"] == "l"
        assert objective["threshold_s"] == 0.25
        assert objective["windows"] == {"fast_s": 60.0, "slow_s": 300.0}
        assert objective["thresholds"]["page_burn"] == 4.0


class TestDrill:
    def test_drill_passes_without_http(self):
        report = run_drill(serve_http=False)
        assert report["ok"]
        assert report["http_checked"] is False
        states = [t["state"] for t in report["transitions"]]
        assert states == ["OK", "WARN", "PAGE", "WARN", "OK"]
