"""Structured tracing: spans, context, the disabled fast path, JSONL."""

import json

from repro.obs import trace as obs_trace
from repro.obs.trace import NOOP_SPAN


class TestDisabledFastPath:
    def test_span_returns_shared_noop(self, untraced):
        first = obs_trace.span("a", x=1)
        second = obs_trace.span("b")
        assert first is NOOP_SPAN and second is NOOP_SPAN

    def test_noop_span_supports_full_api(self, untraced):
        with obs_trace.span("a") as span:
            span.set(x=1).event("e", y=2)
        assert span.trace_id is None

    def test_carry_returns_fn_unchanged(self, untraced):
        fn = lambda: 1  # noqa: E731
        assert obs_trace.carry(fn) is fn

    def test_emit_event_drops_records(self, untraced):
        obs_trace.emit_event({"type": "event", "kind": "x"})
        assert obs_trace.records() == []


class TestSpans:
    def test_nested_spans_share_trace_and_parent(self, traced_memory):
        with obs_trace.span("outer") as outer:
            with obs_trace.span("inner") as inner:
                assert obs_trace.current_span() is inner
            assert obs_trace.current_span() is outer
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_sibling_roots_get_distinct_traces(self, traced_memory):
        with obs_trace.span("one") as one:
            pass
        with obs_trace.span("two") as two:
            pass
        assert one.trace_id != two.trace_id

    def test_attrs_and_events_land_in_the_record(self, traced_memory):
        with obs_trace.span("op", kernel="k") as span:
            span.set(workers=4)
            span.event("retry", shard=2)
        record = obs_trace.drain_records()[-1]
        assert record["type"] == "span"
        assert record["attrs"] == {"kernel": "k", "workers": 4}
        assert record["events"][0]["name"] == "retry"
        assert record["events"][0]["shard"] == 2
        assert record["duration"] >= 0.0

    def test_exception_marks_error_status(self, traced_memory):
        try:
            with obs_trace.span("boom"):
                raise ValueError("nope")
        except ValueError:
            pass
        record = obs_trace.drain_records()[-1]
        assert record["status"] == "error"
        assert "ValueError" in record["error"]

    def test_exceptions_still_propagate(self, traced_memory):
        import pytest

        with pytest.raises(ValueError):
            with obs_trace.span("boom"):
                raise ValueError("nope")


class TestSink:
    def test_records_written_as_jsonl(self, traced):
        with obs_trace.span("persisted", n=1):
            pass
        obs_trace.flush()
        lines = [
            json.loads(line)
            for line in traced.read_text().splitlines()
            if line.strip()
        ]
        spans = [r for r in lines if r["type"] == "span"]
        assert any(r["name"] == "persisted" for r in spans)

    def test_drain_clears_the_ring(self, traced_memory):
        with obs_trace.span("x"):
            pass
        assert obs_trace.drain_records()
        assert obs_trace.records() == []

    def test_trace_path_reports_the_file(self, traced):
        assert obs_trace.trace_path() == str(traced)


class TestRotation:
    """REPRO_OBS_TRACE_MAX_MB: cap the JSONL file with one .1 rollover."""

    def _traced_capped(self, tmp_path, max_mb):
        was_enabled = obs_trace.enabled()
        obs_trace.drain_records()
        path = tmp_path / "trace.jsonl"
        obs_trace.enable(path, max_mb=max_mb)
        return path, was_enabled

    def _restore(self, was_enabled):
        obs_trace.disable()
        obs_trace.drain_records()
        if was_enabled:
            obs_trace.enable()

    def test_rotation_rolls_to_dot_one(self, tmp_path):
        # ~1KB cap: a few hundred spans guarantee at least one rollover.
        path, was_enabled = self._traced_capped(tmp_path, 1 / 1024)
        try:
            for i in range(200):
                with obs_trace.span("rotated", i=i):
                    pass
            obs_trace.flush()
            rolled = tmp_path / "trace.jsonl.1"
            assert rolled.exists(), "no .1 rollover written"
            assert path.stat().st_size <= 1024
            assert rolled.stat().st_size <= 1024
            # Both files stay valid JSONL: rotation happens on line
            # boundaries, never mid-record.
            for file in (path, rolled):
                for line in file.read_text().splitlines():
                    if line.strip():
                        json.loads(line)
        finally:
            self._restore(was_enabled)

    def test_rotation_keeps_only_one_generation(self, tmp_path):
        path, was_enabled = self._traced_capped(tmp_path, 1 / 1024)
        try:
            for i in range(600):
                with obs_trace.span("many", i=i):
                    pass
            obs_trace.flush()
            generations = sorted(p.name for p in tmp_path.iterdir())
            assert generations == ["trace.jsonl", "trace.jsonl.1"]
        finally:
            self._restore(was_enabled)

    def test_existing_file_size_counts_against_the_cap(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("x" * 900 + "\n")  # pre-existing bytes
        was_enabled = obs_trace.enabled()
        obs_trace.drain_records()
        obs_trace.enable(path, max_mb=1 / 1024)
        try:
            for i in range(5):
                with obs_trace.span("appended", i=i):
                    pass
            obs_trace.flush()
            # The pre-existing 901 bytes pushed the first new record over
            # the cap, so the old content rotated out to .1.
            assert (tmp_path / "trace.jsonl.1").exists()
        finally:
            self._restore(was_enabled)

    def test_no_cap_means_no_rotation(self, traced):
        for i in range(200):
            with obs_trace.span("uncapped", i=i):
                pass
        obs_trace.flush()
        assert not (traced.parent / "trace.jsonl.1").exists()

    def test_env_knob_parses_and_junk_is_ignored(self, monkeypatch, tmp_path):
        was_enabled = obs_trace.enabled()
        obs_trace.disable()
        obs_trace.drain_records()
        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_TRACE", str(tmp_path / "env.jsonl"))
        monkeypatch.setenv("REPRO_OBS_TRACE_MAX_MB", "not-a-number")
        try:
            obs_trace._init_from_env()  # junk cap: enabled, uncapped
            assert obs_trace.enabled()
            assert obs_trace._SINK._max_bytes is None
            obs_trace.disable()
            monkeypatch.setenv("REPRO_OBS_TRACE_MAX_MB", "2.5")
            obs_trace._init_from_env()
            assert obs_trace._SINK._max_bytes == int(2.5 * 1024 * 1024)
        finally:
            self._restore(was_enabled)
