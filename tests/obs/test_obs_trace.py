"""Structured tracing: spans, context, the disabled fast path, JSONL."""

import json

from repro.obs import trace as obs_trace
from repro.obs.trace import NOOP_SPAN


class TestDisabledFastPath:
    def test_span_returns_shared_noop(self, untraced):
        first = obs_trace.span("a", x=1)
        second = obs_trace.span("b")
        assert first is NOOP_SPAN and second is NOOP_SPAN

    def test_noop_span_supports_full_api(self, untraced):
        with obs_trace.span("a") as span:
            span.set(x=1).event("e", y=2)
        assert span.trace_id is None

    def test_carry_returns_fn_unchanged(self, untraced):
        fn = lambda: 1  # noqa: E731
        assert obs_trace.carry(fn) is fn

    def test_emit_event_drops_records(self, untraced):
        obs_trace.emit_event({"type": "event", "kind": "x"})
        assert obs_trace.records() == []


class TestSpans:
    def test_nested_spans_share_trace_and_parent(self, traced_memory):
        with obs_trace.span("outer") as outer:
            with obs_trace.span("inner") as inner:
                assert obs_trace.current_span() is inner
            assert obs_trace.current_span() is outer
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_sibling_roots_get_distinct_traces(self, traced_memory):
        with obs_trace.span("one") as one:
            pass
        with obs_trace.span("two") as two:
            pass
        assert one.trace_id != two.trace_id

    def test_attrs_and_events_land_in_the_record(self, traced_memory):
        with obs_trace.span("op", kernel="k") as span:
            span.set(workers=4)
            span.event("retry", shard=2)
        record = obs_trace.drain_records()[-1]
        assert record["type"] == "span"
        assert record["attrs"] == {"kernel": "k", "workers": 4}
        assert record["events"][0]["name"] == "retry"
        assert record["events"][0]["shard"] == 2
        assert record["duration"] >= 0.0

    def test_exception_marks_error_status(self, traced_memory):
        try:
            with obs_trace.span("boom"):
                raise ValueError("nope")
        except ValueError:
            pass
        record = obs_trace.drain_records()[-1]
        assert record["status"] == "error"
        assert "ValueError" in record["error"]

    def test_exceptions_still_propagate(self, traced_memory):
        import pytest

        with pytest.raises(ValueError):
            with obs_trace.span("boom"):
                raise ValueError("nope")


class TestSink:
    def test_records_written_as_jsonl(self, traced):
        with obs_trace.span("persisted", n=1):
            pass
        obs_trace.flush()
        lines = [
            json.loads(line)
            for line in traced.read_text().splitlines()
            if line.strip()
        ]
        spans = [r for r in lines if r["type"] == "span"]
        assert any(r["name"] == "persisted" for r in spans)

    def test_drain_clears_the_ring(self, traced_memory):
        with obs_trace.span("x"):
            pass
        assert obs_trace.drain_records()
        assert obs_trace.records() == []

    def test_trace_path_reports_the_file(self, traced):
        assert obs_trace.trace_path() == str(traced)
