"""Fixtures for the observability tests.

Tracing is process-global state, so every fixture snapshots whether it
was enabled on entry (the CI observability job runs the whole suite with
``REPRO_OBS=1``) and restores that state on exit, draining the in-memory
record ring and the quality timeline both ways so tests never see each
other's spans.
"""

import pytest

from repro.obs import trace as obs_trace
from repro.obs.timeline import timeline


def _reset_buffers():
    obs_trace.drain_records()
    timeline().clear()


@pytest.fixture
def traced(tmp_path):
    """Tracing enabled with a JSONL file; yields the trace path."""
    was_enabled = obs_trace.enabled()
    _reset_buffers()
    path = tmp_path / "trace.jsonl"
    obs_trace.enable(path)
    yield path
    obs_trace.disable()
    _reset_buffers()
    if was_enabled:
        obs_trace.enable()


@pytest.fixture
def traced_memory():
    """Tracing enabled without a file (in-memory ring only)."""
    was_enabled = obs_trace.enabled()
    _reset_buffers()
    obs_trace.enable()
    yield
    obs_trace.disable()
    _reset_buffers()
    if was_enabled:
        obs_trace.enable()


@pytest.fixture
def untraced():
    """Tracing explicitly disabled (for no-op fast-path assertions)."""
    was_enabled = obs_trace.enabled()
    obs_trace.disable()
    _reset_buffers()
    yield
    _reset_buffers()
    if was_enabled:
        obs_trace.enable()
