"""Cross-thread span propagation through the worker pools.

The satellite requirement: spans started inside pool tasks must parent to
the launching span — on the shard pool, on the profile pool, and still
after a dead worker set forced a pool replacement (the context rides with
the task, not the thread, so replacement is invisible to the trace tree).
"""

from repro.obs import trace as obs_trace
from repro.parallel.pool import get_pool, parallel_map, pool_stats


def _task(item):
    with obs_trace.span("task.run", item=item) as span:
        return span.trace_id, span.parent_id


def _kill_workers(pool) -> None:
    # The executor's own worker-exit path, then reopen the flag: the
    # state a died-in-place worker set leaves behind (see
    # tests/resilience/test_pool_recovery.py).
    pool.shutdown(wait=True)
    pool._shutdown = False
    assert all(not t.is_alive() for t in pool._threads)


class TestPoolPropagation:
    def test_shard_pool_tasks_parent_to_launching_span(self, traced_memory):
        get_pool("shard", 2)
        with obs_trace.span("launch.root") as root:
            results = parallel_map("shard", 2, _task, range(6))
        assert results == [(root.trace_id, root.span_id)] * 6

    def test_profile_pool_tasks_parent_to_launching_span(self, traced_memory):
        get_pool("profile", 2)
        with obs_trace.span("tune.root") as root:
            results = parallel_map("profile", 2, _task, range(4))
        assert results == [(root.trace_id, root.span_id)] * 4

    def test_parenting_survives_dead_worker_replacement(self, traced_memory):
        kind = "obs-replacement"
        pool = get_pool(kind, 2)
        parallel_map(kind, 2, lambda i: i, range(4))  # warm: spawn workers
        _kill_workers(pool)
        before = pool_stats(kind).snapshot()["workers_restarted"]
        with obs_trace.span("launch.root") as root:
            results = parallel_map(kind, 2, _task, range(6))
        assert pool_stats(kind).snapshot()["workers_restarted"] == before + 1
        assert results == [(root.trace_id, root.span_id)] * 6

    def test_worker_spans_record_worker_threads(self, traced_memory):
        with obs_trace.span("launch.root"):
            parallel_map("shard", 2, _task, range(6))
        records = obs_trace.drain_records()
        workers = {
            r["thread"] for r in records if r.get("name") == "task.run"
        }
        assert any(name.startswith("repro-shard") for name in workers)

    def test_without_ambient_span_tasks_become_roots(self, traced_memory):
        results = parallel_map("shard", 2, _task, range(4))
        for trace_id, parent_id in results:
            assert parent_id is None
            assert trace_id is not None
