"""Cross-thread span propagation through the worker pools.

The satellite requirement: spans started inside pool tasks must parent to
the launching span — on the shard pool, on the profile pool, and still
after a dead worker set forced a pool replacement (the context rides with
the task, not the thread, so replacement is invisible to the trace tree).
"""

import numpy as np
import pytest

import kernel_zoo as zoo
from repro import LaunchOptions
from repro.engine import Grid, launch
from repro.obs import trace as obs_trace
from repro.parallel import procpool, shutdown_process_pool
from repro.parallel.pool import get_pool, parallel_map, pool_stats


def _task(item):
    with obs_trace.span("task.run", item=item) as span:
        return span.trace_id, span.parent_id


def _kill_workers(pool) -> None:
    # The executor's own worker-exit path, then reopen the flag: the
    # state a died-in-place worker set leaves behind (see
    # tests/resilience/test_pool_recovery.py).
    pool.shutdown(wait=True)
    pool._shutdown = False
    assert all(not t.is_alive() for t in pool._threads)


class TestPoolPropagation:
    def test_shard_pool_tasks_parent_to_launching_span(self, traced_memory):
        get_pool("shard", 2)
        with obs_trace.span("launch.root") as root:
            results = parallel_map("shard", 2, _task, range(6))
        assert results == [(root.trace_id, root.span_id)] * 6

    def test_profile_pool_tasks_parent_to_launching_span(self, traced_memory):
        get_pool("profile", 2)
        with obs_trace.span("tune.root") as root:
            results = parallel_map("profile", 2, _task, range(4))
        assert results == [(root.trace_id, root.span_id)] * 4

    def test_parenting_survives_dead_worker_replacement(self, traced_memory):
        kind = "obs-replacement"
        pool = get_pool(kind, 2)
        parallel_map(kind, 2, lambda i: i, range(4))  # warm: spawn workers
        _kill_workers(pool)
        before = pool_stats(kind).snapshot()["workers_restarted"]
        with obs_trace.span("launch.root") as root:
            results = parallel_map(kind, 2, _task, range(6))
        assert pool_stats(kind).snapshot()["workers_restarted"] == before + 1
        assert results == [(root.trace_id, root.span_id)] * 6

    def test_worker_spans_record_worker_threads(self, traced_memory):
        with obs_trace.span("launch.root"):
            parallel_map("shard", 2, _task, range(6))
        records = obs_trace.drain_records()
        workers = {
            r["thread"] for r in records if r.get("name") == "task.run"
        }
        assert any(name.startswith("repro-shard") for name in workers)

    def test_without_ambient_span_tasks_become_roots(self, traced_memory):
        results = parallel_map("shard", 2, _task, range(4))
        for trace_id, parent_id in results:
            assert parent_id is None
            assert trace_id is not None


class TestProcpoolPropagation:
    """Spans survive the process seam: shard workers cannot reach the
    parent's sink, so the parent emits ``proc.shard`` records from the
    timestamps the workers report back — parented to ``proc.launch``,
    which parents to the ambient launching span like any other."""

    @pytest.fixture(autouse=True)
    def _fresh_pool(self, monkeypatch):
        monkeypatch.delenv(procpool.INJECT_ENV, raising=False)
        shutdown_process_pool()
        yield
        shutdown_process_pool()

    def _launch_squared(self):
        rng = np.random.default_rng(0)
        n = 1 << 12
        args = [np.zeros(n, np.float32), rng.random(n, dtype=np.float32), n]
        launch(
            zoo.square_map,
            Grid.for_elements(n),
            args,
            options=LaunchOptions(
                backend="codegen", parallel=2, executor="process",
                min_shard_threads=1,
            ),
        )

    def test_proc_launch_parents_to_the_ambient_span(self, traced_memory):
        with obs_trace.span("serve.launch") as root:
            self._launch_squared()
        records = obs_trace.drain_records()
        launches = [r for r in records if r.get("name") == "proc.launch"]
        assert launches, "no proc.launch span recorded"
        for record in launches:
            assert record["trace_id"] == root.trace_id

    def test_worker_shards_land_under_proc_launch(self, traced_memory):
        with obs_trace.span("serve.launch") as root:
            self._launch_squared()
        records = obs_trace.drain_records()
        (launch_rec,) = [
            r for r in records if r.get("name") == "proc.launch"
        ]
        shards = [r for r in records if r.get("name") == "proc.shard"]
        assert shards, "no proc.shard spans emitted from worker timings"
        for shard in shards:
            # Same trace, parented to proc.launch: the worker's timing
            # crossed the process boundary but the tree stayed intact.
            assert shard["trace_id"] == root.trace_id
            assert shard["parent_id"] == launch_rec["span_id"]
            assert shard["duration"] >= 0.0
            assert shard["attrs"]["kernel"] == "square_map"
            assert "blocks" in shard["attrs"]

    def test_shard_spans_fit_inside_the_launch_window(self, traced_memory):
        with obs_trace.span("serve.launch"):
            self._launch_squared()
        records = obs_trace.drain_records()
        (launch_rec,) = [
            r for r in records if r.get("name") == "proc.launch"
        ]
        launch_end = launch_rec["start"] + launch_rec["duration"]
        for shard in (r for r in records if r.get("name") == "proc.shard"):
            # CLOCK_MONOTONIC is shared across processes on Linux, so
            # worker timestamps are directly comparable to the parent's.
            assert shard["start"] >= launch_rec["start"]
            assert shard["start"] + shard["duration"] <= launch_end
