"""Metrics registry: families, labels, idempotent registration, views."""

import pytest

from repro.errors import ConfigError
from repro.obs import render_prometheus
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    REGISTRY,
    get_registry,
)


class TestRegistration:
    def test_counter_inc_and_value(self):
        registry = MetricsRegistry()
        launches = registry.counter("launches_total", "launches")
        launches.inc()
        launches.inc(2)
        assert launches.value == 3

    def test_reregistration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "x", labelnames=("pool",))
        again = registry.counter("x_total", "other help", labelnames=("pool",))
        assert again is first

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ConfigError):
            registry.gauge("x_total")

    def test_labelset_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labelnames=("pool",))
        with pytest.raises(ConfigError):
            registry.counter("x_total", labelnames=("session",))

    def test_global_registry_is_shared(self):
        assert get_registry() is REGISTRY


class TestLabels:
    def test_labels_select_independent_series(self):
        registry = MetricsRegistry()
        family = registry.counter("tasks_total", labelnames=("pool",))
        family.labels(pool="shard").inc(5)
        family.labels(pool="profile").inc(1)
        assert family.labels(pool="shard").value == 5
        assert family.labels(pool="profile").value == 1

    def test_same_labels_return_same_child(self):
        registry = MetricsRegistry()
        family = registry.counter("tasks_total", labelnames=("pool",))
        assert family.labels(pool="shard") is family.labels(pool="shard")

    def test_missing_or_extra_labels_raise(self):
        registry = MetricsRegistry()
        family = registry.counter("tasks_total", labelnames=("pool",))
        with pytest.raises(ConfigError):
            family.labels()
        with pytest.raises(ConfigError):
            family.labels(pool="shard", extra="nope")

    def test_labelled_family_rejects_anonymous_use(self):
        registry = MetricsRegistry()
        family = registry.counter("tasks_total", labelnames=("pool",))
        with pytest.raises(ConfigError):
            family.inc()

    def test_series_lists_labels_and_children(self):
        registry = MetricsRegistry()
        family = registry.counter("tasks_total", labelnames=("pool",))
        family.labels(pool="shard").inc(2)
        series = family.series()
        assert series == [({"pool": "shard"}, family.labels(pool="shard"))]


class TestGaugesAndHistograms:
    def test_gauge_set_and_max_ratchet(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("workers")
        gauge.set(4)
        anon = gauge.labels()
        anon.max(2)  # lower value: ratchet holds
        assert gauge.value == 4
        anon.max(8)
        assert gauge.value == 8

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("seconds", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        snap = hist.labels().histogram_snapshot()
        assert snap["buckets"] == [0.01, 0.1, 1.0]
        assert snap["counts"] == [1, 2, 3, 4]  # le-style cumulative
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(5.555)

    def test_default_buckets_cover_wall_times(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 1.0


class TestViews:
    def test_snapshot_flattens_label_sets(self):
        registry = MetricsRegistry()
        family = registry.counter("tasks_total", labelnames=("pool",))
        family.labels(pool="shard").inc(3)
        snap = registry.snapshot()
        assert snap["tasks_total{pool=shard}"] == 3

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("repro_tasks_total", "tasks", labelnames=("pool",)).labels(
            pool="shard"
        ).inc(3)
        registry.gauge("repro_workers", "size").set(4)
        text = render_prometheus(registry)
        assert "# HELP repro_tasks_total tasks" in text
        assert "# TYPE repro_tasks_total counter" in text
        assert 'repro_tasks_total{pool="shard"} 3' in text
        assert "# TYPE repro_workers gauge" in text
        assert "repro_workers 4" in text

    def test_prometheus_histogram_expansion(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_seconds", "wall", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = render_prometheus(registry)
        assert 'repro_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_seconds_bucket{le="1"} 2' in text
        assert 'repro_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_seconds_sum 0.55" in text
        assert "repro_seconds_count 2" in text

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", labelnames=("k",)).labels(
            k='say "hi"'
        ).inc()
        assert 'k="say \\"hi\\""' in render_prometheus(registry)


class TestSubsystemFamilies:
    """The rewired subsystems register into the global registry."""

    def test_core_families_exist(self):
        # Importing the subsystems is what registers their families.
        import repro.codegen.cache  # noqa: F401
        import repro.parallel.shard  # noqa: F401
        import repro.resilience.guard  # noqa: F401

        registry = get_registry()
        for name in (
            "repro_codegen_compiles",
            "repro_shard_sharded_launches",
            "repro_guard_guarded_launches",
        ):
            assert registry.get(name) is not None, name

    def test_stats_shims_read_registry(self):
        from repro.parallel.shard import STATS

        before = STATS.shards_run
        STATS.shards_run += 2
        try:
            metric = get_registry().get("repro_shard_shards_run")
            assert int(metric.value) == before + 2
        finally:
            STATS.shards_run = before


class TestQuantiles:
    """Histogram.quantile(q): linear interpolation over bucket bounds."""

    def _hist(self):
        registry = MetricsRegistry()
        return registry.histogram(
            "repro_q_seconds", "q", buckets=(0.01, 0.1, 1.0)
        )

    def test_empty_histogram_has_no_quantile(self):
        assert self._hist().quantile(0.5) is None

    def test_single_bucket_interpolates_from_zero(self):
        hist = self._hist()
        for _ in range(10):
            hist.observe(0.005)
        # All mass in [0, 0.01): the median interpolates to the middle.
        assert hist.quantile(0.5) == pytest.approx(0.005, rel=0.01)

    def test_quantiles_split_across_buckets(self):
        hist = self._hist()
        for _ in range(90):
            hist.observe(0.005)
        for _ in range(10):
            hist.observe(0.5)
        # p50 in the first bucket, p95/p99 inside (0.1, 1.0].
        assert hist.quantile(0.5) < 0.01
        assert 0.1 < hist.quantile(0.95) < 1.0
        assert hist.quantile(0.99) == pytest.approx(0.91, rel=0.01)

    def test_inf_bucket_clamps_to_last_finite_bound(self):
        hist = self._hist()
        for _ in range(10):
            hist.observe(50.0)  # beyond every bound
        assert hist.quantile(0.99) == 1.0

    def test_out_of_range_quantile_raises(self):
        with pytest.raises(ConfigError):
            self._hist().quantile(1.5)

    def test_labelled_series_quantile(self):
        registry = MetricsRegistry()
        family = registry.histogram(
            "repro_ql_seconds", "q", labelnames=("tenant",),
            buckets=(0.01, 0.1, 1.0),
        )
        family.labels(tenant="a").observe(0.005)
        family.labels(tenant="b").observe(0.5)
        assert family.labels(tenant="a").quantile(0.5) < 0.01
        assert family.labels(tenant="b").quantile(0.5) > 0.1

    def test_fraction_at_or_below_interpolates(self):
        from repro.obs.registry import histogram_fraction_le

        hist = self._hist()
        for _ in range(90):
            hist.observe(0.005)
        for _ in range(10):
            hist.observe(0.5)
        buckets, counts, _sum, _count = hist._anonymous().raw_counts()
        assert histogram_fraction_le(buckets, counts, 0.1) == pytest.approx(0.9)
        assert histogram_fraction_le(buckets, counts, 5.0) == 1.0
        # Empty histogram: no traffic means full compliance.
        assert histogram_fraction_le((1.0,), [0, 0], 0.5) == 1.0

    def test_quantile_table_renders_comment_lines(self):
        from repro.obs.export import quantile_table

        registry = MetricsRegistry()
        hist = registry.histogram("repro_qt_seconds", "q")
        hist.observe(0.05)
        text = quantile_table(registry)
        assert text.startswith("#")
        assert "repro_qt_seconds" in text
        assert "p50=" in text and "p95=" in text and "p99=" in text
        # Every line is a comment: appending to an exposition keeps it valid.
        assert all(line.startswith("#") for line in text.splitlines())

    def test_quantile_table_skips_empty_series(self):
        from repro.obs.export import quantile_table

        registry = MetricsRegistry()
        registry.histogram("repro_qe_seconds", "q")
        assert quantile_table(registry) == ""
