"""End-to-end: a served launch under tracing produces a linked story.

The acceptance path for the observability layer: one ``ApproxSession``
launch traced to JSONL must yield a span tree linking session launch →
ladder rung → backend launch → shards, quality-timeline entries carrying
the launch correlation id, a populated ``session.last_launch``, and a
``metrics_snapshot()`` whose legacy keys survive the registry rewiring.
"""

import json

import pytest

from repro.apps.gaussian import GaussianFilterApp
from repro.obs import build_trees, load_trace, render_prometheus
from repro.obs import trace as obs_trace
from repro.obs.timeline import timeline
from repro.serve import ApproxSession, LaunchInfo, MonitorConfig


@pytest.fixture(scope="class")
def served(request, tmp_path_factory):
    """Six traced launches of a small served app, then the parsed trace."""
    was_enabled = obs_trace.enabled()
    obs_trace.drain_records()
    timeline().clear()
    path = tmp_path_factory.mktemp("obs") / "trace.jsonl"
    obs_trace.enable(path)
    app = GaussianFilterApp(scale=0.05)
    session = ApproxSession(
        app,
        target_quality=0.9,
        backend="codegen",
        parallel=2,
        monitor=MonitorConfig(sample_every=2),
    )
    infos = []
    for seed in range(6):
        session.launch(app.generate_inputs(seed=seed))
        infos.append(session.last_launch)
    session.close()
    obs_trace.disable()
    spans, events = load_trace(path)
    request.cls.session = session
    request.cls.infos = infos
    request.cls.spans = spans
    request.cls.events = events
    yield
    obs_trace.drain_records()
    timeline().clear()
    if was_enabled:
        obs_trace.enable()


@pytest.mark.usefixtures("served")
class TestServedTrace:
    def test_launch_ids_are_monotonic_and_exposed(self):
        assert [info.launch_id for info in self.infos] == list(range(6))
        assert all(isinstance(info, LaunchInfo) for info in self.infos)
        assert self.session.last_launch is self.infos[-1]

    def test_every_launch_has_a_root_span_with_its_launch_id(self):
        roots = [s for s in self.spans if s["name"] == "serve.launch"]
        assert len(roots) == 6
        by_launch = {s["attrs"]["launch_id"]: s for s in roots}
        for info in self.infos:
            assert by_launch[info.launch_id]["trace_id"] == info.trace_id

    def test_span_tree_links_launch_to_rung_backend_and_shards(self):
        forest = build_trees(self.spans)
        info = self.infos[-1]
        (root,) = forest[info.trace_id]
        assert root["name"] == "serve.launch"
        rungs = [c for c in root["children"] if c["name"] == "ladder.rung"]
        assert rungs, "launch span has no ladder rung child"
        engine = [
            c for c in rungs[0]["children"] if c["name"] == "engine.launch"
        ]
        assert engine, "rung span has no backend launch child"
        all_spans = self._flatten(root)
        shard_spans = [s for s in all_spans if s["name"] == "shard.run"]
        assert shard_spans, "no shard spans under the launch tree"
        for shard in shard_spans:
            assert shard["trace_id"] == info.trace_id

    @staticmethod
    def _flatten(span):
        out = [span]
        for child in span["children"]:
            out.extend(TestServedTrace._flatten(child))
        return out

    def test_quality_timeline_carries_launch_correlation_ids(self):
        samples = [e for e in self.events if e["kind"] == "quality_sample"]
        assert samples, "no quality samples in six launches at cadence 2"
        sampled_ids = {info.launch_id for info in self.infos if info.sampled}
        trace_by_launch = {info.launch_id: info.trace_id for info in self.infos}
        for sample in samples:
            assert sample["launch_id"] in sampled_ids
            assert sample["trace_id"] == trace_by_launch[sample["launch_id"]]
            assert sample["session"] == self.session.metrics.label

    def test_trace_file_is_valid_jsonl(self):
        for record in self.spans + self.events:
            json.dumps(record)  # round-trippable

    def test_metrics_snapshot_keeps_legacy_keys(self):
        snap = self.session.metrics_snapshot()
        assert snap["launches"] == 6
        assert snap["cache"]["compile_misses"] == 1
        for key in (
            "kernel_launches", "backend_launches", "codegen", "parallel",
            "resilience", "sampled_checks", "sampling_overhead",
            "toq_violations", "drift_events", "recalibrations",
            "timings", "transitions", "recent_launches", "session",
        ):
            assert key in snap, key
        assert snap["parallel"]["workers"] == 2
        assert "profile_cache" in snap["parallel"]
        for key in (
            "guard", "faults", "fallback_depths", "fallback_launches",
            "quarantines", "readmissions", "breakers", "guard_policy",
        ):
            assert key in snap["resilience"], key

    def test_launch_records_carry_correlation_and_duration(self):
        records = list(self.session.metrics.records)
        assert [r.launch_id for r in records] == list(range(6))
        assert all(r.trace_id for r in records)
        assert all(r.duration > 0.0 for r in records)

    def test_session_series_appear_in_prometheus_exposition(self):
        label = self.session.metrics.label
        text = render_prometheus()
        assert f'repro_session_launches_total{{session="{label}"}} 6' in text
        assert "# TYPE repro_session_launch_seconds histogram" in text
        assert f'repro_session_launch_seconds_count{{session="{label}"}} 6' in text
