"""Tests for the six pattern detectors and the orchestrator."""

import pytest

import kernel_zoo as zoo
from repro.analysis.latency import CPU_LATENCIES, GPU_LATENCIES
from repro.patterns import (
    MapMatch,
    Pattern,
    PatternDetector,
    ReductionMatch,
    ScanMatch,
    StencilMatch,
    detect_map,
    detect_reduction,
    detect_scan,
    detect_stencil,
)
from repro.patterns.scan_detect import clear_registry, mark_scan, register_template, signature


class TestMapDetection:
    def test_black_scholes_is_map(self):
        match = detect_map(zoo.black_scholes.fn, zoo.black_scholes.module, GPU_LATENCIES)
        assert match is not None
        assert match.pattern is Pattern.MAP
        assert match.candidates == ["bs_body"]

    def test_cnd_subsumed_by_outermost_candidate(self):
        match = detect_map(zoo.black_scholes.fn, zoo.black_scholes.module, GPU_LATENCIES)
        assert "cnd" not in match.candidates

    def test_cheap_function_rejected_by_profitability(self):
        match = detect_map(zoo.square_map.fn, zoo.square_map.module, GPU_LATENCIES)
        assert match is None  # pure but below the Eq.-1 threshold

    def test_impure_function_rejected(self):
        match = detect_map(zoo.impure_map.fn, zoo.impure_map.module, GPU_LATENCIES)
        assert match is None

    def test_gather_classified_as_scatter_gather(self):
        match = detect_map(
            zoo.gather_expensive.fn, zoo.gather_expensive.module, GPU_LATENCIES
        )
        assert match is not None
        assert match.pattern is Pattern.SCATTER_GATHER

    def test_device_function_itself_not_a_match(self):
        assert detect_map(zoo.cnd.fn, zoo.black_scholes.module, GPU_LATENCIES) is None


class TestStencilDetection:
    def test_mean3x3(self):
        match = detect_stencil(zoo.mean3x3.fn)
        assert match is not None
        assert match.pattern is Pattern.STENCIL
        assert (match.tile.rows, match.tile.cols) == (3, 3)

    def test_loop_based_row_stencil(self):
        match = detect_stencil(zoo.row_stencil.fn)
        assert match is not None
        assert (match.tile.rows, match.tile.cols) == (1, 7)

    def test_map_kernel_has_no_tile(self):
        assert detect_stencil(zoo.noop.fn) is None
        assert detect_stencil(zoo.black_scholes.fn) is None

    def test_partition_for_chunked_access(self):
        # each thread reads a contiguous chunk: per-thread tiles that step
        # by the tile extent = partition
        from repro.apps.naivebayes import naive_bayes_kernel

        match = detect_stencil(naive_bayes_kernel.fn)
        assert match is not None
        assert match.pattern is Pattern.PARTITION

    def test_huge_trip_loops_not_unrolled_for_detection(self):
        # sum_chunks loops 4096x, beyond the unroll bound: its chunked
        # accesses stay opaque and no tile is claimed.
        assert detect_stencil(zoo.sum_chunks.fn) is None


class TestReductionDetection:
    def test_sum_chunks(self):
        match = detect_reduction(zoo.sum_chunks.fn)
        assert match is not None and len(match.loops) == 1

    def test_no_false_positive_on_stencil(self):
        assert detect_reduction(zoo.mean3x3.fn) is None


class TestScanDetection:
    def setup_method(self):
        clear_registry()

    def teardown_method(self):
        clear_registry()

    def test_template_match_modulo_renaming(self):
        register_template(zoo.scan_phase1)
        from repro.apps.scanlib import scan_phase1 as other_impl

        # zoo.scan_phase1 uses literal bounds; the library phase1 takes
        # log2b as an argument -> different signatures, no false match.
        assert detect_scan(zoo.scan_phase1.fn) is not None

    def test_unregistered_kernel_not_detected(self):
        assert detect_scan(zoo.scan_phase1.fn) is None

    def test_pragma_escape_hatch(self):
        mark_scan(zoo.scan_phase1)
        match = detect_scan(zoo.scan_phase1.fn)
        assert match is not None and match.source == "pragma"

    def test_signature_erases_names_and_constants(self):
        sig = signature(zoo.noop.fn)
        assert "out" not in sig and "noop" not in sig

    def test_signature_distinguishes_structures(self):
        assert signature(zoo.noop.fn) != signature(zoo.mean3x3.fn)

    def test_library_scan_detected_via_own_template(self):
        from repro.apps.scanlib import scan_phase1 as lib_scan

        register_template(lib_scan)
        match = detect_scan(lib_scan.fn)
        assert match is not None and match.source == "template"


class TestOrchestrator:
    def test_detect_kernelfn(self):
        result = PatternDetector().detect(zoo.black_scholes)
        matches = result.for_kernel("black_scholes")
        assert len(matches) == 1 and isinstance(matches[0], MapMatch)

    def test_multiple_patterns_on_one_kernel(self):
        from repro.apps.convsep import conv_row_kernel

        result = PatternDetector().detect(conv_row_kernel)
        kinds = {type(m) for m in result.for_kernel("conv_row_kernel")}
        assert StencilMatch in kinds and ReductionMatch in kinds

    def test_scan_short_circuits_other_detectors(self):
        clear_registry()
        try:
            mark_scan(zoo.scan_phase1)
            result = PatternDetector().detect(zoo.scan_phase1)
            matches = result.for_kernel("scan_phase1")
            assert len(matches) == 1 and isinstance(matches[0], ScanMatch)
        finally:
            clear_registry()

    def test_patterns_summary(self):
        result = PatternDetector().detect(zoo.black_scholes)
        assert result.patterns() == ["map"]

    def test_latency_table_changes_profitability(self):
        # With the CPU's low L1 latency the threshold drops; detection
        # still works for both tables without errors.
        for table in (GPU_LATENCIES, CPU_LATENCIES):
            result = PatternDetector(latency_table=table).detect(zoo.black_scholes)
            assert result.for_kernel("black_scholes")

    def test_bad_target_rejected(self):
        with pytest.raises(TypeError):
            PatternDetector().detect(42)
