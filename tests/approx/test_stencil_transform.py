"""Tests for tile replication (paper §3.2) plus its unroll/CSE helpers."""

import numpy as np
import pytest

import kernel_zoo as zoo
from repro.approx.cse import eliminate_duplicate_loads
from repro.approx.stencil import StencilTransform, build_plan, representative, snap
from repro.approx.unroll import unroll_loop, unroll_where
from repro.engine import Grid, launch
from repro.errors import TransformError
from repro.kernel import ir, validate_function
from repro.kernel.visitors import walk
from repro.patterns import detect_stencil
from repro.runtime.quality import MEAN_RELATIVE


class TestSnapAndSchemes:
    def test_snap_rd1_collapses_3x3_to_center(self):
        for v in (0, 1, 2):
            assert snap(v, 1, 1) == 1

    def test_snap_rd1_17_wide_keeps_alternating(self):
        kept = {snap(v, 8, 1) for v in range(17)}
        assert kept == {0, 2, 4, 6, 8, 10, 12, 14, 16}

    def test_center_scheme(self):
        assert representative((0, 0), (1, 1), "center", 1) == (1, 1)
        assert representative((2, 2), (1, 1), "center", 1) == (1, 1)

    def test_row_scheme_preserves_columns(self):
        assert representative((0, 2), (1, 1), "row", 1) == (1, 2)

    def test_column_scheme_preserves_rows(self):
        assert representative((2, 0), (1, 1), "column", 1) == (2, 1)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(TransformError):
            representative((0, 0), (0, 0), "diagonal", 1)


class TestPlans:
    def _tile(self):
        return detect_stencil(zoo.mean3x3.fn).tile

    def test_center_plan_keeps_one_of_nine(self):
        plan = build_plan(self._tile(), "center", 1)
        assert plan.total == 9 and plan.accessed == 1
        assert plan.saving == pytest.approx(8 / 9)

    def test_row_plan_keeps_three(self):
        plan = build_plan(self._tile(), "row", 1)
        assert plan.accessed == 3

    def test_representatives_stay_inside_tile(self):
        plan = build_plan(self._tile(), "center", 5)
        for (r, c) in plan.mapping.values():
            assert 0 <= r <= 2 and 0 <= c <= 2


class TestUnroll:
    def test_unroll_loop_substitutes_induction_values(self):
        loop = next(s for s in zoo.row_stencil.fn.body[1].then_body
                    if isinstance(s, ir.For))
        stmts = unroll_loop(loop)
        assert len(stmts) == 7
        assert not any(isinstance(n, ir.Var) and n.name == "j"
                       for s in stmts for n in walk(s))

    def test_unroll_where_preserves_semantics(self):
        fn = unroll_where(zoo.row_stencil.fn, lambda loop: True)
        validate_function(fn)
        x = np.random.default_rng(0).random(128).astype(np.float32)
        a = np.zeros_like(x)
        b = np.zeros_like(x)
        launch(zoo.row_stencil, Grid(1, 128), [a, x, 128])
        launch(fn, Grid(1, 128), [b, x, 128], module=zoo.row_stencil.module)
        np.testing.assert_array_equal(a, b)

    def test_dynamic_bounds_not_unrolled(self):
        fn = unroll_where(zoo.sum_chunks.fn, lambda loop: True)
        # trip 4096 exceeds the unroll bound: loop kept
        assert any(isinstance(n, ir.For) for n in walk(fn))


class TestCSE:
    def test_duplicate_loads_collapse(self):
        # build a kernel with two identical loads via the stencil rewrite
        match = detect_stencil(zoo.mean3x3.fn)
        variants = StencilTransform(schemes=("center",), reaching_distances=(1,)).generate(
            zoo.mean3x3.module, "mean3x3", match
        )
        fn = variants[0].module[variants[0].kernel]
        img = zoo.make_image(16, 16)
        out = np.zeros_like(img)
        trace = launch(fn, Grid.for_elements(256), [out, img, 16, 16],
                       module=variants[0].module)
        # interior threads issue 1 img load instead of 9
        assert trace.accesses("global", "load", "img") < 2 * 256

    def test_cse_does_not_merge_across_stores(self):
        # noop writes out[i]; loads of out would be unsafe to cache, but
        # there are none; x is never stored -> safe. Semantics preserved:
        fn = eliminate_duplicate_loads(zoo.noop.fn)
        validate_function(fn)
        x = np.arange(8, dtype=np.float32)
        out = np.zeros_like(x)
        launch(fn, Grid(1, 8), [out, x, 8], module=zoo.noop.module)
        np.testing.assert_array_equal(out, x)


class TestTransformEndToEnd:
    def test_variants_validate_and_execute(self):
        match = detect_stencil(zoo.mean3x3.fn)
        variants = StencilTransform().generate(zoo.mean3x3.module, "mean3x3", match)
        assert len(variants) >= 3
        img = zoo.make_image(32, 32, seed=2)
        exact = np.zeros_like(img)
        launch(zoo.mean3x3, Grid.for_elements(img.size), [exact, img, 32, 32])
        for v in variants:
            from repro.kernel import validate_module

            validate_module(v.module)
            out = np.zeros_like(img)
            launch(v.module[v.kernel], Grid.for_elements(img.size),
                   [out, img, 32, 32], module=v.module)
            assert MEAN_RELATIVE.quality(out, exact) > 0.5

    def test_center_rd1_equals_center_pixel_replication(self):
        """For a 3x3 mean with center/rd=1 the output must be exactly the
        center pixel (all nine loads redirected there)."""
        match = detect_stencil(zoo.mean3x3.fn)
        v = StencilTransform(schemes=("center",), reaching_distances=(1,)).generate(
            zoo.mean3x3.module, "mean3x3", match
        )[0]
        img = zoo.make_image(16, 16, seed=3)
        out = np.zeros_like(img)
        launch(v.module[v.kernel], Grid.for_elements(img.size), [out, img, 16, 16],
               module=v.module)
        np.testing.assert_allclose(out[1:-1, 1:-1], img[1:-1, 1:-1], rtol=1e-6)

    def test_loop_based_stencil_rewritten(self):
        match = detect_stencil(zoo.row_stencil.fn)
        variants = StencilTransform(
            schemes=("column",), reaching_distances=(1,)
        ).generate(zoo.row_stencil.module, "row_stencil", match)
        x = np.random.default_rng(5).random(256).astype(np.float32)
        exact = np.zeros_like(x)
        launch(zoo.row_stencil, Grid.for_elements(256), [exact, x, 256])
        out = np.zeros_like(x)
        trace = launch(
            variants[0].module[variants[0].kernel],
            Grid.for_elements(256),
            [out, x, 256],
            module=variants[0].module,
        )
        exact_trace = launch(zoo.row_stencil, Grid.for_elements(256),
                             [np.zeros_like(x), x, 256])
        assert trace.accesses("global", "load") < exact_trace.accesses("global", "load")

    def test_no_variant_for_saving_free_plans(self):
        match = detect_stencil(zoo.row_stencil.fn)  # 1x7 row tile
        variants = StencilTransform(schemes=("row",), reaching_distances=(1,)).generate(
            zoo.row_stencil.module, "row_stencil", match
        )
        assert variants == []  # row scheme cannot save loads on a 1-row tile
