"""Tests for bit tuning: hill climbing and the TOQ table-size search."""

import numpy as np
import pytest

from repro.approx.bit_tuning import (
    BitTuner,
    equal_split,
    neighbours,
    search_table_size,
)
from repro.approx.quantize import InputRange
from repro.runtime.quality import MEAN_RELATIVE


class TestTreeStructure:
    def test_equal_split(self):
        assert equal_split(15, 3) == (5, 5, 5)
        assert equal_split(16, 3) == (6, 5, 5)
        assert equal_split(4, 1) == (4,)

    def test_equal_split_rejects_zero_inputs(self):
        with pytest.raises(ValueError):
            equal_split(8, 0)

    def test_neighbours_move_one_bit_between_adjacent_inputs(self):
        kids = neighbours((5, 5, 5))
        assert (4, 6, 5) in kids and (6, 4, 5) in kids
        assert (5, 4, 6) in kids and (5, 6, 4) in kids
        # non-adjacent moves are not children (paper Fig 4)
        assert (4, 5, 6) not in kids

    def test_neighbours_respect_zero(self):
        kids = neighbours((0, 4))
        assert (-1, 5) not in kids
        assert (1, 3) in kids

    def test_neighbour_totals_preserved(self):
        for child in neighbours((3, 7, 2)):
            assert sum(child) == 12


def _make_tuner(sensitivity=(1.0, 30.0)):
    """A 2-input function much more sensitive to its second input."""
    rng = np.random.default_rng(0)
    a = rng.uniform(0, 1, 4000)
    b = rng.uniform(0, 1, 4000)

    def f(x, y):
        return sensitivity[0] * x + np.sin(sensitivity[1] * y)

    exact = f(a, b)
    return BitTuner(
        f,
        [a, b],
        exact,
        MEAN_RELATIVE.quality,
        ranges=[InputRange(0, 1), InputRange(0, 1)],
    )


class TestHillClimbing:
    def test_sensitive_input_receives_more_bits(self):
        tuner = _make_tuner()
        config = tuner.tune(12)
        assert config.bits[1] > config.bits[0]

    def test_quality_improves_monotonically_along_path(self):
        tuner = _make_tuner()
        tuner.tune(12)
        path_q = [q for _n, q, _c in tuner.path]
        assert all(b > a for a, b in zip(path_q, path_q[1:]))

    def test_memoization_of_node_quality(self):
        tuner = _make_tuner()
        tuner.tune(10)
        n1 = tuner.nodes_evaluated
        tuner.tune(10)
        assert tuner.nodes_evaluated == n1  # all nodes cached

    def test_more_bits_never_hurt_at_optimum(self):
        tuner = _make_tuner()
        q_small = tuner.tune(6).quality
        q_large = tuner.tune(14).quality
        assert q_large >= q_small


class TestTableSizeSearch:
    def test_finds_smallest_satisfying_table(self):
        tuner = _make_tuner(sensitivity=(1.0, 6.0))
        result = search_table_size(tuner, toq=0.95, start_bits=10)
        assert result.chosen is not None
        chosen_bits = result.chosen.total
        assert result.chosen.quality >= 0.95
        # one bit fewer must fail the TOQ (that is why the search stopped)
        if chosen_bits - 1 in result.explored:
            assert result.explored[chosen_bits - 1].quality < 0.95

    def test_grows_when_start_misses(self):
        tuner = _make_tuner()
        result = search_table_size(tuner, toq=0.97, start_bits=4)
        assert result.chosen is not None
        assert result.chosen.total > 4

    def test_unreachable_toq_returns_best_available(self):
        tuner = _make_tuner()
        result = search_table_size(tuner, toq=0.9999999, start_bits=6, max_bits=8)
        assert result.chosen is None
        best = result.best_available()
        assert best.total in result.explored
        assert best.quality == max(c.quality for c in result.explored.values())
