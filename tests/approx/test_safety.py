"""Tests for the division-guard safety pass (the §5 safety extension)."""

import numpy as np
import pytest

from repro.approx.safety import guard_divisions
from repro.engine import Grid, launch
from repro.kernel import ir, kernel, validate_module
from repro.kernel.dsl import *  # noqa: F401,F403
from repro.kernel.printer import print_function
from repro.kernel.visitors import walk


@kernel
def divide_kernel(out: array_f32, num: array_f32, den: array_f32, n: i32):
    i = global_id()
    if i < n:
        out[i] = num[i] / den[i]


@kernel
def safe_divide_kernel(out: array_f32, x: array_f32, n: i32):
    i = global_id()
    if i < n:
        out[i] = x[i] / 4.0  # constant divisor: no guard needed
        out[i] = out[i] / exp(x[i])  # exp is provably positive


class TestGuardInsertion:
    def test_unsafe_division_guarded(self):
        module, guards = guard_divisions(divide_kernel)
        assert guards == 1
        validate_module(module)
        selects = [n for n in walk(module["divide_kernel"]) if isinstance(n, ir.Select)]
        assert len(selects) == 1
        assert "!= 0.0f" in print_function(module["divide_kernel"])

    def test_provably_safe_divisions_untouched(self):
        module, guards = guard_divisions(safe_divide_kernel)
        assert guards == 0

    def test_idempotent(self):
        once, n1 = guard_divisions(divide_kernel)
        twice, n2 = guard_divisions(once)
        selects = [n for n in walk(twice["divide_kernel"]) if isinstance(n, ir.Select)]
        assert len(selects) == 1  # no double guards

    def test_integer_division_guarded_too(self):
        @kernel
        def int_div(out: array_i32, a: array_i32, b: array_i32, n: i32):
            i = global_id()
            if i < n:
                out[i] = a[i] / b[i]

        _module, guards = guard_divisions(int_div)
        assert guards == 1


class TestGuardedSemantics:
    def test_zero_divisor_skips_instead_of_inf(self):
        module, _g = guard_divisions(divide_kernel)
        num = np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32)
        den = np.array([2.0, 0.0, 4.0, 0.0], dtype=np.float32)
        out = np.full(4, -1.0, dtype=np.float32)
        launch(module["divide_kernel"], Grid(1, 4), [out, num, den, 4], module=module)
        np.testing.assert_allclose(out, [0.5, 0.0, 0.75, 0.0])
        assert np.isfinite(out).all()

    def test_nonzero_divisors_unchanged(self):
        module, _g = guard_divisions(divide_kernel)
        num = np.arange(1, 9, dtype=np.float32)
        den = np.arange(1, 9, dtype=np.float32) * 2
        guarded = np.zeros(8, dtype=np.float32)
        plain = np.zeros(8, dtype=np.float32)
        launch(module["divide_kernel"], Grid(1, 8), [guarded, num, den, 8], module=module)
        launch(divide_kernel, Grid(1, 8), [plain, num, den, 8])
        np.testing.assert_array_equal(guarded, plain)


class TestCompilerIntegration:
    def test_guards_applied_to_generated_variants(self):
        from repro import DeviceKind, Paraprox, ParaproxConfig
        from repro.apps.blackscholes import BlackScholesApp

        px = Paraprox(
            target_quality=0.90, config=ParaproxConfig(guard_divisions=True)
        )
        app = BlackScholesApp(scale=0.01)
        variants = px.compile(app, DeviceKind.GPU)
        assert variants
        assert all("division_guards" in v.knobs for v in variants)
        # the memoized kernel still runs and meets TOQ with guards in place
        result = px.optimize(app, DeviceKind.GPU, variants=variants)
        assert result.quality >= 0.90
