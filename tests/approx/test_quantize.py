"""Property-based tests for input quantization and address packing."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.approx.quantize import (
    InputRange,
    dequantize,
    level_grid,
    pack_address,
    quantize_index,
    quantize_value,
    unpack_address,
)

ranges = st.tuples(
    st.floats(-1e4, 1e4, allow_nan=False),
    st.floats(-1e4, 1e4, allow_nan=False),
).map(lambda ab: InputRange(min(ab), max(ab) + 1.0))

bits = st.integers(1, 12)


class TestQuantization:
    @given(ranges, bits, st.floats(-2e4, 2e4, allow_nan=False))
    @settings(max_examples=100)
    def test_quantized_value_is_idempotent(self, rng, q, x):
        once = quantize_value(x, rng, q)
        twice = quantize_value(once, rng, q)
        np.testing.assert_allclose(once, twice, rtol=1e-12)

    @given(ranges, bits, st.floats(-2e4, 2e4, allow_nan=False))
    @settings(max_examples=100)
    def test_index_in_range(self, rng, q, x):
        idx = quantize_index(x, rng, q)
        assert 0 <= int(idx) < (1 << q)

    @given(ranges, bits)
    @settings(max_examples=100)
    def test_error_bounded_by_half_step(self, rng, q):
        xs = np.linspace(rng.lo, rng.hi, 257)
        snapped = quantize_value(xs, rng, q)
        step = (rng.hi - rng.lo) / ((1 << q) - 1)
        assert np.abs(snapped - xs).max() <= step / 2 + 1e-9

    @given(ranges, bits)
    @settings(max_examples=50)
    def test_out_of_range_clamps_to_nearest_level(self, rng, q):
        lo_val = quantize_value(rng.lo - 100.0, rng, q)
        hi_val = quantize_value(rng.hi + 100.0, rng, q)
        np.testing.assert_allclose(lo_val, rng.lo, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(hi_val, rng.hi, rtol=1e-9, atol=1e-9)

    def test_zero_bits_maps_to_midpoint(self):
        rng = InputRange(0.0, 10.0)
        assert float(quantize_value(3.3, rng, 0)) == 5.0

    def test_constant_range(self):
        rng = InputRange(2.0, 2.0)
        assert rng.is_constant
        assert float(quantize_value(123.0, rng, 5)) == 2.0

    def test_range_of_samples(self):
        r = InputRange.of(np.array([3.0, -1.0, 7.5]))
        assert (r.lo, r.hi) == (-1.0, 7.5)


class TestAddressPacking:
    @given(
        st.lists(st.tuples(st.integers(1, 6), st.integers(0, 63)), min_size=1, max_size=4)
    )
    @settings(max_examples=100)
    def test_pack_unpack_roundtrip(self, spec):
        qs = [q for q, _v in spec]
        vals = [np.array([v & ((1 << q) - 1)]) for q, v in spec]
        addr = pack_address(vals, qs)
        out = unpack_address(addr, qs)
        for got, want in zip(out, vals):
            np.testing.assert_array_equal(got, want)

    def test_first_input_in_msbs(self):
        addr = pack_address([np.array([1]), np.array([0])], [1, 3])
        assert int(addr[0]) == 8

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            pack_address([np.array([1])], [1, 2])


class TestLevelGrid:
    def test_grid_covers_every_address(self):
        ranges_ = [InputRange(0.0, 1.0), InputRange(0.0, 2.0)]
        grids = level_grid(ranges_, [2, 3])
        assert len(grids) == 2
        assert grids[0].size == 32 and grids[1].size == 32
        # last input varies fastest
        assert grids[1][0] != grids[1][1]
        assert grids[0][0] == grids[0][1]

    def test_grid_matches_address_decoding(self):
        ranges_ = [InputRange(0.0, 3.0)]
        grids = level_grid(ranges_, [2])
        np.testing.assert_allclose(grids[0], [0.0, 1.0, 2.0, 3.0])
