"""Composed memoization: a kernel calling two independent expensive pure
functions gets a variant replacing both, each with its own table."""

import numpy as np
import pytest

from repro.approx.memoization import MemoizationTransform, profile_device_calls
from repro.engine import Grid, launch
from repro.kernel import device, kernel, validate_module
from repro.kernel.dsl import *  # noqa: F401,F403
from repro.patterns import PatternDetector
from repro.runtime.quality import MEAN_RELATIVE


@device
def heavy_logit(x: f32) -> f32:
    z = log(x / (1.0 - x))
    return 1.0 / (1.0 + exp(-2.0 * z)) + 0.01 * pow(x, 3.0)


@device
def heavy_gauss(y: f32) -> f32:
    damped = exp(-y * y) * cos(3.0 * y)
    return damped + pow(fabs(y), 1.5) + 0.1 * log(1.0 + fabs(y))


@kernel
def two_candidates(out: array_f32, a: array_f32, b: array_f32, n: i32):
    i = global_id()
    if i < n:
        out[i] = heavy_logit(a[i]) + heavy_gauss(b[i])


@pytest.fixture(scope="module")
def variants():
    n = 8192
    rng = np.random.default_rng(0)
    a = rng.uniform(0.05, 0.95, n).astype(np.float32)
    b = rng.uniform(-2.0, 2.0, n).astype(np.float32)
    args = [np.zeros(n, dtype=np.float32), a, b, n]
    grid = Grid.for_elements(n)
    match = PatternDetector().detect(two_candidates).for_kernel("two_candidates")[0]
    assert set(match.candidates) == {"heavy_logit", "heavy_gauss"}
    profiles = profile_device_calls(two_candidates, grid, args, match.candidates)
    transform = MemoizationTransform(toq=0.95, quality_fn=MEAN_RELATIVE.quality)
    return (
        transform.generate(two_candidates.module, "two_candidates", match, profiles),
        (a, b, n, grid),
    )


class TestComposition:
    def test_composed_variant_emitted(self, variants):
        vs, _ = variants
        composed = [v for v in vs if v.knobs.get("composed")]
        assert len(composed) == 1
        assert composed[0].knobs["function"] == "heavy_logit+heavy_gauss"
        assert len(composed[0].extra_args) == 2

    def test_composed_kernel_has_two_table_params(self, variants):
        vs, _ = variants
        composed = next(v for v in vs if v.knobs.get("composed"))
        validate_module(composed.module)
        names = [p.name for p in composed.module[composed.kernel].params]
        assert "__memo_heavy_logit" in names and "__memo_heavy_gauss" in names

    def test_composed_variant_executes_at_quality(self, variants):
        vs, (a, b, n, grid) = variants
        composed = next(v for v in vs if v.knobs.get("composed"))
        exact = np.zeros(n, dtype=np.float32)
        launch(two_candidates, grid, [exact, a, b, n])
        out = np.zeros(n, dtype=np.float32)
        launch(
            composed.module[composed.kernel],
            grid,
            composed.launch_args([out, a, b, n]),
            module=composed.module,
        )
        assert MEAN_RELATIVE.quality(out, exact) >= 0.90

    def test_composed_cheaper_than_single_candidate_variants(self, variants):
        vs, (a, b, n, grid) = variants
        from repro.device import CostModel, GTX560

        cm = CostModel(GTX560)

        def cycles_of(v):
            out = np.zeros(n, dtype=np.float32)
            trace = launch(
                v.module[v.kernel], grid, v.launch_args([out, a, b, n]), module=v.module
            )
            return cm.cycles(trace)

        composed = next(v for v in vs if v.knobs.get("composed"))
        singles = [v for v in vs if not v.knobs.get("composed")]
        assert cycles_of(composed) < min(cycles_of(v) for v in singles)

    def test_single_candidate_kernels_get_no_composed_variant(self):
        from repro.apps.blackscholes import BlackScholesApp
        from repro import DeviceKind, Paraprox

        vs = Paraprox(target_quality=0.90).compile(
            BlackScholesApp(scale=0.005), DeviceKind.GPU
        )
        assert not any(v.knobs.get("composed") for v in vs)
