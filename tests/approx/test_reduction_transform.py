"""Tests for reduction perforation + adjustment (paper §3.3), including a
hypothesis property: the adjusted estimator is exact on constant data."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

import kernel_zoo as zoo
from repro.approx.reduction import ReductionTransform, perforate_all_loops
from repro.engine import Grid, launch
from repro.errors import TransformError
from repro.kernel import ir, validate_module
from repro.kernel.printer import print_function
from repro.kernel.visitors import walk
from repro.patterns import detect_reduction


def _variants(kernelfn, rates=(2,)):
    match = detect_reduction(kernelfn.fn)
    return ReductionTransform(skipping_rates=rates).generate(
        kernelfn.module, kernelfn.fn.name, match
    )


class TestRewriteStructure:
    def test_step_multiplied(self):
        v = _variants(zoo.sum_chunks, rates=(4,))[0]
        loops = [n for n in walk(v.module[v.kernel]) if isinstance(n, ir.For)]
        assert loops[0].step.value == 4

    def test_adjustment_code_inserted_for_addition(self):
        v = _variants(zoo.sum_chunks, rates=(2,))[0]
        text = print_function(v.module[v.kernel])
        assert "_red_acc" in text
        assert "* 2.0f" in text  # scaled fold-back

    def test_min_reduction_has_no_adjustment(self):
        v = _variants(zoo.min_reduce, rates=(2,))[0]
        text = print_function(v.module[v.kernel])
        assert "_red_best" not in text  # no temp+scale for min

    def test_variants_validate(self):
        for v in _variants(zoo.sum_chunks, rates=(2, 4, 8)):
            validate_module(v.module)

    def test_bad_rate_rejected(self):
        with pytest.raises(TransformError, match="skipping rate"):
            _variants(zoo.sum_chunks, rates=(1,))

    def test_variant_per_loop_and_rate(self):
        from repro.apps.kde import kde_kernel

        match = detect_reduction(kde_kernel.fn)
        variants = ReductionTransform(skipping_rates=(2, 4)).generate(
            kde_kernel.module, "kde_kernel", match
        )
        assert len(variants) == 4  # 2 loops x 2 rates
        assert {v.knobs["loop"] for v in variants} == {0, 1}


class TestNumericalBehaviour:
    @given(st.floats(0.1, 100.0, allow_nan=False), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_adjusted_sum_exact_on_constant_data(self, value, rate_pow):
        """sum(c * N_sampled) * rate == sum over all iff data constant."""
        rate = 2**rate_pow
        v = _variants(zoo.sum_chunks, rates=(rate,))[0]
        n, chunk = 640, 64  # chunk divisible by every rate used
        x = np.full(n, value, dtype=np.float32)
        out = np.zeros(10, dtype=np.float32)
        launch(v.module[v.kernel], Grid.for_elements(10, 2), [out, x, n, chunk],
               module=v.module)
        np.testing.assert_allclose(out, value * chunk, rtol=1e-5)

    def test_estimator_unbiased_on_random_data(self):
        rng = np.random.default_rng(0)
        v = _variants(zoo.sum_chunks, rates=(4,))[0]
        n, chunk = 64000, 64
        x = rng.random(n).astype(np.float32)
        out = np.zeros(1000, dtype=np.float32)
        launch(v.module[v.kernel], Grid.for_elements(1000, 64),
               [out, x, n, chunk], module=v.module)
        exact = x.reshape(1000, 64).sum(axis=1)
        # per-chunk errors exist, but the mean is unbiased
        assert abs(out.mean() - exact.mean()) / exact.mean() < 0.01

    def test_nonzero_initial_value_preserved(self):
        """The temp-variable trick (§3.3.3): an accumulator that starts
        nonzero must not have its initial value scaled."""
        v = _variants(zoo.min_reduce, rates=(2,))[0]
        # min_reduce initialises best = 3.4e38; perforated version must
        # still return a value from the array, not a scaled sentinel.
        x = np.full(128, 5.0, dtype=np.float32)
        out = np.zeros(2, dtype=np.float32)
        launch(v.module[v.kernel], Grid.for_elements(2, 1), [out, x, 128, 64],
               module=v.module)
        np.testing.assert_allclose(out, 5.0)

    def test_atomic_adjustment_scales_counts(self):
        match = detect_reduction(zoo.atomic_histogram.fn)
        v = ReductionTransform(skipping_rates=(2,)).generate(
            zoo.atomic_histogram.module, "atomic_histogram", match
        )[0]
        rng = np.random.default_rng(1)
        xs = rng.integers(0, 8, 4096).astype(np.int32)
        exact = np.zeros(8, dtype=np.int32)
        launch(zoo.atomic_histogram, Grid.for_elements(64, 16),
               [exact, xs, 4096, 64])
        approx = np.zeros(8, dtype=np.int32)
        launch(v.module[v.kernel], Grid.for_elements(64, 16),
               [approx, xs, 4096, 64], module=v.module)
        assert approx.sum() == exact.sum()  # total count preserved by x2
        assert np.abs(approx - exact).max() / exact.mean() < 0.25

    def test_coupled_reductions_keep_ratio(self):
        """Weighted mean: scaling only the numerator would be catastrophic."""
        from repro.apps.denoise import ImageDenoisingApp

        app = ImageDenoisingApp(scale=0.002)
        inputs = app.generate_inputs(0)
        exact, _t = app.run_exact(inputs)
        match = detect_reduction(app.kernel.fn)
        v = ReductionTransform(skipping_rates=(2,)).generate(
            app.kernel.module, app.kernel.fn.name, match
        )[0]
        approx, _t = app.run_variant(v, inputs)
        # a weighted mean of pixel values stays a plausible pixel value
        assert float(np.abs(approx - exact).mean()) < 0.05


class TestNaivePerforation:
    def test_every_loop_perforated(self):
        module, name = perforate_all_loops(zoo.scan_phase1.module, "scan_phase1", 2)
        loops = [n for n in walk(module[name]) if isinstance(n, ir.For)]
        assert all(l.step.value == 2 for l in loops)

    def test_no_adjustment_added(self):
        module, name = perforate_all_loops(zoo.sum_chunks.module, "sum_chunks", 2)
        assert "_red_" not in print_function(module[name])

    def test_loopless_kernel_returns_none(self):
        assert perforate_all_loops(zoo.noop.module, "noop", 2) is None

    def test_perforated_scan_is_wrong(self):
        """The §4.4.1 point: uniform skipping corrupts scan output."""
        module, name = perforate_all_loops(zoo.scan_phase1.module, "scan_phase1", 2)
        x = np.ones(64, dtype=np.float32)
        good = np.zeros_like(x)
        sums = np.zeros(1, dtype=np.float32)
        launch(zoo.scan_phase1, Grid(1, 64), [good, sums, x])
        bad = np.zeros_like(x)
        launch(module[name], Grid(1, 64), [bad, sums, x], module=module)
        assert not np.allclose(bad, good)
