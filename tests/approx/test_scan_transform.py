"""Tests for the scan subarray-substitution transform (paper §3.4)."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.apps.scanlib import MAX_BLOCK, ScanProgram, reference_scan
from repro.approx.scan import ScanTransform, ScanVariant
from repro.errors import ExecutionError, TransformError
from repro.patterns.base import Pattern, ScanMatch
from repro.runtime.quality import MEAN_RELATIVE


def _match():
    return ScanMatch(pattern=Pattern.SCAN, kernel="scan_phase1", source="pragma")


class TestScanProgramExactness:
    @given(st.integers(2, 24), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_exact_scan_matches_cumsum(self, blocks, seed):
        rng = np.random.default_rng(seed)
        x = rng.random(blocks * 64).astype(np.float32)
        out = ScanProgram(block=64).run(x)
        np.testing.assert_allclose(out, reference_scan(x), rtol=2e-4)

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(ExecutionError, match="power of two"):
            ScanProgram(block=96)

    def test_oversized_block_rejected(self):
        with pytest.raises(ExecutionError):
            ScanProgram(block=2 * MAX_BLOCK)

    def test_unpadded_input_rejected(self):
        with pytest.raises(ExecutionError, match="multiple"):
            ScanProgram(block=64).run(np.ones(100, dtype=np.float32))

    def test_wrong_dtype_rejected(self):
        with pytest.raises(ExecutionError, match="float32"):
            ScanProgram(block=64).run(np.ones(128, dtype=np.float64))


class TestApproximateScan:
    def test_kept_prefix_is_exact(self):
        rng = np.random.default_rng(3)
        x = rng.random(64 * 16).astype(np.float32)
        out = ScanProgram(block=64).run_approx(x, skipped=4)
        ref = reference_scan(x)
        np.testing.assert_allclose(out[: 12 * 64], ref[: 12 * 64], rtol=2e-4)

    def test_tail_is_predicted_not_computed(self):
        x = np.ones(64 * 8, dtype=np.float32)
        out = ScanProgram(block=64).run_approx(x, skipped=2)
        # uniform data: prediction is exact for all-ones input
        np.testing.assert_allclose(out, reference_scan(x), rtol=1e-5)

    def test_quality_stays_high_at_half_skip(self):
        """Paper §4.3: ~99% quality even skipping half the subarrays."""
        rng = np.random.default_rng(4)
        x = rng.random(256 * 64).astype(np.float32)
        out = ScanProgram(block=256).run_approx(x, skipped=32)
        q = MEAN_RELATIVE.quality(out, reference_scan(x))
        assert q > 0.985

    def test_quality_degrades_monotonically_with_skip(self):
        rng = np.random.default_rng(5)
        x = rng.random(64 * 32).astype(np.float32)
        ref = reference_scan(x)
        qualities = [
            MEAN_RELATIVE.quality(ScanProgram(block=64).run_approx(x, k), ref)
            for k in (0, 4, 8, 16)
        ]
        assert all(b <= a + 1e-6 for a, b in zip(qualities, qualities[1:]))

    def test_exclusive_scan_exact(self):
        rng = np.random.default_rng(6)
        x = rng.random(64 * 8).astype(np.float32)
        out = ScanProgram(block=64).run(x, exclusive=True)
        np.testing.assert_allclose(
            out, reference_scan(x, exclusive=True), rtol=2e-4, atol=1e-5
        )
        assert out[0] == 0.0

    def test_exclusive_approximate_scan(self):
        rng = np.random.default_rng(7)
        x = rng.random(64 * 16).astype(np.float32)
        out = ScanProgram(block=64).run_approx(x, skipped=4, exclusive=True)
        ref = reference_scan(x, exclusive=True)
        q = MEAN_RELATIVE.quality(out[1:], ref[1:])
        assert q > 0.98

    def test_skip_zero_is_exact(self):
        x = np.arange(128, dtype=np.float32)
        out = ScanProgram(block=64).run_approx(x, skipped=0)
        np.testing.assert_allclose(out, reference_scan(x), rtol=1e-5)

    def test_skipping_more_than_half_rejected(self):
        x = np.ones(64 * 8, dtype=np.float32)
        with pytest.raises(ExecutionError, match="skipped <= kept"):
            ScanProgram(block=64).run_approx(x, skipped=5)

    def test_trace_shrinks_with_skipping(self):
        x = np.ones(64 * 16, dtype=np.float32)
        exact_prog = ScanProgram(block=64)
        exact_prog.run(x)
        approx_prog = ScanProgram(block=64)
        approx_prog.run_approx(x, skipped=8)
        assert approx_prog.trace.total_ops() < exact_prog.trace.total_ops()


class TestScanTransform:
    def test_generate_variants(self):
        variants = ScanTransform().generate("cumhist", _match())
        assert len(variants) == 4
        assert all(isinstance(v, ScanVariant) for v in variants)
        assert variants[-1].skip_fraction == 0.5

    def test_bad_fraction_rejected(self):
        with pytest.raises(TransformError, match="skip fraction"):
            ScanTransform(skip_fractions=(0.6,))
        with pytest.raises(TransformError):
            ScanTransform(skip_fractions=(0.0,))

    def test_non_scan_match_rejected(self):
        bad = ScanMatch(pattern=Pattern.SCAN, kernel="k", source="pragma")
        bad.pattern = Pattern.MAP
        with pytest.raises(TransformError):
            ScanTransform().generate("k", bad)

    def test_skipped_blocks_clamped(self):
        v = ScanVariant(name="v", pattern=Pattern.SCAN, skip_fraction=0.5)
        assert v.skipped_blocks(10) == 5
        assert v.skipped_blocks(3) <= 1

    def test_variant_run_through_program(self):
        v = ScanTransform(skip_fractions=(0.25,)).generate("cumhist", _match())[0]
        x = np.ones(64 * 8, dtype=np.float32)
        out = v.run(ScanProgram(block=64), x)
        np.testing.assert_allclose(out, reference_scan(x), rtol=1e-5)
