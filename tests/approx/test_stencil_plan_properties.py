"""Hypothesis property tests on tile-replication plans (paper §3.2)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.affine import TileGeometry
from repro.approx.stencil import SCHEMES, build_plan, representative, snap

tiles = st.tuples(st.integers(1, 9), st.integers(1, 9)).map(
    lambda rc: TileGeometry(
        array="a",
        offsets=[(r, c) for r in range(rc[0]) for c in range(rc[1])],
        rows=rc[0],
        cols=rc[1],
        width_symbol=("w",),
    )
)
schemes = st.sampled_from(SCHEMES)
rds = st.integers(1, 6)


class TestSnap:
    @given(st.integers(-20, 20), st.integers(-20, 20), rds)
    @settings(max_examples=100)
    def test_snap_moves_at_most_half_stride(self, v, anchor, rd):
        s = snap(v, anchor, rd)
        assert abs(s - v) <= (rd + 1) / 2

    @given(st.integers(-20, 20), st.integers(-20, 20), rds)
    @settings(max_examples=100)
    def test_snap_is_idempotent(self, v, anchor, rd):
        s = snap(v, anchor, rd)
        assert snap(s, anchor, rd) == s

    @given(st.integers(-20, 20), rds)
    @settings(max_examples=50)
    def test_anchor_is_fixed_point(self, anchor, rd):
        assert snap(anchor, anchor, rd) == anchor


class TestPlans:
    @given(tiles, schemes, rds)
    @settings(max_examples=150)
    def test_representatives_stay_inside_tile(self, tile, scheme, rd):
        plan = build_plan(tile, scheme, rd)
        for r, c in plan.mapping.values():
            assert 0 <= r < tile.rows
            assert 0 <= c < tile.cols

    @given(tiles, schemes, rds)
    @settings(max_examples=150)
    def test_every_offset_mapped(self, tile, scheme, rd):
        plan = build_plan(tile, scheme, rd)
        assert set(plan.mapping) == set(tile.offsets)

    @given(tiles, schemes, rds)
    @settings(max_examples=150)
    def test_mapping_is_idempotent(self, tile, scheme, rd):
        """Representatives are their own representatives (the accessed
        subset really is accessed)."""
        plan = build_plan(tile, scheme, rd)
        for rep in set(plan.mapping.values()):
            assert plan.mapping[rep] == rep

    @given(tiles, schemes, rds)
    @settings(max_examples=150)
    def test_saving_bounds(self, tile, scheme, rd):
        plan = build_plan(tile, scheme, rd)
        assert 0.0 <= plan.saving < 1.0
        assert 1 <= plan.accessed <= plan.total

    @given(tiles, schemes)
    @settings(max_examples=100)
    def test_larger_reaching_distance_never_accesses_more(self, tile, scheme):
        accessed = [
            build_plan(tile, scheme, rd).accessed for rd in (1, 2, 4, 8)
        ]
        assert all(b <= a for a, b in zip(accessed, accessed[1:]))

    @given(tiles, rds)
    @settings(max_examples=100)
    def test_row_scheme_preserves_columns(self, tile, rd):
        plan = build_plan(tile, "row", rd)
        for (r, c), (rr, cc) in plan.mapping.items():
            assert cc == c

    @given(tiles, rds)
    @settings(max_examples=100)
    def test_column_scheme_preserves_rows(self, tile, rd):
        plan = build_plan(tile, "column", rd)
        for (r, c), (rr, cc) in plan.mapping.items():
            assert rr == r
