"""The typed VariantSet returned by Paraprox.compile: accessors and the
backward-compatible list protocol."""

import pytest

from repro import DeviceKind, Paraprox, VariantSet
from repro.apps.blackscholes import BlackScholesApp
from repro.apps.cumhist import CumulativeHistogramApp
from repro.apps.gaussian import GaussianFilterApp
from repro.patterns.base import Pattern


@pytest.fixture(scope="module")
def stencil_set():
    return Paraprox(target_quality=0.9).compile(
        GaussianFilterApp(scale=0.05), DeviceKind.GPU
    )


class TestTypedAccessors:
    def test_compile_returns_variant_set(self, stencil_set):
        assert isinstance(stencil_set, VariantSet)
        assert stencil_set.kernel

    def test_exact_is_the_app_kernel(self, stencil_set):
        app = GaussianFilterApp(scale=0.05)
        vs = Paraprox(target_quality=0.9).compile(app, DeviceKind.GPU)
        assert vs.exact is app.kernel

    def test_by_pattern_accepts_enum_and_string(self, stencil_set):
        by_enum = stencil_set.by_pattern(Pattern.STENCIL)
        by_str = stencil_set.by_pattern("stencil")
        assert by_enum == by_str
        assert by_enum, "stencil app must yield stencil variants"
        assert all(v.pattern is Pattern.STENCIL for v in by_enum)

    def test_by_pattern_unknown_string_raises(self, stencil_set):
        with pytest.raises(KeyError, match="unknown pattern"):
            stencil_set.by_pattern("vectorize")

    def test_by_pattern_absent_pattern_is_empty(self, stencil_set):
        assert stencil_set.by_pattern(Pattern.SCAN) == []

    def test_by_name_round_trips(self, stencil_set):
        for name in stencil_set.names():
            assert stencil_set.by_name(name).name == name

    def test_by_name_unknown_raises_with_known_names(self, stencil_set):
        with pytest.raises(KeyError) as exc:
            stencil_set.by_name("nope")
        assert stencil_set.names()[0] in str(exc.value)

    def test_patterns_and_sort(self, stencil_set):
        assert Pattern.STENCIL in stencil_set.patterns()
        ordered = stencil_set.sorted_by_aggressiveness()
        keys = [v.aggressiveness for v in ordered]
        assert keys == sorted(keys)

    def test_describe_lists_every_variant(self, stencil_set):
        text = stencil_set.describe()
        assert f"{len(stencil_set)} variant(s)" in text
        for name in stencil_set.names():
            assert name in text
        assert "[stencil]" in text


class TestListCompatibility:
    def test_iteration_indexing_len_bool(self, stencil_set):
        assert len(stencil_set) == len(list(stencil_set))
        assert stencil_set[0] is list(stencil_set)[0]
        assert bool(stencil_set)
        assert stencil_set[0] in stencil_set

    def test_equality_with_plain_list(self, stencil_set):
        assert stencil_set == list(stencil_set)
        assert stencil_set == tuple(stencil_set)
        assert stencil_set != list(stencil_set)[:-1]
        assert VariantSet(kernel="k") == []

    def test_equality_between_sets(self, stencil_set):
        clone = VariantSet(
            kernel=stencil_set.kernel, variants=list(stencil_set.variants)
        )
        assert stencil_set == clone
        assert VariantSet(kernel="other", variants=list(stencil_set)) != stencil_set

    def test_empty_set_is_falsy_like_a_list(self):
        vs = VariantSet(kernel="k")
        assert vs == []
        assert not vs
        assert len(vs) == 0
        assert vs.names() == []
        assert "0 variant(s)" in vs.describe()


class TestCustomPipelineApps:
    def test_build_variants_app_is_wrapped(self):
        vs = Paraprox(target_quality=0.9).compile(
            CumulativeHistogramApp(scale=0.02), DeviceKind.GPU
        )
        assert isinstance(vs, VariantSet)
        assert len(vs) >= 1
        assert vs.names()

    def test_memo_app_has_map_variants(self):
        vs = Paraprox(target_quality=0.9).compile(
            BlackScholesApp(scale=0.01), DeviceKind.GPU
        )
        assert isinstance(vs, VariantSet)
        assert vs.by_pattern(Pattern.MAP)
