"""Tests for the approximate memoization transform (paper §3.1)."""

import numpy as np
import pytest

import kernel_zoo as zoo
from repro.approx.bit_tuning import BitConfig
from repro.approx.memoization import (
    MemoizationTransform,
    build_table,
    profile_device_calls,
    rewrite_kernel_with_table,
)
from repro.approx.quantize import InputRange
from repro.engine import Grid, launch
from repro.errors import TransformError
from repro.kernel import ir, validate_module
from repro.kernel.visitors import walk
from repro.patterns import PatternDetector
from repro.runtime.quality import L1_NORM


def _bs_setup(n=4096, seed=0):
    rng = np.random.default_rng(seed)
    s = (rng.random(n) * 90 + 10).astype(np.float32)
    x = (rng.random(n) * 90 + 10).astype(np.float32)
    t = (rng.random(n) * 9 + 0.2).astype(np.float32)
    out = np.zeros(n, dtype=np.float32)
    return [out, s, x, t, 0.02, 0.30, n], Grid.for_elements(n)


class TestProfiling:
    def test_constant_inputs_detected(self):
        args, grid = _bs_setup()
        profiles = profile_device_calls(zoo.black_scholes, grid, args, ["bs_body"])
        prof = profiles["bs_body"]
        assert prof.variable_indices == [0, 1, 2]  # R and V constant
        assert prof.ranges[3].is_constant and prof.ranges[4].is_constant

    def test_sample_cap(self):
        args, grid = _bs_setup(n=4096)
        profiles = profile_device_calls(
            zoo.black_scholes, grid, args, ["bs_body"], max_samples=100
        )
        assert all(s.size <= 101 for s in profiles["bs_body"].samples)

    def test_unseen_function_absent(self):
        args, grid = _bs_setup()
        profiles = profile_device_calls(zoo.black_scholes, grid, args, ["ghost"])
        assert profiles == {}


class TestTableConstruction:
    def test_table_holds_exact_function_values(self):
        module = zoo.black_scholes.module
        ranges = [
            InputRange(50.0, 60.0),
            InputRange(90.0, 110.0),
            InputRange(1.0, 2.0),
            InputRange(0.02, 0.02),
            InputRange(0.3, 0.3),
        ]
        bits = [2, 2, 1, 0, 0]
        table = build_table(module["bs_body"], module, ranges, bits)
        assert table.shape == (32,)
        # spot-check one entry against a direct evaluation
        from repro.engine import call_device_function

        direct = call_device_function(
            module["bs_body"], module, [50.0, 90.0, 1.0, 0.02, 0.3]
        )
        np.testing.assert_allclose(table[0], direct[0], rtol=1e-6)


class TestRewrite:
    def _memo(self, bits=(5, 5, 4)):
        args, grid = _bs_setup()
        profiles = profile_device_calls(zoo.black_scholes, grid, args, ["bs_body"])
        transform = MemoizationTransform(quality_fn=L1_NORM.quality)
        return transform.build_memo(
            zoo.black_scholes.module, profiles["bs_body"], BitConfig(bits, 0.0)
        )

    def test_rewritten_module_validates(self):
        memo = self._memo()
        module, name = rewrite_kernel_with_table(
            zoo.black_scholes.module, "black_scholes", memo
        )
        validate_module(module)
        assert name in module

    def test_rewritten_kernel_no_longer_calls_function(self):
        memo = self._memo()
        module, name = rewrite_kernel_with_table(
            zoo.black_scholes.module, "black_scholes", memo
        )
        calls = [
            n for n in walk(module[name])
            if isinstance(n, ir.Call) and n.func == "bs_body"
        ]
        assert calls == []

    def test_table_parameter_appended(self):
        memo = self._memo()
        module, name = rewrite_kernel_with_table(
            zoo.black_scholes.module, "black_scholes", memo
        )
        assert module[name].params[-1].name == "__memo_bs_body"

    def test_nearest_execution_quality(self):
        memo = self._memo(bits=(6, 6, 5))
        module, name = rewrite_kernel_with_table(
            zoo.black_scholes.module, "black_scholes", memo
        )
        args, grid = _bs_setup(seed=3)
        exact = np.zeros_like(args[0])
        launch(zoo.black_scholes, grid, [exact] + args[1:])
        launch(module[name], grid, args + [memo.table], module=module)
        assert L1_NORM.quality(args[0], exact) > 0.90

    def test_linear_beats_nearest_quality(self):
        memo = self._memo(bits=(5, 5, 4))
        results = {}
        for mode in ("nearest", "linear"):
            module, name = rewrite_kernel_with_table(
                zoo.black_scholes.module, "black_scholes", memo, mode=mode
            )
            args, grid = _bs_setup(seed=4)
            exact = np.zeros_like(args[0])
            launch(zoo.black_scholes, grid, [exact] + args[1:])
            launch(module[name], grid, args + [memo.table], module=module)
            results[mode] = L1_NORM.quality(args[0], exact)
        assert results["linear"] >= results["nearest"]

    def test_missing_call_rejected(self):
        memo = self._memo()
        with pytest.raises(TransformError, match="nothing to memoize"):
            rewrite_kernel_with_table(zoo.noop.module, "noop", memo)

    def test_bad_space_rejected(self):
        memo = self._memo()
        with pytest.raises(TransformError, match="bad table space"):
            rewrite_kernel_with_table(
                zoo.black_scholes.module, "black_scholes", memo, space="texture"
            )


class TestEndToEnd:
    def test_generate_respects_toq(self):
        args, grid = _bs_setup()
        detector = PatternDetector()
        match = detector.detect(zoo.black_scholes).for_kernel("black_scholes")[0]
        profiles = profile_device_calls(
            zoo.black_scholes, grid, args, match.candidates
        )
        transform = MemoizationTransform(toq=0.90, quality_fn=L1_NORM.quality)
        variants = transform.generate(
            zoo.black_scholes.module, "black_scholes", match, profiles
        )
        assert variants
        for v in variants:
            assert v.knobs["training_quality"] >= 0.90
            assert isinstance(v.extra_args[0], np.ndarray)
            validate_module(v.module)
