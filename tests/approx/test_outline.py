"""Tests for pure-section outlining (the §5 future-work extension)."""

import numpy as np
import pytest

from repro.analysis import GPU_LATENCIES
from repro.analysis.purity import is_pure
from repro.approx.outline import find_slices, outline_best_slice, outline_slice
from repro.engine import Grid, launch
from repro.kernel import kernel, validate_module
from repro.kernel.dsl import *  # noqa: F401,F403
from repro.patterns import PatternDetector


@kernel
def inline_blackscholes(
    call: array_f32, price: array_f32, strike: array_f32, years: array_f32, n: i32
):
    """BlackScholes with everything written inline: no device function, so
    the stock map detector finds no memoization candidate."""
    i = global_id()
    if i < n:
        s = price[i]
        x = strike[i]
        t = years[i]
        srt = 0.30 * sqrt(t)
        d1 = (log(s / x) + (0.02 + 0.5 * 0.30 * 0.30) * t) / srt
        d2 = d1 - srt
        k1 = 1.0 / (1.0 + 0.2316419 * fabs(d1))
        nd1 = 1.0 - 0.3989423 * exp(-0.5 * d1 * d1) * k1 * 0.937298
        k2 = 1.0 / (1.0 + 0.2316419 * fabs(d2))
        nd2 = 1.0 - 0.3989423 * exp(-0.5 * d2 * d2) * k2 * 0.937298
        c = s * nd1 - x * exp(-0.02 * t) * nd2
        call[i] = c


@kernel
def cheap_inline(out: array_f32, x: array_f32, n: i32):
    i = global_id()
    if i < n:
        a = x[i] + 1.0
        b = a * 2.0
        out[i] = b


def _args(n=4096, seed=0):
    rng = np.random.default_rng(seed)
    return [
        np.zeros(n, dtype=np.float32),
        (rng.random(n) * 25 + 5).astype(np.float32),
        (rng.random(n) * 99 + 1).astype(np.float32),
        (rng.random(n) * 9 + 0.25).astype(np.float32),
        n,
    ]


class TestSliceDiscovery:
    def test_finds_the_inline_computation(self):
        slices = find_slices(inline_blackscholes.fn)
        assert slices
        best = slices[0]
        assert best.output == "c"
        assert best.size >= 8
        # external inputs are the loaded values, not intermediates
        assert {n for n, _dt in best.inputs} == {"s", "x", "t"}

    def test_slices_exclude_loads(self):
        # statements s = price[i] etc. are not pure (loads) and stay out
        slices = find_slices(inline_blackscholes.fn)
        for s in slices:
            assert all(stmt.target not in ("s", "x", "t") for stmt in s.statements)

    def test_small_kernel_yields_small_slices_only(self):
        slices = find_slices(cheap_inline.fn)
        assert all(s.size <= 2 for s in slices)


class TestOutlining:
    def test_outlined_module_validates_and_is_pure(self):
        result = outline_best_slice(
            inline_blackscholes.module, "inline_blackscholes", GPU_LATENCIES
        )
        assert result is not None
        module, fn_name = result
        validate_module(module)
        assert module[fn_name].kind == "device"
        assert is_pure(module[fn_name], module)

    def test_outlined_kernel_preserves_semantics(self):
        module, _fn = outline_best_slice(
            inline_blackscholes.module, "inline_blackscholes", GPU_LATENCIES
        )
        args_a, args_b = _args(seed=1), _args(seed=1)
        grid = Grid.for_elements(4096)
        launch(inline_blackscholes, grid, args_a)
        launch(module["inline_blackscholes"], grid, args_b, module=module)
        np.testing.assert_allclose(args_b[0], args_a[0], rtol=1e-6)

    def test_outlined_kernel_becomes_a_map_match(self):
        module, fn_name = outline_best_slice(
            inline_blackscholes.module, "inline_blackscholes", GPU_LATENCIES
        )
        matches = PatternDetector().detect_kernel(
            module["inline_blackscholes"], module
        )
        assert any(
            getattr(m, "candidates", None) == [fn_name] for m in matches
        )

    def test_unprofitable_kernel_returns_none(self):
        assert (
            outline_best_slice(cheap_inline.module, "cheap_inline", GPU_LATENCIES)
            is None
        )

    def test_name_collision_rejected(self):
        from repro.errors import TransformError

        slices = find_slices(inline_blackscholes.fn)
        with pytest.raises(TransformError, match="already exists"):
            outline_slice(
                inline_blackscholes.module,
                "inline_blackscholes",
                slices[0],
                "inline_blackscholes",  # collides with the kernel itself
            )


class TestCompilerIntegration:
    def test_end_to_end_memoization_of_inline_kernel(self):
        from repro import DeviceKind, Paraprox, ParaproxConfig
        from repro.apps.base import AppInfo, KernelApplication
        from repro.engine import Grid as G
        from repro.runtime.quality import L1_NORM

        class InlineApp(KernelApplication):
            info = AppInfo("InlineBS", "test", "4K", ("map",), "L1-norm")
            metric = L1_NORM
            kernel = inline_blackscholes

            def __init__(self):
                super().__init__(scale=1.0, seed=0)
                self.n = 4096

            def generate_inputs(self, seed=None):
                rng = np.random.default_rng(self.seed if seed is None else seed)
                return {
                    "price": (rng.random(self.n) * 25 + 5).astype(np.float32),
                    "strike": (rng.random(self.n) * 99 + 1).astype(np.float32),
                    "years": (rng.random(self.n) * 9 + 0.25).astype(np.float32),
                }

            def make_output(self, inputs):
                return np.zeros(self.n, dtype=np.float32)

            def make_args(self, inputs, out):
                return [out, inputs["price"], inputs["strike"], inputs["years"], self.n]

            def grid(self, inputs):
                return G.for_elements(self.n)

        app = InlineApp()
        off = Paraprox(target_quality=0.90)
        assert off.compile(app, DeviceKind.GPU) == []  # paper behaviour

        on = Paraprox(
            target_quality=0.90,
            config=ParaproxConfig(enable_section_outlining=True),
        )
        result = on.optimize(app, DeviceKind.GPU)
        assert result.chosen.variant is not None
        assert result.speedup > 1.2
        assert result.quality >= 0.90
