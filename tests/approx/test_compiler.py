"""Tests for the Paraprox facade: detection -> transforms -> tuning."""

import pytest

from repro import DeviceKind, Paraprox, ParaproxConfig
from repro.apps.blackscholes import BlackScholesApp
from repro.apps.cumhist import CumulativeHistogramApp
from repro.apps.gaussian import GaussianFilterApp
from repro.apps.matmul import MatrixMultiplyApp
from repro.approx.base import ApproxKernel
from repro.approx.scan import ScanVariant
from repro.patterns.base import Pattern


class TestCompile:
    def test_map_app_yields_memo_variants(self):
        variants = Paraprox(target_quality=0.90).compile(BlackScholesApp(scale=0.01))
        assert variants
        assert all(isinstance(v, ApproxKernel) for v in variants)
        assert all(v.pattern is Pattern.MAP for v in variants)
        assert all("table_bits" in v.knobs for v in variants)

    def test_stencil_app_yields_scheme_variants(self):
        variants = Paraprox().compile(GaussianFilterApp(scale=0.05))
        schemes = {v.knobs.get("scheme") for v in variants}
        assert {"center", "row", "column"} <= schemes

    def test_reduction_and_partition_app(self):
        px = Paraprox()
        variants = px.compile(MatrixMultiplyApp(scale=0.05))
        kinds = {v.pattern for v in variants}
        assert Pattern.REDUCTION in kinds
        rates = {v.knobs["skipping_rate"] for v in variants if "skipping_rate" in v.knobs}
        assert rates == {2, 4, 8}

    def test_custom_pipeline_app_delegates(self):
        variants = Paraprox().compile(CumulativeHistogramApp(scale=0.02))
        assert all(isinstance(v, ScanVariant) for v in variants)

    def test_config_controls_knob_ranges(self):
        config = ParaproxConfig(skipping_rates=(2,), reaching_distances=(1,))
        variants = Paraprox(config=config).compile(MatrixMultiplyApp(scale=0.05))
        rates = {v.knobs["skipping_rate"] for v in variants if "skipping_rate" in v.knobs}
        assert rates == {2}

    def test_failed_transforms_recorded_not_raised(self):
        from repro.apps.naivebayes import NaiveBayesApp

        px = Paraprox()
        variants = px.compile(NaiveBayesApp(scale=0.01))
        assert variants  # reduction variants exist
        assert any("partition" in s for s in px.last_skipped)


class TestOptimize:
    def test_explicit_variants_bypass_compile(self):
        px = Paraprox(target_quality=0.90)
        app = GaussianFilterApp(scale=0.05)
        result = px.optimize(app, DeviceKind.GPU, variants=[])
        assert result.chosen.name == "exact"

    def test_device_specific_results(self):
        px = Paraprox(target_quality=0.90)
        app = BlackScholesApp(scale=0.01)
        gpu = px.optimize(app, DeviceKind.GPU)
        cpu = px.optimize(app, DeviceKind.CPU)
        assert gpu.device == "gpu" and cpu.device == "cpu"
        assert gpu.speedup != cpu.speedup  # the cost models differ

    def test_result_metadata(self):
        px = Paraprox(target_quality=0.90)
        result = px.optimize(GaussianFilterApp(scale=0.05), DeviceKind.GPU)
        assert result.app == "Gaussian Filter"
        assert result.toq == 0.90
        assert len(result.profiles) >= 2
