"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class FrontendError(ReproError):
    """The Python-embedded kernel DSL could not be lowered to IR."""


class ValidationError(ReproError):
    """An IR module violates a structural or typing rule."""


class ExecutionError(ReproError):
    """A kernel launch failed while being interpreted."""


class PatternError(ReproError):
    """Pattern detection was asked something it cannot answer."""


class TransformError(ReproError):
    """An approximation transform could not be applied to a kernel."""


class TuningError(ReproError):
    """The runtime tuner could not satisfy its constraints."""


class DeviceError(ReproError):
    """The device cost model was configured or queried incorrectly."""


class CodegenError(ReproError):
    """A kernel could not be lowered to a specialized NumPy callable.

    Raised by :mod:`repro.codegen` when lowering or compilation fails;
    the ``auto`` backend catches it and falls back to the interpreter,
    while an explicit ``backend="codegen"`` request propagates it.
    """


class ConfigError(ReproError, ValueError):
    """A configuration object carries invalid knob values or a serialized
    form that cannot be deserialized.

    Also a :class:`ValueError` so callers validating user input can keep a
    generic ``except ValueError`` clause.
    """


class SerializationError(ReproError):
    """A to_dict/from_dict round trip was given malformed data."""


class ServeError(ReproError):
    """The serving runtime (sessions, caches, monitors) was misused."""


class AdmissionError(ServeError):
    """The serving front-end refused a request at admission time: the
    tenant is unknown, or the request violates the tenant's TOQ floor."""


class BackpressureError(ServeError):
    """The serving front-end's queue (global or per-tenant) is full; the
    caller should retry after draining outstanding futures."""


class ResilienceError(ReproError):
    """The resilience runtime (guards, breakers, fault plans) failed or
    was misconfigured."""


class InjectedFault(ResilienceError):
    """A failure deliberately raised by the fault-injection harness.

    Sites that naturally raise a specific subsystem error get a dynamic
    subclass combining :class:`InjectedFault` with that type (e.g. an
    injected compile failure is both an ``InjectedFault`` and a
    :class:`CodegenError`), so production containment paths treat the
    injection exactly like the real thing while tests can still tell
    injected failures apart.
    """


class WorkerDeath(InjectedFault):
    """An injected shard-worker death: the guard must treat the worker
    (and its pool) as lost, replace it, and re-run the shard."""


class ShardTimeout(ResilienceError):
    """A guarded sharded launch overran its wall-clock deadline; the
    guard abandons the pool and re-executes the launch serially."""
