"""The unified launch-options surface: one scope, one precedence chain.

Before this module existed, three unrelated mechanisms controlled how a
kernel launch executed: a thread-local backend stack
(``use_backend``), a thread-local parallel-policy stack
(``use_parallel``), and a thread-local guard stack (``use_guard``) —
plus ``launch(backend=..., parallel=...)`` keyword arguments that
bypassed all of them.  Every subsystem re-invented scoping and every
caller had to know which of the five knobs lived where.

Now there is exactly one ambient stack, holding :class:`LaunchOptions`
records, and one way to scope it::

    import repro

    with repro.options(backend="codegen", parallel=4):
        launch(kernel, grid, args)            # sharded codegen launch

    launch(kernel, grid, args,
           options=repro.LaunchOptions(backend="interp"))  # per call

Precedence, strongest first:

1. **explicit per-call options** — ``launch(..., options=...)`` or the
   per-call arguments of session methods;
2. **the active scope** — the innermost :func:`options` block on this
   thread (fields merge across nesting; inner set fields win);
3. **session defaults** — what an :class:`~repro.serve.ApproxSession`
   was constructed with;
4. **ParaproxConfig** — the compile-time config knobs
   (``backend``, ``parallel_workers``, ``executor``).

Unset fields are ``None`` (or :data:`UNSET` for ``guard``, where
``None`` is a meaningful value: "explicitly unguarded"), so every layer
only overrides what it actually sets.

The stack is **per thread** and worker threads start from the empty
defaults rather than inheriting the spawning thread's scope — the same
rule the old backend/policy/guard stacks enforced, for the same reason:
pool workers must not observe whatever scope happened to be active at
submission time.

The legacy surface (``use_backend``/``use_parallel``/``use_guard`` and
the ``backend=``/``parallel=`` launch keywords) remains as thin shims
that emit :class:`DeprecationWarning` and forward here; see
``docs/API.md`` for the migration table.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, fields, replace
from typing import List, Optional

from .errors import ConfigError

#: Valid values for the ``backend`` launch option.
#:
#: ``"interp"``   — walk the IR tree (supports traces and call observers).
#: ``"codegen"``  — run the kernel compiled by :mod:`repro.codegen`.
#: ``"auto"``     — codegen when no trace/observer is requested, else interp.
BACKENDS = ("interp", "codegen", "auto")

#: Valid values for the ``executor`` launch option.
#:
#: ``"thread"``  — shards run on the in-process thread pool (NumPy-bound
#:                 kernels; ufuncs release the GIL).
#: ``"process"`` — shards run on the :mod:`repro.parallel.procpool`
#:                 worker processes with shared-memory array handoff
#:                 (GIL-bound kernels; true multicore).
EXECUTORS = ("thread", "process")


class _Unset:
    """Sentinel distinguishing "not set" from an explicit ``None``."""

    _instance = None

    def __new__(cls) -> "_Unset":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "UNSET"

    def __bool__(self) -> bool:
        return False


UNSET = _Unset()


def validate_backend(name: str) -> str:
    """Return ``name`` if it is a known backend, else raise ConfigError."""
    if name not in BACKENDS:
        raise ConfigError(
            f"unknown backend {name!r}; valid choices are "
            + ", ".join(repr(b) for b in BACKENDS)
        )
    return name


def validate_executor(name: str) -> str:
    """Return ``name`` if it is a known shard executor, else raise."""
    if name not in EXECUTORS:
        raise ConfigError(
            f"unknown executor {name!r}; valid choices are "
            + ", ".join(repr(e) for e in EXECUTORS)
        )
    return name


@dataclass(frozen=True)
class LaunchOptions:
    """Everything one launch is allowed to decide about its execution.

    Every field defaults to "unset"; unset fields inherit from the next
    layer of the precedence chain (active scope, then session defaults,
    then config).  Instances are immutable and reusable.

    Attributes:
        backend: ``"interp"``, ``"codegen"`` or ``"auto"``.
        parallel: shard workers — a positive int, ``"auto"`` (usable
            host cores) or a :class:`~repro.parallel.ParallelPolicy`
            carrying its own threshold/executor.
        min_shard_threads: grids smaller than this never shard.
        executor: ``"thread"`` or ``"process"`` — which pool runs shards.
        guard: a :class:`~repro.resilience.GuardPolicy`, or ``None`` for
            an explicitly unguarded launch.  Left :data:`UNSET`, the
            ambient/inherited guard applies.
        fuse: opt-in cross-launch fusion (:mod:`repro.engine.fusion`).
            ``True`` lets back-to-back codegen launches whose output feeds
            the next input run as one fused callable, eliding the
            intermediate array — whose contents are then *unspecified*
            after the pair, so only enable it for pipelines that never
            read the intermediate on the host.  ``False`` disables;
            ``None`` inherits (default off).
    """

    backend: Optional[str] = None
    parallel: Optional[object] = None
    min_shard_threads: Optional[int] = None
    executor: Optional[str] = None
    guard: object = UNSET
    fuse: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.fuse is not None and not isinstance(self.fuse, bool):
            raise ConfigError(f"fuse must be a bool or None, got {self.fuse!r}")
        if self.backend is not None:
            validate_backend(self.backend)
        if self.executor is not None:
            validate_executor(self.executor)
        if self.min_shard_threads is not None and (
            isinstance(self.min_shard_threads, bool)
            or not isinstance(self.min_shard_threads, int)
            or self.min_shard_threads < 1
        ):
            raise ConfigError(
                f"min_shard_threads must be a positive integer, "
                f"got {self.min_shard_threads!r}"
            )
        if self.parallel is not None:
            # Defer to the parallel runtime's validator without importing
            # it at module load (repro.parallel imports this module).
            from .parallel.pool import ParallelPolicy, resolve_workers

            if not isinstance(self.parallel, ParallelPolicy):
                resolve_workers(self.parallel)

    def merged_over(self, base: "LaunchOptions") -> "LaunchOptions":
        """A new record where this record's set fields override ``base``."""
        updates = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "guard":
                if value is not UNSET:
                    updates[f.name] = value
            elif value is not None:
                updates[f.name] = value
        return replace(base, **updates) if updates else base

    def describe(self) -> dict:
        """JSON-friendly view of the *set* fields (for logs and metrics)."""
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "guard":
                if value is not UNSET:
                    out[f.name] = "off" if value is None else "on"
            elif value is not None:
                out[f.name] = value if isinstance(value, (str, int)) else repr(value)
        return out


#: The empty record every thread's stack starts from.
DEFAULT_OPTIONS = LaunchOptions()


class _OptionsStack(threading.local):
    """Per-thread stack of *merged* LaunchOptions records.

    Each entry is the full merge of every scope enclosing it, so reading
    the effective options is one list index, not a walk.
    """

    def __init__(self) -> None:
        self.stack: List[LaunchOptions] = [DEFAULT_OPTIONS]


_STACK = _OptionsStack()


def current_options() -> LaunchOptions:
    """The merged options of every :func:`options` scope on this thread.

    Fields no scope has set are ``None`` (``guard``: :data:`UNSET`);
    callers apply their own next-layer defaults.
    """
    return _STACK.stack[-1]


class options:
    """Scope launch options to a ``with`` block (per thread, nestable).

    Accepts either a ready :class:`LaunchOptions` or the same fields as
    keywords::

        with repro.options(backend="codegen", parallel=4, executor="process"):
            ...

    Inner scopes override only the fields they set.  The scope is
    thread-local: tasks submitted to worker pools run under the
    *defaults*, not the submitting thread's scope.
    """

    def __init__(self, opts: Optional[LaunchOptions] = None, **kwargs) -> None:
        if opts is not None and kwargs:
            raise ConfigError(
                "options() takes a LaunchOptions or field keywords, not both"
            )
        if opts is None:
            opts = LaunchOptions(**kwargs)
        elif not isinstance(opts, LaunchOptions):
            raise ConfigError(
                f"options() expects a LaunchOptions, got {type(opts).__name__}"
            )
        self.opts = opts

    def __enter__(self) -> LaunchOptions:
        merged = self.opts.merged_over(_STACK.stack[-1])
        _STACK.stack.append(merged)
        return merged

    def __exit__(self, *_exc) -> None:
        _STACK.stack.pop()


def deprecated(old: str, new: str) -> None:
    """Emit the one-line deprecation message every legacy shim uses.

    ``stacklevel=3`` points the warning at the caller of the shim (the
    shims themselves add one frame), which is also what lets CI's
    ``-W error::DeprecationWarning:repro`` filter catch *internal*
    callers while user code merely warns.
    """
    warnings.warn(
        f"{old} is deprecated; use {new} instead (see docs/API.md)",
        DeprecationWarning,
        stacklevel=3,
    )
