"""Python-embedded kernel DSL: restricted Python functions lowered to IR.

This is the reproduction's stand-in for the paper's Clang 3.3 frontend
(paper Fig 10: *Driver → AST visitor → pattern detection*).  A kernel is an
ordinary Python function decorated with :func:`kernel` (or :func:`device`
for callable subroutines); the decorator grabs the source with ``inspect``,
parses it with the standard :mod:`ast` module, and lowers the supported
subset to :mod:`repro.kernel.ir`.  The function body never executes as
Python.

Supported subset (deliberately mirroring the C subset CUDA kernels use):

* scalar locals with implicit declaration, ``x = ...`` / ``x += ...``,
* flat array reads/writes ``a[i]``, where indices are integer expressions,
* ``for v in range(start, stop, step)`` counted loops with uniform bounds,
* ``if``/``else`` (conditions may be thread-divergent),
* ternary expressions ``a if c else b`` (lowered to branch-free Select),
* calls to math builtins (:mod:`repro.kernel.intrinsics`), thread
  intrinsics (``global_id()`` ...), atomics (``atomic_add(a, i, v)``),
  ``barrier()``, ``shared(n, f32)`` allocations, and other ``@device``
  functions,
* references to Python-level numeric constants captured from the enclosing
  module (lowered to literals, the way ``#define`` constants appear in C).

Anything outside the subset raises :class:`~repro.errors.FrontendError`
with the offending source line.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Dict, List, Optional, Union

from ..errors import FrontendError
from . import intrinsics, ir
from .types import (
    BOOL,
    F32,
    F64,
    I32,
    I64,
    U32,
    ArrayType,
    DType,
    ScalarType,
    promote,
)

# ---------------------------------------------------------------------------
# Annotation vocabulary (exported via repro.kernel)
# ---------------------------------------------------------------------------

f32, f64, i32, i64, u32 = F32, F64, I32, I64, U32

array_f32 = ArrayType(F32)
array_f64 = ArrayType(F64)
array_i32 = ArrayType(I32)
array_i64 = ArrayType(I64)
array_u32 = ArrayType(U32)


def array_of(dtype: DType, space: str = "global") -> ArrayType:
    """Build an array annotation in a specific memory space."""
    return ArrayType(dtype, space)


_AST_BINOPS = {
    ast.Add: "add",
    ast.Sub: "sub",
    ast.Mult: "mul",
    ast.Div: "div",
    ast.FloorDiv: "div",  # on float operands FloorDiv is rejected below
    ast.Mod: "mod",
    ast.BitAnd: "and",
    ast.BitOr: "or",
    ast.BitXor: "xor",
    ast.LShift: "shl",
    ast.RShift: "shr",
}

_AST_CMPOPS = {
    ast.Lt: "lt",
    ast.LtE: "le",
    ast.Gt: "gt",
    ast.GtE: "ge",
    ast.Eq: "eq",
    ast.NotEq: "ne",
}

_ATOMIC_FUNCS = {f"atomic_{op}": op for op in ir.ATOMIC_OPS}

_CAST_FUNCS = {"f32": F32, "f64": F64, "i32": I32, "i64": I64, "u32": U32}


class KernelFn:
    """The object a :func:`kernel`/:func:`device` decorator returns.

    Attributes:
        fn: the lowered :class:`~repro.kernel.ir.Function`.
        module: a :class:`~repro.kernel.ir.Module` containing ``fn`` and
            every device function it (transitively) calls.
        pyfunc: the original Python function (kept for reference execution
            of device functions in tests).
    """

    def __init__(self, fn: ir.Function, module: ir.Module, pyfunc) -> None:
        self.fn = fn
        self.module = module
        self.pyfunc = pyfunc
        self.name = fn.name
        self.__doc__ = pyfunc.__doc__

    def __call__(self, *args, **kwargs):
        if self.fn.kind == "device":
            # Device functions remain directly callable as plain Python —
            # handy for building ground truth in tests.
            return self.pyfunc(*args, **kwargs)
        raise TypeError(
            f"kernel {self.name!r} cannot be called directly; "
            "launch it with repro.engine.launch"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.fn.kind} {self.name}>"


def kernel(pyfunc=None, *, default_float: DType = F32):
    """Decorator lowering a Python function to an IR kernel."""
    if pyfunc is None:
        return lambda f: kernel(f, default_float=default_float)
    return _lower(pyfunc, kind="kernel", default_float=default_float)


def device(pyfunc=None, *, default_float: DType = F32):
    """Decorator lowering a Python function to an IR device function."""
    if pyfunc is None:
        return lambda f: device(f, default_float=default_float)
    return _lower(pyfunc, kind="device", default_float=default_float)


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------


def _lower(pyfunc, kind: str, default_float: DType) -> KernelFn:
    try:
        source = textwrap.dedent(inspect.getsource(pyfunc))
    except (OSError, TypeError) as exc:
        raise FrontendError(f"cannot fetch source of {pyfunc!r}: {exc}")
    tree = ast.parse(source)
    fdef = tree.body[0]
    if not isinstance(fdef, ast.FunctionDef):
        raise FrontendError(f"{pyfunc!r} does not parse to a function definition")
    lowerer = _Lowerer(pyfunc, fdef, kind, default_float)
    fn = lowerer.lower()
    module = ir.Module()
    module.add(fn)
    for dep in lowerer.device_deps.values():
        for dep_fn in dep.module.functions.values():
            if dep_fn.name not in module:
                module.add(dep_fn)
    return KernelFn(fn, module, pyfunc)


class _Scope:
    """Symbol table for one function body."""

    def __init__(self) -> None:
        self.scalars: Dict[str, DType] = {}
        self.arrays: Dict[str, ArrayType] = {}

    def declare_scalar(self, name: str, dtype: DType) -> None:
        self.scalars[name] = dtype

    def declare_array(self, name: str, atype: ArrayType) -> None:
        self.arrays[name] = atype


class _Lowerer:
    """Lowers a single ``ast.FunctionDef`` to an ``ir.Function``."""

    def __init__(self, pyfunc, fdef: ast.FunctionDef, kind: str, default_float: DType):
        self.pyfunc = pyfunc
        self.fdef = fdef
        self.kind = kind
        self.default_float = default_float
        self.scope = _Scope()
        self.device_deps: Dict[str, KernelFn] = {}
        self.return_type: Optional[ScalarType] = None
        # Statements synthesised while lowering sub-expressions (ternaries
        # become predicated Ifs writing a fresh temp); flushed before the
        # statement that triggered them.
        self.pending: List[ir.Stmt] = []
        self._tmp_count = 0
        # Python globals + closure cells, for device-fn and constant lookup.
        self.env = dict(pyfunc.__globals__)
        if pyfunc.__closure__:
            for cell_name, cell in zip(pyfunc.__code__.co_freevars, pyfunc.__closure__):
                self.env[cell_name] = cell.cell_contents

    # -- errors -------------------------------------------------------------

    def _fail(self, node: ast.AST, message: str) -> FrontendError:
        line = getattr(node, "lineno", "?")
        return FrontendError(f"{self.fdef.name}:{line}: {message}")

    # -- entry --------------------------------------------------------------

    def lower(self) -> ir.Function:
        params = self._lower_params()
        body = self._lower_body(self.fdef.body)
        if self.kind == "device" and self.return_type is None:
            raise FrontendError(
                f"device function {self.fdef.name!r} never returns a value"
            )
        return ir.Function(
            name=self.fdef.name,
            params=params,
            body=body,
            kind=self.kind,
            return_type=self.return_type,
        )

    def _lower_params(self) -> List[ir.Param]:
        args = self.fdef.args
        if args.vararg or args.kwarg or args.kwonlyargs or args.defaults:
            raise FrontendError(
                f"{self.fdef.name}: kernels take only plain positional parameters"
            )
        annotations = dict(self.pyfunc.__annotations__)
        params = []
        for arg in args.args:
            ann = annotations.get(arg.arg)
            if isinstance(ann, str):
                ann = eval(ann, self.env)  # postponed annotations (PEP 563)
            if isinstance(ann, DType):
                self.scope.declare_scalar(arg.arg, ann)
                params.append(ir.Param(arg.arg, ScalarType(ann)))
            elif isinstance(ann, ArrayType):
                self.scope.declare_array(arg.arg, ann)
                params.append(ir.Param(arg.arg, ann))
            else:
                raise FrontendError(
                    f"{self.fdef.name}: parameter {arg.arg!r} needs a DType or "
                    f"ArrayType annotation, got {ann!r}"
                )
        return params

    # -- statements ----------------------------------------------------------

    def _lower_body(self, stmts: List[ast.stmt]) -> List[ir.Stmt]:
        out: List[ir.Stmt] = []
        for node in stmts:
            saved_pending = self.pending
            self.pending = []
            lowered = self._lower_stmt(node)
            pending, self.pending = self.pending, saved_pending
            out.extend(pending)
            if lowered is not None:
                out.extend(lowered)
        return out

    def _lower_stmt(self, node: ast.stmt) -> Optional[List[ir.Stmt]]:
        if isinstance(node, ast.Expr):
            return self._lower_expr_stmt(node)
        if isinstance(node, ast.Assign):
            return self._lower_assign(node)
        if isinstance(node, ast.AnnAssign):
            return self._lower_ann_assign(node)
        if isinstance(node, ast.AugAssign):
            return self._lower_aug_assign(node)
        if isinstance(node, ast.If):
            return [
                ir.If(
                    self._as_bool(self._lower_expr(node.test), node),
                    self._lower_body(node.body),
                    self._lower_body(node.orelse),
                )
            ]
        if isinstance(node, ast.For):
            return self._lower_for(node)
        if isinstance(node, ast.Return):
            return self._lower_return(node)
        if isinstance(node, ast.Pass):
            return []
        raise self._fail(node, f"unsupported statement {type(node).__name__}")

    def _lower_expr_stmt(self, node: ast.Expr) -> List[ir.Stmt]:
        value = node.value
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return []  # docstring
        if not isinstance(value, ast.Call) or not isinstance(value.func, ast.Name):
            raise self._fail(node, "only call statements are allowed here")
        name = value.func.id
        if name == "barrier":
            return [ir.Barrier()]
        if name in _ATOMIC_FUNCS:
            if len(value.args) != 3:
                raise self._fail(node, f"{name} expects (array, index, value)")
            arr = self._lower_expr(value.args[0])
            if not isinstance(arr, ir.ArrayRef):
                raise self._fail(node, f"{name}: first argument must be an array")
            idx = self._as_int(self._lower_expr(value.args[1]), node)
            val = self._lower_expr(value.args[2])
            return [ir.AtomicRMW(_ATOMIC_FUNCS[name], arr, idx, val)]
        if intrinsics.is_impure(name):
            # I/O builtins called for effect: keep the call in the IR (the
            # purity analysis must see it) as an assignment to a scratch var.
            self._tmp_count += 1
            call = self._lower_expr(value)
            return [ir.Assign(f"_void{self._tmp_count}", call)]
        raise self._fail(node, f"call to {name!r} is not a valid statement")

    def _lower_assign(self, node: ast.Assign) -> List[ir.Stmt]:
        if len(node.targets) != 1:
            raise self._fail(node, "chained assignment is not supported")
        target = node.targets[0]
        # shared-memory allocation: name = shared(n, dtype)
        if (
            isinstance(target, ast.Name)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id == "shared"
        ):
            return self._lower_shared_alloc(target.id, node.value, node)
        value = self._lower_expr(node.value)
        return self._store_to(target, value, node)

    def _lower_ann_assign(self, node: ast.AnnAssign) -> List[ir.Stmt]:
        if node.value is None:
            raise self._fail(node, "annotated declaration requires a value")
        if not isinstance(node.target, ast.Name):
            raise self._fail(node, "annotated assignment target must be a name")
        ann = self.env.get(getattr(node.annotation, "id", None))
        if not isinstance(ann, DType):
            raise self._fail(node, "annotation must name a scalar dtype")
        value = self._cast_to(self._lower_expr(node.value), ann)
        self.scope.declare_scalar(node.target.id, ann)
        return [ir.Assign(node.target.id, value)]

    def _lower_aug_assign(self, node: ast.AugAssign) -> List[ir.Stmt]:
        op = _AST_BINOPS.get(type(node.op))
        if op is None:
            raise self._fail(node, f"unsupported augmented op {type(node.op).__name__}")
        rhs = self._lower_expr(node.value)
        if isinstance(node.target, ast.Name):
            name = node.target.id
            if name not in self.scope.scalars:
                raise self._fail(node, f"augmented assignment to undefined {name!r}")
            dtype = self.scope.scalars[name]
            current = ir.Var(name, dtype)
            return [ir.Assign(name, self._cast_to(ir.binop(op, current, rhs), dtype))]
        if isinstance(node.target, ast.Subscript):
            arr, idx = self._lower_subscript(node.target)
            current = ir.Load(arr, idx)
            new = self._cast_to(ir.binop(op, current, rhs), arr.dtype)
            return [ir.Store(arr, self._clone(idx), new)]
        raise self._fail(node, "unsupported augmented assignment target")

    def _store_to(self, target: ast.expr, value: ir.Expr, node) -> List[ir.Stmt]:
        if isinstance(target, ast.Name):
            name = target.id
            if name in self.scope.arrays:
                raise self._fail(node, f"cannot rebind array parameter {name!r}")
            if name in self.scope.scalars:
                value = self._cast_to(value, self.scope.scalars[name])
            else:
                self.scope.declare_scalar(name, value.dtype)
            return [ir.Assign(name, value)]
        if isinstance(target, ast.Subscript):
            arr, idx = self._lower_subscript(target)
            return [ir.Store(arr, idx, self._cast_to(value, arr.dtype))]
        if isinstance(target, ast.Tuple):
            raise self._fail(node, "tuple assignment is not supported in kernels")
        raise self._fail(node, f"unsupported assignment target {type(target).__name__}")

    def _lower_shared_alloc(self, name: str, call: ast.Call, node) -> List[ir.Stmt]:
        if len(call.args) != 2:
            raise self._fail(node, "shared(size, dtype) expects two arguments")
        size_node, dtype_node = call.args
        size = self._constant_int(size_node)
        dtype = self.env.get(getattr(dtype_node, "id", None))
        if not isinstance(dtype, DType):
            raise self._fail(node, "shared(): second argument must be a dtype")
        atype = ArrayType(dtype, space="shared")
        self.scope.declare_array(name, atype)
        return [ir.SharedAlloc(name, (size,), dtype)]

    def _lower_for(self, node: ast.For) -> List[ir.Stmt]:
        if node.orelse:
            raise self._fail(node, "for/else is not supported")
        if not isinstance(node.target, ast.Name):
            raise self._fail(node, "loop variable must be a plain name")
        it = node.iter
        if not (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "range"
        ):
            raise self._fail(node, "only range(...) loops are supported")
        args = [self._lower_expr(a) for a in it.args]
        if len(args) == 1:
            start, stop, step = ir.Const(0, I32), args[0], ir.Const(1, I32)
        elif len(args) == 2:
            start, stop, step = args[0], args[1], ir.Const(1, I32)
        elif len(args) == 3:
            start, stop, step = args
        else:
            raise self._fail(node, "range() takes 1..3 arguments")
        for bound in (start, stop, step):
            if not bound.dtype.is_integer:
                raise self._fail(node, "range() bounds must be integers")
        var = node.target.id
        self.scope.declare_scalar(var, I32)
        return [ir.For(var, start, stop, step, self._lower_body(node.body))]

    def _lower_return(self, node: ast.Return) -> List[ir.Stmt]:
        if self.kind == "kernel":
            if node.value is not None:
                raise self._fail(node, "kernels cannot return a value")
            return [ir.Return(None)]
        if node.value is None:
            raise self._fail(node, "device functions must return a value")
        value = self._lower_expr(node.value)
        declared = self.pyfunc.__annotations__.get("return")
        if isinstance(declared, str):
            declared = eval(declared, self.env)
        if isinstance(declared, DType):
            value = self._cast_to(value, declared)
        if self.return_type is None:
            self.return_type = ScalarType(value.dtype)
        elif self.return_type.dtype != value.dtype:
            value = self._cast_to(value, self.return_type.dtype)
        return [ir.Return(value)]

    # -- expressions ----------------------------------------------------------

    def _lower_expr(self, node: ast.expr) -> ir.Expr:
        if isinstance(node, ast.Constant):
            return self._lower_constant(node)
        if isinstance(node, ast.Name):
            return self._lower_name(node)
        if isinstance(node, ast.BinOp):
            return self._lower_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self._lower_unary(node)
        if isinstance(node, ast.Compare):
            return self._lower_compare(node)
        if isinstance(node, ast.BoolOp):
            return self._lower_boolop(node)
        if isinstance(node, ast.IfExp):
            return self._lower_ifexp(node)
        if isinstance(node, ast.Subscript):
            arr, idx = self._lower_subscript(node)
            return ir.Load(arr, idx)
        if isinstance(node, ast.Call):
            return self._lower_call(node)
        raise self._fail(node, f"unsupported expression {type(node).__name__}")

    def _lower_constant(self, node: ast.Constant) -> ir.Expr:
        v = node.value
        if isinstance(v, bool):
            return ir.Const(v, BOOL)
        if isinstance(v, int):
            return ir.Const(v, I32)
        if isinstance(v, float):
            return ir.Const(v, self.default_float)
        raise self._fail(node, f"unsupported literal {v!r}")

    def _lower_name(self, node: ast.Name) -> ir.Expr:
        name = node.id
        if name in self.scope.scalars:
            return ir.Var(name, self.scope.scalars[name])
        if name in self.scope.arrays:
            return ir.ArrayRef(name, self.scope.arrays[name])
        # Captured Python constant (module-level parameter, like #define).
        if name in self.env:
            v = self.env[name]
            if isinstance(v, bool):
                return ir.Const(v, BOOL)
            if isinstance(v, int):
                return ir.Const(v, I32)
            if isinstance(v, float):
                return ir.Const(v, self.default_float)
        raise self._fail(node, f"undefined name {name!r}")

    def _lower_binop(self, node: ast.BinOp) -> ir.Expr:
        op = _AST_BINOPS.get(type(node.op))
        if op is None:
            raise self._fail(node, f"unsupported operator {type(node.op).__name__}")
        left = self._lower_expr(node.left)
        right = self._lower_expr(node.right)
        if isinstance(node.op, ast.FloorDiv) and not (
            left.dtype.is_integer and right.dtype.is_integer
        ):
            raise self._fail(node, "// requires integer operands; use / for floats")
        if op in ("mod", "shl", "shr", "and", "or", "xor") and not (
            left.dtype.is_integer and right.dtype.is_integer
        ):
            if not (op == "mod" and left.dtype.is_float):
                raise self._fail(node, f"{op} requires integer operands")
        return ir.binop(op, left, right)

    def _lower_unary(self, node: ast.UnaryOp) -> ir.Expr:
        operand = self._lower_expr(node.operand)
        if isinstance(node.op, ast.USub):
            if isinstance(operand, ir.Const):
                return ir.const_like(-operand.value, operand.dtype)
            return ir.UnOp("neg", operand, operand.dtype)
        if isinstance(node.op, ast.UAdd):
            return operand
        if isinstance(node.op, ast.Not):
            return ir.UnOp("lnot", self._as_bool(operand, node), BOOL)
        if isinstance(node.op, ast.Invert):
            if not operand.dtype.is_integer:
                raise self._fail(node, "~ requires an integer operand")
            return ir.UnOp("bnot", operand, operand.dtype)
        raise self._fail(node, f"unsupported unary op {type(node.op).__name__}")

    def _lower_compare(self, node: ast.Compare) -> ir.Expr:
        if len(node.ops) != 1:
            raise self._fail(node, "chained comparisons are not supported")
        op = _AST_CMPOPS.get(type(node.ops[0]))
        if op is None:
            raise self._fail(node, f"unsupported comparison {type(node.ops[0]).__name__}")
        left = self._lower_expr(node.left)
        right = self._lower_expr(node.comparators[0])
        return ir.binop(op, left, right)

    def _lower_boolop(self, node: ast.BoolOp) -> ir.Expr:
        op = "land" if isinstance(node.op, ast.And) else "lor"
        values = [self._as_bool(self._lower_expr(v), node) for v in node.values]
        result = values[0]
        for v in values[1:]:
            result = ir.BinOp(op, result, v, BOOL)
        return result

    def _lower_subscript(self, node: ast.Subscript):
        value = self._lower_expr(node.value)
        if not isinstance(value, ir.ArrayRef):
            raise self._fail(node, "only arrays can be subscripted")
        sl = node.slice
        if isinstance(sl, ast.Slice) or isinstance(sl, ast.Tuple):
            raise self._fail(node, "arrays are flat; index with a single integer")
        idx = self._as_int(self._lower_expr(sl), node)
        return value, idx

    def _lower_call(self, node: ast.Call) -> ir.Expr:
        if not isinstance(node.func, ast.Name):
            raise self._fail(node, "only plain-name calls are supported")
        if node.keywords:
            raise self._fail(node, "keyword arguments are not supported in kernels")
        name = node.func.id
        args = [self._lower_expr(a) for a in node.args]
        if name in _CAST_FUNCS:
            if len(args) != 1:
                raise self._fail(node, f"{name}() takes one argument")
            return ir.Cast(args[0], _CAST_FUNCS[name])
        builtin = intrinsics.get(name)
        if builtin is not None:
            if builtin.arity != len(args) and name not in intrinsics.IMPURE_BUILTINS:
                raise self._fail(
                    node, f"{name}() takes {builtin.arity} argument(s), got {len(args)}"
                )
            dtype = builtin.result_dtype([a.dtype for a in args])
            return ir.Call(name, args, dtype)
        target = self.env.get(name)
        if isinstance(target, KernelFn) and target.fn.kind == "device":
            self.device_deps[name] = target
            expected = target.fn.scalar_params
            if len(target.fn.params) != len(expected):
                raise self._fail(node, f"device fn {name!r} with array params not callable")
            if len(args) != len(expected):
                raise self._fail(
                    node, f"{name}() takes {len(expected)} argument(s), got {len(args)}"
                )
            args = [
                self._cast_to(a, p.type.dtype) for a, p in zip(args, expected)
            ]
            return ir.Call(name, args, target.fn.return_type.dtype)
        raise self._fail(node, f"unknown function {name!r}")

    def _lower_ifexp(self, node: ast.IfExp) -> ir.Expr:
        """Lower ``a if c else b`` to a predicated If writing a fresh temp.

        A C ternary evaluates only the taken side, so lowering to the IR's
        branch-free ``Select`` (which evaluates both) would fault on guarded
        loads like ``sh[t - off] if t >= off else 0.0``.  A masked ``If``
        preserves the short-circuit semantics exactly.
        """
        cond = self._as_bool(self._lower_expr(node.test), node)
        saved = self.pending
        self.pending = then_pending = []
        a = self._lower_expr(node.body)
        self.pending = else_pending = []
        b = self._lower_expr(node.orelse)
        self.pending = saved
        dtype = promote(a.dtype, b.dtype)
        self._tmp_count += 1
        name = f"_sel{self._tmp_count}"
        self.scope.declare_scalar(name, dtype)
        then_body = then_pending + [ir.Assign(name, self._cast_to(a, dtype))]
        else_body = else_pending + [ir.Assign(name, self._cast_to(b, dtype))]
        self.pending.append(ir.If(cond, then_body, else_body))
        return ir.Var(name, dtype)

    # -- helpers --------------------------------------------------------------

    def _cast_to(self, expr: ir.Expr, dtype: DType) -> ir.Expr:
        if expr.dtype == dtype:
            return expr
        if isinstance(expr, ir.Const):
            return ir.const_like(expr.value, dtype)
        return ir.Cast(expr, dtype)

    def _as_bool(self, expr: ir.Expr, node) -> ir.Expr:
        if expr.dtype.is_bool:
            return expr
        return ir.binop("ne", expr, ir.const_like(0, expr.dtype))

    def _as_int(self, expr: ir.Expr, node) -> ir.Expr:
        if expr.dtype.is_integer:
            return expr
        raise self._fail(node, f"expected an integer expression, got {expr.dtype}")

    def _constant_int(self, node: ast.expr) -> int:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value
        if isinstance(node, ast.Name) and isinstance(self.env.get(node.id), int):
            return self.env[node.id]
        raise self._fail(node, "expected a compile-time integer constant")

    def _clone(self, expr: ir.Expr) -> ir.Expr:
        from .visitors import clone

        return clone(expr)
