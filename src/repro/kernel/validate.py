"""Structural validation of IR modules.

The frontend produces well-formed IR by construction, but approximation
transforms build IR programmatically, and a malformed rewrite should fail
loudly at compile time rather than as a cryptic interpreter error.  The
validator checks:

* every ``Var`` refers to a parameter, loop variable, or a local assigned on
  every path before use,
* every ``ArrayRef`` refers to an array parameter or ``SharedAlloc``,
* array indices are integers; stored values match the element dtype;
  ``If``/``Select`` conditions are boolean,
* ``Return`` appears only with the right shape for the function kind,
* every ``Call`` resolves to a builtin or a device function in the module
  with matching arity,
* loop bounds are integer expressions.
"""

from __future__ import annotations

from typing import List, Set

from ..errors import ValidationError
from . import intrinsics, ir


def validate_module(module: ir.Module) -> None:
    """Validate every function in ``module``; raise ValidationError on the
    first problem found."""
    for fn in module.functions.values():
        validate_function(fn, module)


def validate_function(fn: ir.Function, module: ir.Module = None) -> None:
    """Validate a single function against its (optional) containing module."""
    _Validator(fn, module or ir.Module()).run()


class _Validator:
    def __init__(self, fn: ir.Function, module: ir.Module) -> None:
        self.fn = fn
        self.module = module
        self.arrays = {p.name for p in fn.params if p.is_array}
        self.scalars: Set[str] = {p.name for p in fn.params if not p.is_array}

    def _fail(self, message: str) -> ValidationError:
        return ValidationError(f"{self.fn.name}: {message}")

    def run(self) -> None:
        self._check_body(self.fn.body, self.scalars)

    # Defined-variable tracking is flow-sensitive in a simple way: a variable
    # assigned in both arms of an If counts as defined afterwards; one
    # assigned in a loop body or a single arm only counts inside it.
    def _check_body(self, body: List[ir.Stmt], defined: Set[str]) -> Set[str]:
        for stmt in body:
            defined = self._check_stmt(stmt, defined)
        return defined

    def _check_stmt(self, stmt: ir.Stmt, defined: Set[str]) -> Set[str]:
        if isinstance(stmt, ir.Assign):
            self._check_expr(stmt.value, defined)
            return defined | {stmt.target}
        if isinstance(stmt, ir.Store):
            self._check_array(stmt.array)
            self._check_index(stmt.index, defined)
            self._check_expr(stmt.value, defined)
            if stmt.value.dtype != stmt.array.dtype:
                raise self._fail(
                    f"store to {stmt.array.name!r} of {stmt.value.dtype} "
                    f"into {stmt.array.dtype} elements"
                )
            return defined
        if isinstance(stmt, ir.AtomicRMW):
            self._check_array(stmt.array)
            self._check_index(stmt.index, defined)
            self._check_expr(stmt.value, defined)
            return defined
        if isinstance(stmt, ir.If):
            self._check_expr(stmt.cond, defined)
            if not stmt.cond.dtype.is_bool:
                raise self._fail("if condition must be boolean")
            then_defs = self._check_body(stmt.then_body, set(defined))
            else_defs = self._check_body(stmt.else_body, set(defined))
            return then_defs & else_defs
        if isinstance(stmt, ir.For):
            for bound, label in ((stmt.start, "start"), (stmt.stop, "stop"), (stmt.step, "step")):
                self._check_expr(bound, defined)
                if not bound.dtype.is_integer:
                    raise self._fail(f"loop {label} must be an integer expression")
            self._check_body(stmt.body, defined | {stmt.var})
            return defined
        if isinstance(stmt, ir.Return):
            if self.fn.kind == "kernel" and stmt.value is not None:
                raise self._fail("kernel returns a value")
            if self.fn.kind == "device":
                if stmt.value is None:
                    raise self._fail("device function returns nothing")
                self._check_expr(stmt.value, defined)
            return defined
        if isinstance(stmt, ir.Barrier):
            return defined
        if isinstance(stmt, ir.SharedAlloc):
            if stmt.name in self.arrays or stmt.name in self.scalars:
                raise self._fail(f"shared array {stmt.name!r} shadows another name")
            self.arrays.add(stmt.name)
            return defined
        raise self._fail(f"unknown statement {type(stmt).__name__}")

    def _check_array(self, ref: ir.ArrayRef) -> None:
        if ref.name not in self.arrays:
            raise self._fail(f"reference to unknown array {ref.name!r}")

    def _check_index(self, index: ir.Expr, defined: Set[str]) -> None:
        self._check_expr(index, defined)
        if not index.dtype.is_integer:
            raise self._fail(f"array index has dtype {index.dtype}, expected integer")

    def _check_expr(self, expr: ir.Expr, defined: Set[str]) -> None:
        if isinstance(expr, ir.Const):
            return
        if isinstance(expr, ir.Var):
            if expr.name not in defined:
                raise self._fail(f"use of undefined variable {expr.name!r}")
            return
        if isinstance(expr, ir.ArrayRef):
            self._check_array(expr)
            return
        if isinstance(expr, ir.BinOp):
            self._check_expr(expr.left, defined)
            self._check_expr(expr.right, defined)
            return
        if isinstance(expr, ir.UnOp):
            self._check_expr(expr.operand, defined)
            return
        if isinstance(expr, ir.Cast):
            self._check_expr(expr.operand, defined)
            return
        if isinstance(expr, ir.Select):
            self._check_expr(expr.cond, defined)
            if not expr.cond.dtype.is_bool:
                raise self._fail("select condition must be boolean")
            self._check_expr(expr.if_true, defined)
            self._check_expr(expr.if_false, defined)
            return
        if isinstance(expr, ir.Load):
            self._check_array(expr.array)
            self._check_index(expr.index, defined)
            return
        if isinstance(expr, ir.Call):
            for a in expr.args:
                self._check_expr(a, defined)
            builtin = intrinsics.get(expr.func)
            if builtin is not None:
                if builtin.arity != len(expr.args) and not intrinsics.is_impure(expr.func):
                    raise self._fail(
                        f"{expr.func}() called with {len(expr.args)} args, "
                        f"expects {builtin.arity}"
                    )
                return
            if expr.func in self.module:
                callee = self.module[expr.func]
                if callee.kind != "device":
                    raise self._fail(f"cannot call kernel {expr.func!r}")
                if len(callee.params) != len(expr.args):
                    raise self._fail(
                        f"{expr.func}() called with {len(expr.args)} args, "
                        f"expects {len(callee.params)}"
                    )
                return
            raise self._fail(f"call to unknown function {expr.func!r}")
        raise self._fail(f"unknown expression {type(expr).__name__}")
