"""The data-parallel kernel substrate: types, IR, frontend, validation.

This package is the reproduction's analogue of the CUDA/OpenCL + Clang
layer the paper builds on.  Typical use::

    from repro.kernel import kernel, device
    from repro.kernel.dsl import *

    @kernel
    def scale(out: array_f32, x: array_f32, a: f32):
        i = global_id()
        out[i] = a * x[i]
"""

from .frontend import (
    KernelFn,
    array_f32,
    array_f64,
    array_i32,
    array_i64,
    array_u32,
    array_of,
    device,
    kernel,
)
from .types import (
    BOOL,
    F32,
    F64,
    I32,
    I64,
    U32,
    ArrayType,
    DType,
    ScalarType,
    dtype_by_name,
    from_numpy,
    promote,
)
from .validate import validate_function, validate_module

__all__ = [
    "kernel",
    "device",
    "KernelFn",
    "array_f32",
    "array_f64",
    "array_i32",
    "array_i64",
    "array_u32",
    "array_of",
    "DType",
    "ScalarType",
    "ArrayType",
    "F32",
    "F64",
    "I32",
    "I64",
    "U32",
    "BOOL",
    "dtype_by_name",
    "from_numpy",
    "promote",
    "validate_function",
    "validate_module",
]
