"""Generic traversal and rewriting machinery for the kernel IR.

Three tools live here:

* :func:`walk` — yield every node of a function/statement/expression tree in
  pre-order; the workhorse of the pattern detectors.
* :class:`Transformer` — a rebuild-on-the-way-out rewriter.  Subclasses
  override ``visit_<NodeClass>`` methods and return replacement nodes; the
  default implementation reconstructs each node from transformed children,
  so unmodified subtrees are fresh copies (transforms never alias the input
  tree).
* :func:`clone` — a deep structural copy implemented as the identity
  transform.
"""

from __future__ import annotations

from typing import Iterator, List

from . import ir


def _children(node: ir.Node) -> List[ir.Node]:
    """Return the direct child nodes of ``node`` in source order."""
    if isinstance(node, ir.Const) or isinstance(node, ir.Var):
        return []
    if isinstance(node, ir.ArrayRef):
        return []
    if isinstance(node, ir.BinOp):
        return [node.left, node.right]
    if isinstance(node, ir.UnOp):
        return [node.operand]
    if isinstance(node, ir.Cast):
        return [node.operand]
    if isinstance(node, ir.Select):
        return [node.cond, node.if_true, node.if_false]
    if isinstance(node, ir.Load):
        return [node.array, node.index]
    if isinstance(node, ir.Call):
        return list(node.args)
    if isinstance(node, ir.Assign):
        return [node.value]
    if isinstance(node, ir.Store):
        return [node.array, node.index, node.value]
    if isinstance(node, ir.AtomicRMW):
        return [node.array, node.index, node.value]
    if isinstance(node, ir.If):
        return [node.cond, *node.then_body, *node.else_body]
    if isinstance(node, ir.For):
        return [node.start, node.stop, node.step, *node.body]
    if isinstance(node, ir.Return):
        return [node.value] if node.value is not None else []
    if isinstance(node, (ir.Barrier, ir.SharedAlloc)):
        return []
    if isinstance(node, ir.Function):
        return list(node.body)
    raise TypeError(f"unknown IR node {type(node).__name__}")


def walk(node: ir.Node) -> Iterator[ir.Node]:
    """Yield ``node`` and all its descendants in pre-order."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(_children(current)))


def walk_statements(body: List[ir.Stmt]) -> Iterator[ir.Stmt]:
    """Yield every statement in ``body``, recursing into If/For bodies."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, ir.If):
            yield from walk_statements(stmt.then_body)
            yield from walk_statements(stmt.else_body)
        elif isinstance(stmt, ir.For):
            yield from walk_statements(stmt.body)


class Transformer:
    """Rebuild an IR tree, letting subclasses replace selected nodes.

    Dispatch is by exact class name: a subclass defining ``visit_For`` sees
    every :class:`~repro.kernel.ir.For` node (children already transformed)
    and returns its replacement.  Statement hooks may return a single
    statement or a list of statements, which lets transforms splice in
    adjustment code — the mechanism Paraprox uses to insert the reduction
    scaling fix-up.
    """

    # -- public API ---------------------------------------------------------

    def transform_function(self, fn: ir.Function) -> ir.Function:
        return ir.Function(
            name=fn.name,
            params=[ir.Param(p.name, p.type) for p in fn.params],
            body=self.transform_body(fn.body),
            kind=fn.kind,
            return_type=fn.return_type,
        )

    def transform_body(self, body: List[ir.Stmt]) -> List[ir.Stmt]:
        out: List[ir.Stmt] = []
        for stmt in body:
            result = self.transform_stmt(stmt)
            if result is None:
                continue
            if isinstance(result, list):
                out.extend(result)
            else:
                out.append(result)
        return out

    def transform_stmt(self, stmt: ir.Stmt):
        rebuilt = self._rebuild_stmt(stmt)
        hook = getattr(self, f"visit_{type(stmt).__name__}", None)
        if hook is not None:
            return hook(rebuilt)
        return rebuilt

    def transform_expr(self, expr: ir.Expr) -> ir.Expr:
        rebuilt = self._rebuild_expr(expr)
        hook = getattr(self, f"visit_{type(expr).__name__}", None)
        if hook is not None:
            return hook(rebuilt)
        return rebuilt

    # -- node reconstruction ------------------------------------------------

    def _rebuild_expr(self, e: ir.Expr) -> ir.Expr:
        if isinstance(e, ir.Const):
            return ir.Const(e.value, e.dtype)
        if isinstance(e, ir.Var):
            return ir.Var(e.name, e.dtype)
        if isinstance(e, ir.ArrayRef):
            return ir.ArrayRef(e.name, e.type)
        if isinstance(e, ir.BinOp):
            return ir.BinOp(
                e.op, self.transform_expr(e.left), self.transform_expr(e.right), e.dtype
            )
        if isinstance(e, ir.UnOp):
            return ir.UnOp(e.op, self.transform_expr(e.operand), e.dtype)
        if isinstance(e, ir.Cast):
            return ir.Cast(self.transform_expr(e.operand), e.dtype)
        if isinstance(e, ir.Select):
            return ir.Select(
                self.transform_expr(e.cond),
                self.transform_expr(e.if_true),
                self.transform_expr(e.if_false),
                e.dtype,
            )
        if isinstance(e, ir.Load):
            return ir.Load(self.transform_expr(e.array), self.transform_expr(e.index))
        if isinstance(e, ir.Call):
            return ir.Call(e.func, [self.transform_expr(a) for a in e.args], e.dtype)
        raise TypeError(f"unknown expression {type(e).__name__}")

    def _rebuild_stmt(self, s: ir.Stmt) -> ir.Stmt:
        if isinstance(s, ir.Assign):
            return ir.Assign(s.target, self.transform_expr(s.value))
        if isinstance(s, ir.Store):
            return ir.Store(
                self.transform_expr(s.array),
                self.transform_expr(s.index),
                self.transform_expr(s.value),
            )
        if isinstance(s, ir.AtomicRMW):
            return ir.AtomicRMW(
                s.op,
                self.transform_expr(s.array),
                self.transform_expr(s.index),
                self.transform_expr(s.value),
            )
        if isinstance(s, ir.If):
            return ir.If(
                self.transform_expr(s.cond),
                self.transform_body(s.then_body),
                self.transform_body(s.else_body),
            )
        if isinstance(s, ir.For):
            return ir.For(
                s.var,
                self.transform_expr(s.start),
                self.transform_expr(s.stop),
                self.transform_expr(s.step),
                self.transform_body(s.body),
            )
        if isinstance(s, ir.Return):
            value = self.transform_expr(s.value) if s.value is not None else None
            return ir.Return(value)
        if isinstance(s, ir.Barrier):
            return ir.Barrier()
        if isinstance(s, ir.SharedAlloc):
            return ir.SharedAlloc(s.name, tuple(s.shape), s.dtype)
        raise TypeError(f"unknown statement {type(s).__name__}")


def clone(node):
    """Deep-copy a function, statement or expression tree.

    Cloning is identity-preserving for out-of-band annotations: a
    function's ``approx`` tag (see :class:`repro.approx.base.ApproxMeta`)
    rides along, unlike :meth:`Transformer.transform_function`, which
    deliberately drops it — a *rewrite* changes what the function
    computes, so the rewriting transform must re-tag."""
    t = Transformer()
    if isinstance(node, ir.Function):
        out = t.transform_function(node)
        meta = getattr(node, "approx", None)
        if meta is not None:
            out.approx = meta
        return out
    if isinstance(node, ir.Stmt):
        return t.transform_stmt(node)
    if isinstance(node, ir.Expr):
        return t.transform_expr(node)
    raise TypeError(f"cannot clone {type(node).__name__}")


def clone_module(module: ir.Module) -> ir.Module:
    """Deep-copy a whole module."""
    out = ir.Module()
    for fn in module.functions.values():
        out.add(clone(fn))
    return out
