"""Programmatic IR construction.

The frontend covers kernels written as Python source; transforms, tests
and downstream tools that synthesise IR directly get a small fluent layer
here instead of hand-assembling node constructors.  Expressions support
operator overloading through :class:`E` wrappers; :class:`FunctionBuilder`
assembles bodies with structured ``if_``/``for_`` context managers.

Example::

    b = FunctionBuilder("saxpy", kind="kernel")
    out = b.array_param("out", F32)
    x = b.array_param("x", F32)
    a = b.scalar_param("a", F32)
    n = b.scalar_param("n", I32)
    i = b.let("i", b.global_id())
    with b.if_(i < n):
        b.store(out, i, a * x[i])
    fn = b.build()
"""

from __future__ import annotations

import contextlib
from typing import List, Optional, Union

from ..errors import ValidationError
from . import ir
from .types import BOOL, F32, I32, ArrayType, DType, ScalarType


class E:
    """An expression wrapper providing Python operator overloading."""

    __slots__ = ("node",)

    def __init__(self, node: ir.Expr) -> None:
        self.node = node

    @property
    def dtype(self) -> DType:
        return self.node.dtype

    # -- arithmetic ----------------------------------------------------------

    def _bin(self, op: str, other) -> "E":
        return E(ir.binop(op, self.node, _lift(other, self.dtype).node))

    def _rbin(self, op: str, other) -> "E":
        return E(ir.binop(op, _lift(other, self.dtype).node, self.node))

    def __add__(self, other):
        return self._bin("add", other)

    def __radd__(self, other):
        return self._rbin("add", other)

    def __sub__(self, other):
        return self._bin("sub", other)

    def __rsub__(self, other):
        return self._rbin("sub", other)

    def __mul__(self, other):
        return self._bin("mul", other)

    def __rmul__(self, other):
        return self._rbin("mul", other)

    def __truediv__(self, other):
        return self._bin("div", other)

    def __rtruediv__(self, other):
        return self._rbin("div", other)

    def __mod__(self, other):
        return self._bin("mod", other)

    def __lshift__(self, other):
        return self._bin("shl", other)

    def __rshift__(self, other):
        return self._bin("shr", other)

    def __and__(self, other):
        op = "land" if self.dtype.is_bool else "and"
        return self._bin(op, other)

    def __or__(self, other):
        op = "lor" if self.dtype.is_bool else "or"
        return self._bin(op, other)

    def __xor__(self, other):
        return self._bin("xor", other)

    def __neg__(self):
        return E(ir.UnOp("neg", self.node, self.dtype))

    def __invert__(self):
        if self.dtype.is_bool:
            return E(ir.UnOp("lnot", self.node, BOOL))
        return E(ir.UnOp("bnot", self.node, self.dtype))

    # -- comparisons ----------------------------------------------------------

    def __lt__(self, other):
        return self._bin("lt", other)

    def __le__(self, other):
        return self._bin("le", other)

    def __gt__(self, other):
        return self._bin("gt", other)

    def __ge__(self, other):
        return self._bin("ge", other)

    def eq(self, other) -> "E":
        """Equality as a method (``==`` is kept for Python identity use)."""
        return self._bin("eq", other)

    def ne(self, other) -> "E":
        return self._bin("ne", other)

    # -- misc -----------------------------------------------------------------

    def cast(self, dtype: DType) -> "E":
        return E(ir.Cast(self.node, dtype))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        from .printer import print_expr

        return f"E({print_expr(self.node)})"


class ArrayHandle:
    """A named array usable with subscript syntax inside the builder."""

    __slots__ = ("ref",)

    def __init__(self, ref: ir.ArrayRef) -> None:
        self.ref = ref

    @property
    def name(self) -> str:
        return self.ref.name

    def __getitem__(self, index) -> E:
        idx = _lift(index, I32).node
        return E(ir.Load(ir.ArrayRef(self.ref.name, self.ref.type), idx))


def _lift(value, hint: DType = F32) -> E:
    if isinstance(value, E):
        return value
    if isinstance(value, ir.Expr):
        return E(value)
    if isinstance(value, bool):
        return E(ir.Const(value, BOOL))
    if isinstance(value, int):
        return E(ir.Const(value, I32 if not hint.is_float else hint))
    if isinstance(value, float):
        return E(ir.Const(value, hint if hint.is_float else F32))
    raise TypeError(f"cannot lift {value!r} into an IR expression")


def call(func: str, *args) -> E:
    """Call a math builtin by name with lifted arguments."""
    from . import intrinsics

    builtin = intrinsics.get(func)
    if builtin is None:
        raise KeyError(f"unknown builtin {func!r}")
    lifted = [_lift(a).node for a in args]
    return E(ir.Call(func, lifted, builtin.result_dtype([a.dtype for a in lifted])))


class FunctionBuilder:
    """Assembles an :class:`~repro.kernel.ir.Function` statement by
    statement, with structured control flow via context managers."""

    def __init__(self, name: str, kind: str = "kernel") -> None:
        self.name = name
        self.kind = kind
        self.params: List[ir.Param] = []
        self._body_stack: List[List[ir.Stmt]] = [[]]
        self._locals: dict = {}
        self._return_dtype: Optional[DType] = None
        self._tmp = 0

    # -- parameters -----------------------------------------------------------

    def scalar_param(self, name: str, dtype: DType) -> E:
        self.params.append(ir.Param(name, ScalarType(dtype)))
        return E(ir.Var(name, dtype))

    def array_param(
        self, name: str, dtype: DType, space: str = "global"
    ) -> ArrayHandle:
        atype = ArrayType(dtype, space)
        self.params.append(ir.Param(name, atype))
        return ArrayHandle(ir.ArrayRef(name, atype))

    # -- intrinsics -----------------------------------------------------------

    def global_id(self) -> E:
        return E(ir.Call("global_id", [], I32))

    def thread_id(self) -> E:
        return E(ir.Call("thread_id", [], I32))

    def block_id(self) -> E:
        return E(ir.Call("block_id", [], I32))

    def block_dim(self) -> E:
        return E(ir.Call("block_dim", [], I32))

    # -- statements -----------------------------------------------------------

    def _emit(self, stmt: ir.Stmt) -> None:
        self._body_stack[-1].append(stmt)

    def let(self, name: str, value) -> E:
        lifted = _lift(value)
        self._emit(ir.Assign(name, lifted.node))
        self._locals[name] = lifted.dtype
        return E(ir.Var(name, lifted.dtype))

    def assign(self, var: E, value) -> None:
        if not isinstance(var.node, ir.Var):
            raise ValidationError("assign target must be a variable")
        self._emit(ir.Assign(var.node.name, _lift(value, var.dtype).node))

    def store(self, array: ArrayHandle, index, value) -> None:
        ref = ir.ArrayRef(array.ref.name, array.ref.type)
        self._emit(
            ir.Store(ref, _lift(index, I32).node, _lift(value, ref.dtype).node)
        )

    def atomic(self, op: str, array: ArrayHandle, index, value) -> None:
        ref = ir.ArrayRef(array.ref.name, array.ref.type)
        self._emit(
            ir.AtomicRMW(op, ref, _lift(index, I32).node, _lift(value, ref.dtype).node)
        )

    def barrier(self) -> None:
        self._emit(ir.Barrier())

    def shared(self, name: str, size: int, dtype: DType) -> ArrayHandle:
        self._emit(ir.SharedAlloc(name, (size,), dtype))
        return ArrayHandle(ir.ArrayRef(name, ArrayType(dtype, "shared")))

    def ret(self, value=None) -> None:
        if value is None:
            self._emit(ir.Return(None))
            return
        lifted = _lift(value)
        self._return_dtype = self._return_dtype or lifted.dtype
        self._emit(ir.Return(lifted.node))

    # -- structured control flow ------------------------------------------------

    @contextlib.contextmanager
    def if_(self, cond, orelse: bool = False):
        """``with b.if_(c): ...`` — optionally followed by :meth:`else_`."""
        then_body: List[ir.Stmt] = []
        self._body_stack.append(then_body)
        try:
            yield
        finally:
            self._body_stack.pop()
        self._emit(ir.If(_lift(cond, BOOL).node, then_body, []))

    @contextlib.contextmanager
    def else_(self):
        """Populate the else-arm of the most recent ``if_``."""
        current = self._body_stack[-1]
        if not current or not isinstance(current[-1], ir.If):
            raise ValidationError("else_ must directly follow an if_")
        else_body: List[ir.Stmt] = []
        self._body_stack.append(else_body)
        try:
            yield
        finally:
            self._body_stack.pop()
        current[-1].else_body.extend(else_body)

    @contextlib.contextmanager
    def for_(self, var: str, start, stop, step=1):
        body: List[ir.Stmt] = []
        self._body_stack.append(body)
        self._locals[var] = I32
        try:
            yield E(ir.Var(var, I32))
        finally:
            self._body_stack.pop()
        self._emit(
            ir.For(
                var,
                _lift(start, I32).node,
                _lift(stop, I32).node,
                _lift(step, I32).node,
                body,
            )
        )

    # -- finish -----------------------------------------------------------------

    def build(self, module: Optional[ir.Module] = None) -> ir.Function:
        """Finalise and validate the function; returns the IR node."""
        if len(self._body_stack) != 1:
            raise ValidationError("unclosed control-flow block in builder")
        fn = ir.Function(
            name=self.name,
            params=self.params,
            body=self._body_stack[0],
            kind=self.kind,
            return_type=(
                ScalarType(self._return_dtype)
                if self.kind == "device" and self._return_dtype
                else None
            ),
        )
        from .validate import validate_function

        validate_function(fn, module)
        return fn
