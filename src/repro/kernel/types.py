"""Type system for the data-parallel kernel IR.

The IR distinguishes *scalar* values (thread-local registers) from *array*
values (buffers in one of the device memory spaces).  Arrays are flat,
one-dimensional buffers — exactly like raw pointers in CUDA/OpenCL — and
multi-dimensional indexing is expressed arithmetically in the kernel, which
is what lets Paraprox's affine-access analysis recover tile geometry from
expressions of the shape ``(f + i) * w + (g + j)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DType:
    """A machine scalar type.

    Attributes:
        name: short C-like name used by the printer (``f32``, ``i32`` ...).
        np_dtype: the NumPy dtype string used by the interpreter.
        size: size in bytes, used by the memory/coalescing model.
        kind: one of ``"float"``, ``"int"``, ``"uint"``, ``"bool"``.
    """

    name: str
    np_dtype: str
    size: int
    kind: str

    @property
    def is_float(self) -> bool:
        return self.kind == "float"

    @property
    def is_integer(self) -> bool:
        return self.kind in ("int", "uint")

    @property
    def is_bool(self) -> bool:
        return self.kind == "bool"

    def to_numpy(self) -> np.dtype:
        return np.dtype(self.np_dtype)

    def __call__(self, x):
        """Host-side cast, so ``f32(x)`` works inside ``@device`` reference
        code executed as plain Python (inside kernels the frontend lowers the
        same spelling to an IR ``Cast``)."""
        if np.isscalar(x):
            return self.to_numpy().type(x)
        return np.asarray(x, dtype=self.np_dtype)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


F32 = DType("f32", "float32", 4, "float")
F64 = DType("f64", "float64", 8, "float")
I32 = DType("i32", "int32", 4, "int")
I64 = DType("i64", "int64", 8, "int")
U32 = DType("u32", "uint32", 4, "uint")
BOOL = DType("bool", "bool", 1, "bool")

_DTYPES = {d.name: d for d in (F32, F64, I32, I64, U32, BOOL)}


def dtype_by_name(name: str) -> DType:
    """Look up a :class:`DType` by its short name (``"f32"`` etc.)."""
    try:
        return _DTYPES[name]
    except KeyError:
        raise KeyError(f"unknown dtype name {name!r}; known: {sorted(_DTYPES)}")


def from_numpy(np_dtype) -> DType:
    """Map a NumPy dtype to the corresponding IR :class:`DType`."""
    key = np.dtype(np_dtype).name
    for d in _DTYPES.values():
        if d.np_dtype == key:
            return d
    raise KeyError(f"no IR dtype for numpy dtype {key!r}")


def promote(a: DType, b: DType) -> DType:
    """C-style binary promotion used by the frontend for arithmetic.

    Rules (deliberately simple, sufficient for the benchmark kernels):
    float64 > float32 > int64 > uint32/int32 > bool, and mixing a float
    with any integer yields the float.
    """
    order = {"bool": 0, "i32": 1, "u32": 1, "i64": 2, "f32": 3, "f64": 4}
    ra, rb = order[a.name], order[b.name]
    if ra == rb:
        # u32 vs i32 -> i32 keeps things predictable for index math.
        if {a.name, b.name} == {"u32", "i32"}:
            return I32
        return a
    return a if ra > rb else b


@dataclass(frozen=True)
class ScalarType:
    """The type of a thread-local scalar value."""

    dtype: DType

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.dtype.name}"


#: Device memory spaces an array can live in.  ``global`` is off-chip DRAM,
#: ``shared`` is per-block scratchpad, ``constant`` is the broadcast cache.
MEMORY_SPACES = ("global", "shared", "constant")


@dataclass(frozen=True)
class ArrayType:
    """The type of a flat buffer parameter or shared-memory allocation.

    Attributes:
        dtype: element type.
        space: memory space the buffer lives in.
    """

    dtype: DType
    space: str = "global"

    def __post_init__(self) -> None:
        if self.space not in MEMORY_SPACES:
            raise ValueError(
                f"bad memory space {self.space!r}; expected one of {MEMORY_SPACES}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.dtype.name}[{self.space}]"


KernelType = object  # ScalarType | ArrayType (py39-friendly alias for docs)


def is_scalar(t) -> bool:
    return isinstance(t, ScalarType)


def is_array(t) -> bool:
    return isinstance(t, ArrayType)
