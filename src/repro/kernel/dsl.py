"""Names importable into modules that define kernels.

Kernel bodies never execute as Python, so these definitions exist purely to
keep linters and readers happy (``from repro.kernel.dsl import *``).  Each
placeholder raises if it is actually invoked from host code, with the one
useful exception of the math builtins, which evaluate with NumPy so that
``@device`` functions double as reference implementations.
"""

from __future__ import annotations

import numpy as np

from . import intrinsics
from .types import F32, F64, I32, I64, U32

__all__ = [
    "global_id",
    "thread_id",
    "block_id",
    "block_dim",
    "grid_dim",
    "global_id_x",
    "global_id_y",
    "thread_id_x",
    "thread_id_y",
    "block_id_x",
    "block_id_y",
    "block_dim_x",
    "block_dim_y",
    "grid_dim_x",
    "grid_dim_y",
    "barrier",
    "shared",
    "exp",
    "log",
    "log2",
    "sin",
    "cos",
    "sqrt",
    "rsqrt",
    "fabs",
    "floor",
    "ceil",
    "round",
    "lgamma",
    "erf",
    "pow",
    "fmin",
    "fmax",
    "imin",
    "imax",
    "printf",
    "clock",
    "atomic_add",
    "atomic_min",
    "atomic_max",
    "atomic_inc",
    "atomic_and",
    "atomic_or",
    "atomic_xor",
    "f32",
    "f64",
    "i32",
    "i64",
    "u32",
]


def _host_only(name):
    def stub(*_args, **_kwargs):
        raise RuntimeError(
            f"{name}() is a kernel intrinsic; it has no meaning on the host"
        )

    stub.__name__ = name
    return stub


global_id = _host_only("global_id")
thread_id = _host_only("thread_id")
block_id = _host_only("block_id")
block_dim = _host_only("block_dim")
grid_dim = _host_only("grid_dim")
global_id_x = _host_only("global_id_x")
global_id_y = _host_only("global_id_y")
thread_id_x = _host_only("thread_id_x")
thread_id_y = _host_only("thread_id_y")
block_id_x = _host_only("block_id_x")
block_id_y = _host_only("block_id_y")
block_dim_x = _host_only("block_dim_x")
block_dim_y = _host_only("block_dim_y")
grid_dim_x = _host_only("grid_dim_x")
grid_dim_y = _host_only("grid_dim_y")
barrier = _host_only("barrier")
shared = _host_only("shared")
printf = _host_only("printf")
clock = _host_only("clock")

atomic_add = _host_only("atomic_add")
atomic_min = _host_only("atomic_min")
atomic_max = _host_only("atomic_max")
atomic_inc = _host_only("atomic_inc")
atomic_and = _host_only("atomic_and")
atomic_or = _host_only("atomic_or")
atomic_xor = _host_only("atomic_xor")


from .frontend import (  # noqa: E402  (re-exported for kernel modules)
    array_f32,
    array_f64,
    array_i32,
    array_i64,
    array_u32,
    array_of,
)

__all__ += ["array_f32", "array_f64", "array_i32", "array_i64", "array_u32", "array_of"]


def _math(name):
    builtin = intrinsics.get(name)

    def fn(*args):
        return builtin.evaluate(*args)

    fn.__name__ = name
    return fn


exp = _math("exp")
log = _math("log")
log2 = _math("log2")
sin = _math("sin")
cos = _math("cos")
sqrt = _math("sqrt")
rsqrt = _math("rsqrt")
fabs = _math("fabs")
floor = _math("floor")
ceil = _math("ceil")
round = _math("round")
lgamma = _math("lgamma")
erf = _math("erf")
pow = _math("pow")
fmin = _math("fmin")
fmax = _math("fmax")
imin = _math("imin")
imax = _math("imax")


# The dtype names double as annotations (they are DType instances) and as
# host-side casts (DType.__call__), so `x: f32` and `f32(x)` both work.
f32, f64, i32, i64, u32 = F32, F64, I32, I64, U32
