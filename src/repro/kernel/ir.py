"""IR node classes for data-parallel kernels.

The IR is a conventional typed expression/statement tree, deliberately close
to the subset of C that CUDA/OpenCL kernels are written in: scalar locals,
flat array loads/stores, counted ``for`` loops, structured ``if``, calls to
math builtins and to *device* functions, thread/block intrinsics, atomics
and barriers.  Paraprox's pattern detectors and approximation transforms
are all tree algorithms over these nodes.

Expressions carry their :class:`~repro.kernel.types.DType`; statements do
not.  Nodes are plain dataclasses; transforms build rewritten copies rather
than mutating shared trees (see :mod:`repro.kernel.visitors`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .types import BOOL, ArrayType, DType, ScalarType

# ---------------------------------------------------------------------------
# Operator vocabularies
# ---------------------------------------------------------------------------

#: Arithmetic / bitwise binary operators (result dtype = promoted operand).
ARITH_OPS = ("add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "shr")

#: Comparison operators (result dtype = bool).
CMP_OPS = ("lt", "le", "gt", "ge", "eq", "ne")

#: Short-circuit-free logical operators on bools.
LOGIC_OPS = ("land", "lor")

BINARY_OPS = ARITH_OPS + CMP_OPS + LOGIC_OPS

UNARY_OPS = ("neg", "lnot", "bnot")

#: Read-modify-write atomic operations (paper §3.3.2: add, min, max, inc,
#: and, or, xor mark a loop as a reduction).
ATOMIC_OPS = ("add", "min", "max", "inc", "and", "or", "xor")

#: Commutative+associative reduction operators recognised in ``a = a op b``.
REDUCTION_OPS = ("add", "mul", "min", "max", "and", "or", "xor")


class Node:
    """Common base class so ``isinstance(x, Node)`` covers the whole IR."""

    __slots__ = ()


class Expr(Node):
    """Base class for expressions; all expressions expose ``dtype``."""

    __slots__ = ()


class Stmt(Node):
    """Base class for statements."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Const(Expr):
    """A literal scalar constant."""

    value: object
    dtype: DType


@dataclass
class Var(Expr):
    """A reference to a scalar local or parameter by name."""

    name: str
    dtype: DType


@dataclass
class ArrayRef(Expr):
    """A reference to an array parameter or shared allocation by name.

    ``ArrayRef`` never appears as a value by itself; it is the ``array``
    operand of :class:`Load`, :class:`Store` and atomics.
    """

    name: str
    type: ArrayType

    @property
    def dtype(self) -> DType:
        return self.type.dtype


@dataclass
class BinOp(Expr):
    """A binary operation ``left <op> right``."""

    op: str
    left: Expr
    right: Expr
    dtype: DType

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {self.op!r}")


@dataclass
class UnOp(Expr):
    """A unary operation."""

    op: str
    operand: Expr
    dtype: DType

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary op {self.op!r}")


@dataclass
class Cast(Expr):
    """An explicit conversion to ``dtype``."""

    operand: Expr
    dtype: DType


@dataclass
class Select(Expr):
    """Branch-free per-thread selection ``cond ? if_true : if_false``.

    This is how kernels express thread-divergent choices without divergent
    control flow; it maps to ``np.where`` in the interpreter.
    """

    cond: Expr
    if_true: Expr
    if_false: Expr
    dtype: DType


@dataclass
class Load(Expr):
    """An element read ``array[index]``."""

    array: ArrayRef
    index: Expr

    @property
    def dtype(self) -> DType:
        return self.array.dtype


@dataclass
class Call(Expr):
    """A call to a math builtin, intrinsic, or device function.

    ``func`` is a name resolved against :mod:`repro.kernel.intrinsics`
    first and then against the module's device functions.
    """

    func: str
    args: List[Expr]
    dtype: DType


#: Thread/block intrinsics take no arguments and are modelled as Calls with
#: these names.  ``global_id`` = blockIdx*blockDim+threadIdx; the _x/_y
#: variants address the two axes of a 2-D launch.
THREAD_INTRINSICS = (
    "global_id",
    "thread_id",
    "block_id",
    "block_dim",
    "grid_dim",
    "global_id_x",
    "global_id_y",
    "thread_id_x",
    "thread_id_y",
    "block_id_x",
    "block_id_y",
    "block_dim_x",
    "block_dim_y",
    "grid_dim_x",
    "grid_dim_y",
)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Assign(Stmt):
    """Assignment to a scalar local (declared implicitly on first write)."""

    target: str
    value: Expr


@dataclass
class Store(Stmt):
    """An element write ``array[index] = value``."""

    array: ArrayRef
    index: Expr
    value: Expr


@dataclass
class AtomicRMW(Stmt):
    """``atomic_<op>(&array[index], value)`` read-modify-write."""

    op: str
    array: ArrayRef
    index: Expr
    value: Expr

    def __post_init__(self) -> None:
        if self.op not in ATOMIC_OPS:
            raise ValueError(f"unknown atomic op {self.op!r}")


@dataclass
class If(Stmt):
    """Structured conditional.  The condition may be thread-divergent; the
    interpreter executes both arms under masks in that case."""

    cond: Expr
    then_body: List[Stmt]
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    """A counted loop ``for (var = start; var < stop; var += step)``.

    Loop bounds must be *uniform* (identical across threads); divergent
    iteration is expressed with ``If``/``Select`` in the body.  This is the
    construct Paraprox's reduction perforation rewrites (it multiplies
    ``step`` by the skipping rate).
    """

    var: str
    start: Expr
    stop: Expr
    step: Expr
    body: List[Stmt]


@dataclass
class Return(Stmt):
    """Return from a device function (kernels return nothing)."""

    value: Optional[Expr] = None


@dataclass
class Barrier(Stmt):
    """``__syncthreads()`` — a block-wide barrier.

    The vectorized interpreter gives statements lockstep semantics, so the
    barrier is a no-op at runtime, but it is kept in the IR because the
    three-phase scan template is recognised partly by its barrier structure.
    """


@dataclass
class SharedAlloc(Stmt):
    """Declaration of a per-block shared-memory array."""

    name: str
    shape: Tuple[int, ...]
    dtype: DType


# ---------------------------------------------------------------------------
# Functions and modules
# ---------------------------------------------------------------------------


@dataclass
class Param:
    """A formal parameter of a kernel or device function."""

    name: str
    type: object  # ScalarType | ArrayType

    @property
    def is_array(self) -> bool:
        return isinstance(self.type, ArrayType)


@dataclass
class Function:
    """A kernel (``kind="kernel"``) or device function (``kind="device"``).

    Device functions are pure candidates for approximate memoization; the
    purity analysis in :mod:`repro.analysis.purity` decides whether they
    qualify.
    """

    name: str
    params: List[Param]
    body: List[Stmt]
    kind: str = "kernel"
    return_type: Optional[ScalarType] = None

    def __post_init__(self) -> None:
        if self.kind not in ("kernel", "device"):
            raise ValueError(f"bad function kind {self.kind!r}")

    def param(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"{self.name} has no parameter {name!r}")

    @property
    def array_params(self) -> List[Param]:
        return [p for p in self.params if p.is_array]

    @property
    def scalar_params(self) -> List[Param]:
        return [p for p in self.params if not p.is_array]


@dataclass
class Module:
    """A compilation unit: one or more kernels plus their device functions."""

    functions: Dict[str, Function] = field(default_factory=dict)

    def add(self, fn: Function) -> None:
        if fn.name in self.functions:
            raise ValueError(f"duplicate function {fn.name!r} in module")
        self.functions[fn.name] = fn

    def kernels(self) -> List[Function]:
        return [f for f in self.functions.values() if f.kind == "kernel"]

    def device_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if f.kind == "device"]

    def __getitem__(self, name: str) -> Function:
        return self.functions[name]

    def __contains__(self, name: str) -> bool:
        return name in self.functions


# ---------------------------------------------------------------------------
# Convenience constructors (used heavily by transforms and tests)
# ---------------------------------------------------------------------------


def const_like(value: object, dtype: DType) -> Const:
    """Build a constant of ``dtype`` from a Python number."""
    if dtype.is_float:
        value = float(value)
    elif dtype.is_integer:
        value = int(value)
    elif dtype.is_bool:
        value = bool(value)
    return Const(value, dtype)


def bool_const(value: bool) -> Const:
    return Const(bool(value), BOOL)


def binop(op: str, left: Expr, right: Expr) -> BinOp:
    """Build a :class:`BinOp` computing the result dtype automatically."""
    from .types import promote

    if op in CMP_OPS or op in LOGIC_OPS:
        return BinOp(op, left, right, BOOL)
    return BinOp(op, left, right, promote(left.dtype, right.dtype))
