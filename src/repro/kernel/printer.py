"""Render IR back to CUDA- or OpenCL-flavoured pseudo source.

Used for documentation, debugging and golden tests: every approximation
transform's output can be inspected as readable code, the same way the
paper's rewriter emits CUDA text (paper Fig 10, the *Rewriter* stage).
The OpenCL dialect mirrors the paper's CUDA-to-OpenCL conversion script
(§4.1), which is how generated kernels reached the CPU runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from . import ir


@dataclass(frozen=True)
class Dialect:
    """Textual conventions of one target language."""

    name: str
    kernel_qualifier: str
    device_qualifier: str
    shared_qualifier: str
    barrier: str
    intrinsics: Dict[str, str]
    pointer_space: Dict[str, str]  # memory space -> parameter qualifier
    atomic_format: str  # format(op=..., args=...)


CUDA = Dialect(
    name="cuda",
    kernel_qualifier="__global__ void",
    device_qualifier="__device__",
    shared_qualifier="__shared__",
    barrier="__syncthreads();",
    intrinsics={
        "global_id": "blockIdx.x * blockDim.x + threadIdx.x",
        "thread_id": "threadIdx.x",
        "block_id": "blockIdx.x",
        "block_dim": "blockDim.x",
        "grid_dim": "gridDim.x",
        "global_id_x": "blockIdx.x * blockDim.x + threadIdx.x",
        "global_id_y": "blockIdx.y * blockDim.y + threadIdx.y",
        "thread_id_x": "threadIdx.x",
        "thread_id_y": "threadIdx.y",
        "block_id_x": "blockIdx.x",
        "block_id_y": "blockIdx.y",
        "block_dim_x": "blockDim.x",
        "block_dim_y": "blockDim.y",
        "grid_dim_x": "gridDim.x",
        "grid_dim_y": "gridDim.y",
    },
    pointer_space={"global": "", "shared": "", "constant": "__constant__ "},
    atomic_format="atomic{Op}({args});",
)

OPENCL = Dialect(
    name="opencl",
    kernel_qualifier="__kernel void",
    device_qualifier="",
    shared_qualifier="__local",
    barrier="barrier(CLK_LOCAL_MEM_FENCE);",
    intrinsics={
        "global_id": "get_global_id(0)",
        "thread_id": "get_local_id(0)",
        "block_id": "get_group_id(0)",
        "block_dim": "get_local_size(0)",
        "grid_dim": "get_num_groups(0)",
        "global_id_x": "get_global_id(0)",
        "global_id_y": "get_global_id(1)",
        "thread_id_x": "get_local_id(0)",
        "thread_id_y": "get_local_id(1)",
        "block_id_x": "get_group_id(0)",
        "block_id_y": "get_group_id(1)",
        "block_dim_x": "get_local_size(0)",
        "block_dim_y": "get_local_size(1)",
        "grid_dim_x": "get_num_groups(0)",
        "grid_dim_y": "get_num_groups(1)",
    },
    pointer_space={
        "global": "__global ",
        "shared": "__local ",
        "constant": "__constant ",
    },
    atomic_format="atomic_{op}({args});",
)

_DIALECTS = {"cuda": CUDA, "opencl": OPENCL}

_BINOP_SYMBOLS = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "div": "/",
    "mod": "%",
    "and": "&",
    "or": "|",
    "xor": "^",
    "shl": "<<",
    "shr": ">>",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
    "eq": "==",
    "ne": "!=",
    "land": "&&",
    "lor": "||",
}

_UNOP_SYMBOLS = {"neg": "-", "lnot": "!", "bnot": "~"}

_CTYPES = {
    "f32": "float",
    "f64": "double",
    "i32": "int",
    "i64": "long long",
    "u32": "unsigned int",
    "bool": "bool",
}


def resolve_dialect(dialect) -> Dialect:
    if isinstance(dialect, Dialect):
        return dialect
    try:
        return _DIALECTS[dialect]
    except KeyError:
        raise KeyError(f"unknown dialect {dialect!r}; known: {sorted(_DIALECTS)}")


def print_expr(expr: ir.Expr, dialect="cuda") -> str:
    """Render one expression as C-like text."""
    dialect = resolve_dialect(dialect)
    if isinstance(expr, ir.Const):
        if expr.dtype.is_float:
            text = repr(float(expr.value))
            return text + ("f" if expr.dtype.name == "f32" else "")
        if expr.dtype.is_bool:
            return "true" if expr.value else "false"
        return str(int(expr.value))
    if isinstance(expr, ir.Var):
        return expr.name
    if isinstance(expr, ir.ArrayRef):
        return expr.name
    if isinstance(expr, ir.BinOp):
        return (
            f"({print_expr(expr.left, dialect)} {_BINOP_SYMBOLS[expr.op]} "
            f"{print_expr(expr.right, dialect)})"
        )
    if isinstance(expr, ir.UnOp):
        return f"{_UNOP_SYMBOLS[expr.op]}({print_expr(expr.operand, dialect)})"
    if isinstance(expr, ir.Cast):
        return f"({_CTYPES[expr.dtype.name]})({print_expr(expr.operand, dialect)})"
    if isinstance(expr, ir.Select):
        return (
            f"({print_expr(expr.cond, dialect)} ? {print_expr(expr.if_true, dialect)}"
            f" : {print_expr(expr.if_false, dialect)})"
        )
    if isinstance(expr, ir.Load):
        return f"{expr.array.name}[{print_expr(expr.index, dialect)}]"
    if isinstance(expr, ir.Call):
        args = ", ".join(print_expr(a, dialect) for a in expr.args)
        if expr.func in dialect.intrinsics:
            return f"({dialect.intrinsics[expr.func]})"
        return f"{expr.func}({args})"
    raise TypeError(f"unknown expression {type(expr).__name__}")


def _print_body(
    body: List[ir.Stmt], indent: int, lines: List[str], dialect: Dialect = CUDA
) -> None:
    pad = "    " * indent
    for stmt in body:
        if isinstance(stmt, ir.Assign):
            lines.append(f"{pad}{stmt.target} = {print_expr(stmt.value, dialect)};")
        elif isinstance(stmt, ir.Store):
            lines.append(
                f"{pad}{stmt.array.name}[{print_expr(stmt.index, dialect)}] = "
                f"{print_expr(stmt.value, dialect)};"
            )
        elif isinstance(stmt, ir.AtomicRMW):
            args = (
                f"&{stmt.array.name}[{print_expr(stmt.index, dialect)}], "
                f"{print_expr(stmt.value, dialect)}"
            )
            call = dialect.atomic_format.format(
                Op=stmt.op.capitalize(), op=stmt.op, args=args
            )
            lines.append(f"{pad}{call}")
        elif isinstance(stmt, ir.If):
            lines.append(f"{pad}if ({print_expr(stmt.cond, dialect)}) {{")
            _print_body(stmt.then_body, indent + 1, lines, dialect)
            if stmt.else_body:
                lines.append(f"{pad}}} else {{")
                _print_body(stmt.else_body, indent + 1, lines, dialect)
            lines.append(f"{pad}}}")
        elif isinstance(stmt, ir.For):
            v = stmt.var
            lines.append(
                f"{pad}for (int {v} = {print_expr(stmt.start, dialect)}; "
                f"{v} < {print_expr(stmt.stop, dialect)}; "
                f"{v} += {print_expr(stmt.step, dialect)}) {{"
            )
            _print_body(stmt.body, indent + 1, lines, dialect)
            lines.append(f"{pad}}}")
        elif isinstance(stmt, ir.Return):
            if stmt.value is None:
                lines.append(f"{pad}return;")
            else:
                lines.append(f"{pad}return {print_expr(stmt.value, dialect)};")
        elif isinstance(stmt, ir.Barrier):
            lines.append(f"{pad}{dialect.barrier}")
        elif isinstance(stmt, ir.SharedAlloc):
            size = "][".join(str(s) for s in stmt.shape)
            lines.append(
                f"{pad}{dialect.shared_qualifier} {_CTYPES[stmt.dtype.name]} "
                f"{stmt.name}[{size}];"
            )
        else:
            raise TypeError(f"unknown statement {type(stmt).__name__}")


def print_function(fn: ir.Function, dialect="cuda") -> str:
    """Render one function as CUDA- or OpenCL-flavoured pseudo source."""
    dialect = resolve_dialect(dialect)
    if fn.kind == "kernel":
        qualifier = dialect.kernel_qualifier
    else:
        ret = _CTYPES[fn.return_type.dtype.name]
        qualifier = f"{dialect.device_qualifier} {ret}".strip()
    params = []
    for p in fn.params:
        if p.is_array:
            space = dialect.pointer_space.get(p.type.space, "")
            params.append(f"{space}{_CTYPES[p.type.dtype.name]}* {p.name}")
        else:
            params.append(f"{_CTYPES[p.type.dtype.name]} {p.name}")
    lines = [f"{qualifier} {fn.name}({', '.join(params)}) {{"]
    _print_body(fn.body, 1, lines, dialect)
    lines.append("}")
    return "\n".join(lines)


def print_module(module: ir.Module, dialect="cuda") -> str:
    """Render a whole module, device functions before kernels."""
    dialect = resolve_dialect(dialect)
    chunks = [print_function(f, dialect) for f in module.device_functions()]
    chunks += [print_function(f, dialect) for f in module.kernels()]
    return "\n\n".join(chunks)
