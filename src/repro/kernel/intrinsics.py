"""Math builtins and thread intrinsics available inside kernels.

Each builtin carries

* a NumPy evaluation function used by the vectorized interpreter,
* a *latency class* consumed by the device cost model (``repro.analysis
  .latency`` maps classes to per-device cycle counts — e.g. ``exp`` is a
  cheap SFU op on the GPU model but an expensive libm call on the CPU
  model, which is what makes Kernel Density Estimation gain more from
  approximation on the CPU, as §4.3 of the paper reports),
* a result-dtype rule.

Purity is a property of everything in this table: none of the builtins
touch global state, so calling them never disqualifies a device function
from approximate memoization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from .types import BOOL, F32, F64, I32, DType, promote

# Result dtype rules ---------------------------------------------------------


def _float_unary(arg_dtypes):
    """Unary math function: float in, same float out (ints promote to f32)."""
    (a,) = arg_dtypes
    return a if a.is_float else F32


def _same_as_args(arg_dtypes):
    out = arg_dtypes[0]
    for d in arg_dtypes[1:]:
        out = promote(out, d)
    return out


def _always(dtype: DType):
    def rule(_arg_dtypes):
        return dtype

    return rule


@dataclass(frozen=True)
class Builtin:
    """Description of one kernel builtin."""

    name: str
    arity: int
    evaluate: Callable
    latency_class: str
    result_dtype: Callable


def _lgamma(x):
    """Vectorized log-gamma (paper §4.4.2 uses CUDA ``lgammaf``).

    Uses the Lanczos approximation with the classic g=7, n=9 coefficients
    plus the reflection formula for x < 0.5; accurate to ~1e-13 in float64,
    far below the quantization error the memoization study measures.
    """
    coeffs = np.array(
        [
            0.99999999999980993,
            676.5203681218851,
            -1259.1392167224028,
            771.32342877765313,
            -176.61502916214059,
            12.507343278686905,
            -0.13857109526572012,
            9.9843695780195716e-6,
            1.5056327351493116e-7,
        ]
    )
    x = np.asarray(x, dtype=np.float64)
    reflect = x < 0.5
    xr = np.where(reflect, 1.0 - x, x)
    z = xr - 1.0
    series = np.full_like(z, coeffs[0])
    for i in range(1, 9):
        series = series + coeffs[i] / (z + i)
    t = z + 7.5
    out = 0.5 * math.log(2 * math.pi) + (z + 0.5) * np.log(t) - t + np.log(series)
    with np.errstate(divide="ignore", invalid="ignore"):
        reflected = np.log(np.abs(np.pi / np.sin(np.pi * x))) - out
    return np.where(reflect, reflected, out)


def _erf(x):
    """Vectorized error function (Abramowitz & Stegun 7.1.26, |err|<1.5e-7)."""
    x = np.asarray(x, dtype=np.float64)
    sign = np.sign(x)
    ax = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * ax)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    return sign * (1.0 - poly * np.exp(-ax * ax))


def _rsqrt(x):
    return 1.0 / np.sqrt(x)


_BUILTINS: Dict[str, Builtin] = {}


def _register(name, arity, evaluate, latency_class, result_dtype):
    _BUILTINS[name] = Builtin(name, arity, evaluate, latency_class, result_dtype)


# Exponentials and reciprocal sqrt hit the GPU's special function unit and
# are cheap there (the paper's §4.3/§4.4.2 notes on KDE and Gompertz); with
# precise math, log/sin/cos compile to slower software routines ("trans").
# On a CPU every transcendental is a libm call.
for _name, _fn in [("exp", np.exp), ("rsqrt", _rsqrt)]:
    _register(_name, 1, _fn, "sfu", _float_unary)
for _name, _fn in [("log", np.log), ("log2", np.log2), ("sin", np.sin), ("cos", np.cos)]:
    _register(_name, 1, _fn, "trans", _float_unary)

_register("sqrt", 1, np.sqrt, "sqrt", _float_unary)
_register("fabs", 1, np.abs, "alu", lambda a: a[0])
_register("floor", 1, np.floor, "alu", _float_unary)
_register("ceil", 1, np.ceil, "alu", _float_unary)
_register("round", 1, np.round, "alu", _float_unary)
_register("lgamma", 1, _lgamma, "libcall", _float_unary)
_register("erf", 1, _erf, "libcall", _float_unary)
_register("pow", 2, np.power, "libcall", _same_as_args)
_register("fmin", 2, np.minimum, "alu", _same_as_args)
_register("fmax", 2, np.maximum, "alu", _same_as_args)
_register("imin", 2, np.minimum, "alu", _same_as_args)
_register("imax", 2, np.maximum, "alu", _same_as_args)

# Thread/block intrinsics — evaluated by the interpreter itself (they need
# launch geometry), so `evaluate` is None.  The unsuffixed names are the
# x-linearized 1-D forms; the _x/_y variants address 2-D launches.
for _name in (
    "global_id",
    "thread_id",
    "block_id",
    "block_dim",
    "grid_dim",
    "global_id_x",
    "global_id_y",
    "thread_id_x",
    "thread_id_y",
    "block_id_x",
    "block_id_y",
    "block_dim_x",
    "block_dim_y",
    "grid_dim_x",
    "grid_dim_y",
):
    _register(_name, 0, None, "alu", _always(I32))

#: Impure builtins a kernel may call; calling one disqualifies the caller
#: from memoization (paper §3.1.2: no I/O in pure functions).  These exist
#: so the purity analysis has something real to reject.
IMPURE_BUILTINS = ("printf", "clock")
for _name in IMPURE_BUILTINS:
    _register(_name, 1, lambda *a: np.zeros(1), "libcall", _always(I32))


def get(name: str) -> Optional[Builtin]:
    """Return the builtin named ``name`` or None if it is not a builtin."""
    return _BUILTINS.get(name)


def is_builtin(name: str) -> bool:
    return name in _BUILTINS


def is_impure(name: str) -> bool:
    return name in IMPURE_BUILTINS


def all_names():
    return sorted(_BUILTINS)
