"""Output-quality metrics (paper Table 1 and §4.2).

Each benchmark measures quality with an application-specific error metric —
L1-norm, L2-norm or mean relative error — always comparing the approximate
output against the unmodified exact output.  Quality is reported as a
fraction in [0, 1]; the paper's 90 % target output quality is ``toq=0.90``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

#: Guard against division by zero in relative errors.
EPSILON = 1e-12


def _as_f64(a, e):
    a = np.asarray(a, dtype=np.float64).ravel()
    e = np.asarray(e, dtype=np.float64).ravel()
    if a.shape != e.shape:
        raise ValueError(f"shape mismatch: approx {a.shape} vs exact {e.shape}")
    return a, e


def _finite_or_inf(a: np.ndarray) -> bool:
    """False when ``a`` holds any NaN/Inf.

    A non-finite approximate output must score as *infinite error* (a
    hard quality violation), never as NaN — NaN would propagate through
    the mean, compare false against every TOQ threshold and silently
    disable the quality monitor.
    """
    return bool(np.isfinite(a).all())


def mean_relative_error(approx, exact) -> float:
    """mean(|approx - exact| / |exact|), with an epsilon floor on |exact|.

    Returns ``inf`` when either side contains NaN/Inf."""
    a, e = _as_f64(approx, exact)
    if not (_finite_or_inf(a) and _finite_or_inf(e)):
        return float("inf")
    denom = np.maximum(np.abs(e), EPSILON)
    return float(np.mean(np.abs(a - e) / denom))


def l1_norm_error(approx, exact) -> float:
    """sum(|approx - exact|) / sum(|exact|) — relative L1 distance.

    Returns ``inf`` when either side contains NaN/Inf."""
    a, e = _as_f64(approx, exact)
    if not (_finite_or_inf(a) and _finite_or_inf(e)):
        return float("inf")
    denom = max(float(np.sum(np.abs(e))), EPSILON)
    return float(np.sum(np.abs(a - e)) / denom)


def l2_norm_error(approx, exact) -> float:
    """||approx - exact||_2 / ||exact||_2 — relative L2 distance.

    Returns ``inf`` when either side contains NaN/Inf."""
    a, e = _as_f64(approx, exact)
    if not (_finite_or_inf(a) and _finite_or_inf(e)):
        return float("inf")
    denom = max(float(np.sqrt(np.sum(e * e))), EPSILON)
    return float(np.sqrt(np.sum((a - e) ** 2)) / denom)


def relative_errors(approx, exact) -> np.ndarray:
    """Per-element relative error — the quantity behind the error CDF of
    paper Fig 13."""
    a, e = _as_f64(approx, exact)
    return np.abs(a - e) / np.maximum(np.abs(e), EPSILON)


_METRICS: Dict[str, Callable] = {
    "mean_relative": mean_relative_error,
    "l1": l1_norm_error,
    "l2": l2_norm_error,
}


@dataclass(frozen=True)
class QualityMetric:
    """A named error metric with the quality = 1 - error convention."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in _METRICS:
            raise KeyError(f"unknown metric {self.name!r}; known: {sorted(_METRICS)}")

    def error(self, approx, exact) -> float:
        return _METRICS[self.name](approx, exact)

    def quality(self, approx, exact) -> float:
        """Output quality in [0, 1]: 1 - error, floored at 0.

        A non-finite error (NaN/Inf anywhere in the comparison) scores
        0.0 — the hardest possible violation — instead of propagating."""
        error = self.error(approx, exact)
        if not np.isfinite(error):
            return 0.0
        return max(0.0, 1.0 - error)


MEAN_RELATIVE = QualityMetric("mean_relative")
L1_NORM = QualityMetric("l1")
L2_NORM = QualityMetric("l2")
