"""SAGE/Green-style online calibration (paper §5, "Runtime System").

The runtime does not check quality on every invocation — that would erase
the speedup.  Instead it samples: every ``check_interval``-th invocation
also runs the exact kernel, measures quality, and

* backs off to the next less aggressive variant when the TOQ is violated,
* (optionally) advances to a more aggressive variant when quality exceeds
  the TOQ by a margin for several consecutive checks (Green's behaviour).

SAGE's experiments put the overhead of checking every 40-50 invocations
below 5%; :attr:`CalibratedRuntime.overhead` reports the same statistic
for our runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import TuningError


@dataclass
class InvocationRecord:
    """What happened on one invocation of the calibrated runtime."""

    index: int
    variant: str
    checked: bool
    quality: Optional[float] = None
    action: str = ""  # "", "back_off", "advance"


@dataclass
class CalibrationStats:
    invocations: int = 0
    checks: int = 0
    violations: int = 0
    back_offs: int = 0
    advances: int = 0
    records: List[InvocationRecord] = field(default_factory=list)

    @property
    def overhead(self) -> float:
        """Fraction of extra (exact) executions spent on quality checks."""
        if self.invocations == 0:
            return 0.0
        return self.checks / self.invocations


class CalibratedRuntime:
    """Executes an invocation stream with periodic quality calibration.

    Args:
        app: the application.
        ladder: variants ordered least -> most aggressive (None entries are
            not allowed; the exact program is the implicit rung below 0).
        toq: target output quality.
        check_interval: invocations between quality checks (paper: 40-50).
        advance_after: consecutive clean checks before trying the next more
            aggressive rung; 0 disables advancing.
        margin: quality slack over the TOQ required to advance.
    """

    def __init__(
        self,
        app,
        ladder: List[object],
        toq: float = 0.90,
        check_interval: int = 40,
        advance_after: int = 2,
        margin: float = 0.02,
    ) -> None:
        if check_interval < 1:
            raise TuningError("check_interval must be >= 1")
        self.app = app
        self.ladder = list(ladder)
        self.toq = toq
        self.check_interval = check_interval
        self.advance_after = advance_after
        self.margin = margin
        #: current rung: -1 = exact, 0..len(ladder)-1 = ladder index
        self.rung = len(self.ladder) - 1 if self.ladder else -1
        self.stats = CalibrationStats()
        self._clean_streak = 0

    @property
    def current_name(self) -> str:
        return "exact" if self.rung < 0 else self.ladder[self.rung].name

    def invoke(self, inputs):
        """Run one invocation; periodically also run exact and calibrate."""
        i = self.stats.invocations
        self.stats.invocations += 1
        checked = (i % self.check_interval) == self.check_interval - 1

        if self.rung < 0:
            out, _trace = self.app.run_exact(inputs)
            self.stats.records.append(
                InvocationRecord(i, "exact", checked=False)
            )
            return out

        variant = self.ladder[self.rung]
        out, _trace = self.app.run_variant(variant, inputs)
        record = InvocationRecord(i, variant.name, checked=checked)
        if checked:
            self.stats.checks += 1
            exact_out, _t = self.app.run_exact(inputs)
            q = self.app.quality(out, exact_out)
            record.quality = q
            if q < self.toq:
                self.stats.violations += 1
                self.stats.back_offs += 1
                self.rung -= 1
                self._clean_streak = 0
                record.action = "back_off"
            else:
                self._clean_streak += 1
                if (
                    self.advance_after
                    and self._clean_streak >= self.advance_after
                    and q >= self.toq + self.margin
                    and self.rung < len(self.ladder) - 1
                ):
                    self.rung += 1
                    self.stats.advances += 1
                    self._clean_streak = 0
                    record.action = "advance"
        self.stats.records.append(record)
        return out
