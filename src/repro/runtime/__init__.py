"""Quality metrics, the greedy tuner, and online calibration."""

from .calibration import CalibratedRuntime, CalibrationStats
from .quality import (
    L1_NORM,
    L2_NORM,
    MEAN_RELATIVE,
    QualityMetric,
    l1_norm_error,
    l2_norm_error,
    mean_relative_error,
    relative_errors,
)
from .tuner import GreedyTuner, TuningResult, VariantProfile

__all__ = [
    "QualityMetric",
    "MEAN_RELATIVE",
    "L1_NORM",
    "L2_NORM",
    "mean_relative_error",
    "l1_norm_error",
    "l2_norm_error",
    "relative_errors",
    "GreedyTuner",
    "TuningResult",
    "VariantProfile",
    "CalibratedRuntime",
    "CalibrationStats",
]
