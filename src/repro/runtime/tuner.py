"""The runtime tuner (paper Fig 2, right-hand box).

Paraprox's compiler emits approximate kernels with knobs; a Green/SAGE-
style runtime then *profiles* them on training inputs and greedily picks
the fastest variant whose measured output quality satisfies the TOQ,
falling back to the exact kernel when nothing qualifies.  Modelled cycles
come from the device cost model, quality from the application's metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..device import CostModel, DeviceSpec
from ..errors import SerializationError, TuningError
from ..obs import trace as obs_trace


@dataclass
class VariantProfile:
    """Measured behaviour of one variant on the training inputs.

    ``variant_name`` preserves the identity of a profile that was
    deserialized from :meth:`TuningResult.from_dict` before its variant
    object has been rebound (see :meth:`GreedyTuner.resume`).
    """

    variant: object  # ApproxKernel | ScanVariant | None for exact
    quality: float
    cycles: float
    speedup: float
    variant_name: Optional[str] = None

    @property
    def name(self) -> str:
        if self.variant is not None:
            return self.variant.name
        return self.variant_name or "exact"

    @property
    def is_exact(self) -> bool:
        return self.variant is None and (self.variant_name in (None, "exact"))


@dataclass
class TuningResult:
    """Outcome of tuning one application for one device.

    ``resumed`` records whether the result was restored from a
    serialized snapshot (:meth:`GreedyTuner.resume`) rather than
    measured; serving sessions surface it as the tune cache state.
    """

    app: str
    device: str
    toq: float
    chosen: VariantProfile
    profiles: List[VariantProfile] = field(default_factory=list)
    resumed: bool = False

    @property
    def speedup(self) -> float:
        return self.chosen.speedup

    @property
    def quality(self) -> float:
        return self.chosen.quality

    def frontier(self) -> List[VariantProfile]:
        """Quality/speedup pairs sorted by quality, for Fig-12-style
        tradeoff curves (exact point included)."""
        return sorted(self.profiles, key=lambda p: -p.quality)

    def summary(self) -> dict:
        """A JSON-serialisable record of this tuning run — what a
        deployment would persist to skip retuning on restart."""
        def row(p: VariantProfile) -> dict:
            return {
                "name": p.name,
                "quality": float(p.quality),
                "speedup": float(p.speedup),
                "knobs": _plain(getattr(p.variant, "knobs", {})),
            }

        return {
            "app": self.app,
            "device": self.device,
            "toq": float(self.toq),
            "chosen": row(self.chosen),
            "profiles": [row(p) for p in self.profiles],
        }

    def to_json(self) -> str:
        import json

        return json.dumps(self.summary(), indent=2)

    # -- round-trip serialization (disk cache / session restarts) ------------

    def to_dict(self) -> dict:
        """A complete JSON-serialisable form; unlike :meth:`summary` it also
        records modelled cycles so :meth:`from_dict` restores every field."""
        def row(p: VariantProfile) -> dict:
            return {
                "name": p.name,
                "quality": float(p.quality),
                "cycles": float(p.cycles),
                "speedup": float(p.speedup),
            }

        return {
            "app": self.app,
            "device": self.device,
            "toq": float(self.toq),
            "chosen": self.chosen.name,
            "profiles": [row(p) for p in self.profiles],
            "resumed": bool(self.resumed),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TuningResult":
        """Rebuild a result whose profiles carry names but no live variant
        objects; :meth:`rebind` (or :meth:`GreedyTuner.resume`) reattaches
        compiled variants.  Malformed data raises
        :class:`~repro.errors.SerializationError`."""
        if not isinstance(data, dict):
            raise SerializationError(
                f"TuningResult.from_dict expects a dict, "
                f"got {type(data).__name__}"
            )
        missing = [
            k for k in ("app", "device", "toq", "chosen", "profiles")
            if k not in data
        ]
        if missing:
            raise SerializationError(
                f"TuningResult.from_dict: missing keys {missing}"
            )
        toq = data["toq"]
        if not isinstance(toq, (int, float)) or not 0.0 < float(toq) <= 1.0:
            raise SerializationError(
                f"TuningResult.from_dict: toq must be in (0, 1], got {toq!r}"
            )
        rows = data["profiles"]
        if not isinstance(rows, list):
            raise SerializationError(
                f"TuningResult.from_dict: profiles must be a list of dicts, "
                f"got {type(rows).__name__}"
            )
        profiles: List[VariantProfile] = []
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                raise SerializationError(
                    f"TuningResult.from_dict: profile {i} must be a dict, "
                    f"got {type(row).__name__}: {row!r}"
                )
            bad = [
                k for k in ("name", "quality", "cycles", "speedup")
                if not isinstance(row.get(k), (str if k == "name" else (int, float)))
            ]
            if bad:
                raise SerializationError(
                    f"TuningResult.from_dict: profile {i} has missing or "
                    f"mistyped keys {bad}: {row!r}"
                )
            profiles.append(
                VariantProfile(
                    variant=None,
                    quality=float(row["quality"]),
                    cycles=float(row["cycles"]),
                    speedup=float(row["speedup"]),
                    variant_name=str(row["name"]),
                )
            )
        chosen_name = data["chosen"]
        chosen = next((p for p in profiles if p.name == chosen_name), None)
        if chosen is None:
            raise SerializationError(
                f"TuningResult.from_dict: chosen variant {chosen_name!r} "
                f"not among profiles {[p.name for p in profiles]}"
            )
        return cls(
            app=str(data["app"]),
            device=str(data["device"]),
            toq=float(toq),
            chosen=chosen,
            profiles=profiles,
            resumed=bool(data.get("resumed", False)),
        )

    def rebind(self, variants) -> "TuningResult":
        """Reattach live variant objects (matched by name) to profiles that
        were deserialized.  Profiles whose variant is no longer in the
        compiled set keep ``variant=None`` and stay name-only; the chosen
        profile must rebind (or be exact) for the result to be runnable."""
        by_name = {v.name: v for v in variants}
        for p in self.profiles:
            if p.variant is None and p.variant_name not in (None, "exact"):
                p.variant = by_name.get(p.variant_name)
        if (
            self.chosen.variant is None
            and self.chosen.variant_name not in (None, "exact")
        ):
            raise TuningError(
                f"cannot rebind chosen variant {self.chosen.name!r}: not in "
                f"the compiled set {sorted(by_name)}"
            )
        return self


def _plain(knobs: dict) -> dict:
    """Knob values coerced to JSON-friendly types."""
    out = {}
    for k, v in (knobs or {}).items():
        if isinstance(v, tuple):
            out[k] = list(v)
        elif isinstance(v, (str, int, float, bool, list)) or v is None:
            out[k] = v
        else:
            out[k] = str(v)
    return out


class GreedyTuner:
    """Profiles variants and picks the fastest that satisfies the TOQ.

    ``workers`` > 1 evaluates variants concurrently on the shared
    ``"profile"`` thread pool (each worker reuses the exact-run outputs,
    computed once up front); profile order and the tuning result are
    identical to the serial path.  ``profile_cache`` (a
    :class:`~repro.parallel.ProfileCache`) memoizes per-(variant,
    input-set) measurements across ``profile`` calls, so a session
    recalibration only re-measures variants whose IR or inputs changed.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        toq: float = 0.90,
        workers: int = 1,
        profile_cache=None,
    ) -> None:
        if not 0.0 < toq <= 1.0:
            raise TuningError(f"TOQ must be in (0, 1], got {toq}")
        self.spec = spec
        self.cost_model = CostModel(spec)
        self.toq = toq
        from ..parallel.pool import resolve_workers

        self.workers = resolve_workers(workers)
        self.profile_cache = profile_cache

    def profile(
        self, app, variants, inputs, repeats: int = 1, exclude=()
    ) -> TuningResult:
        """Run the exact program and every variant on ``inputs`` and build
        the tuning result.

        ``repeats`` > 1 averages quality over several fresh input sets
        (the paper trains over its first 10 executions).  ``exclude``
        names variants barred from being *chosen* (e.g. quarantined by a
        circuit breaker); they are still profiled, so their measurements
        stay warm for re-admission.
        """
        with obs_trace.span(
            "tune.profile", app=app.name, workers=self.workers, repeats=repeats
        ):
            return self._profile(app, variants, inputs, repeats, exclude)

    def _profile(
        self, app, variants, inputs, repeats: int, exclude
    ) -> TuningResult:
        from ..parallel.pool import parallel_map
        from ..parallel.profiler import profile_key

        input_sets = [inputs]
        for r in range(1, repeats):
            input_sets.append(app.generate_inputs(seed=app.seed + 1000 + r))

        exact_runs = [app.run_exact(i) for i in input_sets]
        exact_cycles = sum(
            self.cost_model.cycles(t) for _o, t in exact_runs
        ) / len(exact_runs)

        device = self.spec.kind.value
        cache = self.profile_cache

        def measure(variant) -> VariantProfile:
            with obs_trace.span("tune.measure", variant=variant.name) as span:
                qualities, cycles = [], []
                cache_hits = 0
                for (exact_out, _t), ins in zip(exact_runs, input_sets):
                    key = (
                        profile_key(app.name, device, variant, ins)
                        if cache is not None
                        else None
                    )
                    hit = cache.get(key) if cache is not None else None
                    if hit is None:
                        out, trace = app.run_variant(variant, ins)
                        hit = (
                            float(app.quality(out, exact_out)),
                            float(self.cost_model.cycles(trace)),
                        )
                        if cache is not None:
                            cache.put(key, hit)
                    else:
                        cache_hits += 1
                    qualities.append(hit[0])
                    cycles.append(hit[1])
                mean_cycles = sum(cycles) / len(cycles)
                span.set(cache_hits=cache_hits, input_sets=len(input_sets))
                return VariantProfile(
                    variant=variant,
                    quality=sum(qualities) / len(qualities),
                    cycles=mean_cycles,
                    speedup=exact_cycles / mean_cycles if mean_cycles > 0 else 0.0,
                )

        profiles = [
            VariantProfile(
                variant=None, quality=1.0, cycles=exact_cycles, speedup=1.0
            )
        ]
        profiles.extend(
            parallel_map("profile", self.workers, measure, list(variants))
        )

        chosen = self.choose(profiles, exclude=exclude)
        return TuningResult(
            app=app.name,
            device=self.spec.kind.value,
            toq=self.toq,
            chosen=chosen,
            profiles=profiles,
        )

    def choose(
        self, profiles: List[VariantProfile], exclude=()
    ) -> VariantProfile:
        """Fastest variant meeting the TOQ; the exact program otherwise.

        Ties are broken deterministically: highest speedup, then highest
        quality, then lexicographically smallest name — so the pick never
        depends on variant enumeration order.  Variants named in
        ``exclude`` (quarantined) are never chosen; the exact program is
        exempt — there must always be something to serve.
        """
        exclude = set(exclude)
        eligible = [
            p
            for p in profiles
            if p.quality >= self.toq and (p.is_exact or p.name not in exclude)
        ]
        if not eligible:
            return next(p for p in profiles if p.is_exact)
        return min(eligible, key=lambda p: (-p.speedup, -p.quality, p.name))

    def resume(self, app, variants, data: dict, exclude=()) -> TuningResult:
        """Resume tuning from a serialized :class:`TuningResult` instead of
        re-profiling from scratch.

        The persisted profiles are rebound to the freshly compiled
        ``variants`` by name.  When every profiled variant (including the
        chosen one) rebinds and the persisted TOQ matches this tuner's, the
        result is returned as-is — the near-free restart path a serving
        session uses.  When the variant set has drifted (new names, missing
        names) or the TOQ changed, the stale profiles are discarded and the
        variants re-profiled.  A restored result whose chosen variant is in
        ``exclude`` (quarantined since it was persisted) is re-chosen from
        the restored profiles without re-measuring.
        """
        try:
            restored = TuningResult.from_dict(data)
        except SerializationError:
            return self.profile(
                app, variants, app.generate_inputs(seed=app.seed),
                exclude=exclude,
            )
        names = {v.name for v in variants}
        persisted = {
            p.name for p in restored.profiles if p.variant_name != "exact"
        }
        if (
            abs(restored.toq - self.toq) > 1e-12
            or restored.device != self.spec.kind.value
            or persisted != names
        ):
            return self.profile(
                app, variants, app.generate_inputs(seed=app.seed),
                exclude=exclude,
            )
        restored.rebind(variants)
        restored.resumed = True
        if exclude and restored.chosen.name in set(exclude):
            restored.chosen = self.choose(restored.profiles, exclude=exclude)
        return restored
