"""The runtime tuner (paper Fig 2, right-hand box).

Paraprox's compiler emits approximate kernels with knobs; a Green/SAGE-
style runtime then *profiles* them on training inputs and greedily picks
the fastest variant whose measured output quality satisfies the TOQ,
falling back to the exact kernel when nothing qualifies.  Modelled cycles
come from the device cost model, quality from the application's metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..device import CostModel, DeviceSpec
from ..errors import TuningError


@dataclass
class VariantProfile:
    """Measured behaviour of one variant on the training inputs."""

    variant: object  # ApproxKernel | ScanVariant | None for exact
    quality: float
    cycles: float
    speedup: float

    @property
    def name(self) -> str:
        return "exact" if self.variant is None else self.variant.name


@dataclass
class TuningResult:
    """Outcome of tuning one application for one device."""

    app: str
    device: str
    toq: float
    chosen: VariantProfile
    profiles: List[VariantProfile] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        return self.chosen.speedup

    @property
    def quality(self) -> float:
        return self.chosen.quality

    def frontier(self) -> List[VariantProfile]:
        """Quality/speedup pairs sorted by quality, for Fig-12-style
        tradeoff curves (exact point included)."""
        return sorted(self.profiles, key=lambda p: -p.quality)

    def summary(self) -> dict:
        """A JSON-serialisable record of this tuning run — what a
        deployment would persist to skip retuning on restart."""
        def row(p: VariantProfile) -> dict:
            return {
                "name": p.name,
                "quality": float(p.quality),
                "speedup": float(p.speedup),
                "knobs": _plain(getattr(p.variant, "knobs", {})),
            }

        return {
            "app": self.app,
            "device": self.device,
            "toq": float(self.toq),
            "chosen": row(self.chosen),
            "profiles": [row(p) for p in self.profiles],
        }

    def to_json(self) -> str:
        import json

        return json.dumps(self.summary(), indent=2)


def _plain(knobs: dict) -> dict:
    """Knob values coerced to JSON-friendly types."""
    out = {}
    for k, v in (knobs or {}).items():
        if isinstance(v, tuple):
            out[k] = list(v)
        elif isinstance(v, (str, int, float, bool, list)) or v is None:
            out[k] = v
        else:
            out[k] = str(v)
    return out


class GreedyTuner:
    """Profiles variants and picks the fastest that satisfies the TOQ."""

    def __init__(self, spec: DeviceSpec, toq: float = 0.90) -> None:
        if not 0.0 < toq <= 1.0:
            raise TuningError(f"TOQ must be in (0, 1], got {toq}")
        self.spec = spec
        self.cost_model = CostModel(spec)
        self.toq = toq

    def profile(self, app, variants, inputs, repeats: int = 1) -> TuningResult:
        """Run the exact program and every variant on ``inputs`` and build
        the tuning result.

        ``repeats`` > 1 averages quality over several fresh input sets
        (the paper trains over its first 10 executions).
        """
        input_sets = [inputs]
        for r in range(1, repeats):
            input_sets.append(app.generate_inputs(seed=app.seed + 1000 + r))

        exact_runs = [app.run_exact(i) for i in input_sets]
        exact_cycles = sum(
            self.cost_model.cycles(t) for _o, t in exact_runs
        ) / len(exact_runs)

        profiles = [
            VariantProfile(
                variant=None, quality=1.0, cycles=exact_cycles, speedup=1.0
            )
        ]
        for variant in variants:
            qualities, cycles = [], []
            for (exact_out, _t), ins in zip(exact_runs, input_sets):
                out, trace = app.run_variant(variant, ins)
                qualities.append(app.quality(out, exact_out))
                cycles.append(self.cost_model.cycles(trace))
            mean_cycles = sum(cycles) / len(cycles)
            profiles.append(
                VariantProfile(
                    variant=variant,
                    quality=sum(qualities) / len(qualities),
                    cycles=mean_cycles,
                    speedup=exact_cycles / mean_cycles if mean_cycles > 0 else 0.0,
                )
            )

        chosen = self.choose(profiles)
        return TuningResult(
            app=app.name,
            device=self.spec.kind.value,
            toq=self.toq,
            chosen=chosen,
            profiles=profiles,
        )

    def choose(self, profiles: List[VariantProfile]) -> VariantProfile:
        """Fastest variant meeting the TOQ; the exact program otherwise."""
        eligible = [p for p in profiles if p.quality >= self.toq]
        if not eligible:
            return next(p for p in profiles if p.variant is None)
        return max(eligible, key=lambda p: p.speedup)
