"""The runtime tuner (paper Fig 2, right-hand box).

Paraprox's compiler emits approximate kernels with knobs; a Green/SAGE-
style runtime then *profiles* them on training inputs and greedily picks
the fastest variant whose measured output quality satisfies the TOQ,
falling back to the exact kernel when nothing qualifies.  Modelled cycles
come from the device cost model, quality from the application's metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..device import CostModel, DeviceSpec
from ..errors import SerializationError, TuningError
from ..obs import trace as obs_trace


@dataclass
class VariantProfile:
    """Measured behaviour of one variant on the training inputs.

    ``variant_name`` preserves the identity of a profile that was
    deserialized from :meth:`TuningResult.from_dict` before its variant
    object has been rebound (see :meth:`GreedyTuner.resume`).

    ``predicted`` marks profiles a registry warm start filled in from
    the surrogate/front instead of measuring; they populate the
    recalibration ladder but are never *chosen* directly.
    """

    variant: object  # ApproxKernel | ScanVariant | None for exact
    quality: float
    cycles: float
    speedup: float
    variant_name: Optional[str] = None
    predicted: bool = False

    @property
    def name(self) -> str:
        if self.variant is not None:
            return self.variant.name
        return self.variant_name or "exact"

    @property
    def is_exact(self) -> bool:
        return self.variant is None and (self.variant_name in (None, "exact"))


@dataclass
class TuningResult:
    """Outcome of tuning one application for one device.

    ``resumed`` records whether the result was restored from a
    serialized snapshot (:meth:`GreedyTuner.resume`) rather than
    measured; serving sessions surface it as the tune cache state.
    """

    app: str
    device: str
    toq: float
    chosen: VariantProfile
    profiles: List[VariantProfile] = field(default_factory=list)
    resumed: bool = False
    #: how the profiling run was seeded: "cold" (full sweep) or "warm"
    #: (registry knee + local refinement).
    seed_mode: str = "cold"

    @property
    def speedup(self) -> float:
        return self.chosen.speedup

    @property
    def quality(self) -> float:
        return self.chosen.quality

    def frontier(self) -> List[VariantProfile]:
        """Quality/speedup pairs sorted by quality, for Fig-12-style
        tradeoff curves (exact point included)."""
        return sorted(self.profiles, key=lambda p: -p.quality)

    def summary(self) -> dict:
        """A JSON-serialisable record of this tuning run — what a
        deployment would persist to skip retuning on restart."""
        def row(p: VariantProfile) -> dict:
            return {
                "name": p.name,
                "quality": float(p.quality),
                "speedup": float(p.speedup),
                "knobs": _plain(getattr(p.variant, "knobs", {})),
            }

        return {
            "app": self.app,
            "device": self.device,
            "toq": float(self.toq),
            "chosen": row(self.chosen),
            "profiles": [row(p) for p in self.profiles],
        }

    def to_json(self) -> str:
        import json

        return json.dumps(self.summary(), indent=2)

    # -- round-trip serialization (disk cache / session restarts) ------------

    def to_dict(self) -> dict:
        """A complete JSON-serialisable form; unlike :meth:`summary` it also
        records modelled cycles so :meth:`from_dict` restores every field."""
        def row(p: VariantProfile) -> dict:
            return {
                "name": p.name,
                "quality": float(p.quality),
                "cycles": float(p.cycles),
                "speedup": float(p.speedup),
                "predicted": bool(p.predicted),
            }

        return {
            "app": self.app,
            "device": self.device,
            "toq": float(self.toq),
            "chosen": self.chosen.name,
            "profiles": [row(p) for p in self.profiles],
            "resumed": bool(self.resumed),
            "seed_mode": str(self.seed_mode),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TuningResult":
        """Rebuild a result whose profiles carry names but no live variant
        objects; :meth:`rebind` (or :meth:`GreedyTuner.resume`) reattaches
        compiled variants.  Malformed data raises
        :class:`~repro.errors.SerializationError`."""
        if not isinstance(data, dict):
            raise SerializationError(
                f"TuningResult.from_dict expects a dict, "
                f"got {type(data).__name__}"
            )
        missing = [
            k for k in ("app", "device", "toq", "chosen", "profiles")
            if k not in data
        ]
        if missing:
            raise SerializationError(
                f"TuningResult.from_dict: missing keys {missing}"
            )
        toq = data["toq"]
        if not isinstance(toq, (int, float)) or not 0.0 < float(toq) <= 1.0:
            raise SerializationError(
                f"TuningResult.from_dict: toq must be in (0, 1], got {toq!r}"
            )
        rows = data["profiles"]
        if not isinstance(rows, list):
            raise SerializationError(
                f"TuningResult.from_dict: profiles must be a list of dicts, "
                f"got {type(rows).__name__}"
            )
        profiles: List[VariantProfile] = []
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                raise SerializationError(
                    f"TuningResult.from_dict: profile {i} must be a dict, "
                    f"got {type(row).__name__}: {row!r}"
                )
            bad = [
                k for k in ("name", "quality", "cycles", "speedup")
                if not isinstance(row.get(k), (str if k == "name" else (int, float)))
            ]
            if bad:
                raise SerializationError(
                    f"TuningResult.from_dict: profile {i} has missing or "
                    f"mistyped keys {bad}: {row!r}"
                )
            profiles.append(
                VariantProfile(
                    variant=None,
                    quality=float(row["quality"]),
                    cycles=float(row["cycles"]),
                    speedup=float(row["speedup"]),
                    variant_name=str(row["name"]),
                    predicted=bool(row.get("predicted", False)),
                )
            )
        chosen_name = data["chosen"]
        chosen = next((p for p in profiles if p.name == chosen_name), None)
        if chosen is None:
            raise SerializationError(
                f"TuningResult.from_dict: chosen variant {chosen_name!r} "
                f"not among profiles {[p.name for p in profiles]}"
            )
        return cls(
            app=str(data["app"]),
            device=str(data["device"]),
            toq=float(toq),
            chosen=chosen,
            profiles=profiles,
            resumed=bool(data.get("resumed", False)),
            seed_mode=str(data.get("seed_mode", "cold")),
        )

    def rebind(self, variants) -> "TuningResult":
        """Reattach live variant objects (matched by name) to profiles that
        were deserialized.  Profiles whose variant is no longer in the
        compiled set keep ``variant=None`` and stay name-only; the chosen
        profile must rebind (or be exact) for the result to be runnable."""
        by_name = {v.name: v for v in variants}
        for p in self.profiles:
            if p.variant is None and p.variant_name not in (None, "exact"):
                p.variant = by_name.get(p.variant_name)
        if (
            self.chosen.variant is None
            and self.chosen.variant_name not in (None, "exact")
        ):
            raise TuningError(
                f"cannot rebind chosen variant {self.chosen.name!r}: not in "
                f"the compiled set {sorted(by_name)}"
            )
        return self


def _plain(knobs: dict) -> dict:
    """Knob values coerced to JSON-friendly types."""
    out = {}
    for k, v in (knobs or {}).items():
        if isinstance(v, tuple):
            out[k] = list(v)
        elif isinstance(v, (str, int, float, bool, list)) or v is None:
            out[k] = v
        else:
            out[k] = str(v)
    return out


class GreedyTuner:
    """Profiles variants and picks the fastest that satisfies the TOQ.

    ``workers`` > 1 evaluates variants concurrently on the shared
    ``"profile"`` thread pool (each worker reuses the exact-run outputs,
    computed once up front); profile order and the tuning result are
    identical to the serial path.  ``profile_cache`` (a
    :class:`~repro.parallel.ProfileCache`) memoizes per-(variant,
    input-set) measurements across ``profile`` calls, so a session
    recalibration only re-measures variants whose IR or inputs changed.

    ``registry`` (a :class:`~repro.registry.VariantRegistry`) switches
    profiling into the *seeded* mode: when the registry holds a usable
    Pareto front for this (kernel, device, input-sketch) key, tuning
    starts from the front's TOQ-feasible knee and refines locally —
    measuring a fraction of the ladder — and every measurement (seeded
    or cold) is written back so the next session starts warmer.  After a
    ``profile`` call, ``last_measured``, ``last_seed_mode`` and
    ``last_registry_key`` describe what happened.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        toq: float = 0.90,
        workers: int = 1,
        profile_cache=None,
        registry=None,
    ) -> None:
        if not 0.0 < toq <= 1.0:
            raise TuningError(f"TOQ must be in (0, 1], got {toq}")
        self.spec = spec
        self.cost_model = CostModel(spec)
        self.toq = toq
        from ..parallel.pool import resolve_workers

        self.workers = resolve_workers(workers)
        self.profile_cache = profile_cache
        self.registry = registry
        #: variants actually measured by the most recent ``profile`` call.
        self.last_measured = 0
        #: "cold", "warm" or "off" after the most recent ``profile`` call.
        self.last_seed_mode = "off"
        #: the registry key the most recent ``profile`` call tuned under.
        self.last_registry_key: Optional[str] = None

    def profile(
        self, app, variants, inputs, repeats: int = 1, exclude=()
    ) -> TuningResult:
        """Run the exact program and every variant on ``inputs`` and build
        the tuning result.

        ``repeats`` > 1 averages quality over several fresh input sets
        (the paper trains over its first 10 executions).  ``exclude``
        names variants barred from being *chosen* (e.g. quarantined by a
        circuit breaker); they are still profiled, so their measurements
        stay warm for re-admission.
        """
        with obs_trace.span(
            "tune.profile", app=app.name, workers=self.workers, repeats=repeats
        ):
            return self._profile(app, variants, inputs, repeats, exclude)

    def _profile(
        self, app, variants, inputs, repeats: int, exclude
    ) -> TuningResult:
        from ..parallel.pool import parallel_map
        from ..parallel.profiler import profile_key

        input_sets = [inputs]
        for r in range(1, repeats):
            input_sets.append(app.generate_inputs(seed=app.seed + 1000 + r))

        exact_runs = [app.run_exact(i) for i in input_sets]
        exact_cycles = sum(
            self.cost_model.cycles(t) for _o, t in exact_runs
        ) / len(exact_runs)

        device = self.spec.kind.value
        cache = self.profile_cache

        def measure(variant) -> VariantProfile:
            with obs_trace.span("tune.measure", variant=variant.name) as span:
                qualities, cycles = [], []
                cache_hits = 0
                for (exact_out, _t), ins in zip(exact_runs, input_sets):
                    key = (
                        profile_key(app.name, device, variant, ins)
                        if cache is not None
                        else None
                    )
                    hit = cache.get(key) if cache is not None else None
                    if hit is None:
                        out, trace = app.run_variant(variant, ins)
                        hit = (
                            float(app.quality(out, exact_out)),
                            float(self.cost_model.cycles(trace)),
                        )
                        if cache is not None:
                            cache.put(key, hit)
                    else:
                        cache_hits += 1
                    qualities.append(hit[0])
                    cycles.append(hit[1])
                mean_cycles = sum(cycles) / len(cycles)
                span.set(cache_hits=cache_hits, input_sets=len(input_sets))
                return VariantProfile(
                    variant=variant,
                    quality=sum(qualities) / len(qualities),
                    cycles=mean_cycles,
                    speedup=exact_cycles / mean_cycles if mean_cycles > 0 else 0.0,
                )

        variants = list(variants)
        registry = self.registry
        registry_key = None
        front = []
        if registry is not None:
            registry_key = registry.resolve_key(app, self.spec, input_sets[0])
            front = registry.lookup(registry_key)
        self.last_registry_key = registry_key

        exact_profile = VariantProfile(
            variant=None, quality=1.0, cycles=exact_cycles, speedup=1.0
        )
        warm = (
            self._warm_profiles(
                variants, front, measure, exact_cycles, exclude, registry_key
            )
            if registry is not None and front
            else None
        )
        if warm is not None:
            profiles = [exact_profile] + warm
            seed_mode = "warm"
        else:
            profiles = [exact_profile] + parallel_map(
                "profile", self.workers, measure, variants
            )
            self.last_measured = len(variants)
            seed_mode = "cold" if registry is not None else "off"
        self.last_seed_mode = seed_mode

        if registry is not None:
            self._write_back(registry, registry_key, profiles)
            from ..registry.store import _Metrics

            _Metrics.get().warmstarts.labels(mode=seed_mode).inc()

        # Predicted profiles populate the recalibration ladder but are
        # never chosen sight-unseen: only measured evidence picks the
        # serving variant.
        chosen = self.choose(
            [p for p in profiles if not p.predicted], exclude=exclude
        )
        return TuningResult(
            app=app.name,
            device=self.spec.kind.value,
            toq=self.toq,
            chosen=chosen,
            profiles=profiles,
            seed_mode=seed_mode if seed_mode != "off" else "cold",
        )

    # -- registry seeding ------------------------------------------------------

    def _warm_profiles(
        self, variants, front, measure, exact_cycles, exclude, registry_key
    ) -> Optional[List[VariantProfile]]:
        """Knee-seeded local refinement over the registry front.

        Returns the non-exact profiles (measured plus surrogate-predicted)
        or None when the front is not trustworthy for this variant set —
        too few points, no TOQ-feasible knee, or a knee naming a variant
        that no longer exists — in which case the caller falls back to
        the cold sweep.

        The measurement budget is capped at half the ladder, which is
        what makes warm recalibration cheap by construction: starting at
        the knee (the variant greedy tuning would have converged to), a
        miss steps down toward safer rungs until something clears the
        TOQ or the budget runs out.
        """
        from ..registry.pareto import knee

        registry = self.registry
        by_name = {v.name: v for v in variants}
        known = [p for p in front if p.variant in by_name]
        if not known:
            return None
        # Evidence gate: total stored points, not front survivors — a
        # front can legitimately collapse to one dominating variant.
        evidence = [
            p for p in registry.points(registry_key) if p.variant in by_name
        ]
        if len(evidence) < registry.min_points:
            return None
        knee_point = knee(known, self.toq, registry.margin)
        if knee_point is None:
            return None

        predict = self._predictor(registry, registry_key, front)

        def predicted_speedup(variant) -> float:
            _q, s = predict(variant)
            return s

        # Slow-but-safe to fast-but-risky, exactly the recalibrator's
        # ladder orientation; refinement walks it downward from the knee.
        order = sorted(variants, key=lambda v: (predicted_speedup(v), v.name))
        start = next(
            i for i, v in enumerate(order) if v.name == knee_point.variant
        )
        budget = max(1, len(variants) // 2)
        excluded = set(exclude)

        measured: Dict[str, VariantProfile] = {}
        found = False
        index = start
        while index >= 0 and len(measured) < budget:
            candidate = order[index]
            index -= 1
            if candidate.name in excluded:
                continue
            profile = measure(candidate)
            measured[candidate.name] = profile
            if profile.quality >= self.toq:
                found = True
                break
        if not found and len(measured) < budget:
            # Nothing at or below the knee qualified; probe one rung
            # above in case the whole front shifted upward.
            for candidate in order[start + 1 :]:
                if len(measured) >= budget:
                    break
                if candidate.name in excluded or candidate.name in measured:
                    continue
                profile = measure(candidate)
                measured[candidate.name] = profile
                if profile.quality >= self.toq:
                    break

        self.last_measured = len(measured)
        profiles: List[VariantProfile] = []
        for variant in variants:
            hit = measured.get(variant.name)
            if hit is not None:
                profiles.append(hit)
                continue
            quality, speedup = predict(variant)
            cycles = exact_cycles / speedup if speedup > 0 else exact_cycles
            profiles.append(
                VariantProfile(
                    variant=variant,
                    quality=quality,
                    cycles=cycles,
                    speedup=speedup,
                    predicted=True,
                )
            )
        return profiles

    @staticmethod
    def _predictor(registry, registry_key, front):
        """(quality, speedup) estimator: exact front evidence by name,
        surrogate for variants the registry has never seen."""
        by_variant = {p.variant: p for p in front}
        surrogate = registry.fit(registry_key)

        def predict(variant):
            point = by_variant.get(variant.name)
            if point is not None:
                return point.quality, point.speedup
            knobs = dict(getattr(variant, "knobs", {}) or {})
            if surrogate.trained and knobs:
                return surrogate.predict(knobs)
            # Unknown and unmodelable: predict infeasible so it can
            # neither be chosen nor put on the ladder unmeasured.
            return 0.0, 1.0

        return predict

    def _write_back(self, registry, registry_key, profiles) -> None:
        """Persist every *measured* profile as registry evidence."""
        from ..parallel.profiler import variant_identity
        from ..registry.pareto import ParetoPoint

        points = [
            ParetoPoint(
                variant=p.name,
                quality=float(p.quality),
                speedup=float(p.speedup),
                cycles=float(p.cycles),
                knobs=_plain(getattr(p.variant, "knobs", {}) or {}),
                identity=variant_identity(p.variant),
            )
            for p in profiles
            if not p.is_exact and not p.predicted
        ]
        registry.record_many(registry_key, points)

    def choose(
        self, profiles: List[VariantProfile], exclude=()
    ) -> VariantProfile:
        """Fastest variant meeting the TOQ; the exact program otherwise.

        Ties are broken deterministically: highest speedup, then highest
        quality, then lexicographically smallest name — so the pick never
        depends on variant enumeration order.  Variants named in
        ``exclude`` (quarantined) are never chosen; the exact program is
        exempt — there must always be something to serve.
        """
        exclude = set(exclude)
        eligible = [
            p
            for p in profiles
            if p.quality >= self.toq and (p.is_exact or p.name not in exclude)
        ]
        if not eligible:
            return next(p for p in profiles if p.is_exact)
        return min(eligible, key=lambda p: (-p.speedup, -p.quality, p.name))

    def resume(self, app, variants, data: dict, exclude=()) -> TuningResult:
        """Resume tuning from a serialized :class:`TuningResult` instead of
        re-profiling from scratch.

        The persisted profiles are rebound to the freshly compiled
        ``variants`` by name.  When every profiled variant (including the
        chosen one) rebinds and the persisted TOQ matches this tuner's, the
        result is returned as-is — the near-free restart path a serving
        session uses.  When the variant set has drifted (new names, missing
        names) or the TOQ changed, the stale profiles are discarded and the
        variants re-profiled.  A restored result whose chosen variant is in
        ``exclude`` (quarantined since it was persisted) is re-chosen from
        the restored profiles without re-measuring.
        """
        try:
            restored = TuningResult.from_dict(data)
        except SerializationError:
            return self.profile(
                app, variants, app.generate_inputs(seed=app.seed),
                exclude=exclude,
            )
        names = {v.name for v in variants}
        persisted = {
            p.name for p in restored.profiles if p.variant_name != "exact"
        }
        if (
            abs(restored.toq - self.toq) > 1e-12
            or restored.device != self.spec.kind.value
            or persisted != names
        ):
            return self.profile(
                app, variants, app.generate_inputs(seed=app.seed),
                exclude=exclude,
            )
        restored.rebind(variants)
        restored.resumed = True
        self.last_measured = 0
        self.last_seed_mode = "resume"
        if exclude and restored.chosen.name in set(exclude):
            restored.chosen = self.choose(restored.profiles, exclude=exclude)
        return restored
