"""Developer inspection CLI.

``python -m repro.tools`` exposes the compiler's intermediate artefacts —
the layers a user debugging a mis-detected kernel needs to see:

* ``list`` — the benchmark registry,
* ``inspect <app>`` — kernel source (CUDA or OpenCL dialect), detected
  patterns, Eq.-1 cost estimates, and the approximate variants Paraprox
  would generate with their knob settings,
* ``tune <app>`` — run the full pipeline and print the tuning frontier.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.latency import cycles_needed
from .apps import APP_CLASSES, make_app
from .approx.compiler import Paraprox
from .device import DeviceKind, spec_for
from .kernel.printer import print_function, print_module
from .patterns import PatternDetector


def cmd_list(_args) -> int:
    print(f"{'key':<14} {'application':<28} {'patterns (Table 1)':<22} metric")
    print("-" * 84)
    for key, cls in APP_CLASSES.items():
        info = cls.info
        print(
            f"{key:<14} {info.name:<28} {'+'.join(info.patterns):<22} "
            f"{info.error_metric}"
        )
    return 0


def _device(args) -> DeviceKind:
    return DeviceKind.CPU if args.device == "cpu" else DeviceKind.GPU


def cmd_inspect(args) -> int:
    app = make_app(args.app, scale=args.scale)
    spec = spec_for(_device(args))
    detector = PatternDetector(latency_table=spec.latencies)

    if not hasattr(app, "kernel"):
        print(f"{app.info.name} is a multi-kernel program; its pipeline:")
        print(f"  patterns (Table 1): {'+'.join(app.info.patterns)}")
        variant_set = Paraprox(target_quality=args.toq).compile(app)
        print(f"  variants: {variant_set.names()}")
        return 0

    module = app.kernel.module
    print(f"=== {app.info.name}: kernel source ({args.dialect}) ===")
    print(print_module(module, args.dialect))

    print("\n=== static costs (Eq. 1) ===")
    for fn in module.device_functions():
        print(
            f"  {fn.name}: {cycles_needed(fn, spec.latencies, module):.0f} cycles "
            f"(memoization threshold: {10 * spec.latencies.l1:.0f})"
        )

    print("\n=== detected patterns ===")
    for match in detector.detect(app.kernel).for_kernel(app.kernel.fn.name):
        extra = ""
        if hasattr(match, "candidates"):
            extra = f" candidates={match.candidates}"
        if hasattr(match, "tiles") and match.tiles:
            tile = match.tile
            extra = f" tile={tile.rows}x{tile.cols}"
        if hasattr(match, "loops"):
            extra = f" loops={[(l.variable, l.op) for l in match.loops]}"
        print(f"  {match.pattern.value}{extra}")

    paraprox = Paraprox(target_quality=args.toq)
    variant_set = paraprox.compile(app, _device(args))
    print(f"\n=== generated variants (TOQ {args.toq:.0%}) ===")
    print(variant_set.describe())
    if args.show_variant and variant_set:
        v = variant_set[0]
        print(f"\n=== rewritten kernel: {v.name} ({args.dialect}) ===")
        print(print_function(v.module[v.kernel], args.dialect))
    return 0


def cmd_tune(args) -> int:
    app = make_app(args.app, scale=args.scale)
    result = Paraprox(target_quality=args.toq).optimize(app, _device(args))
    print(f"{app.info.name} on {result.device} (TOQ {args.toq:.0%})")
    print(f"{'variant':<64} {'quality':>8} {'speedup':>8}")
    print("-" * 84)
    for p in result.frontier():
        marker = " <= chosen" if p is result.chosen else ""
        print(f"{p.name:<64} {p.quality:8.4f} {p.speedup:7.2f}x{marker}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools",
        description="Inspect Paraprox's detection and rewriting of the benchmarks.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark registry").set_defaults(
        func=cmd_list
    )

    def common(p):
        p.add_argument("app", choices=sorted(APP_CLASSES))
        p.add_argument("--toq", type=float, default=0.90)
        p.add_argument("--scale", type=float, default=None)
        p.add_argument("--device", choices=("gpu", "cpu"), default="gpu")

    inspect_p = sub.add_parser("inspect", help="source, patterns, variants")
    common(inspect_p)
    inspect_p.add_argument("--dialect", choices=("cuda", "opencl"), default="cuda")
    inspect_p.add_argument(
        "--show-variant", action="store_true", help="print the first rewritten kernel"
    )
    inspect_p.set_defaults(func=cmd_inspect)

    tune_p = sub.add_parser("tune", help="run the pipeline, print the frontier")
    common(tune_p)
    tune_p.set_defaults(func=cmd_tune)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
