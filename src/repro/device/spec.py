"""Device descriptions for the analytic performance model.

The paper measures wall-clock speedups on an NVIDIA GTX 560 and an Intel
Core i7 965; we model both machines with a small set of parameters —
instruction latency table, issue width, memory-system width, cache sizes —
and price execution *traces* against them (:mod:`repro.device.costmodel`).
Speedups are ratios of modelled cycles for exact vs. approximate traces on
the same device, so the absolute parallelism factors cancel where they
should and survive where they matter (compute- vs memory-bound shifts).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..analysis.latency import CPU_LATENCIES, GPU_LATENCIES, LatencyTable


class DeviceKind(enum.Enum):
    """The two machines of the paper's evaluation."""

    GPU = "gpu"
    CPU = "cpu"


@dataclass(frozen=True)
class DeviceSpec:
    """Parameters of one modelled machine.

    Attributes:
        kind: GPU or CPU.
        name: human-readable model name.
        latencies: per-instruction-class cycle costs.
        compute_width: how many thread-instructions retire per cycle
            device-wide (cores x IPC for CPUs, lanes for GPUs).
        memory_width: how many DRAM transactions are serviced per cycle
            across the memory system (cache/scratchpad *misses*).
        cache_width: how many cache-hit / shared-memory / constant-cache
            transactions are serviced per cycle — on a GPU each SM has its
            own L1, so aggregate hit bandwidth far exceeds DRAM width.
        l1_bytes: data-cache capacity used by the hit-rate model.
        shared_bytes: scratchpad capacity (GPU shared memory); lookup
            tables larger than this cannot use the ``shared`` space.
        constant_bytes: constant-cache capacity; tables larger than this
            thrash the broadcast cache (paper Fig 16's constant curve).
        clock_ghz: only used to render cycles as human-friendly time.
    """

    kind: DeviceKind
    name: str
    latencies: LatencyTable
    compute_width: float
    memory_width: float
    cache_width: float
    l1_bytes: int
    shared_bytes: int
    constant_bytes: int
    clock_ghz: float

    @property
    def is_gpu(self) -> bool:
        return self.kind is DeviceKind.GPU

    def with_cache_split(self, l1_bytes: int, shared_bytes: int) -> "DeviceSpec":
        """Fermi-class GPUs split one 64 KiB SRAM between L1 and shared
        memory; the paper's Fig-16 study flips the split per table
        placement ("we set the L1 cache size to 32KB and size of the
        shared memory to 16KB", and the reverse for shared tables)."""
        import dataclasses

        return dataclasses.replace(
            self, l1_bytes=l1_bytes, shared_bytes=shared_bytes
        )


#: NVIDIA GTX 560-class device: 336 CUDA cores, 48 KiB L1 (configurable
#: against shared memory, paper §4.4.2 flips the 16/48 split), 64 KiB
#: constant cache backing store with an 8 KiB working cache.
GTX560 = DeviceSpec(
    kind=DeviceKind.GPU,
    name="NVIDIA GTX 560 (modelled)",
    latencies=GPU_LATENCIES,
    compute_width=336.0,
    memory_width=24.0,
    cache_width=64.0,
    l1_bytes=32 * 1024,
    shared_bytes=48 * 1024,
    constant_bytes=8 * 1024,
    clock_ghz=1.62,
)

#: Intel Core i7 965-class device: 4 cores x ~2 sustained IPC with SSE.
CORE_I7 = DeviceSpec(
    kind=DeviceKind.CPU,
    name="Intel Core i7 965 (modelled)",
    latencies=CPU_LATENCIES,
    compute_width=16.0,
    memory_width=4.0,
    cache_width=8.0,
    l1_bytes=256 * 1024,  # effective L1+L2 per-core capacity
    shared_bytes=256 * 1024,  # "shared"/"constant" degrade to normal cache
    constant_bytes=256 * 1024,
    clock_ghz=3.2,
)


def spec_for(kind: DeviceKind) -> DeviceSpec:
    """The default modelled device of each kind."""
    return GTX560 if kind is DeviceKind.GPU else CORE_I7


def host_parallelism(workers: object = "auto") -> int:
    """Worker threads for the *host* machine actually running kernels.

    The specs above model the paper's machines for the analytic cost
    model; the sharded runtime (:mod:`repro.parallel`) instead executes
    on whatever box this process occupies.  ``"auto"`` resolves to the
    host's usable core count (scheduler affinity aware); an explicit
    positive int passes through validated.
    """
    from ..parallel.pool import resolve_workers

    return resolve_workers(workers)
