"""Modelled devices: a GTX-560-class GPU and a Core-i7-class CPU."""

from .costmodel import CostBreakdown, CostModel
from .spec import CORE_I7, GTX560, DeviceKind, DeviceSpec, host_parallelism, spec_for

__all__ = [
    "CostModel",
    "CostBreakdown",
    "DeviceKind",
    "DeviceSpec",
    "GTX560",
    "CORE_I7",
    "host_parallelism",
    "spec_for",
]
