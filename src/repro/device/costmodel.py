"""Analytic cost model: execution traces -> cycles on a modelled device.

The model prices the two resources a data-parallel machine can bottleneck
on and takes their sum:

* **compute**: every traced instruction issue costs its latency-class
  cycles, divided by the device's issue width;
* **memory**: every traced access stream costs transactions.  Global
  streams pay per 128-byte segment transaction (the coalescing statistics
  come straight from the interpreter's address samples), with a hit-rate
  model splitting transactions between L1 and DRAM latencies by the
  stream's working set.  Shared/constant streams pay fixed scratchpad
  latencies, except that constant tables larger than the broadcast cache
  spill to global cost (paper Fig 16's constant curve), and atomics pay
  their intra-warp serialization chain (what makes Naive Bayes's atomics
  so expensive on the GPU, §4.3).

Absolute numbers are not the point — the paper's testbed is silicon we do
not have — but *ratios* of modelled cycles reproduce the paper's speedup
shapes, and every experiment reports those ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..engine.trace import SEGMENT_BYTES, WARP_SIZE, MemStats, Trace
from ..errors import DeviceError
from .spec import DeviceSpec


@dataclass
class CostBreakdown:
    """Cycles attributed to each resource, plus per-stream detail."""

    compute_cycles: float = 0.0
    memory_cycles: float = 0.0
    #: (space, kind) -> cycles
    streams: Dict = field(default_factory=dict)
    #: extra transactions beyond one per warp, summed over global streams
    serialization_transactions: float = 0.0
    ideal_transactions: float = 0.0

    @property
    def total_cycles(self) -> float:
        return self.compute_cycles + self.memory_cycles

    @property
    def serialization_overhead(self) -> float:
        """Fraction of global-memory transactions caused by uncoalesced
        access (0 = perfectly coalesced) — the quantity of paper Fig 17."""
        total = self.ideal_transactions + self.serialization_transactions
        if total <= 0:
            return 0.0
        return self.serialization_transactions / total


class CostModel:
    """Prices :class:`~repro.engine.trace.Trace` objects for one device."""

    def __init__(self, spec: DeviceSpec) -> None:
        self.spec = spec

    # -- public API ----------------------------------------------------------

    def cycles(self, trace: Trace) -> float:
        return self.breakdown(trace).total_cycles

    def seconds(self, trace: Trace) -> float:
        return self.cycles(trace) / (self.spec.clock_ghz * 1e9)

    def speedup(self, baseline: Trace, optimized: Trace) -> float:
        """Modelled speedup of ``optimized`` relative to ``baseline``."""
        opt = self.cycles(optimized)
        if opt <= 0:
            raise DeviceError("optimized trace has zero modelled cost")
        return self.cycles(baseline) / opt

    def breakdown(self, trace: Trace) -> CostBreakdown:
        out = CostBreakdown()
        table = self.spec.latencies
        issue = 0.0
        for (cls, _dtype), count in trace.op_counts.items():
            issue += count * table.of_class(cls)
        # Every memory access also occupies an issue slot (the LSU pipeline)
        # regardless of where the data comes from — removing load
        # *instructions* is a large part of what the stencil optimization
        # buys even when the data was cache-resident.
        for stats in trace.mem.values():
            issue += stats.accesses * table.of_class("alu")
        out.compute_cycles = issue / self.spec.compute_width
        written_shared = {
            array
            for (space, kind, array) in trace.mem
            if space == "shared" and kind in ("store", "atomic")
        }
        for (space, kind, array), stats in trace.mem.items():
            cycles = self._stream_cycles(space, kind, stats, out)
            if space == "shared" and kind == "load" and array not in written_shared:
                # A shared array the kernel only reads is a staged lookup
                # table: every block of every launch copies it in from
                # global memory first (the rising overhead that makes big
                # tables lose to plain global placement in paper Fig 16).
                table = self.spec.latencies
                segments = max(1.0, stats.working_set_bytes / SEGMENT_BYTES)
                blocks = max(1.0, trace.threads_launched / (WARP_SIZE * 8))
                cycles += (
                    segments * blocks * table.global_mem / self.spec.memory_width
                )
            out.streams[(space, kind, array)] = cycles
            out.memory_cycles += cycles
        return out

    # -- per-stream pricing ---------------------------------------------------

    def _stream_cycles(
        self, space: str, kind: str, stats: MemStats, out: CostBreakdown
    ) -> float:
        table = self.spec.latencies
        if kind == "atomic":
            # Atomics serialize on address collisions; the chain cannot be
            # longer than the number of lanes actually contending at once
            # (a 4-core CPU never sees a 32-deep collision chain).
            chain = min(stats.atomic_chain_per_warp, self.spec.memory_width)
            per_op = table.of_class("atomic") * chain
            return stats.accesses * per_op / self.spec.memory_width

        warps = stats.accesses / WARP_SIZE
        if space == "shared":
            # transactions_per_warp is the bank-conflict serialization depth.
            return (
                warps
                * stats.transactions_per_warp
                * table.shared
                / self.spec.cache_width
            )

        if space == "constant":
            # Broadcast cache: one cycle per distinct word per warp
            # (transactions_per_warp counts distinct words here), spilling
            # to global cost when the footprint thrashes the cache.
            tpw = stats.transactions_per_warp
            if stats.working_set_bytes <= self.spec.constant_bytes:
                return warps * tpw * table.constant / self.spec.cache_width
            spill = 1.0 - min(
                1.0, self.spec.constant_bytes / max(stats.working_set_bytes, 1)
            )
            hit_cycles = warps * tpw * table.constant * (1.0 - spill)
            miss_cycles = warps * tpw * table.global_mem * spill
            return (
                hit_cycles / self.spec.cache_width
                + miss_cycles / self.spec.memory_width
            )

        # Global memory: per-warp transactions split between cache and DRAM;
        # hits are served at aggregate L1 bandwidth, misses contend for the
        # DRAM channels.
        tpw = stats.transactions_per_warp
        warps = stats.accesses / WARP_SIZE
        transactions = warps * tpw
        hit = self._hit_rate(stats, transactions)
        out.ideal_transactions += warps
        out.serialization_transactions += max(0.0, transactions - warps)
        hit_cycles = transactions * hit * table.l1 / self.spec.cache_width
        miss_cycles = (
            transactions * (1.0 - hit) * table.global_mem / self.spec.memory_width
        )
        return hit_cycles + miss_cycles

    def _hit_rate(self, stats: MemStats, transactions: float) -> float:
        """Cold misses (one per distinct segment) plus capacity misses when
        the stream's working set exceeds the cache."""
        ws = stats.working_set_bytes
        segments = max(1.0, ws / SEGMENT_BYTES)
        if transactions <= 0:
            return 0.0
        cold_miss = min(1.0, segments / transactions)
        if ws <= self.spec.l1_bytes:
            capacity_miss = 0.0
        else:
            capacity_miss = 1.0 - self.spec.l1_bytes / ws
        miss = min(1.0, cold_miss + capacity_miss * (1.0 - cold_miss))
        return 1.0 - miss
