"""Process-based shard execution with shared-memory array handoff.

The thread pool in :mod:`repro.parallel.pool` scales only while shards
spend their time inside GIL-releasing NumPy ufuncs.  Kernels dominated
by Python-level work — the interpreter backend, tight scalar loops in
generated code, observer callbacks — serialize on the GIL no matter how
many threads run.  This module provides the ``executor="process"`` lane:
a long-lived pool of ``multiprocessing`` workers that each *recompile*
the kernel from its (small, picklable) IR and execute sub-grids against
arrays staged in :mod:`multiprocessing.shared_memory` segments, so the
payload crossing the process boundary per launch is a few kilobytes of
IR plus shard geometry — never the arrays.

Execution protocol, per sharded launch:

1. The parent stages every array argument into a shared-memory segment
   (one copy in) and splits the block range with
   :func:`repro.parallel.shard.plan_shards`.
2. Shards are assigned statically — shard ``i`` goes to worker
   ``i % W`` — and each worker receives *one* task message carrying the
   kernel IR, the grid, its shard list and the segment names.  Workers
   cache compiled kernels per-process (:func:`repro.codegen.get_compiled`
   keys on the IR fingerprint), so recompilation happens once per
   worker, not once per launch.
3. Assembly follows the same two flavours as the thread lane:

   * ``direct`` (``Shardability.disjoint_writes``) — workers write the
     shared output segments in place; the parent copies each written
     segment back to the caller's buffer once (no per-shard pickling at
     all).
   * ``diff`` — workers run against private copies and return, per
     shard, the byte indices and values that changed relative to the
     pristine segment; the parent overlays diffs in ascending shard
     order, byte-exactly reproducing the serial store order.

Containment mirrors the guarded thread lane and is *always on* here,
because a worker process can genuinely die: the caller's buffers are
never touched before every shard has succeeded, a worker that exits
without reporting is respawned and its task re-submitted (a bounded
number of times), and a wall-clock deadline terminates hung workers.
Every unrecoverable outcome falls back to bit-exact serial re-execution
in the parent.  Kernel-raised exceptions (e.g. bounds checks) are not
faults to absorb: the error from the lowest failing shard propagates,
matching the serial order of discovery.

Fault injection for tests rides in the ``REPRO_PROC_INJECT`` environment
variable (it must cross the process boundary, which the in-process fault
plans of :mod:`repro.resilience.faults` cannot):
``die@<b0>:<once-path>`` makes the worker running the shard that starts
at block ``b0`` exit hard (once; the path records that the fault fired),
and ``hang@<b0>:<seconds>`` makes it sleep through the deadline.
"""

from __future__ import annotations

import atexit
import os
import pickle
import queue as queue_mod
import threading
import time
import multiprocessing
from multiprocessing import get_context
from multiprocessing import shared_memory as shm_mod
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ExecutionError, ResilienceError, ShardTimeout
from ..obs import trace as obs_trace
from ..obs.registry import get_registry

#: Wall-clock bound on one process-sharded launch outside any guard
#: scope; a :class:`~repro.resilience.GuardPolicy` overrides it.
DEFAULT_DEADLINE_SECONDS = 120.0

#: Times one task is re-submitted after its worker died mid-run before
#: the launch gives up on the pool and re-executes serially.
MAX_RESPAWNS_PER_TASK = 2

#: Environment variable holding a worker-side fault directive.
INJECT_ENV = "REPRO_PROC_INJECT"

#: ``fork`` keeps worker start cheap and inherits the imported modules;
#: platforms without it (Windows, macOS defaults notwithstanding) get
#: ``spawn``, which works because the worker entry point is module-level.
_START_METHOD = (
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)


class WorkerLost(ResilienceError):
    """A worker process died mid-task more times than the respawn budget.

    An infrastructure failure, not a kernel error: the launch falls back
    to bit-exact serial re-execution in the parent.
    """


# ------------------------------------------------------------------ stats


#: Registry field -> help text; each becomes ``repro_procpool_<field>``.
_FIELDS = {
    "launches": "sharded launches executed on the process pool",
    "tasks": "worker tasks submitted (one per worker per launch)",
    "shards_run": "individual shards executed by worker processes",
    "direct": "launches assembled by direct shared-memory writes",
    "diff": "launches assembled by diff overlay",
    "workers_spawned": "worker processes started",
    "workers_replaced": "workers respawned after dying mid-task",
    "deadline_timeouts": "launches that overran their deadline",
    "serial_reexecutions": "launches recomputed serially after containment",
    "shm_bytes": "bytes staged into shared-memory segments",
}


class ProcPoolStats:
    """Process-pool counters, served from the metrics registry.

    Same shim pattern as :class:`repro.parallel.shard.ShardStats`: the
    attribute API reads/writes ``repro_procpool_*`` registry counters so
    snapshots and the Prometheus exposition share one store.
    """

    def __init__(self) -> None:
        registry = get_registry()
        object.__setattr__(
            self,
            "_metrics",
            {
                name: registry.counter(f"repro_procpool_{name}", help)
                for name, help in _FIELDS.items()
            },
        )

    def __getattr__(self, name: str) -> int:
        try:
            return int(self._metrics[name].value)
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value) -> None:
        self._metrics[name].set(value)

    def snapshot(self) -> Dict[str, int]:
        return {name: int(self._metrics[name].value) for name in _FIELDS}

    def reset(self) -> None:
        for name in _FIELDS:
            self._metrics[name].set(0.0)


STATS = ProcPoolStats()


def stats_snapshot() -> Dict[str, int]:
    return STATS.snapshot()


# ----------------------------------------------------------- worker side


def _maybe_fault(b0: int) -> None:
    """Honour a ``REPRO_PROC_INJECT`` directive for the shard at ``b0``."""
    spec = os.environ.get(INJECT_ENV, "")
    if not spec:
        return
    kind, _, rest = spec.partition("@")
    target, _, arg = rest.partition(":")
    if target != str(b0):
        return
    if kind == "die":
        if arg:
            # The once-file makes the fault single-shot: the respawned
            # worker (or a retried task) sees it and runs normally.
            try:
                fd = os.open(arg, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return
            os.close(fd)
        os._exit(17)
    elif kind == "hang":
        time.sleep(float(arg) if arg else 3600.0)


def _attach_arrays(
    arrays: Dict[str, Tuple[str, int, str]]
) -> Tuple[Dict[str, np.ndarray], List[shm_mod.SharedMemory]]:
    """Map the parent's segments into this worker as 1-D NumPy views."""
    views: Dict[str, np.ndarray] = {}
    segments: List[shm_mod.SharedMemory] = []
    for name, (seg_name, length, dtype_str) in arrays.items():
        seg = shm_mod.SharedMemory(name=seg_name)
        # CPython registers *attached* segments with the resource tracker
        # too (gh-82300); left registered, this worker's exit would
        # unlink segments the parent still owns.  The parent created
        # them and the parent unlinks them.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(seg._name, "shared_memory")  # noqa: SLF001
        except Exception:  # pragma: no cover - tracker internals moved
            pass
        segments.append(seg)
        views[name] = np.ndarray(length, dtype=np.dtype(dtype_str), buffer=seg.buf)
    return views, segments


def _run_task(payload: dict) -> Tuple[List[tuple], Optional[List[tuple]]]:
    """Execute one worker task: all this worker's shards of one launch.

    Returns ``(timings, diffs)`` where ``timings`` is a list of
    ``(b0, b1, start, end)`` perf-counter stamps and ``diffs`` is None in
    direct mode or a list of ``(b0, {name: (byte_idx, byte_val)})``
    entries in diff mode.
    """
    from ..codegen.cache import get_compiled
    from ..codegen.runtime import geometry

    fn = payload["fn"]
    module = payload["module"]
    grid = payload["grid"]
    compiled = get_compiled(fn, module, grid, payload["bounds_check"])
    geo = geometry(grid)
    block_threads = grid.block_threads
    written = payload["written"]
    mode = payload["mode"]

    views, segments = _attach_arrays(payload["arrays"])
    try:
        values = dict(payload["scalars"])
        values.update(views)
        timings: List[tuple] = []
        diffs: Optional[List[tuple]] = None if mode == "direct" else []
        for b0, b1 in payload["shards"]:
            _maybe_fault(b0)
            start = time.perf_counter()
            if mode == "direct":
                compiled.entry(
                    geo.shard(b0, b1, block_threads),
                    *[values[name] for name in compiled.param_names],
                )
            else:
                private = dict(values)
                for name in written:
                    private[name] = views[name].copy()
                compiled.entry(
                    geo.shard(b0, b1, block_threads),
                    *[private[name] for name in compiled.param_names],
                )
                shard_diff = {}
                for name in written:
                    priv = private[name].view(np.uint8)
                    pristine = views[name].view(np.uint8)
                    idx = np.nonzero(priv != pristine)[0]
                    shard_diff[name] = (idx, priv[idx].copy())
                diffs.append((b0, shard_diff))
            timings.append((b0, b1, start, time.perf_counter()))
        return timings, diffs
    finally:
        # Views must be dropped before the segments close: an exported
        # buffer keeps SharedMemory.close() from releasing the mapping.
        del views, values
        try:
            del private  # noqa: F821 - only bound in diff mode
        except NameError:
            pass
        for seg in segments:
            seg.close()


def _worker_main(worker_id: int, task_q, result_q) -> None:
    """Worker loop: take one task message, run it, report, repeat."""
    while True:
        item = task_q.get()
        if item is None:
            return
        epoch, task_id, payload = item
        try:
            timings, diffs = _run_task(payload)
            result_q.put(("ok", epoch, task_id, timings, diffs))
        except BaseException as exc:  # noqa: BLE001 - must report, not die
            b0 = payload["shards"][0][0] if payload["shards"] else -1
            failing = getattr(exc, "_proc_b0", b0)
            try:
                pickle.dumps(exc)
            except Exception:
                exc = ExecutionError(f"{type(exc).__name__}: {exc}")
            result_q.put(("err", epoch, task_id, failing, exc))


# ----------------------------------------------------------- parent side


class _Worker:
    """One pool slot: a process plus its private task queue.

    A respawn replaces both — a worker killed mid-``get`` can leave its
    queue's feeder state inconsistent, so the replacement starts clean.
    """

    def __init__(self, ctx, worker_id: int, result_q) -> None:
        self.ctx = ctx
        self.worker_id = worker_id
        self.result_q = result_q
        self.task_q = None
        self.process = None
        self.spawn()

    def spawn(self) -> None:
        self.task_q = self.ctx.Queue()
        self.process = self.ctx.Process(
            target=_worker_main,
            args=(self.worker_id, self.task_q, self.result_q),
            name=f"repro-proc-{self.worker_id}",
            daemon=True,
        )
        self.process.start()
        STATS.workers_spawned += 1

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def respawn(self) -> None:
        self.terminate()
        self.spawn()
        STATS.workers_replaced += 1

    def submit(self, epoch: int, task_id: int, payload: dict) -> None:
        self.task_q.put((epoch, task_id, payload))

    def terminate(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
            if self.process.is_alive():  # pragma: no cover - stuck in D state
                self.process.kill()
                self.process.join(timeout=2.0)
        if self.task_q is not None:
            self.task_q.close()

    def stop(self) -> None:
        """Graceful shutdown: sentinel, short join, then terminate."""
        if self.process is not None and self.process.is_alive():
            try:
                self.task_q.put(None)
            except Exception:  # pragma: no cover - queue already broken
                pass
            self.process.join(timeout=1.0)
        self.terminate()


class ProcessShardPool:
    """A fixed set of worker processes executing shard tasks.

    The pool is long-lived and shared across launches (module-level
    singleton via :func:`get_process_pool`); launches are serialized by
    an internal lock, which matches how the serving front-end uses it —
    one fused submission at a time, each already sharded across every
    worker.
    """

    def __init__(self, workers: int) -> None:
        self.ctx = get_context(_START_METHOD)
        self.result_q = self.ctx.Queue()
        self.workers = [
            _Worker(self.ctx, i, self.result_q) for i in range(workers)
        ]
        self.lock = threading.Lock()
        self._epoch = 0

    @property
    def size(self) -> int:
        return len(self.workers)

    def grow(self, workers: int) -> None:
        with self.lock:
            while len(self.workers) < workers:
                self.workers.append(
                    _Worker(self.ctx, len(self.workers), self.result_q)
                )

    def shutdown(self) -> None:
        with self.lock:
            for worker in self.workers:
                worker.stop()
            self.workers = []

    # -- one launch ---------------------------------------------------------

    def run_tasks(
        self,
        payloads: Dict[int, dict],
        deadline_seconds: float,
    ) -> Dict[int, Tuple[List[tuple], Optional[List[tuple]]]]:
        """Run one task per worker index; gather every result.

        Returns ``{task_id: (timings, diffs)}`` on full success.  Raises
        the lowest-shard kernel exception on worker-reported errors,
        :class:`~repro.errors.ShardTimeout` on deadline expiry, and
        :class:`~repro.errors.ExecutionError` when a task's worker died
        past its respawn budget.  In every raising path the workers that
        hold abandoned tasks have been terminated and respawned, so the
        next launch starts from a clean pool.
        """
        with self.lock:
            self._epoch += 1
            epoch = self._epoch
            deadline = time.monotonic() + deadline_seconds
            outstanding: Dict[int, int] = {}  # task_id -> worker index
            respawns: Dict[int, int] = {}
            results: Dict[int, tuple] = {}
            errors: List[Tuple[int, BaseException]] = []  # (failing b0, exc)

            for task_id, payload in payloads.items():
                worker = self.workers[task_id % len(self.workers)]
                if not worker.alive():
                    worker.respawn()
                worker.submit(epoch, task_id, payload)
                outstanding[task_id] = task_id % len(self.workers)
                STATS.tasks += 1

            def abandon() -> None:
                for task_id, widx in outstanding.items():
                    self.workers[widx].respawn()

            while outstanding:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    abandon()
                    STATS.deadline_timeouts += 1
                    raise ShardTimeout(
                        f"process-sharded launch overran its "
                        f"{deadline_seconds:.3f}s deadline with "
                        f"{len(outstanding)} task(s) outstanding"
                    )
                try:
                    msg = self.result_q.get(timeout=min(0.05, remaining))
                except queue_mod.Empty:
                    # No result yet: check for workers that died mid-task.
                    for task_id, widx in list(outstanding.items()):
                        worker = self.workers[widx]
                        if worker.alive():
                            continue
                        respawns[task_id] = respawns.get(task_id, 0) + 1
                        worker.respawn()
                        if respawns[task_id] > MAX_RESPAWNS_PER_TASK:
                            abandon()
                            raise WorkerLost(
                                f"process shard task {task_id} lost its "
                                f"worker {respawns[task_id]} times"
                            )
                        worker.submit(epoch, task_id, payloads[task_id])
                    continue
                kind, msg_epoch, task_id = msg[0], msg[1], msg[2]
                if msg_epoch != epoch or task_id not in outstanding:
                    continue  # stale result from an abandoned launch
                outstanding.pop(task_id)
                if kind == "ok":
                    results[task_id] = (msg[3], msg[4])
                else:
                    errors.append((msg[3], msg[4]))
            if errors:
                # Lowest failing shard wins, matching serial discovery
                # order; workers that errored are alive and reusable.
                errors.sort(key=lambda pair: pair[0])
                raise errors[0][1]
            return results


_POOL_LOCK = threading.Lock()
_POOL: Optional[ProcessShardPool] = None


def get_process_pool(workers: int) -> ProcessShardPool:
    """The shared worker-process pool, grown to at least ``workers``."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ProcessShardPool(workers)
        elif _POOL.size < workers:
            _POOL.grow(workers)
        return _POOL


def shutdown_process_pool() -> None:
    """Tear down the worker processes (tests and interpreter exit)."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown()
            _POOL = None


atexit.register(shutdown_process_pool)


# ------------------------------------------------------------- staging


def _stage_arrays(
    bound: Dict[str, object], param_names: List[str]
) -> Tuple[
    Dict[str, Tuple[str, int, str]],
    Dict[str, object],
    Dict[str, np.ndarray],
    List[shm_mod.SharedMemory],
]:
    """Copy array arguments into fresh shared-memory segments.

    Returns ``(array_specs, scalars, staged_views, segments)``; the
    views alias the segments and must be dropped before the segments are
    closed and unlinked.
    """
    specs: Dict[str, Tuple[str, int, str]] = {}
    scalars: Dict[str, object] = {}
    views: Dict[str, np.ndarray] = {}
    segments: List[shm_mod.SharedMemory] = []
    for name in param_names:
        value = bound[name]
        if not isinstance(value, np.ndarray):
            scalars[name] = value
            continue
        seg = shm_mod.SharedMemory(create=True, size=max(1, value.nbytes))
        segments.append(seg)
        view = np.ndarray(value.size, dtype=value.dtype, buffer=seg.buf)
        view[...] = value
        views[name] = view
        specs[name] = (seg.name, value.size, value.dtype.str)
        STATS.shm_bytes += value.nbytes
    return specs, scalars, views, segments


def _release(views: Dict[str, np.ndarray], segments) -> None:
    views.clear()
    for seg in segments:
        try:
            seg.close()
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


# ------------------------------------------------------------- execution


def run_process_sharded(
    fn,
    module,
    compiled,
    grid,
    bound: Dict[str, object],
    plan: List[Tuple[int, int]],
    workers: int,
    analysis,
    guard=None,
) -> str:
    """Execute one sharded launch on the worker processes.

    Containment is unconditional (see the module docstring); ``guard``
    (a :class:`~repro.resilience.GuardPolicy`, when a guard scope is
    active) only tightens the deadline.  Returns the assembly mode used
    (``"direct"``/``"diff"``) for the caller's stats, or ``"serial"``
    when containment fell back to in-parent re-execution.
    """
    deadline = (
        guard.deadline_seconds
        if guard is not None and guard.enabled
        else DEFAULT_DEADLINE_SECONDS
    )
    mode = "direct" if analysis.disjoint_writes else "diff"
    written = list(analysis.written_arrays)
    pool = get_process_pool(workers)
    count = min(workers, pool.size, len(plan))

    specs, scalars, views, segments = _stage_arrays(bound, compiled.param_names)
    try:
        payloads: Dict[int, dict] = {}
        for widx in range(count):
            shards = [plan[i] for i in range(widx, len(plan), count)]
            payloads[widx] = {
                "fn": fn,
                "module": module,
                "grid": grid,
                "bounds_check": compiled.bounds_check,
                "shards": shards,
                "mode": mode,
                "arrays": specs,
                "scalars": scalars,
                "written": written,
            }
        with obs_trace.span(
            "proc.launch",
            kernel=compiled.fn_name,
            mode=mode,
            workers=count,
            shards=len(plan),
        ):
            try:
                results = pool.run_tasks(payloads, deadline)
            except (ShardTimeout, WorkerLost):
                # Deadline or repeated worker death: the caller's buffers
                # were never touched, so serial re-execution is exact.
                # Kernel-raised errors are NOT caught here — they
                # propagate like the serial path's would.
                STATS.serial_reexecutions += 1
                compiled.run(grid, bound)
                return "serial"
            for task_id in sorted(results):
                for b0, b1, start, end in results[task_id][0]:
                    obs_trace.emit_span(
                        "proc.shard",
                        start,
                        end,
                        kernel=compiled.fn_name,
                        blocks=f"{b0}:{b1}",
                        mode=mode,
                        worker=task_id,
                    )
                    STATS.shards_run += 1
            if mode == "direct":
                for name in written:
                    bound[name][...] = views[name]
            else:
                shard_diffs: List[tuple] = []
                for _timings, diffs in results.values():
                    shard_diffs.extend(diffs)
                shard_diffs.sort(key=lambda pair: pair[0])
                for _b0, diff in shard_diffs:
                    for name, (idx, vals) in diff.items():
                        if idx.size:
                            bound[name].view(np.uint8)[idx] = vals
        STATS.launches += 1
        if mode == "direct":
            STATS.direct += 1
        else:
            STATS.diff += 1
        return mode
    finally:
        _release(views, segments)
