"""Differential harness: serial codegen vs sharded execution, bit for bit.

The shardability analysis promises that splitting a launch into
per-worker sub-grids cannot change the output.  This module holds it to
that promise the same way :mod:`repro.codegen.check` holds the code
generator to the interpreter: run the same seeded computation serial and
sharded, compare every output array with byte equality, no tolerances.

Usage from tests::

    result = diff_kernel_sharded(my_kernel, grid, args, workers=4)
    assert result.ok, result.describe()

or over the full app registry (what CI runs)::

    python -m repro.parallel
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..codegen.check import DiffResult, _compare_arrays
from .._options import options
from ..engine.launch import Grid
from .pool import ParallelPolicy
from .shard import STATS


def _sharding_policy(workers: int) -> ParallelPolicy:
    # min_shard_threads=1 so even small test grids actually shard — the
    # harness is about correctness, not about when sharding pays off.
    return ParallelPolicy(workers=workers, min_shard_threads=1)


def diff_kernel_sharded(
    kernel,
    grid: Grid,
    args: Sequence,
    module=None,
    workers: int = 4,
    bounds_check: bool = True,
) -> DiffResult:
    """Launch ``kernel`` serial and sharded on copies of ``args``.

    Both runs use the codegen backend; only the parallel policy differs.
    Non-shardable kernels transparently run serial in both cases, so the
    comparison is trivially exact for them — classification coverage is
    the analysis tests' job, not this harness's.
    """
    from ..engine.interpreter import launch
    from ..engine.launch import resolve_kernel

    fn = resolve_kernel(kernel)
    runs: Dict[str, List[np.ndarray]] = {}
    for mode in ("serial", "sharded"):
        local = [a.copy() if isinstance(a, np.ndarray) else a for a in args]
        with options(
            backend="codegen",
            parallel=_sharding_policy(workers) if mode == "sharded" else 1,
        ):
            launch(kernel, grid, local, module=module, bounds_check=bounds_check)
        runs[mode] = [a for a in local if isinstance(a, np.ndarray)]

    mismatches = []
    for i, (a, b) in enumerate(zip(runs["serial"], runs["sharded"])):
        note = _compare_arrays(f"array[{i}]", a, b)
        if note is not None:
            mismatches.append(note)
    return DiffResult(name=fn.name, ok=not mismatches, mismatches=mismatches)


def diff_app_sharded(app, inputs=None, workers: int = 4) -> DiffResult:
    """Run one application's exact pipeline serial and sharded.

    Uses :func:`repro.options` scoping so multi-kernel ``Program`` apps
    are covered without the app knowing about sharding.  The result name
    records how many launches actually sharded (non-shardable kernels
    legitimately contribute zero).
    """
    if inputs is None:
        inputs = app.generate_inputs()
    outputs: Dict[str, List[np.ndarray]] = {}
    sharded_launches = 0
    for mode in ("serial", "sharded"):
        before = STATS.sharded_launches
        with options(backend="codegen"):
            if mode == "sharded":
                with options(parallel=_sharding_policy(4 if workers < 2 else workers)):
                    out = app.run_exact(copy.deepcopy(inputs))
            else:
                out = app.run_exact(copy.deepcopy(inputs))
        if mode == "sharded":
            sharded_launches = STATS.sharded_launches - before
        parts = out if isinstance(out, (tuple, list)) else [out]
        outputs[mode] = [np.asarray(p) for p in parts if isinstance(p, np.ndarray)]
    name = f"{type(app).__name__} ({sharded_launches} sharded launches)"
    mismatches = []
    for i, (a, b) in enumerate(zip(outputs["serial"], outputs["sharded"])):
        note = _compare_arrays(f"output[{i}]", a, b)
        if note is not None:
            mismatches.append(note)
    return DiffResult(name=name, ok=not mismatches, mismatches=mismatches)


def check_apps(
    names: Optional[Sequence[str]] = None,
    workers: int = 4,
    verbose: bool = True,
) -> List[DiffResult]:
    """Differential-check every registered application (CI entry point)."""
    from ..apps.registry import APP_CLASSES, make_app

    results = []
    for name in names if names is not None else sorted(APP_CLASSES):
        app = make_app(name, seed=0)
        result = diff_app_sharded(app, workers=workers)
        results.append(result)
        if verbose:
            status = "ok " if result.ok else "FAIL"
            print(f"[{status}] {name}: {result.describe()}")
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel",
        description="Assert sharded and serial codegen execution agree "
        "bit-exactly on every registered application.",
    )
    parser.add_argument("apps", nargs="*", help="app names (default: all)")
    parser.add_argument(
        "--workers", type=int, default=4, help="shard workers (default 4)"
    )
    ns = parser.parse_args(argv)
    results = check_apps(ns.apps or None, workers=ns.workers)
    failed = [r for r in results if not r.ok]
    print(
        f"{len(results) - len(failed)}/{len(results)} apps bit-exact "
        f"(sharded vs serial); {STATS.sharded_launches} sharded launches total"
    )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
