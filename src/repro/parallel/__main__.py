"""``python -m repro.parallel`` — sharded-vs-serial differential harness."""

from .check import main

if __name__ == "__main__":
    raise SystemExit(main())
