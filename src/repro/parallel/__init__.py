"""Multicore parallel runtime: grid-sharded launches + concurrent profiling.

Two pipelines share this package's worker pools:

* **Sharded launches** — when the static shardability analysis
  (:mod:`repro.parallel.analysis`) proves a kernel's blocks independent,
  the codegen backend splits the block grid into per-worker sub-grids and
  runs them on a thread pool (:mod:`repro.parallel.shard`) or — with
  ``executor="process"`` — on the :mod:`repro.parallel.procpool` worker
  processes with shared-memory handoff, bit-exact with serial execution
  either way.  Scope it with ``repro.options(parallel=..., executor=...)``
  or per launch via ``launch(..., options=...)``.
* **Concurrent profiling** — ``GreedyTuner`` evaluates variants
  concurrently and memoizes per-(variant, input-set) measurements in a
  :class:`ProfileCache` (:mod:`repro.parallel.profiler`), so serving
  sessions recalibrate without re-measuring unchanged variants.

``python -m repro.parallel`` runs the differential harness proving
sharded == serial for every shardable kernel across the registered apps
and the kernel zoo.
"""

from .analysis import Shardability, analyze_shardability
from .pool import (
    AUTO_WORKERS,
    DEFAULT_MIN_SHARD_THREADS,
    ParallelPolicy,
    default_policy,
    host_worker_count,
    parallel_map,
    pools_snapshot,
    resolve_policy,
    resolve_workers,
    shutdown_pools,
    use_parallel,
)
from .procpool import ProcessShardPool, get_process_pool, shutdown_process_pool
from .procpool import stats_snapshot as procpool_stats_snapshot
from .profiler import ProfileCache, profile_key, variant_identity
from .shard import STATS, ShardStats, maybe_run_sharded, plan_shards, run_sharded
from .shard import stats_snapshot as shard_stats_snapshot

__all__ = [
    "ProcessShardPool",
    "get_process_pool",
    "procpool_stats_snapshot",
    "shutdown_process_pool",
    "AUTO_WORKERS",
    "DEFAULT_MIN_SHARD_THREADS",
    "ParallelPolicy",
    "ProfileCache",
    "STATS",
    "ShardStats",
    "Shardability",
    "analyze_shardability",
    "default_policy",
    "host_worker_count",
    "maybe_run_sharded",
    "parallel_map",
    "plan_shards",
    "pools_snapshot",
    "profile_key",
    "resolve_policy",
    "resolve_workers",
    "run_sharded",
    "shard_stats_snapshot",
    "shutdown_pools",
    "use_parallel",
    "variant_identity",
]
