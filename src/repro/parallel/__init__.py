"""Multicore parallel runtime: grid-sharded launches + concurrent profiling.

Two pipelines share this package's worker pools:

* **Sharded launches** — when the static shardability analysis
  (:mod:`repro.parallel.analysis`) proves a kernel's blocks independent,
  the codegen backend splits the block grid into per-worker sub-grids and
  runs them on a thread pool (:mod:`repro.parallel.shard`), bit-exact
  with serial execution.  Scope it with :func:`use_parallel` or per
  launch via ``launch(..., parallel=...)``.
* **Concurrent profiling** — ``GreedyTuner`` evaluates variants
  concurrently and memoizes per-(variant, input-set) measurements in a
  :class:`ProfileCache` (:mod:`repro.parallel.profiler`), so serving
  sessions recalibrate without re-measuring unchanged variants.

``python -m repro.parallel`` runs the differential harness proving
sharded == serial for every shardable kernel across the registered apps
and the kernel zoo.
"""

from .analysis import Shardability, analyze_shardability
from .pool import (
    AUTO_WORKERS,
    DEFAULT_MIN_SHARD_THREADS,
    ParallelPolicy,
    default_policy,
    host_worker_count,
    parallel_map,
    pools_snapshot,
    resolve_policy,
    resolve_workers,
    shutdown_pools,
    use_parallel,
)
from .profiler import ProfileCache, profile_key, variant_identity
from .shard import STATS, ShardStats, maybe_run_sharded, plan_shards, run_sharded
from .shard import stats_snapshot as shard_stats_snapshot

__all__ = [
    "AUTO_WORKERS",
    "DEFAULT_MIN_SHARD_THREADS",
    "ParallelPolicy",
    "ProfileCache",
    "STATS",
    "ShardStats",
    "Shardability",
    "analyze_shardability",
    "default_policy",
    "host_worker_count",
    "maybe_run_sharded",
    "parallel_map",
    "plan_shards",
    "pools_snapshot",
    "profile_key",
    "resolve_policy",
    "resolve_workers",
    "run_sharded",
    "shard_stats_snapshot",
    "shutdown_pools",
    "use_parallel",
    "variant_identity",
]
