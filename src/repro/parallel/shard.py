"""Grid-sharded execution of compiled kernels.

The codegen backend runs a whole grid as one NumPy callable on one core.
When the shardability analysis (:mod:`repro.parallel.analysis`) proves
blocks independent, the launch can instead split the *block* range into
per-worker sub-grids — blocks are contiguous in linear thread order, so
each shard's geometry is a zero-copy slice of the full grid's
(:meth:`repro.codegen.runtime.Geometry.shard`) — and run them on the
``"shard"`` thread pool.  The compiled callables spend their time inside
vectorized ufuncs, which release the GIL, so threads scale on real cores.

Output assembly is deterministic and comes in two flavours:

* **zero-copy** — when every global store is provably thread- or
  block-private (``Shardability.disjoint_writes``), shards write the
  caller's buffers directly; no assembly step exists at all.
* **copy + overlay** — otherwise each shard runs against private copies
  of the written arrays and the results are overlaid onto the caller's
  buffer in ascending shard order.  Changed elements are detected by
  *byte* comparison against a pristine snapshot (``==`` on floats would
  miss ``-0.0`` vs ``0.0`` and NaN-payload differences).  The overlay
  equals serial execution unless a higher block overwrites a lower
  block's store with the pristine byte pattern — a cross-block write
  conflict no kernel in the suite exhibits, and exactly what the
  differential harness (:mod:`repro.parallel.check`) certifies.

Exceptions (e.g. bounds-check failures) propagate from the lowest
failing shard, matching the serial order of discovery; the reported
index range may cover a sub-grid rather than the whole launch.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..codegen.cache import CompiledKernel
from ..codegen.runtime import geometry
from ..engine.launch import Grid
from ..kernel import ir
from ..obs import trace as obs_trace
from ..obs.registry import get_registry
from .analysis import Shardability, analyze_shardability
from .pool import ParallelPolicy, parallel_map

# ------------------------------------------------------------------ stats

#: Registry field -> help text; each becomes ``repro_shard_<field>``.
_FIELDS = {
    "sharded_launches": "launches split across the shard pool",
    "shards_run": "individual shards executed",
    "zero_copy": "sharded launches assembled zero-copy",
    "overlay": "sharded launches assembled copy+overlay",
    "serial_unshardable": "launches kept serial by the shardability analysis",
    "serial_small_grid": "launches kept serial below the shard threshold",
}


class ShardStats:
    """Process-wide sharding counters, served from the metrics registry.

    The attribute API is unchanged; values live in ``repro_shard_*``
    registry counters so snapshots and the Prometheus exposition read
    one store.
    """

    def __init__(self) -> None:
        registry = get_registry()
        object.__setattr__(
            self,
            "_metrics",
            {
                name: registry.counter(f"repro_shard_{name}", help)
                for name, help in _FIELDS.items()
            },
        )

    def __getattr__(self, name: str) -> int:
        try:
            return int(self._metrics[name].value)
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value) -> None:
        self._metrics[name].set(value)

    def snapshot(self) -> Dict[str, int]:
        return {name: int(self._metrics[name].value) for name in _FIELDS}

    def reset(self) -> None:
        for name in _FIELDS:
            self._metrics[name].set(0.0)


STATS = ShardStats()


def stats_snapshot() -> Dict[str, int]:
    return STATS.snapshot()


# ------------------------------------------------------------------- plans


def plan_shards(total_blocks: int, workers: int) -> List[Tuple[int, int]]:
    """Split ``[0, total_blocks)`` into ``<= workers`` contiguous ranges.

    Ranges differ in size by at most one block (remainder blocks go to
    the leading shards), every range is non-empty, and their ascending
    order is the deterministic assembly/merge order.
    """
    shards = max(1, min(workers, total_blocks))
    base, extra = divmod(total_blocks, shards)
    plan: List[Tuple[int, int]] = []
    start = 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        plan.append((start, start + size))
        start += size
    return plan


# --------------------------------------------------------------- execution


def _run_zero_copy(
    compiled: CompiledKernel,
    grid: Grid,
    bound: Dict[str, object],
    plan: List[Tuple[int, int]],
    workers: int,
) -> None:
    geo = geometry(grid)
    block_threads = grid.block_threads
    args = [bound[name] for name in compiled.param_names]

    def run_one(shard_span: Tuple[int, int]) -> None:
        b0, b1 = shard_span
        with obs_trace.span(
            "shard.run", kernel=compiled.fn_name, blocks=f"{b0}:{b1}", mode="zero_copy"
        ):
            compiled.entry(geo.shard(b0, b1, block_threads), *args)

    parallel_map("shard", workers, run_one, plan)


def _run_overlay(
    compiled: CompiledKernel,
    grid: Grid,
    bound: Dict[str, object],
    plan: List[Tuple[int, int]],
    workers: int,
    written: List[str],
) -> None:
    geo = geometry(grid)
    block_threads = grid.block_threads
    pristine = {name: bound[name].copy() for name in written}

    def run_one(shard_span: Tuple[int, int]) -> Dict[str, np.ndarray]:
        b0, b1 = shard_span
        with obs_trace.span(
            "shard.run", kernel=compiled.fn_name, blocks=f"{b0}:{b1}", mode="overlay"
        ):
            private = dict(bound)
            for name in written:
                private[name] = pristine[name].copy()
            compiled.entry(
                geo.shard(b0, b1, block_threads),
                *[private[name] for name in compiled.param_names],
            )
            return {name: private[name] for name in written}

    results = parallel_map("shard", workers, run_one, plan)
    for shard_out in results:  # ascending shard order = serial store order
        for name in written:
            target = bound[name].view(np.uint8)
            changed = shard_out[name].view(np.uint8) != pristine[name].view(
                np.uint8
            )
            target[changed] = shard_out[name].view(np.uint8)[changed]


def run_sharded(
    compiled: CompiledKernel,
    grid: Grid,
    bound: Dict[str, object],
    workers: int,
    analysis: Shardability,
    executor: str = "thread",
    fn: ir.Function = None,
    module: ir.Module = None,
) -> None:
    """Execute a launch as shards, unconditionally (caller checked policy).

    ``executor="process"`` routes the shards to the
    :mod:`repro.parallel.procpool` worker processes (``fn``/``module``
    must be supplied — workers recompile from the IR); containment is
    built into that lane.  On the thread lane, an ambient guard scope
    routes through the guarded executor instead: always overlay-style (a
    hung or abandoned worker must never hold the caller's buffers),
    with retries, a deadline and a serial fallback.
    """
    from ..resilience.guard import current_policy, run_sharded_guarded

    plan = plan_shards(grid.total_blocks, workers)
    policy = current_policy()
    if executor == "process" and fn is not None:
        from . import procpool

        mode = procpool.run_process_sharded(
            fn, module, compiled, grid, bound, plan, workers, analysis,
            guard=policy,
        )
        if mode == "direct":
            STATS.zero_copy += 1
        elif mode == "diff":
            STATS.overlay += 1
    elif policy is not None and policy.enabled:
        STATS.overlay += 1
        run_sharded_guarded(
            compiled, grid, bound, plan, workers, analysis.written_arrays, policy
        )
    elif analysis.disjoint_writes:
        STATS.zero_copy += 1
        _run_zero_copy(compiled, grid, bound, plan, workers)
    else:
        STATS.overlay += 1
        _run_overlay(compiled, grid, bound, plan, workers, analysis.written_arrays)
    STATS.sharded_launches += 1
    STATS.shards_run += len(plan)


def maybe_run_sharded(
    fn: ir.Function,
    module: ir.Module,
    compiled: CompiledKernel,
    grid: Grid,
    bound: Dict[str, object],
    policy: ParallelPolicy,
) -> bool:
    """Shard the launch if the policy and the analysis both allow it.

    Returns True when the kernel ran (sharded); False means the caller
    must run it serially — either the grid is too small to pay for the
    pool handoff or the kernel is not shardable.
    """
    if policy.serial:
        return False
    if grid.threads < policy.min_shard_threads or grid.total_blocks < 2:
        STATS.serial_small_grid += 1
        return False
    analysis = analyze_shardability(fn, module, fingerprint=compiled.fingerprint)
    if not analysis.shardable:
        STATS.serial_unshardable += 1
        return False
    run_sharded(
        compiled, grid, bound, policy.workers, analysis,
        executor=policy.executor, fn=fn, module=module,
    )
    return True
