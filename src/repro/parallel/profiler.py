"""Memoization support for concurrent variant profiling.

``GreedyTuner.profile`` evaluates every variant against every training
input set.  A serving session repeats that work on every recalibration,
even though most variants (and the input sets they are measured on) have
not changed.  :class:`ProfileCache` memoizes the per-(variant, input-set)
measurement — quality and modelled cycles — keyed on *content*: the app,
the device, the variant's kernel IR fingerprint (falling back to its
name + knobs), and the input set's array-byte fingerprint.  A session
owns one cache and passes it to every tuner it builds, so recalibration
after drift only re-measures variants whose IR or inputs actually
changed.

The cache is thread-safe: with ``workers > 1`` the tuner evaluates
variants concurrently on the ``"profile"`` pool and all workers share
one cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..apps.base import _input_fingerprint

#: (quality, modelled cycles) for one (variant, input set) measurement.
Measurement = Tuple[float, float]


def variant_identity(variant) -> str:
    """A content key for one variant.

    Prefers the fingerprint of the variant's kernel IR (robust against
    two differently-configured variants sharing a name); falls back to
    ``name + knobs`` for variants without a module (e.g. scan pipeline
    variants, whose knobs fully determine behaviour).
    """
    module = getattr(variant, "module", None)
    kernel_name = getattr(variant, "kernel", None)
    if module is not None and kernel_name is not None:
        try:
            from ..codegen.fingerprint import fingerprint_kernel

            return fingerprint_kernel(module[kernel_name], module)
        except Exception:
            pass
    knobs = getattr(variant, "knobs", {}) or {}
    return f"{variant.name}|{sorted(knobs.items())!r}"


def profile_key(app_name: str, device: str, variant, inputs) -> Tuple:
    """The full memoization key for one (variant, input set) evaluation."""
    return (
        app_name,
        device,
        variant_identity(variant),
        _input_fingerprint(inputs),
    )


class ProfileCache:
    """Thread-safe LRU memo of (variant, input-set) -> (quality, cycles).

    Bounded at ``max_entries`` (``ParaproxConfig.profile_cache_entries``
    for session-owned caches); on overflow the least-recently-*used* entry
    is evicted — recalibration re-touches the live variants' measurements,
    so churn from one-off inputs cannot push the working set out.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            from ..errors import ConfigError

            raise ConfigError(
                f"max_entries must be >= 1, got {max_entries!r}"
            )
        self._data: "OrderedDict[Tuple, Measurement]" = OrderedDict()
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Tuple) -> Optional[Measurement]:
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
                self._data.move_to_end(key)
            return value

    def put(self, key: Tuple, value: Measurement) -> None:
        with self._lock:
            if key not in self._data and len(self._data) >= self.max_entries:
                self._data.popitem(last=False)
                self.evictions += 1
            self._data[key] = value
            self._data.move_to_end(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._data),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "max_entries": self.max_entries,
            }

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
