"""Worker pools and the ambient parallelism policy.

Two long-lived :class:`~concurrent.futures.ThreadPoolExecutor` pools back
the parallel runtime:

* ``"shard"`` — runs the per-shard sub-grid invocations of a compiled
  kernel (:mod:`repro.parallel.shard`).
* ``"profile"`` — runs per-variant tuner evaluations
  (:mod:`repro.parallel.profiler`).

They are separate on purpose: a profiling task *launches* kernels, and a
launch may itself fan out shards — routing both through one pool could
fill every worker with profiling tasks that then block waiting for shard
tasks that can never start.  Shard tasks never submit work, so each pool
drains independently.

Threads (not processes) are the right vehicle here because the compiled
NumPy callables spend their time inside vectorized ufuncs, which release
the GIL; array views also let shards write disjoint slices of the same
output buffer with zero copies.

The ambient :class:`ParallelPolicy` is scoped per *thread* (a worker
thread starts from the defaults, whatever the spawning thread had
scoped), exactly like the launch-backend stack in
:mod:`repro.engine.launch`.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from .._options import (
    LaunchOptions,
    current_options,
    deprecated,
    validate_executor,
)
from ..errors import ConfigError
from ..obs import trace as obs_trace
from ..obs.registry import get_registry

#: Grids smaller than this many threads run serially even when a policy
#: asks for workers: the pool handoff and geometry slicing cost more than
#: the NumPy work they would split.  Tests and benchmarks lower it through
#: ``ParallelPolicy(min_shard_threads=...)``.
DEFAULT_MIN_SHARD_THREADS = 2048

#: Accepted by every ``workers=`` knob: resolve to the usable host cores.
AUTO_WORKERS = "auto"


def _cgroup_cpu_quota() -> Optional[int]:
    """CPU limit imposed by the container's cgroup, in whole cores.

    Containers usually cap CPU with a bandwidth quota rather than by
    shrinking the affinity mask, so ``sched_getaffinity`` alone
    oversubscribes (e.g. a "2 CPU" Kubernetes pod on a 64-core node
    reports 64).  Reads cgroup v2 (``cpu.max``: ``"<quota> <period>"``
    or ``"max <period>"``) and falls back to cgroup v1
    (``cpu.cfs_quota_us`` / ``cpu.cfs_period_us``).  Returns None when
    no quota applies or the files are unreadable.
    """
    try:
        with open("/sys/fs/cgroup/cpu.max", encoding="ascii") as fh:
            quota_s, _, period_s = fh.read().strip().partition(" ")
        if quota_s != "max":
            quota, period = int(quota_s), int(period_s or "100000")
            if quota > 0 and period > 0:
                return max(1, quota // period)
        return None
    except (OSError, ValueError):
        pass
    try:
        with open(
            "/sys/fs/cgroup/cpu/cpu.cfs_quota_us", encoding="ascii"
        ) as fh:
            quota = int(fh.read().strip())
        with open(
            "/sys/fs/cgroup/cpu/cpu.cfs_period_us", encoding="ascii"
        ) as fh:
            period = int(fh.read().strip())
        if quota > 0 and period > 0:
            return max(1, quota // period)
    except (OSError, ValueError):
        pass
    return None


def host_worker_count() -> int:
    """Usable host cores — the resolution of ``workers="auto"``.

    The minimum of the scheduling-affinity mask and the cgroup CPU quota
    (containers and CI runners restrict either or both below the
    physical core count), falling back to ``os.cpu_count()`` where
    neither is available.  Sizing pools from this instead of the raw
    core count keeps thread *and* process pools from oversubscribing
    CPU-limited containers.
    """
    try:
        usable = max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux hosts
        usable = max(1, os.cpu_count() or 1)
    quota = _cgroup_cpu_quota()
    if quota is not None:
        usable = min(usable, quota)
    return usable


def resolve_workers(workers) -> int:
    """Normalize a ``workers`` knob to a positive int.

    Accepts a positive integer or the string ``"auto"`` (host cores);
    anything else raises :class:`~repro.errors.ConfigError`.
    """
    if workers == AUTO_WORKERS:
        return host_worker_count()
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigError(
            f"workers must be a positive integer or {AUTO_WORKERS!r}, "
            f"got {workers!r}"
        )
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    return workers


@dataclass(frozen=True)
class ParallelPolicy:
    """How parallel one launch (or profiling run) is allowed to be.

    Attributes:
        workers: sub-grids / concurrent evaluations to aim for; 1 = serial.
        min_shard_threads: grids with fewer threads than this never shard.
        executor: ``"thread"`` (in-process pool; NumPy-bound kernels
            release the GIL) or ``"process"`` (the
            :mod:`repro.parallel.procpool` workers with shared-memory
            handoff; true multicore for GIL-bound kernels).
    """

    workers: int = 1
    min_shard_threads: int = DEFAULT_MIN_SHARD_THREADS
    executor: str = "thread"

    def __post_init__(self) -> None:
        object.__setattr__(self, "workers", resolve_workers(self.workers))
        if (
            isinstance(self.min_shard_threads, bool)
            or not isinstance(self.min_shard_threads, int)
            or self.min_shard_threads < 1
        ):
            raise ConfigError(
                f"min_shard_threads must be a positive integer, "
                f"got {self.min_shard_threads!r}"
            )
        validate_executor(self.executor)

    @property
    def serial(self) -> bool:
        return self.workers <= 1


SERIAL_POLICY = ParallelPolicy(workers=1)


def policy_from_options(opts: LaunchOptions) -> ParallelPolicy:
    """The :class:`ParallelPolicy` a merged options record resolves to.

    A full :class:`ParallelPolicy` in ``opts.parallel`` supplies the
    base; the record's own ``min_shard_threads``/``executor`` fields
    (when set) override it.  Otherwise the policy is assembled from the
    record's fields over the serial defaults.
    """
    if isinstance(opts.parallel, ParallelPolicy):
        base = opts.parallel
        min_shard = (
            opts.min_shard_threads
            if opts.min_shard_threads is not None
            else base.min_shard_threads
        )
        executor = opts.executor if opts.executor is not None else base.executor
        if min_shard == base.min_shard_threads and executor == base.executor:
            return base
        return ParallelPolicy(
            workers=base.workers,
            min_shard_threads=min_shard,
            executor=executor,
        )
    return ParallelPolicy(
        workers=opts.parallel if opts.parallel is not None else 1,
        min_shard_threads=(
            opts.min_shard_threads
            if opts.min_shard_threads is not None
            else DEFAULT_MIN_SHARD_THREADS
        ),
        executor=opts.executor if opts.executor is not None else "thread",
    )


def default_policy() -> ParallelPolicy:
    """The policy of the ambient :func:`repro.options` scope on this
    thread (serial when no scope sets parallelism)."""
    return policy_from_options(current_options())


class use_parallel:
    """Deprecated: scope launch parallelism to a ``with`` block.

    Superseded by the unified :func:`repro.options` scope::

        with repro.options(parallel=4):
            ...
    """

    def __init__(self, workers, min_shard_threads: int = None) -> None:
        deprecated("use_parallel(...)", "repro.options(parallel=...)")
        policy = (
            workers
            if isinstance(workers, ParallelPolicy)
            else ParallelPolicy(
                workers,
                min_shard_threads
                if min_shard_threads is not None
                else default_policy().min_shard_threads,
            )
        )
        # Pushing every policy field pins the old all-or-nothing scope
        # semantics: an inner use_parallel fully replaces the outer one.
        from .._options import options as options_scope

        self._scope = options_scope(
            parallel=policy,
            min_shard_threads=policy.min_shard_threads,
            executor=policy.executor,
        )
        self.policy = policy

    def __enter__(self) -> ParallelPolicy:
        self._scope.__enter__()
        return self.policy

    def __exit__(self, *exc) -> None:
        self._scope.__exit__(*exc)


def resolve_policy(parallel) -> ParallelPolicy:
    """Normalize a raw ``parallel`` value against the ambient scope.

    ``None`` defers to the ambient :func:`repro.options` scope; an int or
    ``"auto"`` overrides the worker count but keeps the ambient shard
    threshold and executor; a :class:`ParallelPolicy` is used as-is.
    """
    if parallel is None:
        return default_policy()
    if isinstance(parallel, ParallelPolicy):
        return parallel
    ambient = default_policy()
    return ParallelPolicy(
        parallel, ambient.min_shard_threads, ambient.executor
    )


# ----------------------------------------------------------------- pools


class PoolStats:
    """Counters for one named pool, served from the metrics registry.

    The series are labelled ``pool=<kind>`` (``repro_pool_tasks_total``,
    ``repro_pool_batches_total``, ``repro_pool_max_workers``,
    ``repro_pool_workers_restarted_total``), so every pool shares four
    metric families and the snapshot is a registry view.
    """

    __slots__ = ("_tasks", "_batches", "_workers", "_restarts")

    def __init__(self, kind: str = "default") -> None:
        registry = get_registry()
        label = {"pool": kind}
        self._tasks = registry.counter(
            "repro_pool_tasks_total", "tasks submitted", labelnames=("pool",)
        ).labels(**label)
        self._batches = registry.counter(
            "repro_pool_batches_total", "parallel_map batches", labelnames=("pool",)
        ).labels(**label)
        self._workers = registry.gauge(
            "repro_pool_max_workers", "pool size high-water mark",
            labelnames=("pool",),
        ).labels(**label)
        self._restarts = registry.counter(
            "repro_pool_workers_restarted_total",
            "pool replacements after worker death or timeout",
            labelnames=("pool",),
        ).labels(**label)

    def record(self, tasks: int, workers: int) -> None:
        self._tasks.inc(tasks)
        self._batches.inc()
        self._workers.max(workers)

    def record_restart(self) -> None:
        self._restarts.inc()

    def snapshot(self) -> Dict[str, int]:
        return {
            "tasks": int(self._tasks.value),
            "batches": int(self._batches.value),
            "max_workers": int(self._workers.value),
            "workers_restarted": int(self._restarts.value),
        }


_POOL_LOCK = threading.Lock()
_POOLS: Dict[str, ThreadPoolExecutor] = {}
_POOL_SIZES: Dict[str, int] = {}
_POOL_STATS: Dict[str, PoolStats] = {}


def _pool_healthy(pool: ThreadPoolExecutor) -> bool:
    """Whether ``pool`` can still make progress.

    A ``ThreadPoolExecutor`` never respawns a worker that exited (a thread
    killed by a ``None`` sentinel slipped into its queue, or that died in
    an interpreter-level failure, is simply gone) — with every worker dead
    the pool accepts submissions that can never run.  An executor with no
    threads yet is healthy: workers spawn on first submit.
    """
    if pool._shutdown:  # noqa: SLF001 - stdlib exposes no public probe
        return False
    threads = list(pool._threads)  # noqa: SLF001
    return not threads or any(t.is_alive() for t in threads)


def _stats_locked(kind: str) -> PoolStats:
    """``pool_stats`` body for callers already holding ``_POOL_LOCK``."""
    stats = _POOL_STATS.get(kind)
    if stats is None:
        stats = _POOL_STATS[kind] = PoolStats(kind)
    return stats


def _fresh_pool_locked(kind: str, workers: int) -> ThreadPoolExecutor:
    old = _POOLS.get(kind)
    if old is not None:
        old.shutdown(wait=False)
    pool = ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix=f"repro-{kind}"
    )
    _POOLS[kind] = pool
    _POOL_SIZES[kind] = workers
    return pool


def get_pool(kind: str, workers: int) -> ThreadPoolExecutor:
    """The shared executor for ``kind`` with at least ``workers`` threads.

    Pools only ever grow: asking for more workers than the current pool
    holds replaces it (the old one drains its queue and exits).  A pool
    whose workers have all died is replaced too — submitting to it would
    deadlock forever — and the replacement counts as a worker restart.
    """
    workers = resolve_workers(workers)
    with _POOL_LOCK:
        pool = _POOLS.get(kind)
        if pool is not None and not _pool_healthy(pool):
            _stats_locked(kind).record_restart()
            pool = None
        if pool is None or _POOL_SIZES[kind] < workers:
            pool = _fresh_pool_locked(kind, max(workers, _POOL_SIZES.get(kind, 0)))
        return pool


def get_healthy_pool(kind: str, workers: int) -> ThreadPoolExecutor:
    """Alias of :func:`get_pool` (which now health-checks), kept explicit
    for guard-path callers that depend on the liveness guarantee."""
    return get_pool(kind, workers)


def replace_pool(kind: str, workers: int) -> ThreadPoolExecutor:
    """Force-replace the ``kind`` pool with a fresh one.

    Used by the guarded launch path after a worker death or deadline
    expiry: the old executor is shut down without waiting (hung workers
    finish against private buffers and exit) and the restart is counted.
    """
    workers = resolve_workers(workers)
    with _POOL_LOCK:
        _stats_locked(kind).record_restart()
        return _fresh_pool_locked(kind, max(workers, _POOL_SIZES.get(kind, 0)))


def parallel_map(kind: str, workers: int, fn: Callable, items: Sequence) -> List:
    """``[fn(item) for item in items]`` over the ``kind`` pool.

    Results come back in item order regardless of completion order — the
    deterministic-assembly property every caller relies on.  The first
    exception in item order propagates, as in the serial loop.  With one
    worker (or one item) the pool is bypassed entirely.
    """
    items = list(items)
    workers = resolve_workers(workers)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    pool = get_pool(kind, workers)
    stats = pool_stats(kind)
    stats.record(len(items), workers)
    # Spans started inside the tasks must parent to the submitting
    # thread's ambient span (no-op wrap while tracing is disabled).
    return list(pool.map(obs_trace.carry(fn), items))


def pool_stats(kind: str) -> PoolStats:
    with _POOL_LOCK:
        return _stats_locked(kind)


def pools_snapshot() -> Dict[str, Dict[str, int]]:
    """Per-pool counters for ``metrics_snapshot()``."""
    with _POOL_LOCK:
        return {kind: stats.snapshot() for kind, stats in _POOL_STATS.items()}


def shutdown_pools() -> None:
    """Tear down every pool (tests; pools are recreated on demand)."""
    with _POOL_LOCK:
        for pool in _POOLS.values():
            pool.shutdown(wait=True)
        _POOLS.clear()
        _POOL_SIZES.clear()
