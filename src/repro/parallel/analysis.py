"""Static shardability analysis over the typed IR.

A kernel launch may be split into per-worker sub-grids (shards) along the
block axis iff no block can observe another block's execution.  Blocks
are the natural cut: a block is never split across shards, so shared
memory, barriers and intra-block lockstep semantics are preserved
verbatim inside each shard.  What the analysis must rule out is exactly
the cross-*block* coupling the hardware model forbids too:

* **Global atomics.** Concurrent shards would race on the
  read-modify-write; merging per-shard partial results would need an
  operator-specific combine, not an overlay.  (Atomics on *shared*
  arrays are per-block and stay legal.)
* **Impure builtins** (``printf``, ``clock``): their side effects are
  ordered by the serial lockstep schedule that sharding destroys.
* **Cross-block data flow through global memory**: an array that is both
  loaded and stored is only safe when every access is element-wise —
  structurally the same thread-injective index — so a thread only ever
  re-reads its own element.
* **Block-dependent control coupling**: loop bounds must be uniform
  across the *whole grid*.  The runtime enforces uniformity per
  execution, so a bound that varies per block would raise serially but
  could pass inside a single-block shard; requiring statically uniform
  bounds keeps error behaviour identical.

Kernels that pass map cleanly onto the paper's patterns: Map,
Scatter/Gather, Stencil and Partition kernels shard; atomic Reductions
and the impure zoo kernels fall back to serial.

The analysis additionally proves, when it can, that every global store
index is *thread-injective* (affine in ``global_id`` with a non-zero
stride, or affine in ``block_id`` so distinct blocks hit distinct
slots).  Then shards may write the caller's buffers directly —
zero-copy; otherwise the executor gives each shard private copies of the
written arrays and overlays them deterministically in shard order
(:mod:`repro.parallel.shard`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..codegen.fingerprint import fingerprint_kernel, reachable_device_functions
from ..kernel import intrinsics, ir
from ..kernel.visitors import walk, walk_statements

#: Intrinsics whose value differs across threads of one grid.
VARYING_INTRINSICS = frozenset(
    {
        "global_id",
        "thread_id",
        "block_id",
        "global_id_x",
        "global_id_y",
        "thread_id_x",
        "thread_id_y",
        "block_id_x",
        "block_id_y",
    }
)

#: Intrinsics that are uniform across the whole grid (and across shards:
#: shard geometries keep the full-grid dims).
UNIFORM_INTRINSICS = frozenset(
    {"block_dim", "block_dim_y", "grid_dim", "grid_dim_y"}
) | {
    "block_dim_x",
    "grid_dim_x",
}


@dataclass
class Shardability:
    """What the analysis concluded about one kernel.

    Attributes:
        kernel: kernel name.
        shardable: blocks are provably independent; the grid may split.
        reasons: why not, when ``shardable`` is False (empty otherwise).
        written_arrays: global array params the kernel stores to, in
            declaration order — what the copy/overlay path must merge.
        disjoint_writes: every global store lands on a provably
            thread- or block-private element, so shards may write the
            caller's buffers in place (zero-copy).
    """

    kernel: str
    shardable: bool
    reasons: List[str] = field(default_factory=list)
    written_arrays: List[str] = field(default_factory=list)
    disjoint_writes: bool = False

    def describe(self) -> str:
        if self.shardable:
            mode = "zero-copy" if self.disjoint_writes else "copy+merge"
            writes = ", ".join(self.written_arrays) or "none"
            return f"{self.kernel}: shardable ({mode}; writes: {writes})"
        return f"{self.kernel}: serial — " + "; ".join(self.reasons)


# -------------------------------------------------------- uniform locals


def _uniform_locals(fn: ir.Function) -> Set[str]:
    """Locals provably identical across every thread of any grid.

    Fixpoint: a local is uniform iff every assignment to it has a uniform
    RHS.  Loop variables are uniform by construction (bounds are uniform,
    enforced below).
    """
    assigns: Dict[str, List[ir.Expr]] = {}
    loop_vars: Set[str] = set()
    for stmt in walk_statements(fn.body):
        if isinstance(stmt, ir.Assign):
            assigns.setdefault(stmt.target, []).append(stmt.value)
        elif isinstance(stmt, ir.For):
            loop_vars.add(stmt.var)
    scalar_params = {p.name for p in fn.params if not p.is_array}
    uniform = set(scalar_params) | (loop_vars - set(assigns))

    def expr_uniform(expr: ir.Expr) -> bool:
        if isinstance(expr, ir.Const):
            return True
        if isinstance(expr, ir.Var):
            return expr.name in uniform
        if isinstance(expr, ir.BinOp):
            return expr_uniform(expr.left) and expr_uniform(expr.right)
        if isinstance(expr, (ir.UnOp, ir.Cast)):
            return expr_uniform(expr.operand)
        if isinstance(expr, ir.Select):
            return (
                expr_uniform(expr.cond)
                and expr_uniform(expr.if_true)
                and expr_uniform(expr.if_false)
            )
        if isinstance(expr, ir.Call):
            if expr.func in UNIFORM_INTRINSICS:
                return True
            if expr.func in VARYING_INTRINSICS:
                return False
            if intrinsics.is_builtin(expr.func):
                return all(expr_uniform(a) for a in expr.args)
            return False  # device calls: conservatively varying
        return False  # loads are varying in general

    changed = True
    while changed:
        changed = False
        for name, values in assigns.items():
            if name in uniform:
                continue
            if all(expr_uniform(v) for v in values):
                uniform.add(name)
                changed = True
    return uniform


def _expr_grid_uniform(expr: ir.Expr, uniform: Set[str]) -> bool:
    """Whether a loop-bound expression is uniform across the whole grid."""
    if isinstance(expr, ir.Const):
        return True
    if isinstance(expr, ir.Var):
        return expr.name in uniform
    if isinstance(expr, ir.BinOp):
        return _expr_grid_uniform(expr.left, uniform) and _expr_grid_uniform(
            expr.right, uniform
        )
    if isinstance(expr, (ir.UnOp, ir.Cast)):
        return _expr_grid_uniform(expr.operand, uniform)
    if isinstance(expr, ir.Select):
        return all(
            _expr_grid_uniform(e, uniform)
            for e in (expr.cond, expr.if_true, expr.if_false)
        )
    if isinstance(expr, ir.Call):
        if expr.func in UNIFORM_INTRINSICS:
            return True
        if expr.func in VARYING_INTRINSICS:
            return False
        if intrinsics.is_builtin(expr.func):
            return all(_expr_grid_uniform(a, uniform) for a in expr.args)
    return False


# ------------------------------------------------- affine index analysis

#: ``{intrinsic: coeff}, constant`` — an integer-affine combination of
#: thread intrinsics.
_Affine = Tuple[Dict[str, int], int]


def _affine_expr(expr: ir.Expr, env: Dict[str, _Affine]) -> Optional[_Affine]:
    """Decompose ``expr`` into ``sum(coeff * intrinsic) + const``.

    ``env`` maps single-assignment locals to their affine values, so the
    idiomatic ``i = global_id(); out[i] = ...`` resolves.  Deliberately
    narrow — it only needs to recognise the ``out[gid]``-family of store
    indices that dominate the kernel suite; anything else returns None.
    """
    if isinstance(expr, ir.Const):
        try:
            value = int(expr.value)
        except (TypeError, ValueError):
            return None
        if float(expr.value) != float(value):
            return None
        return {}, value
    if isinstance(expr, ir.Var):
        return env.get(expr.name)
    if isinstance(expr, ir.Call) and expr.func in VARYING_INTRINSICS:
        return {expr.func: 1}, 0
    if isinstance(expr, ir.Cast):
        if expr.dtype.is_integer:
            return _affine_expr(expr.operand, env)
        return None
    if isinstance(expr, ir.BinOp):
        left = _affine_expr(expr.left, env)
        right = _affine_expr(expr.right, env)
        if left is None or right is None:
            return None
        (lc, lk), (rc, rk) = left, right
        if expr.op == "add":
            merged = dict(lc)
            for name, coeff in rc.items():
                merged[name] = merged.get(name, 0) + coeff
            return {n: c for n, c in merged.items() if c}, lk + rk
        if expr.op == "sub":
            merged = dict(lc)
            for name, coeff in rc.items():
                merged[name] = merged.get(name, 0) - coeff
            return {n: c for n, c in merged.items() if c}, lk - rk
        if expr.op == "mul":
            if not lc:  # constant * affine
                return {n: c * lk for n, c in rc.items() if c * lk}, lk * rk
            if not rc:  # affine * constant
                return {n: c * rk for n, c in lc.items() if c * rk}, lk * rk
    return None


def _affine_locals(fn: ir.Function) -> Dict[str, _Affine]:
    """Locals with a single, loop-free, affine-in-intrinsics assignment.

    Fixpoint so chains like ``i = global_id(); j = i + 1`` resolve.  A
    local assigned more than once (accumulators) or inside a loop body
    (iteration-varying) never enters the environment.
    """
    assigns: Dict[str, List[ir.Expr]] = {}
    in_loop: Set[str] = set()
    for stmt in walk_statements(fn.body):
        if isinstance(stmt, ir.Assign):
            assigns.setdefault(stmt.target, []).append(stmt.value)
        elif isinstance(stmt, ir.For):
            in_loop.add(stmt.var)
            for inner in walk_statements(stmt.body):
                if isinstance(inner, ir.Assign):
                    in_loop.add(inner.target)
    env: Dict[str, _Affine] = {}
    changed = True
    while changed:
        changed = False
        for name, values in assigns.items():
            if name in env or name in in_loop or len(values) != 1:
                continue
            affine = _affine_expr(values[0], env)
            if affine is not None:
                env[name] = affine
                changed = True
    return env


def _store_disjoint(index: ir.Expr, env: Dict[str, _Affine]) -> bool:
    """Whether a global store at ``index`` is provably private to its
    writer across shards.

    Two sufficient shapes:

    * affine in ``global_id`` (or an x/y component) with non-zero stride —
      distinct threads hit distinct elements, so distinct shards do too;
    * affine in ``block_id`` with non-zero stride — all writers of one
      element share a block, and a block lives in exactly one shard
      (within the shard the lockstep store order is unchanged).
    """
    affine = _affine_expr(index, env)
    if affine is None:
        return False
    coeffs, _const = affine
    if len(coeffs) != 1:
        return False
    ((name, stride),) = coeffs.items()
    return name in ("global_id", "block_id") and stride != 0


def _index_key(expr: ir.Expr) -> Optional[str]:
    """A structural key for comparing access indices (None = unkeyable)."""
    if isinstance(expr, ir.Const):
        return f"c:{expr.value!r}"
    if isinstance(expr, ir.Var):
        return f"v:{expr.name}"
    if isinstance(expr, ir.Call):
        parts = [_index_key(a) for a in expr.args]
        if any(p is None for p in parts):
            return None
        return f"call:{expr.func}({','.join(parts)})"
    if isinstance(expr, ir.BinOp):
        left, right = _index_key(expr.left), _index_key(expr.right)
        if left is None or right is None:
            return None
        return f"({left}{expr.op}{right})"
    if isinstance(expr, ir.UnOp):
        operand = _index_key(expr.operand)
        return None if operand is None else f"{expr.op}({operand})"
    if isinstance(expr, ir.Cast):
        operand = _index_key(expr.operand)
        return None if operand is None else f"cast[{expr.dtype.name}]({operand})"
    return None


# ---------------------------------------------------------- the analysis


def _shared_names(fn: ir.Function) -> Set[str]:
    return {
        s.name for s in walk_statements(fn.body) if isinstance(s, ir.SharedAlloc)
    }


def analyze_function(fn: ir.Function, module: ir.Module) -> Shardability:
    """Uncached core of :func:`analyze_shardability`."""
    reasons: List[str] = []
    shared = _shared_names(fn)
    uniform = _uniform_locals(fn)
    affine_env = _affine_locals(fn)
    functions = [fn] + reachable_device_functions(fn, module)

    # impure builtins anywhere in the call graph
    for function in functions:
        for stmt in walk_statements(function.body):
            for node in walk(stmt):
                if isinstance(node, ir.Call) and intrinsics.is_impure(node.func):
                    reasons.append(
                        f"impure builtin {node.func!r} in {function.name}"
                    )

    # loop bounds must be uniform across the whole grid
    for stmt in walk_statements(fn.body):
        if isinstance(stmt, ir.For):
            for what, bound in (
                ("start", stmt.start),
                ("stop", stmt.stop),
                ("step", stmt.step),
            ):
                if not _expr_grid_uniform(bound, uniform):
                    reasons.append(
                        f"loop {what} for {stmt.var!r} is not grid-uniform"
                    )
    # device-function loops: bounds must be literal/uniform-intrinsic only
    # (their scalar params may be varying at any call site)
    for function in functions[1:]:
        for stmt in walk_statements(function.body):
            if isinstance(stmt, ir.For):
                for what, bound in (
                    ("start", stmt.start),
                    ("stop", stmt.stop),
                    ("step", stmt.step),
                ):
                    if not _expr_grid_uniform(bound, set()):
                        reasons.append(
                            f"loop {what} for {stmt.var!r} in device function "
                            f"{function.name} may vary per thread"
                        )

    # memory coupling
    loads: Dict[str, List[ir.Expr]] = {}
    stores: Dict[str, List[ir.Expr]] = {}
    for stmt in walk_statements(fn.body):
        for node in walk(stmt):
            if isinstance(node, ir.Load) and node.array.name not in shared:
                loads.setdefault(node.array.name, []).append(node.index)
        if isinstance(stmt, ir.Store) and stmt.array.name not in shared:
            stores.setdefault(stmt.array.name, []).append(stmt.index)
        elif isinstance(stmt, ir.AtomicRMW):
            if stmt.array.name not in shared:
                reasons.append(
                    f"global atomic_{stmt.op} on {stmt.array.name!r}"
                )

    for name in stores:
        if name not in loads:
            continue
        keys = {_index_key(index) for index in loads[name] + stores[name]}
        if None in keys or len(keys) != 1 or not all(
            _store_disjoint(index, affine_env) for index in stores[name]
        ):
            reasons.append(
                f"array {name!r} is read and written with coupled indices"
            )

    param_order = [p.name for p in fn.params if p.is_array]
    written = [name for name in param_order if name in stores]
    disjoint = all(
        _store_disjoint(index, affine_env)
        for indices in stores.values()
        for index in indices
    )  # vacuously True with no stores: nothing to merge
    return Shardability(
        kernel=fn.name,
        shardable=not reasons,
        reasons=sorted(set(reasons)),
        written_arrays=written,
        disjoint_writes=disjoint and not reasons,
    )


_ANALYSIS_CACHE: Dict[str, Shardability] = {}
_ANALYSIS_CACHE_MAX = 512


def analyze_shardability(
    fn: ir.Function, module: ir.Module, fingerprint: Optional[str] = None
) -> Shardability:
    """Analyze ``fn`` once per IR fingerprint (kernels are immutable)."""
    fp = fingerprint if fingerprint is not None else fingerprint_kernel(fn, module)
    hit = _ANALYSIS_CACHE.get(fp)
    if hit is not None:
        return hit
    result = analyze_function(fn, module)
    if len(_ANALYSIS_CACHE) >= _ANALYSIS_CACHE_MAX:
        _ANALYSIS_CACHE.pop(next(iter(_ANALYSIS_CACHE)))
    _ANALYSIS_CACHE[fp] = result
    return result
