"""Pure-section outlining — the extension §5 of the paper leaves open.

Paraprox memoizes at *function* granularity: a kernel whose heavy math is
written inline (not factored into a ``__device__`` helper) has no
candidate, and the paper notes that "detection of such map or
scatter/gather sections within a function is left for future research".
This module implements that future work:

1. every scalar assignment whose right-hand side is *pure* — no memory
   accesses, no atomics, no thread intrinsics, no impure calls — is a
   slice candidate,
2. for each local ``v`` the backward slice of pure assignments feeding it
   is collected within one straight-line block,
3. a slice is outlineable when its intermediate values are used only
   inside the slice (so extraction is semantics-preserving), its external
   inputs are few enough to quantize, and its Eq.-1 cost passes the
   memoization profitability test,
4. the best slice is outlined into a synthetic ``__device__`` function and
   the kernel is rewritten to call it — after which the standard map
   detection and memoization pipeline (§3.1) applies unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.latency import LatencyTable, cycles_needed, is_memoization_profitable
from ..errors import TransformError
from ..kernel import intrinsics, ir
from ..kernel.types import ScalarType
from ..kernel.visitors import Transformer, clone, clone_module, walk

#: Outlined functions take at most this many scalar inputs (more would
#: need an impractically large lookup table downstream).
MAX_SLICE_INPUTS = 4

#: Minimum number of assignments for a slice to be worth outlining.
MIN_SLICE_STATEMENTS = 2


def _is_pure_expr(expr: ir.Expr) -> bool:
    """No loads, thread intrinsics, or impure/unknown calls."""
    for node in walk(expr):
        if isinstance(node, (ir.Load, ir.ArrayRef)):
            return False
        if isinstance(node, ir.Call):
            if node.func in ir.THREAD_INTRINSICS:
                return False
            builtin = intrinsics.get(node.func)
            if builtin is None or intrinsics.is_impure(node.func):
                return False
    return True


def _reads(expr: ir.Expr) -> Set[str]:
    return {n.name for n in walk(expr) if isinstance(n, ir.Var)}


def _read_counts(expr: ir.Expr) -> Dict[str, int]:
    """Occurrence counts (a set would undercount ``d1 * d1``)."""
    counts: Dict[str, int] = {}
    for n in walk(expr):
        if isinstance(n, ir.Var):
            counts[n.name] = counts.get(n.name, 0) + 1
    return counts


@dataclass
class PureSlice:
    """A backward slice of pure assignments producing one scalar."""

    output: str
    #: indices into the enclosing block, in execution order
    statement_indices: List[int]
    statements: List[ir.Assign]
    #: external scalar inputs, in first-use order
    inputs: List[Tuple[str, object]]  # (name, DType)

    @property
    def size(self) -> int:
        return len(self.statements)


@dataclass
class _Block:
    """One straight-line statement list and how to reach it."""

    statements: List[ir.Stmt]


def _blocks_of(fn: ir.Function) -> List[List[ir.Stmt]]:
    """All straight-line statement lists of a function (bodies of the
    function, of If arms and of For loops)."""
    blocks = [fn.body]
    stack = list(fn.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, ir.If):
            blocks.append(stmt.then_body)
            blocks.append(stmt.else_body)
            stack.extend(stmt.then_body)
            stack.extend(stmt.else_body)
        elif isinstance(stmt, ir.For):
            blocks.append(stmt.body)
            stack.extend(stmt.body)
    return [b for b in blocks if b]


def _var_dtypes(fn: ir.Function, block: List[ir.Stmt]) -> Dict[str, object]:
    """dtype of every scalar visible in the block (params + assignments
    anywhere in the function — blocks may read outer locals)."""
    dtypes: Dict[str, object] = {
        p.name: p.type.dtype for p in fn.params if not p.is_array
    }
    from ..kernel.visitors import walk_statements

    for stmt in walk_statements(fn.body):
        if isinstance(stmt, ir.Assign):
            dtypes[stmt.target] = stmt.value.dtype
        elif isinstance(stmt, ir.For):
            from ..kernel.types import I32

            dtypes[stmt.var] = I32
    return dtypes


def find_slices(fn: ir.Function) -> List[PureSlice]:
    """All outlineable pure slices of ``fn``, best (largest) first."""
    slices: List[PureSlice] = []
    for block in _blocks_of(fn):
        dtypes = _var_dtypes(fn, block)
        pure_idx = {
            i
            for i, s in enumerate(block)
            if isinstance(s, ir.Assign) and _is_pure_expr(s.value)
        }
        defs_in_block = {
            s.target: i for i, s in enumerate(block) if isinstance(s, ir.Assign)
        }

        # Uses of each variable across the whole function (for the
        # "intermediates escape" legality check).
        use_sites: Dict[str, int] = {}
        for node in walk(fn):
            if isinstance(node, ir.Var):
                use_sites[node.name] = use_sites.get(node.name, 0) + 1

        for out_idx in sorted(pure_idx):
            output = block[out_idx].target
            # Backward slice within this block.
            slice_set = {out_idx}
            frontier = _reads(block[out_idx].value)
            inputs: List[str] = []
            ok = True
            while frontier:
                name = frontier.pop()
                def_idx = defs_in_block.get(name)
                if def_idx is not None and def_idx in pure_idx and def_idx < out_idx:
                    if def_idx not in slice_set:
                        slice_set.add(def_idx)
                        frontier |= _reads(block[def_idx].value)
                else:
                    if name not in inputs:
                        if name not in dtypes:
                            ok = False
                            break
                        inputs.append(name)
            if not ok or len(slice_set) < MIN_SLICE_STATEMENTS:
                continue
            if len(inputs) > MAX_SLICE_INPUTS:
                continue
            # Legality: intermediates must not be read outside the slice.
            uses_inside: Dict[str, int] = {}
            for i in slice_set:
                for name, count in _read_counts(block[i].value).items():
                    uses_inside[name] = uses_inside.get(name, 0) + count
            escaped = False
            for i in slice_set:
                var = block[i].target
                if var == output:
                    continue
                if use_sites.get(var, 0) != uses_inside.get(var, 0):
                    escaped = True  # read somewhere outside the slice
                # re-assignment elsewhere would also change meaning
            if escaped:
                continue
            ordered = sorted(slice_set)
            slices.append(
                PureSlice(
                    output=output,
                    statement_indices=ordered,
                    statements=[block[i] for i in ordered],
                    inputs=[(n, dtypes[n]) for n in sorted(inputs)],
                )
            )
    slices.sort(key=lambda s: -s.size)
    return slices


def outline_slice(
    module: ir.Module, kernel_name: str, chosen: PureSlice, fn_name: str
) -> Tuple[ir.Module, str]:
    """Rewrite ``kernel_name`` so ``chosen`` becomes a call to a new device
    function ``fn_name``.  Returns (new module, device function name)."""
    if fn_name in module:
        raise TransformError(f"function {fn_name!r} already exists")
    new_module = clone_module(module)
    kernel = new_module[kernel_name]

    output_dtype = chosen.statements[-1].value.dtype
    device_fn = ir.Function(
        name=fn_name,
        params=[ir.Param(n, ScalarType(dt)) for n, dt in chosen.inputs],
        body=[clone(s) for s in chosen.statements]
        + [ir.Return(ir.Var(chosen.output, output_dtype))],
        kind="device",
        return_type=ScalarType(output_dtype),
    )
    new_module.add(device_fn)

    target_texts = {_stmt_key(s) for s in chosen.statements}
    replaced = {"count": 0}

    output_key = _stmt_key(chosen.statements[-1])

    class _Outline(Transformer):
        def transform_body(self, body):
            # Only the block actually containing the slice's output is
            # rewritten; textually identical statements elsewhere survive.
            if not any(_stmt_key(s) == output_key for s in body):
                return super().transform_body(body)
            out = []
            pending_keys = set(target_texts)
            for stmt in body:
                key = _stmt_key(stmt)
                if key in pending_keys:
                    pending_keys.discard(key)
                    if key == output_key:
                        call = ir.Call(
                            fn_name,
                            [ir.Var(n, dt) for n, dt in chosen.inputs],
                            output_dtype,
                        )
                        out.append(ir.Assign(chosen.output, call))
                        replaced["count"] += 1
                    # other slice statements are dropped (moved into fn)
                    continue
                out.append(self.transform_stmt(stmt))
            return out

    rewritten = _Outline().transform_function(kernel)
    if replaced["count"] != 1:
        raise TransformError(
            f"outlining failed: output statement matched {replaced['count']} times"
        )
    del new_module.functions[kernel_name]
    new_module.add(rewritten)
    return new_module, fn_name


def _stmt_key(stmt: ir.Stmt) -> str:
    from ..kernel.printer import _print_body

    lines: List[str] = []
    _print_body([stmt], 0, lines)
    return "\n".join(lines)


def outline_best_slice(
    module: ir.Module,
    kernel_name: str,
    table: LatencyTable,
    fn_name: Optional[str] = None,
) -> Optional[Tuple[ir.Module, str]]:
    """Outline the most profitable pure slice of a kernel, or None when no
    slice passes the Eq.-1 memoization test.

    The returned module's kernel now calls a synthetic device function, so
    the standard map detector finds it as a memoization candidate.
    """
    kernel = module[kernel_name]
    fn_name = fn_name or f"{kernel_name}__section"
    best: Optional[Tuple[float, PureSlice]] = None
    for candidate in find_slices(kernel):
        probe = ir.Function(
            name="__probe",
            params=[ir.Param(n, ScalarType(dt)) for n, dt in candidate.inputs],
            body=list(candidate.statements),
            kind="device",
            return_type=ScalarType(candidate.statements[-1].value.dtype),
        )
        cost = cycles_needed(probe, table, module)
        if not is_memoization_profitable(probe, table, module):
            continue
        if best is None or cost > best[0]:
            best = (cost, candidate)
    if best is None:
        return None
    return outline_slice(module, kernel_name, best[1], fn_name)
