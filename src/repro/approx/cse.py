"""Local common-subexpression elimination for array loads.

The tile-replication transform redirects many loads to the same address;
the speedup only materialises if duplicate loads collapse into one.  This
pass hoists repeated loads *within one statement block* into a temp local,
under conservative safety conditions:

* the loaded array is never stored to (or atomically updated) anywhere in
  the kernel, and
* every variable in the load's index expression is assigned at most once
  in the whole function (so the index value cannot change between the
  first and later occurrences).
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..kernel import ir
from ..kernel.printer import print_expr
from ..kernel.visitors import Transformer, walk, walk_statements


def _stored_arrays(fn: ir.Function) -> Set[str]:
    out = set()
    for stmt in walk_statements(fn.body):
        if isinstance(stmt, (ir.Store, ir.AtomicRMW)):
            out.add(stmt.array.name)
    return out


def _multiply_assigned(fn: ir.Function) -> Set[str]:
    counts: Dict[str, int] = {}
    for stmt in walk_statements(fn.body):
        if isinstance(stmt, ir.Assign):
            counts[stmt.target] = counts.get(stmt.target, 0) + 1
        elif isinstance(stmt, ir.For):
            counts[stmt.var] = counts.get(stmt.var, 0) + 2
    return {name for name, n in counts.items() if n > 1}


class _BlockCSE(Transformer):
    def __init__(
        self, unsafe_arrays: Set[str], unstable_vars: Set[str], defs=None
    ) -> None:
        self.unsafe_arrays = unsafe_arrays
        self.unstable_vars = unstable_vars
        self.defs = defs or {}
        self._table_stack: List[Dict[str, str]] = []
        self._pending: List[ir.Stmt] = []
        self._counter = 0
        self.eliminated = 0

    def transform_body(self, body):
        # Each block gets its own value table: a load hoisted in one branch
        # does not dominate statements of a sibling branch.
        self._table_stack.append({})
        out: List[ir.Stmt] = []
        for stmt in body:
            saved = self._pending
            self._pending = []
            result = self.transform_stmt(stmt)
            pending, self._pending = self._pending, saved
            out.extend(pending)
            if isinstance(result, list):
                out.extend(result)
            elif result is not None:
                out.append(result)
        self._table_stack.pop()
        return out

    def _cacheable(self, load: ir.Load) -> bool:
        if load.array.name in self.unsafe_arrays:
            return False
        for node in walk(load.index):
            if isinstance(node, ir.Var) and node.name in self.unstable_vars:
                return False
            if isinstance(node, ir.Load):
                return False
        return True

    def _key(self, load: ir.Load):
        """Two loads are duplicates when their index *polynomials* agree —
        the tile-replication rewrite produces syntactically different but
        algebraically identical indices (``(y*w+x+1) - 1`` vs ``y*w+x``)."""
        from ..analysis.affine import _to_poly

        poly = _to_poly(load.index, self.defs, {})
        if poly is not None:
            return (load.array.name, poly.terms)
        return (load.array.name, print_expr(load))

    def visit_Load(self, load: ir.Load):
        if not self._cacheable(load) or not self._table_stack:
            return load
        table = self._table_stack[-1]
        key = self._key(load)
        if key in table:
            self.eliminated += 1
            return ir.Var(table[key], load.dtype)
        self._counter += 1
        name = f"_cse{self._counter}"
        self._pending.append(ir.Assign(name, load))
        table[key] = name
        return ir.Var(name, load.dtype)


def eliminate_duplicate_loads(fn: ir.Function) -> ir.Function:
    """Return a copy of ``fn`` with duplicate block-local loads collapsed."""
    from ..analysis.affine import _single_assignment_defs

    cse = _BlockCSE(_stored_arrays(fn), _multiply_assigned(fn), _single_assignment_defs(fn))
    return cse.transform_function(fn)
