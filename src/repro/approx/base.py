"""Shared vocabulary of the approximation transforms.

Every transform emits :class:`ApproxKernel` variants: a rewritten module
plus the knob values that variant was generated with and any host-side
data (lookup tables) the rewritten kernel needs as extra launch arguments.
The runtime tuner then profiles variants and picks the fastest one whose
output quality satisfies the TOQ (paper Fig 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..kernel import ir
from ..patterns.base import Pattern


@dataclass
class ApproxKernel:
    """One generated approximate kernel variant.

    Attributes:
        name: unique variant label, e.g. ``black_scholes__memo_t2048``.
        pattern: the pattern whose optimization produced this variant.
        kernel: name of the rewritten kernel inside ``module``.
        module: module holding the rewritten kernel (+ device functions).
        knobs: tuning-parameter values this variant encodes
            (e.g. ``{"table_bits": 11, "lookup": "nearest"}``).
        extra_args: host-side buffers/scalars appended to the original
            launch arguments, in the order of the extra parameters the
            rewrite added (lookup tables, quantization constants...).
        aggressiveness: coarse ordering key — higher means more
            approximation; the tuner's back-off walks it downwards.
    """

    name: str
    pattern: Pattern
    kernel: str
    module: ir.Module
    knobs: Dict[str, object] = field(default_factory=dict)
    extra_args: List[object] = field(default_factory=list)
    aggressiveness: float = 0.0

    def launch_args(self, original_args: List[object]) -> List[object]:
        """Original kernel arguments extended with this variant's extras."""
        return list(original_args) + list(self.extra_args)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        knobs = ", ".join(f"{k}={v}" for k, v in self.knobs.items())
        return f"<ApproxKernel {self.name} ({self.pattern.value}; {knobs})>"


@dataclass
class VariantSet:
    """All variants generated for one kernel, exact version included."""

    kernel: str
    variants: List[ApproxKernel] = field(default_factory=list)

    def sorted_by_aggressiveness(self) -> List[ApproxKernel]:
        return sorted(self.variants, key=lambda v: v.aggressiveness)


def fresh_name(base: str, suffix: str) -> str:
    """Variant naming convention shared by all transforms."""
    return f"{base}__{suffix}"
