"""Shared vocabulary of the approximation transforms.

Every transform emits :class:`ApproxKernel` variants: a rewritten module
plus the knob values that variant was generated with and any host-side
data (lookup tables) the rewritten kernel needs as extra launch arguments.
The runtime tuner then profiles variants and picks the fastest one whose
output quality satisfies the TOQ (paper Fig 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..kernel import ir
from ..patterns.base import Pattern


@dataclass(frozen=True)
class ApproxMeta:
    """Compile-time description of the approximation baked into a kernel.

    Every transform attaches one of these to the rewritten
    :class:`~repro.kernel.ir.Function` (as the ``approx`` attribute) so
    downstream layers can specialize on it without re-deriving anything
    from the IR:

    * :mod:`repro.codegen` keys its cache and fingerprint on the
      ``(transform, knobs)`` tuple and switches the v2 lowering on for
      tagged kernels (constant folding over the baked-in knob literals,
      ``np.take`` gathers over lookup tables whose extent is proven by
      ``tables``);
    * :meth:`VariantSet.describe` and the serving metrics surface the
      per-variant lowering outcome.

    The record is a frozen, picklable value: it survives the on-disk
    variant cache round trip alongside the module it annotates.

    Attributes:
        transform: ``"memo"``, ``"stencil"``, ``"reduction"`` or
            ``"scan"`` — which §3 transform produced the kernel.
        knobs: the knob values baked into the IR, as a sorted
            ``(name, value)`` tuple (hashable, fingerprint-friendly).
        tables: ``(table param name, entry count)`` per lookup table the
            kernel gained; the v2 lowering uses the entry count to prove
            gather indices in-range.
    """

    transform: str
    knobs: Tuple[Tuple[str, object], ...] = ()
    tables: Tuple[Tuple[str, int], ...] = ()

    @staticmethod
    def knob_tuple(knobs: Dict[str, object]) -> Tuple[Tuple[str, object], ...]:
        """Normalize a knob dict into the hashable sorted-tuple form."""
        return tuple(sorted((k, _freeze(v)) for k, v in knobs.items()))


def _freeze(value):
    """Make one knob value hashable (lists -> tuples, arrays -> shapes)."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, np.ndarray):  # pragma: no cover - defensive
        return (value.dtype.str, value.shape)
    return value


def tag_approx(fn: ir.Function, meta: ApproxMeta) -> ir.Function:
    """Attach ``meta`` to ``fn`` (call *after* the final rewrite pass —
    :class:`~repro.kernel.visitors.Transformer` rebuilds functions without
    extra attributes)."""
    fn.approx = meta
    return fn


@dataclass
class ApproxKernel:
    """One generated approximate kernel variant.

    Attributes:
        name: unique variant label, e.g. ``black_scholes__memo_t2048``.
        pattern: the pattern whose optimization produced this variant.
        kernel: name of the rewritten kernel inside ``module``.
        module: module holding the rewritten kernel (+ device functions).
        knobs: tuning-parameter values this variant encodes
            (e.g. ``{"table_bits": 11, "lookup": "nearest"}``).
        extra_args: host-side buffers/scalars appended to the original
            launch arguments, in the order of the extra parameters the
            rewrite added (lookup tables, quantization constants...).
        aggressiveness: coarse ordering key — higher means more
            approximation; the tuner's back-off walks it downwards.
    """

    name: str
    pattern: Pattern
    kernel: str
    module: ir.Module
    knobs: Dict[str, object] = field(default_factory=dict)
    extra_args: List[object] = field(default_factory=list)
    aggressiveness: float = 0.0

    def launch_args(self, original_args: List[object]) -> List[object]:
        """Original kernel arguments extended with this variant's extras."""
        return list(original_args) + list(self.extra_args)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        knobs = ", ".join(f"{k}={v}" for k, v in self.knobs.items())
        return f"<ApproxKernel {self.name} ({self.pattern.value}; {knobs})>"


@dataclass
class VariantSet:
    """The typed result of ``Paraprox.compile``: every approximate variant
    generated for one kernel, plus a handle on the exact program.

    Iterating (or indexing) a ``VariantSet`` yields the approximate
    variants in generation order, so code written against the old
    ``List[object]`` return type keeps working unchanged; comparison
    against a plain list compares the variants the same way.

    Attributes:
        kernel: name of the kernel the variants approximate ("" for
            multi-kernel programs that build their own pipeline).
        variants: the generated variants (:class:`ApproxKernel` or an
            app-specific variant type such as ``ScanVariant``).
        exact: the unmodified kernel (a ``KernelFn``) when the app has a
            single-kernel shape, else ``None``.
        skipped: notes about patterns that matched but could not be
            rewritten (mirrors ``Paraprox.last_skipped``).
        backend: launch backend these variants should be served with
            (one of ``repro.engine.BACKENDS``), or ``None`` to defer to
            the ambient default.
        parallel: worker count the variants should be served with (an
            int, ``"auto"``, or ``None`` to defer to the ambient
            :func:`repro.parallel.use_parallel` scope) — stamped from
            ``ParaproxConfig.parallel_workers`` by ``Paraprox.compile``.
    """

    kernel: str
    variants: List[ApproxKernel] = field(default_factory=list)
    exact: Optional[object] = None
    skipped: List[str] = field(default_factory=list)
    backend: Optional[str] = None
    parallel: Optional[object] = None

    # -- container protocol (backward compatibility with the list return) ----

    def __iter__(self):
        return iter(self.variants)

    def __len__(self) -> int:
        return len(self.variants)

    def __getitem__(self, index):
        return self.variants[index]

    def __bool__(self) -> bool:
        return bool(self.variants)

    def __contains__(self, item) -> bool:
        return item in self.variants

    def __eq__(self, other) -> bool:
        if isinstance(other, VariantSet):
            return (
                self.kernel == other.kernel and self.variants == other.variants
            )
        if isinstance(other, (list, tuple)):
            return self.variants == list(other)
        return NotImplemented

    # -- typed accessors -----------------------------------------------------

    def names(self) -> List[str]:
        return [v.name for v in self.variants]

    def by_pattern(self, pattern) -> List[ApproxKernel]:
        """Variants produced for ``pattern`` (a :class:`Pattern` or its
        string value, e.g. ``"stencil"``)."""
        if isinstance(pattern, str):
            try:
                pattern = Pattern(pattern)
            except ValueError:
                raise KeyError(
                    f"unknown pattern {pattern!r}; "
                    f"known: {[p.value for p in Pattern]}"
                ) from None
        return [v for v in self.variants if getattr(v, "pattern", None) is pattern]

    def by_name(self, name: str) -> ApproxKernel:
        """The variant called ``name``; raises ``KeyError`` with the known
        names when absent."""
        for v in self.variants:
            if v.name == name:
                return v
        raise KeyError(f"no variant named {name!r}; known: {self.names()}")

    def sorted_by_aggressiveness(self) -> List[ApproxKernel]:
        return sorted(self.variants, key=lambda v: v.aggressiveness)

    def patterns(self) -> List[Pattern]:
        """Distinct patterns represented, in first-seen order."""
        seen: List[Pattern] = []
        for v in self.variants:
            p = getattr(v, "pattern", None)
            if p is not None and p not in seen:
                seen.append(p)
        return seen

    def describe(self, lowering: bool = True) -> str:
        """A human-readable table of the set: one line per variant with its
        pattern, knob values, and — unless ``lowering=False`` — the codegen
        lowering outcome (``codegen-v2`` / ``codegen-v1`` / ``interpreter``
        with the fallback reason), so silent ``backend="auto"`` fallbacks
        are visible from ``repro.tools inspect``."""
        header = f"VariantSet for kernel {self.kernel or '<pipeline>'!r}: " \
                 f"{len(self.variants)} variant(s)"
        lines = [header]
        for v in self.variants:
            pattern = getattr(v, "pattern", None)
            pname = pattern.value if isinstance(pattern, Pattern) else "?"
            knobs = ", ".join(
                f"{k}={val}" for k, val in getattr(v, "knobs", {}).items()
            )
            line = f"  {v.name:<58s} [{pname}] {knobs}"
            if lowering:
                mode, detail = variant_lowering(v)
                line += f"  -> {mode}" + (f" ({detail})" if detail else "")
            lines.append(line)
        for note in self.skipped:
            lines.append(f"  [skipped] {note}")
        return "\n".join(lines)

    def lowering_outcomes(self) -> Dict[str, Dict[str, str]]:
        """``{variant name: {"mode": ..., "detail": ...}}`` for every
        variant — the machine-readable face of :meth:`describe`'s lowering
        column (what ``metrics_snapshot()["codegen"]["variants"]`` serves)."""
        return {
            v.name: dict(zip(("mode", "detail"), variant_lowering(v)))
            for v in self.variants
        }


def variant_lowering(variant) -> Tuple[str, str]:
    """Classify how one variant's kernel(s) will execute under the codegen
    backend: ``("codegen-v2" | "codegen-v1" | "interpreter", detail)``.

    Works for plain :class:`ApproxKernel` variants and for paired/pipeline
    variants that expose inner ``ApproxKernel`` attributes (e.g. the
    separable-convolution ``row``/``col`` pair); variants with no
    recognizable kernel handle classify as ``("n/a", ...)``.
    """
    from ..codegen.cache import classify_lowering  # lazy: avoid import cycle

    inner = [
        getattr(variant, attr)
        for attr in ("row", "col")
        if isinstance(getattr(variant, attr, None), ApproxKernel)
    ]
    if not inner and getattr(variant, "module", None) is not None:
        inner = [variant]
    if not inner:
        return "n/a", f"{type(variant).__name__} has no kernel handle"
    modes, details = [], []
    for ak in inner:
        try:
            fn = ak.module[ak.kernel]
        except Exception as exc:  # pragma: no cover - defensive
            return "n/a", f"kernel {ak.kernel!r} unresolvable: {exc}"
        mode, detail = classify_lowering(fn, ak.module)
        modes.append(mode)
        details.append(detail)
    if len(set(modes)) == 1:
        return modes[0], details[0]
    return "mixed", "; ".join(f"{m}: {d}" for m, d in zip(modes, details))


def fresh_name(base: str, suffix: str) -> str:
    """Variant naming convention shared by all transforms."""
    return f"{base}__{suffix}"
