"""The four pattern-specific approximation optimizations (paper §3)."""

from .base import ApproxKernel, VariantSet
from .bit_tuning import BitConfig, BitTuner, search_table_size
from .memoization import (
    CallProfile,
    MemoizationTransform,
    MemoTable,
    profile_device_calls,
)
from .reduction import ReductionTransform
from .scan import ScanTransform, ScanVariant
from .stencil import StencilTransform

__all__ = [
    "ApproxKernel",
    "VariantSet",
    "BitTuner",
    "BitConfig",
    "search_table_size",
    "MemoizationTransform",
    "MemoTable",
    "CallProfile",
    "profile_device_calls",
    "ReductionTransform",
    "StencilTransform",
    "ScanTransform",
    "ScanVariant",
]
