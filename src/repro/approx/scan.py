"""Subarray substitution for scan patterns (paper §3.4).

Unlike the other transforms, the scan optimization spans a three-kernel
pipeline: skipping the last ``N`` subarrays means launching fewer Phase-I
blocks, passing a smaller count to Phase II, and predicting the skipped
tail from the kept prefix in Phase III (the cascading-error argument of
§3.4.1/Fig 18 rules out perforating early subarrays).  A variant is
therefore a *program* configuration — a skip fraction applied to a
:class:`~repro.apps.scanlib.ScanProgram` — rather than a rewritten module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import TransformError
from ..patterns.base import Pattern, ScanMatch

DEFAULT_SKIP_FRACTIONS = (0.125, 0.25, 0.375, 0.5)


@dataclass
class ScanVariant:
    """One approximate scan configuration."""

    name: str
    pattern: Pattern
    skip_fraction: float
    knobs: Dict[str, object] = field(default_factory=dict)
    aggressiveness: float = 0.0

    def skipped_blocks(self, total_blocks: int) -> int:
        """Concrete subarray count to skip for an input of ``total_blocks``
        subarrays, clamped so the kept prefix can predict the tail."""
        skipped = int(round(self.skip_fraction * total_blocks))
        return max(0, min(skipped, total_blocks // 2))

    def run(self, program, x):
        """Execute this variant through a ScanProgram-compatible pipeline."""
        blocks = x.size // program.block
        return program.run_approx(x, self.skipped_blocks(blocks))


class ScanTransform:
    """Generates skip-fraction variants for a detected scan pattern.

    Args:
        skip_fractions: fractions of trailing subarrays to predict rather
            than compute (the §3.4.4 knob).  Each must be in (0, 0.5]: the
            tail is reconstructed from the kept prefix.
    """

    def __init__(self, skip_fractions=DEFAULT_SKIP_FRACTIONS) -> None:
        for f in skip_fractions:
            if not 0.0 < f <= 0.5:
                raise TransformError(
                    f"skip fraction {f} outside (0, 0.5]: the skipped tail "
                    "cannot be longer than the kept prefix"
                )
        self.skip_fractions = tuple(skip_fractions)

    def generate(self, kernel_name: str, match: ScanMatch) -> List[ScanVariant]:
        if match.pattern is not Pattern.SCAN:
            raise TransformError(f"{kernel_name}: not a scan match")
        variants = []
        for fraction in self.skip_fractions:
            variants.append(
                ScanVariant(
                    name=f"{kernel_name}__scan_skip{int(fraction * 100)}",
                    pattern=Pattern.SCAN,
                    skip_fraction=fraction,
                    knobs={"skip_fraction": fraction},
                    aggressiveness=fraction,
                )
            )
        return variants
