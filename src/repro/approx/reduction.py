"""Sampling + adjustment for reduction patterns (paper §3.3).

The rewrite multiplies each reduction loop's step by the *skipping rate*
``N``, executing one in every ``N`` iterations.  For additive reductions
the partial result is then scaled: the reduction variable is replaced by a
zero-initialised temporary inside the loop, and after the loop the
original variable receives ``original + temp * N`` — exactly the
adjustment-code recipe of §3.3.3, which keeps the estimate unbiased even
when the variable was not zero before the loop.

Atomic-based reduction loops (paper: CUDA ``atomicAdd``/``atomicInc``...)
are perforated the same way; additive atomics scale the contributed value
by ``N`` (an ``atomic_inc`` becomes an ``atomic_add`` of ``N``), while
min/max/and/or/xor atomics need no adjustment.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.reductions import ReductionLoop, find_reduction_loops
from ..errors import TransformError
from ..kernel import ir
from ..kernel.visitors import Transformer, clone_module
from ..patterns.base import ReductionMatch
from .base import ApproxKernel, ApproxMeta, fresh_name, tag_approx

DEFAULT_SKIPPING_RATES = (2, 4, 8)


class _RenameVar(Transformer):
    """Renames reads and writes of one scalar within a subtree."""

    def __init__(self, old: str, new: str) -> None:
        self.old = old
        self.new = new

    def visit_Var(self, var: ir.Var):
        if var.name == self.old:
            return ir.Var(self.new, var.dtype)
        return var

    def visit_Assign(self, stmt: ir.Assign):
        if stmt.target == self.old:
            return ir.Assign(self.new, stmt.value)
        return stmt


class _ScaleAtomics(Transformer):
    """Applies the additive adjustment to atomics inside a perforated loop."""

    def __init__(self, rate: int) -> None:
        self.rate = rate

    def visit_AtomicRMW(self, stmt: ir.AtomicRMW):
        if stmt.op == "add":
            scaled = ir.binop(
                "mul", stmt.value, ir.const_like(self.rate, stmt.value.dtype)
            )
            return ir.AtomicRMW("add", stmt.array, stmt.index, scaled)
        if stmt.op == "inc":
            return ir.AtomicRMW(
                "add",
                stmt.array,
                stmt.index,
                ir.const_like(self.rate, stmt.array.dtype),
            )
        return stmt


class _PerforateLoops(Transformer):
    """Rewrites each recognised reduction loop in a function."""

    def __init__(self, loops: List[ReductionLoop], rate: int) -> None:
        # Match loops structurally (the transformer rebuilds nodes, so
        # identity comparison with the detection result does not work).
        self._keys = {self._loop_key(r.loop): r for r in loops}
        self.rate = rate
        self.rewritten = 0

    @staticmethod
    def _loop_key(loop: ir.For) -> str:
        from ..kernel.printer import _print_body

        lines: List[str] = []
        _print_body([loop], 0, lines)
        return "\n".join(lines)

    def visit_For(self, loop: ir.For):
        red = self._keys.get(self._loop_key(loop))
        if red is None:
            return loop
        self.rewritten += 1
        rate_c = ir.Const(self.rate, loop.step.dtype)
        new_step = ir.binop("mul", loop.step, rate_c)
        if isinstance(loop.step, ir.Const):
            new_step = ir.const_like(int(loop.step.value) * self.rate, loop.step.dtype)

        if red.via_atomic:
            scaler = _ScaleAtomics(self.rate)
            body = scaler.transform_body(loop.body)
            return ir.For(loop.var, loop.start, loop.stop, new_step, body)

        # Every additive reduction variable of the loop gets the
        # temp + scale adjustment (§3.3.3); a loop accumulating both a
        # weighted sum and its weight total must scale both or ratios of
        # the outputs would be off by the skipping rate.  Non-additive
        # variables (min/max/...) need no adjustment.
        additive = [var for var, op in red.targets if op == "add"]
        body = loop.body
        prologue: List[ir.Stmt] = []
        epilogue: List[ir.Stmt] = []
        for var in additive:
            tmp = f"_red_{var}_{self.rewritten}"
            body = _RenameVar(var, tmp).transform_body(body)
            dtype = self._variable_dtype(loop, var)
            prologue.append(ir.Assign(tmp, ir.const_like(0, dtype)))
            epilogue.append(
                ir.Assign(
                    var,
                    ir.binop(
                        "add",
                        ir.Var(var, dtype),
                        ir.binop(
                            "mul",
                            ir.Var(tmp, dtype),
                            ir.const_like(self.rate, dtype),
                        ),
                    ),
                )
            )
        perforated = ir.For(loop.var, loop.start, loop.stop, new_step, body)
        if not additive:
            return perforated
        return prologue + [perforated] + epilogue

    @staticmethod
    def _variable_dtype(loop: ir.For, var: str):
        from ..kernel.visitors import walk_statements

        for stmt in walk_statements(loop.body):
            if isinstance(stmt, ir.Assign) and stmt.target == var:
                return stmt.value.dtype
        raise TransformError(f"reduction variable {var!r} not assigned in loop")


class _PerforateEverything(Transformer):
    """Indiscriminate loop perforation: multiply EVERY loop step by the
    rate, no pattern checks, no adjustment code.  This is the baseline of
    paper §4.4.1 — "naively applying a single, well-known approximation
    technique to all benchmarks" — kept only for the Fig-14 comparison."""

    def __init__(self, rate: int) -> None:
        self.rate = rate
        self.rewritten = 0

    def visit_For(self, loop: ir.For):
        self.rewritten += 1
        if isinstance(loop.step, ir.Const):
            step = ir.const_like(int(loop.step.value) * self.rate, loop.step.dtype)
        else:
            step = ir.binop("mul", loop.step, ir.Const(self.rate, loop.step.dtype))
        return ir.For(loop.var, loop.start, loop.stop, step, loop.body)


def perforate_all_loops(module: ir.Module, kernel_name: str, rate: int):
    """Return (module, kernel name) with every loop naively perforated, or
    None when the kernel has no loops at all (nothing to perforate)."""
    new_module = clone_module(module)
    fn = new_module[kernel_name]
    rewriter = _PerforateEverything(rate)
    fn = rewriter.transform_function(fn)
    if rewriter.rewritten == 0:
        return None
    new_name = fresh_name(kernel_name, f"naive_skip{rate}")
    fn.name = new_name
    tag_approx(
        fn,
        ApproxMeta(
            transform="reduction",
            knobs=ApproxMeta.knob_tuple({"skipping_rate": rate, "naive": True}),
        ),
    )
    del new_module.functions[kernel_name]
    new_module.add(fn)
    return new_module, new_name


class ReductionTransform:
    """Generates perforated variants of a reduction kernel.

    Args:
        skipping_rates: the ``N`` values to emit (paper §3.3.4's knob).
    """

    def __init__(self, skipping_rates=DEFAULT_SKIPPING_RATES) -> None:
        self.skipping_rates = tuple(skipping_rates)

    def generate(
        self, module: ir.Module, kernel_name: str, match: ReductionMatch
    ) -> List[ApproxKernel]:
        """One variant per (reduction loop, skipping rate).

        The paper creates an approximate kernel for *each* reduction loop
        and lets the runtime decide which to execute — perforating nested
        reduction loops jointly compounds the error (e.g. KDE's feature-
        distance loop inside its reference loop)."""
        probe = find_reduction_loops(module[kernel_name])
        if not probe:
            raise TransformError(f"{kernel_name}: no reduction loops found")
        n_loops = len(probe)
        variants: List[ApproxKernel] = []
        for loop_index in range(n_loops):
            for rate in self.skipping_rates:
                if rate < 2:
                    raise TransformError(f"skipping rate must be >= 2, got {rate}")
                new_module = clone_module(module)
                fn = new_module[kernel_name]
                loops = find_reduction_loops(fn)
                rewriter = _PerforateLoops([loops[loop_index]], rate)
                fn = rewriter.transform_function(fn)
                if rewriter.rewritten == 0:
                    raise TransformError(
                        f"{kernel_name}: perforation matched no loop"
                    )
                suffix = (
                    f"red_skip{rate}"
                    if n_loops == 1
                    else f"red_l{loop_index}_skip{rate}"
                )
                new_name = fresh_name(kernel_name, suffix)
                fn.name = new_name
                tag_approx(
                    fn,
                    ApproxMeta(
                        transform="reduction",
                        knobs=ApproxMeta.knob_tuple(
                            {"skipping_rate": rate, "loop": loop_index}
                        ),
                    ),
                )
                del new_module.functions[kernel_name]
                new_module.add(fn)
                variants.append(
                    ApproxKernel(
                        name=new_name,
                        pattern=match.pattern,
                        kernel=new_name,
                        module=new_module,
                        knobs={
                            "skipping_rate": rate,
                            "loop": loop_index,
                            "loops_in_kernel": n_loops,
                        },
                        aggressiveness=float(rate),
                    )
                )
        return variants
