"""Bit tuning: dividing quantization bits between inputs (paper §3.1.3).

Given a lookup-table budget of ``Q`` address bits and ``k`` variable
inputs, bit tuning searches for the per-input split ``(q_1..q_k)`` with
``sum(q_i) = Q`` that maximises output quality on the training data.  As
in paper Fig 4:

* the root of the search tree divides the bits equally,
* each child moves one bit between *adjacent* inputs,
* steepest-ascent hill climbing follows the best child until no child
  improves on its parent.

Quality of a node is computed without materialising a table: the inputs
are snapped to their quantization levels, the *exact* function is
evaluated on the snapped values, and the result is compared against the
exact outputs ("bit tuning does not need to use an actual lookup table").

The table-size search wraps bit tuning: starting from the default
2048-entry table it doubles while quality misses the TOQ and shrinks while
quality exceeds it, returning the frontier of explored sizes so the
runtime can keep several tables warm (the paper found three suffice).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .quantize import InputRange, quantize_value

#: Default table size the search starts from: 2048 entries = 11 bits.
DEFAULT_TABLE_BITS = 11

#: Hard cap on table address bits (2**22 x f32 = 16 MiB).
MAX_TABLE_BITS = 22

MIN_TABLE_BITS = 3


@dataclass
class BitConfig:
    """One node of the bit-tuning tree."""

    bits: Tuple[int, ...]
    quality: float

    @property
    def total(self) -> int:
        return sum(self.bits)


def equal_split(total: int, k: int) -> Tuple[int, ...]:
    """The root node: divide ``total`` bits as evenly as possible."""
    if k <= 0:
        raise ValueError("need at least one variable input")
    base, rem = divmod(total, k)
    return tuple(base + (1 if i < rem else 0) for i in range(k))


def neighbours(bits: Tuple[int, ...]) -> List[Tuple[int, ...]]:
    """Children of a node: one bit moved between adjacent inputs."""
    out = []
    for i in range(len(bits) - 1):
        for src, dst in ((i, i + 1), (i + 1, i)):
            if bits[src] > 0:
                child = list(bits)
                child[src] -= 1
                child[dst] += 1
                out.append(tuple(child))
    return out


class BitTuner:
    """Steepest-ascent hill climbing over bit assignments.

    Args:
        evaluate: function taking quantized input arrays (one per variable
            input) and returning the function outputs.
        training_inputs: one array per variable input.
        exact_outputs: exact function outputs for the training inputs.
        quality_fn: (approx_outputs, exact_outputs) -> quality in [0, 1].
        ranges: training ranges (computed from the inputs if omitted).
    """

    def __init__(
        self,
        evaluate: Callable[..., np.ndarray],
        training_inputs: Sequence[np.ndarray],
        exact_outputs: np.ndarray,
        quality_fn: Callable[[np.ndarray, np.ndarray], float],
        ranges: Optional[Sequence[InputRange]] = None,
    ) -> None:
        self.evaluate = evaluate
        self.inputs = [np.asarray(a, dtype=np.float64) for a in training_inputs]
        self.exact = np.asarray(exact_outputs)
        self.quality_fn = quality_fn
        self.ranges = (
            list(ranges) if ranges is not None else [InputRange.of(a) for a in self.inputs]
        )
        self._cache: Dict[Tuple[int, ...], float] = {}
        self.nodes_evaluated = 0
        #: hill-climb trail of the most recent tune(): one entry per step,
        #: (current node, quality, [(child, quality), ...]) — the data of
        #: paper Fig 4.
        self.path: List[Tuple[Tuple[int, ...], float, List[Tuple[Tuple[int, ...], float]]]] = []

    def node_quality(self, bits: Tuple[int, ...]) -> float:
        """Quality of one bit split, memoized across the search."""
        if bits in self._cache:
            return self._cache[bits]
        snapped = [
            quantize_value(x, rng, q)
            for x, rng, q in zip(self.inputs, self.ranges, bits)
        ]
        approx = self.evaluate(*snapped)
        quality = float(self.quality_fn(approx, self.exact))
        self._cache[bits] = quality
        self.nodes_evaluated += 1
        return quality

    def tune(self, total_bits: int) -> BitConfig:
        """Run the hill climb for a table of ``2**total_bits`` entries."""
        self.path = []
        current = equal_split(total_bits, len(self.inputs))
        current_q = self.node_quality(current)
        while True:
            children = [(c, self.node_quality(c)) for c in neighbours(current)]
            self.path.append((current, current_q, children))
            best_child, best_q = None, current_q
            for child, q in children:
                if q > best_q:
                    best_child, best_q = child, q
            if best_child is None:
                return BitConfig(current, current_q)
            current, current_q = best_child, best_q


@dataclass
class TableSearchResult:
    """Outcome of the TOQ-driven table-size search."""

    #: the smallest explored configuration that satisfies the TOQ (None if
    #: even the largest table missed it)
    chosen: Optional[BitConfig]
    #: every configuration explored, by total bits (the runtime keeps a few
    #: of these warm for fast switching)
    explored: Dict[int, BitConfig]

    def best_available(self) -> BitConfig:
        """Chosen config, or the highest-quality one when TOQ was missed."""
        if self.chosen is not None:
            return self.chosen
        return max(self.explored.values(), key=lambda c: (c.quality, -c.total))


def search_table_size(
    tuner: BitTuner,
    toq: float,
    start_bits: int = DEFAULT_TABLE_BITS,
    min_bits: int = MIN_TABLE_BITS,
    max_bits: int = MAX_TABLE_BITS,
) -> TableSearchResult:
    """Find the smallest table whose tuned quality meets the TOQ (§3.1.3).

    Starting from ``start_bits``: if quality beats the TOQ the size halves
    (smaller tables are faster) until it would drop below the TOQ; if it
    misses, the size doubles until it is met or ``max_bits`` is reached.
    """
    lo = max(min_bits, 1)
    explored: Dict[int, BitConfig] = {}

    def tuned(bits: int) -> BitConfig:
        if bits not in explored:
            explored[bits] = tuner.tune(bits)
        return explored[bits]

    bits = int(np.clip(start_bits, lo, max_bits))
    config = tuned(bits)
    if config.quality >= toq:
        chosen = config
        while bits > lo:
            smaller = tuned(bits - 1)
            if smaller.quality < toq:
                break
            bits -= 1
            chosen = smaller
        return TableSearchResult(chosen=chosen, explored=explored)
    while bits < max_bits:
        bits += 1
        config = tuned(bits)
        if config.quality >= toq:
            return TableSearchResult(chosen=config, explored=explored)
    return TableSearchResult(chosen=None, explored=explored)
