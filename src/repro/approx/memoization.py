"""Approximate memoization for map & scatter/gather patterns (paper §3.1).

The transform replaces a call to a pure, compute-heavy device function with
a lookup-table read, in three steps mirroring §3.1.3:

1. quantize each variable input to ``q_i`` bits (ranges come from
   profiling; constant inputs — the paper's R and V — get zero bits and
   their value is baked into the table),
2. concatenate the level indices into a table address (first input in the
   most-significant bits),
3. read the precomputed result.

Inputs that fall between levels are resolved either by **nearest** (use
the snapped level) or **linear** (interpolate between the two neighbouring
entries of the least-significant input) — the two schemes compared in
paper Fig 15.

Each generated variant is a complete rewritten kernel: the quantization
constants are baked in as literals and the kernel gains one trailing array
parameter per memoized function carrying the table, so the runtime can
switch variants by swapping kernels and table pointers exactly as §3.1.3
describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine import Grid, call_device_function, launch
from ..errors import TransformError
from ..kernel import ir
from ..kernel.types import F32, I32, ArrayType
from ..kernel.visitors import Transformer, clone_module
from ..patterns.base import MapMatch
from .base import ApproxKernel, ApproxMeta, fresh_name, tag_approx
from .bit_tuning import (
    BitConfig,
    BitTuner,
    TableSearchResult,
    search_table_size,
)
from .quantize import InputRange, level_grid

#: Memory spaces a lookup table can be placed in (paper §4.4.2 / Fig 16).
TABLE_SPACES = ("global", "shared", "constant")


# ---------------------------------------------------------------------------
# Profiling: harvest device-call argument streams
# ---------------------------------------------------------------------------


@dataclass
class CallProfile:
    """Observed argument values of one device function during training."""

    func: str
    #: one array per scalar parameter of the function
    samples: List[np.ndarray]

    @property
    def ranges(self) -> List[InputRange]:
        return [InputRange.of(s) for s in self.samples]

    @property
    def variable_indices(self) -> List[int]:
        """Inputs whose training range is non-degenerate; only these get
        quantization bits (paper: constants are detected and excluded)."""
        return [i for i, r in enumerate(self.ranges) if not r.is_constant]


def profile_device_calls(
    kernel,
    grid: Grid,
    args,
    func_names: Sequence[str],
    max_samples: int = 65536,
    module: Optional[ir.Module] = None,
) -> Dict[str, CallProfile]:
    """Run one training launch, recording the argument streams of each
    function in ``func_names`` (the paper's profiling runs)."""
    collected: Dict[str, List[List[np.ndarray]]] = {name: [] for name in func_names}

    def observer(name: str, call_args) -> None:
        if name in collected:
            collected[name].append(
                [np.atleast_1d(np.asarray(a, dtype=np.float64)) for a in call_args]
            )

    launch(kernel, grid, args, module=module, call_observer=observer)
    profiles: Dict[str, CallProfile] = {}
    for name, batches in collected.items():
        if not batches:
            continue
        arity = len(batches[0])
        merged = []
        for i in range(arity):
            cat = np.concatenate([np.broadcast_to(b[i], b[i].shape or (1,)).ravel() for b in batches])
            if cat.size > max_samples:
                stride = cat.size // max_samples + 1
                cat = cat[::stride]
            merged.append(cat)
        profiles[name] = CallProfile(func=name, samples=merged)
    return profiles


# ---------------------------------------------------------------------------
# Table construction
# ---------------------------------------------------------------------------


@dataclass
class MemoTable:
    """A populated lookup table for one device function."""

    func: str
    ranges: List[InputRange]  # all inputs, in parameter order
    bits: List[int]  # all inputs; constants have 0
    table: np.ndarray
    quality: float  # training quality of this configuration

    @property
    def total_bits(self) -> int:
        return sum(self.bits)

    @property
    def entries(self) -> int:
        return 1 << self.total_bits


def build_table(device_fn, module: ir.Module, ranges, bits) -> np.ndarray:
    """Evaluate the exact function on every quantization-level combination
    (paper: "for each quantization level of each input, Paraprox computes
    the output and stores it in the lookup table")."""
    grids = level_grid(ranges, bits)
    out = call_device_function(device_fn, module, grids)
    return np.ascontiguousarray(out, dtype=device_fn.return_type.dtype.to_numpy())


# ---------------------------------------------------------------------------
# Kernel rewriting
# ---------------------------------------------------------------------------


class _CallRewriter(Transformer):
    """Replaces calls to ``func`` with quantize+pack+load sequences."""

    def __init__(self, func: str, memo: MemoTable, table_param: str, mode: str):
        self.func = func
        self.memo = memo
        self.table_param = table_param
        self.mode = mode
        self.table_type = ArrayType(F32, space="global")
        self._pending: List[ir.Stmt] = []
        self._counter = 0
        self.rewrites = 0

    # Statement boundary handling: flush prelude statements generated while
    # rewriting the statement's expressions.
    def transform_body(self, body):
        out = []
        for stmt in body:
            saved = self._pending
            self._pending = []
            result = self.transform_stmt(stmt)
            pending, self._pending = self._pending, saved
            out.extend(pending)
            if isinstance(result, list):
                out.extend(result)
            elif result is not None:
                out.append(result)
        return out

    def visit_Call(self, call: ir.Call):
        if call.func != self.func:
            return call
        self.rewrites += 1
        self._counter += 1
        tag = f"_memo{self._counter}_{self.func}"
        stmts, result_var = self._build_lookup(call, tag)
        self._pending.extend(stmts)
        return result_var

    def _build_lookup(self, call: ir.Call, tag: str) -> Tuple[List[ir.Stmt], ir.Var]:
        memo = self.memo
        f32c = lambda v: ir.Const(float(v), F32)  # noqa: E731
        i32c = lambda v: ir.Const(int(v), I32)  # noqa: E731
        stmts: List[ir.Stmt] = []
        table = ir.ArrayRef(self.table_param, self.table_type)

        # Hoist argument expressions into temps (each is used repeatedly).
        arg_vars: List[ir.Var] = []
        for i, arg in enumerate(call.args):
            name = f"{tag}_a{i}"
            value = arg if arg.dtype is F32 else ir.Cast(arg, F32)
            stmts.append(ir.Assign(name, value))
            arg_vars.append(ir.Var(name, F32))

        variable = [i for i, q in enumerate(memo.bits) if q > 0]
        if not variable:
            raise TransformError(f"{self.func}: no variable inputs to quantize")
        last = variable[-1]

        # Per-input level index: clamp(trunc((x - lo) * scale + 0.5)).
        idx_vars: Dict[int, ir.Var] = {}
        frac_var: Optional[ir.Var] = None
        for i in variable:
            rng, q = memo.ranges[i], memo.bits[i]
            levels = 1 << q
            scale = (levels - 1) / (rng.hi - rng.lo)
            pos_name = f"{tag}_p{i}"
            pos = ir.binop(
                "mul", ir.binop("sub", arg_vars[i], f32c(rng.lo)), f32c(scale)
            )
            stmts.append(ir.Assign(pos_name, pos))
            pos_var = ir.Var(pos_name, F32)
            idx_name = f"{tag}_i{i}"
            if self.mode == "linear" and i == last and levels >= 2:
                # floor(pos) clamped to [0, levels-2]; frac = pos - idx.
                raw = ir.Cast(pos_var, I32)
                clamped = ir.Call(
                    "imin",
                    [ir.Call("imax", [raw, i32c(0)], I32), i32c(levels - 2)],
                    I32,
                )
                stmts.append(ir.Assign(idx_name, clamped))
                idx_var = ir.Var(idx_name, I32)
                frac_name = f"{tag}_f"
                clamped_pos = ir.Call(
                    "fmin",
                    [ir.Call("fmax", [pos_var, f32c(0.0)], F32), f32c(levels - 1)],
                    F32,
                )
                stmts.append(
                    ir.Assign(
                        frac_name,
                        ir.binop("sub", clamped_pos, ir.Cast(idx_var, F32)),
                    )
                )
                frac_var = ir.Var(frac_name, F32)
            else:
                rounded = ir.Cast(ir.binop("add", pos_var, f32c(0.5)), I32)
                clamped = ir.Call(
                    "imin",
                    [ir.Call("imax", [rounded, i32c(0)], I32), i32c(levels - 1)],
                    I32,
                )
                stmts.append(ir.Assign(idx_name, clamped))
                idx_var = ir.Var(idx_name, I32)
            idx_vars[i] = idx_var

        # Pack the address: first variable input in the MSBs.
        addr: ir.Expr = idx_vars[variable[0]]
        for i in variable[1:]:
            addr = ir.binop(
                "or", ir.binop("shl", addr, i32c(memo.bits[i])), idx_vars[i]
            )
        addr_name = f"{tag}_addr"
        stmts.append(ir.Assign(addr_name, addr))
        addr_var = ir.Var(addr_name, I32)

        out_dtype = self.table_type.dtype
        result_name = f"{tag}_r"
        if self.mode == "linear" and frac_var is not None:
            v0 = f"{tag}_v0"
            v1 = f"{tag}_v1"
            stmts.append(ir.Assign(v0, ir.Load(table, addr_var)))
            stmts.append(
                ir.Assign(v1, ir.Load(table, ir.binop("add", addr_var, i32c(1))))
            )
            interp = ir.binop(
                "add",
                ir.Var(v0, F32),
                ir.binop(
                    "mul",
                    frac_var,
                    ir.binop("sub", ir.Var(v1, F32), ir.Var(v0, F32)),
                ),
            )
            stmts.append(ir.Assign(result_name, interp))
        else:
            stmts.append(ir.Assign(result_name, ir.Load(table, addr_var)))
        return stmts, ir.Var(result_name, out_dtype)


def rewrite_kernel_with_table(
    module: ir.Module,
    kernel_name: str,
    memo: MemoTable,
    mode: str = "nearest",
    space: str = "global",
    variant_suffix: str = "",
) -> Tuple[ir.Module, str]:
    """Produce a new module whose copy of ``kernel_name`` reads ``memo``'s
    table instead of calling ``memo.func``.  Returns (module, new kernel
    name); the new kernel has one extra trailing array parameter for the
    table."""
    if space not in TABLE_SPACES:
        raise TransformError(f"bad table space {space!r}")
    if memo.func not in module:
        raise TransformError(
            f"{kernel_name} contains no calls to {memo.func}; nothing to memoize"
        )
    # Chained rewrites (the composed multi-function variant) accumulate
    # approx metadata: clone_module rebuilds functions without extra
    # attributes, so the incoming kernel's tag is captured here and merged
    # into the one attached below.
    prior = getattr(module[kernel_name], "approx", None)
    new_module = clone_module(module)
    original = new_module[kernel_name]
    table_param = f"__memo_{memo.func}"
    rewriter = _CallRewriter(memo.func, memo, table_param, mode)
    rewriter.table_type = ArrayType(
        new_module[memo.func].return_type.dtype, space=space
    )
    rewritten = rewriter.transform_function(original)
    if rewriter.rewrites == 0:
        raise TransformError(
            f"{kernel_name} contains no calls to {memo.func}; nothing to memoize"
        )
    new_name = fresh_name(kernel_name, variant_suffix or f"memo{memo.total_bits}")
    rewritten.name = new_name
    rewritten.params.append(ir.Param(table_param, rewriter.table_type))
    knobs = {
        f"{memo.func}.bits": tuple(memo.bits),
        f"{memo.func}.mode": mode,
        f"{memo.func}.space": space,
    }
    tables = {table_param: memo.entries}
    if prior is not None and prior.transform == "memo":
        knobs.update(dict(prior.knobs))
        tables.update(dict(prior.tables))
    tag_approx(
        rewritten,
        ApproxMeta(
            transform="memo",
            knobs=ApproxMeta.knob_tuple(knobs),
            tables=tuple(sorted(tables.items())),
        ),
    )
    del new_module.functions[kernel_name]
    new_module.add(rewritten)
    return new_module, new_name


# ---------------------------------------------------------------------------
# End-to-end transform
# ---------------------------------------------------------------------------


class MemoizationTransform:
    """Generates memoized variants of a map/scatter-gather kernel.

    Args:
        toq: target output quality in [0, 1] used by the table-size search.
        quality_fn: (approx, exact) -> quality; defaults to
            1 - mean relative error.
        modes: lookup schemes to emit ("nearest" and/or "linear").
        spaces: memory spaces to emit table variants for.
        extra_tables: how many additional (larger) tables to emit beyond
            the chosen one, for fast runtime switching (paper: <= 3 total).
    """

    def __init__(
        self,
        toq: float = 0.90,
        quality_fn: Optional[Callable] = None,
        modes: Sequence[str] = ("nearest",),
        spaces: Sequence[str] = ("global",),
        extra_tables: int = 2,
        start_bits: Optional[int] = None,
    ) -> None:
        if quality_fn is None:
            from ..runtime.quality import MEAN_RELATIVE

            quality_fn = MEAN_RELATIVE.quality
        self.toq = toq
        self.quality_fn = quality_fn
        self.modes = tuple(modes)
        self.spaces = tuple(spaces)
        self.extra_tables = extra_tables
        self.start_bits = start_bits

    def tune_function(
        self, module: ir.Module, profile: CallProfile
    ) -> Tuple[TableSearchResult, List[int]]:
        """Bit-tune one device function against the TOQ; returns the search
        result and the indices of its variable inputs."""
        search, variable, _tuner = self._tune_with_tuner(module, profile)
        return search, variable

    def _tune_with_tuner(self, module: ir.Module, profile: CallProfile):
        device_fn = module[profile.func]
        variable = profile.variable_indices
        if not variable:
            raise TransformError(
                f"{profile.func}: every input is constant during profiling"
            )
        ranges = profile.ranges

        def evaluate(*snapped):
            full = []
            v = 0
            for i, rng in enumerate(ranges):
                if i in variable:
                    full.append(snapped[v])
                    v += 1
                else:
                    full.append(np.full_like(snapped[0], 0.5 * (rng.lo + rng.hi)))
            return call_device_function(device_fn, module, full)

        exact = call_device_function(device_fn, module, profile.samples)
        tuner = BitTuner(
            evaluate,
            [profile.samples[i] for i in variable],
            exact,
            self.quality_fn,
            ranges=[ranges[i] for i in variable],
        )
        kwargs = {}
        if self.start_bits is not None:
            kwargs["start_bits"] = self.start_bits
        return search_table_size(tuner, self.toq, **kwargs), variable, tuner

    def build_memo(
        self, module: ir.Module, profile: CallProfile, config: BitConfig
    ) -> MemoTable:
        """Materialise the lookup table for one tuned configuration."""
        variable = profile.variable_indices
        bits_all = [0] * len(profile.samples)
        for idx, q in zip(variable, config.bits):
            bits_all[idx] = q
        table = build_table(module[profile.func], module, profile.ranges, bits_all)
        return MemoTable(
            func=profile.func,
            ranges=profile.ranges,
            bits=bits_all,
            table=table,
            quality=config.quality,
        )

    def generate(
        self, module: ir.Module, kernel_name: str, match: MapMatch,
        profiles: Dict[str, CallProfile],
    ) -> List[ApproxKernel]:
        """Emit memoized variants for every candidate function of ``match``.

        One variant per (table size, lookup mode, memory space), covering
        the chosen table plus up to ``extra_tables`` larger fallbacks.
        """
        variants: List[ApproxKernel] = []
        chosen_memos: List[MemoTable] = []
        for func in match.candidates:
            if func not in profiles:
                continue
            profile = profiles[func]
            search, _variable, tuner = self._tune_with_tuner(module, profile)
            configs = self._select_configs(search, tuner)
            for rank, config in enumerate(configs):
                memo = self.build_memo(module, profile, config)
                if rank == 0:
                    chosen_memos.append(memo)
                for mode in self.modes:
                    for space in self.spaces:
                        suffix = f"memo_{func}_t{memo.entries}_{mode}_{space}"
                        new_module, new_name = rewrite_kernel_with_table(
                            module, kernel_name, memo, mode, space, suffix
                        )
                        variants.append(
                            ApproxKernel(
                                name=new_name,
                                pattern=match.pattern,
                                kernel=new_name,
                                module=new_module,
                                knobs={
                                    "function": func,
                                    "table_bits": memo.total_bits,
                                    "bits_per_input": tuple(memo.bits),
                                    "mode": mode,
                                    "space": space,
                                    "training_quality": memo.quality,
                                },
                                extra_args=[memo.table],
                                aggressiveness=-memo.total_bits
                                + (0.5 if mode == "nearest" else 0.0),
                            )
                        )
        # A kernel calling several independent candidates also gets one
        # *composed* variant memoizing all of them — each function keeps
        # its own table parameter, so the runtime still swaps pointers per
        # table (§3.1.3).
        if len(chosen_memos) > 1:
            variants.append(self._compose(module, kernel_name, match, chosen_memos))
        return variants

    def _compose(
        self,
        module: ir.Module,
        kernel_name: str,
        match: MapMatch,
        memos: List[MemoTable],
    ) -> ApproxKernel:
        """Chain the per-function rewrites into one kernel; extra launch
        arguments follow candidate order."""
        mode, space = self.modes[0], self.spaces[0]
        current_module, current_name = module, kernel_name
        for i, memo in enumerate(memos):
            suffix = (
                f"memo_all_{mode}_{space}" if i == len(memos) - 1 else f"chain{i}"
            )
            current_module, current_name = rewrite_kernel_with_table(
                current_module, current_name, memo, mode, space, suffix
            )
        return ApproxKernel(
            name=current_name,
            pattern=match.pattern,
            kernel=current_name,
            module=current_module,
            knobs={
                "function": "+".join(m.func for m in memos),
                "table_bits": tuple(m.total_bits for m in memos),
                "mode": mode,
                "space": space,
                "training_quality": min(m.quality for m in memos),
                "composed": True,
            },
            extra_args=[m.table for m in memos],
            aggressiveness=-min(m.total_bits for m in memos) + 1.0,
        )

    def _select_configs(
        self, search: TableSearchResult, tuner: Optional[BitTuner] = None
    ) -> List[BitConfig]:
        """Chosen table plus up to ``extra_tables`` larger fallbacks.

        The runtime switches table sizes by swapping pointers (§3.1.3), so
        fallback sizes the search did not visit are tuned on demand — the
        paper keeps up to three tables warm."""
        from .bit_tuning import MAX_TABLE_BITS

        chosen = search.best_available()
        configs = [chosen]
        larger = sorted(
            (c for b, c in search.explored.items() if b > chosen.total),
            key=lambda c: c.total,
        )
        configs.extend(larger[: self.extra_tables])
        if tuner is not None:
            next_bits = (configs[-1].total if len(configs) > 1 else chosen.total) + 1
            while len(configs) < 1 + self.extra_tables and next_bits <= MAX_TABLE_BITS:
                configs.append(tuner.tune(next_bits))
                next_bits += 1
        return configs
