"""Input quantization for approximate memoization (paper §3.1.3).

A function input ``x`` with training range ``[lo, hi]`` and ``q`` bits is
represented by one of ``2**q`` levels; inputs outside the training range
clamp to the nearest level ("if an input at runtime is not within this
precomputed range, it will map to the nearest value present in the lookup
table").  Inputs whose training range is degenerate are *constant*: they
receive zero bits and are baked into the table (the paper's R and V in
BlackScholesBody).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class InputRange:
    """Observed [lo, hi] of one function input over the training data."""

    lo: float
    hi: float

    @property
    def is_constant(self) -> bool:
        return not np.isfinite(self.hi - self.lo) or self.hi == self.lo

    @staticmethod
    def of(samples) -> "InputRange":
        arr = np.asarray(samples, dtype=np.float64)
        return InputRange(float(arr.min()), float(arr.max()))


def quantize_index(x, rng: InputRange, bits: int) -> np.ndarray:
    """Map values to integer level indices in [0, 2**bits - 1]."""
    levels = 1 << bits
    if bits == 0 or rng.is_constant:
        return np.zeros(np.shape(x), dtype=np.int64)
    scale = (levels - 1) / (rng.hi - rng.lo)
    idx = np.rint((np.asarray(x, dtype=np.float64) - rng.lo) * scale)
    return np.clip(idx, 0, levels - 1).astype(np.int64)


def dequantize(idx, rng: InputRange, bits: int) -> np.ndarray:
    """Map level indices back to representative input values."""
    if bits == 0 or rng.is_constant:
        mid = 0.5 * (rng.lo + rng.hi)
        return np.full(np.shape(idx), mid, dtype=np.float64)
    levels = 1 << bits
    step = (rng.hi - rng.lo) / (levels - 1)
    return rng.lo + np.asarray(idx, dtype=np.float64) * step


def quantize_value(x, rng: InputRange, bits: int) -> np.ndarray:
    """Snap values to their representative quantization level."""
    return dequantize(quantize_index(x, rng, bits), rng, bits)


def pack_address(indices: Sequence[np.ndarray], bits: Sequence[int]) -> np.ndarray:
    """Concatenate per-input level indices into a table address.

    The first input occupies the most significant bits — the layout the
    generated kernel reproduces with shifts and ORs.
    """
    if len(indices) != len(bits):
        raise ValueError("one bit width per index stream required")
    addr = np.zeros(np.shape(indices[0]) if indices else (), dtype=np.int64)
    for idx, q in zip(indices, bits):
        addr = (addr << q) | np.asarray(idx, dtype=np.int64)
    return addr


def unpack_address(addr: np.ndarray, bits: Sequence[int]) -> List[np.ndarray]:
    """Inverse of :func:`pack_address`."""
    addr = np.asarray(addr, dtype=np.int64)
    out: List[np.ndarray] = []
    shift = sum(bits)
    for q in bits:
        shift -= q
        out.append((addr >> shift) & ((1 << q) - 1))
    return out


def level_grid(ranges: Sequence[InputRange], bits: Sequence[int]) -> List[np.ndarray]:
    """Representative input values for every table address, in address
    order: input ``i``'s array has length ``prod(2**bits)`` and varies
    fastest for the last input."""
    axes = [
        dequantize(np.arange(1 << q, dtype=np.int64), rng, q)
        for rng, q in zip(ranges, bits)
    ]
    mesh = np.meshgrid(*axes, indexing="ij") if axes else []
    return [m.ravel() for m in mesh]
