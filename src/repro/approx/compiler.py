"""The Paraprox facade: detection -> transformation -> tuning (paper Fig 2).

``Paraprox.compile(app)`` turns an application's kernel into the full set
of approximate variants its patterns admit; ``Paraprox.optimize(app,
device)`` additionally profiles the variants on training inputs and picks
the best one subject to the TOQ, which is the whole pipeline the paper
evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional

from ..device import DeviceKind, spec_for
from .._options import EXECUTORS
from ..engine.launch import BACKENDS, validate_backend
from ..errors import ConfigError, TransformError
from ..patterns import (
    MapMatch,
    PatternDetector,
    ReductionMatch,
    ScanMatch,
    StencilMatch,
)
from ..runtime.tuner import GreedyTuner, TuningResult
from .base import VariantSet
from .memoization import TABLE_SPACES, MemoizationTransform, profile_device_calls
from .reduction import ReductionTransform
from .scan import ScanTransform
from .stencil import StencilTransform

#: Legal values for the enumerated knobs (validated on construction).
STENCIL_SCHEMES = ("center", "row", "column")
MEMO_MODES = ("nearest", "linear")


@dataclass
class ParaproxConfig:
    """Knob ranges the compiler explores when generating variants.

    Instances validate on construction: a knob tuple outside the ranges the
    transforms accept (e.g. ``skipping_rates=(0,)``, which would silently
    generate a variant that skips nothing) raises
    :class:`~repro.errors.ConfigError` instead of being carried along.
    """

    skipping_rates: tuple = (2, 4, 8)
    reaching_distances: tuple = (1, 2)
    stencil_schemes: tuple = ("center", "row", "column")
    scan_skip_fractions: tuple = (0.125, 0.25, 0.375, 0.5)
    memo_modes: tuple = ("nearest",)
    memo_spaces: tuple = ("global",)
    memo_extra_tables: int = 2
    memo_start_bits: Optional[int] = None
    #: extension beyond the paper (its §5 future work): when a kernel's
    #: heavy math is inline rather than factored into a device function,
    #: outline its best pure slice so memoization can apply.
    enable_section_outlining: bool = False
    #: extension beyond the paper (its §5 safety discussion): guard every
    #: division in generated approximate kernels so an approximated zero
    #: divisor skips the calculation instead of faulting.
    guard_divisions: bool = False
    #: launch backend sessions serve compiled variants with: "interp",
    #: "codegen", or "auto" (codegen unless a launch needs traces).
    backend: str = "auto"
    #: worker threads for sharded launches and concurrent profiling in
    #: sessions: a positive int (1 = serial, the default) or "auto"
    #: (one per host core).
    parallel_workers: object = 1
    #: shard executor for sessions' parallel launches: "thread" (the
    #: in-process pool; NumPy-bound kernels release the GIL) or
    #: "process" (:mod:`repro.parallel.procpool` worker processes with
    #: shared-memory handoff; true multicore for GIL-bound kernels).
    executor: str = "thread"
    #: LRU capacity of the session-owned profile-measurement cache
    #: (:class:`~repro.parallel.ProfileCache`); the oldest-used
    #: (variant, input-set) measurements are evicted past this bound.
    profile_cache_entries: int = 4096

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigError` on any illegal knob."""
        def check(cond: bool, message: str) -> None:
            if not cond:
                raise ConfigError(f"ParaproxConfig: {message}")

        for name in (
            "skipping_rates",
            "reaching_distances",
            "stencil_schemes",
            "scan_skip_fractions",
            "memo_modes",
            "memo_spaces",
        ):
            value = getattr(self, name)
            check(
                isinstance(value, (tuple, list)),
                f"{name} must be a tuple, got {value!r}",
            )
            setattr(self, name, tuple(value))
        for r in self.skipping_rates:
            check(
                isinstance(r, int) and not isinstance(r, bool) and r >= 2,
                f"skipping_rates entries must be integers >= 2 "
                f"(skip rate 1-in-r), got {r!r}",
            )
        for d in self.reaching_distances:
            check(
                isinstance(d, int) and not isinstance(d, bool) and d >= 1,
                f"reaching_distances entries must be integers >= 1, got {d!r}",
            )
        for s in self.stencil_schemes:
            check(
                s in STENCIL_SCHEMES,
                f"unknown stencil scheme {s!r}; known: {STENCIL_SCHEMES}",
            )
        for f_ in self.scan_skip_fractions:
            check(
                isinstance(f_, (int, float)) and 0.0 < float(f_) <= 0.5,
                f"scan_skip_fractions entries must be in (0, 0.5] "
                f"(the kept prefix must predict the tail), got {f_!r}",
            )
        for m in self.memo_modes:
            check(m in MEMO_MODES, f"unknown memo mode {m!r}; known: {MEMO_MODES}")
        for sp in self.memo_spaces:
            check(
                sp in TABLE_SPACES,
                f"unknown memo table space {sp!r}; known: {TABLE_SPACES}",
            )
        check(
            isinstance(self.memo_extra_tables, int) and self.memo_extra_tables >= 0,
            f"memo_extra_tables must be a non-negative integer, "
            f"got {self.memo_extra_tables!r}",
        )
        if self.memo_start_bits is not None:
            check(
                isinstance(self.memo_start_bits, int)
                and 1 <= self.memo_start_bits <= 24,
                f"memo_start_bits must be in [1, 24] or None, "
                f"got {self.memo_start_bits!r}",
            )
        check(
            self.backend in BACKENDS,
            f"unknown backend {self.backend!r}; valid choices are "
            + ", ".join(repr(b) for b in BACKENDS),
        )
        check(
            self.parallel_workers == "auto"
            or (
                isinstance(self.parallel_workers, int)
                and not isinstance(self.parallel_workers, bool)
                and self.parallel_workers >= 1
            ),
            f"parallel_workers must be a positive integer or 'auto', "
            f"got {self.parallel_workers!r}",
        )
        check(
            self.executor in EXECUTORS,
            f"executor must be one of {EXECUTORS!r}, got {self.executor!r}",
        )
        check(
            isinstance(self.profile_cache_entries, int)
            and not isinstance(self.profile_cache_entries, bool)
            and self.profile_cache_entries >= 1,
            f"profile_cache_entries must be a positive integer, "
            f"got {self.profile_cache_entries!r}",
        )

    # -- serialization (the disk cache persists configs alongside variants) --

    def to_dict(self) -> dict:
        """A JSON-serialisable form; ``from_dict`` round-trips it."""
        out: Dict[str, object] = {}
        for f_ in fields(self):
            value = getattr(self, f_.name)
            out[f_.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ParaproxConfig":
        """Rebuild a validated config; unknown keys or bad knob values
        raise :class:`~repro.errors.ConfigError`."""
        if not isinstance(data, dict):
            raise ConfigError(
                f"ParaproxConfig.from_dict expects a dict, got {type(data).__name__}"
            )
        known = {f_.name for f_ in fields(cls)}
        # repr-keyed sort: `data` may carry non-string keys, and a mixed
        # set would make the plain sort itself raise TypeError.
        unknown = sorted(set(data) - known, key=repr)
        if unknown:
            raise ConfigError(
                f"ParaproxConfig.from_dict: unknown keys {unknown}; "
                f"known: {sorted(known)}"
            )
        kwargs = {
            k: tuple(v) if isinstance(v, list) else v for k, v in data.items()
        }
        return cls(**kwargs)


class Paraprox:
    """The compiler + runtime pipeline.

    Args:
        target_quality: the user-supplied TOQ in (0, 1].
        device: default device the Eq.-1 profitability test and the tuner
            model (each call may override it).
        config: knob ranges for variant generation.
    """

    def __init__(
        self,
        target_quality: float = 0.90,
        device: DeviceKind = DeviceKind.GPU,
        config: Optional[ParaproxConfig] = None,
    ) -> None:
        if not isinstance(target_quality, (int, float)) or isinstance(
            target_quality, bool
        ):
            raise ValueError(
                f"target_quality must be a number in (0, 1], "
                f"got {target_quality!r}"
            )
        if not 0.0 < target_quality <= 1.0:
            hint = ""
            if 1.0 < target_quality <= 100.0:
                hint = (
                    f" (quality is a fraction — for {target_quality:.0f}% "
                    f"write {target_quality / 100.0:g})"
                )
            raise ValueError(
                f"target_quality must be in (0, 1], got {target_quality}{hint}"
            )
        self.toq = float(target_quality)
        self.device = device
        self.config = config or ParaproxConfig()

    # -- compilation -----------------------------------------------------------

    def compile(
        self,
        app,
        device: Optional[DeviceKind] = None,
        backend: Optional[str] = None,
    ) -> VariantSet:
        """Generate every approximate variant ``app``'s patterns admit,
        returned as a typed :class:`~repro.approx.base.VariantSet` (iterable
        like the plain list earlier releases returned).

        ``backend`` stamps the launch backend the variants should be served
        with (default: the config's ``backend`` knob); unknown names raise
        :class:`~repro.errors.ConfigError`.

        Applications with a custom pipeline (the scan benchmark) may define
        ``build_variants(toq, config)`` and take over entirely.
        """
        chosen_backend = validate_backend(
            backend if backend is not None else self.config.backend
        )
        custom = getattr(app, "build_variants", None)
        if callable(custom):
            self.last_skipped = []
            exact = getattr(app, "kernel", None)
            fn = getattr(exact, "fn", None)
            return VariantSet(
                kernel=fn.name if fn is not None else "",
                variants=list(custom(self.toq, self.config)),
                exact=exact,
                backend=chosen_backend,
                parallel=self.config.parallel_workers,
            )
        spec = spec_for(device or self.device)
        detector = PatternDetector(latency_table=spec.latencies)
        kernel_name = app.kernel.fn.name
        module = app.kernel.module
        matches = detector.detect(app.kernel).for_kernel(kernel_name)
        cfg = self.config
        if cfg.enable_section_outlining and not any(
            isinstance(m, MapMatch) for m in matches
        ):
            from .outline import outline_best_slice

            outlined = outline_best_slice(module, kernel_name, spec.latencies)
            if outlined is not None:
                module, _section = outlined
                matches = detector.detect_kernel(module[kernel_name], module)
        variants: List[object] = []
        skipped: List[str] = []
        for match in matches:
            try:
                self._apply_match(app, match, kernel_name, cfg, variants, module)
            except TransformError as exc:
                # A pattern that matched but cannot be rewritten (e.g. a
                # partition tile too large to unroll) is skipped, exactly as
                # a production compiler would bail out of one optimization
                # without failing the build.
                skipped.append(f"{match.pattern.value}: {exc}")
        self.last_skipped = skipped
        if cfg.guard_divisions:
            from .base import ApproxKernel
            from .safety import guard_divisions

            for variant in variants:
                if isinstance(variant, ApproxKernel):
                    variant.module, guards = guard_divisions(variant.module)
                    variant.knobs["division_guards"] = guards
        return VariantSet(
            kernel=kernel_name,
            variants=variants,
            exact=app.kernel,
            skipped=skipped,
            backend=chosen_backend,
            parallel=self.config.parallel_workers,
        )

    def _apply_match(self, app, match, kernel_name, cfg, variants, module=None) -> None:
        module = module if module is not None else app.kernel.module
        if isinstance(match, MapMatch):
            inputs = app.generate_inputs(seed=app.seed + 77)
            _kernel, grid, args = app.training_launch(inputs)
            profiles = profile_device_calls(
                module[kernel_name], grid, args, match.candidates, module=module
            )
            transform = MemoizationTransform(
                toq=self.toq,
                quality_fn=app.metric.quality,
                modes=cfg.memo_modes,
                spaces=cfg.memo_spaces,
                extra_tables=cfg.memo_extra_tables,
                start_bits=cfg.memo_start_bits,
            )
            variants.extend(transform.generate(module, kernel_name, match, profiles))
        elif isinstance(match, StencilMatch):
            transform = StencilTransform(
                schemes=cfg.stencil_schemes,
                reaching_distances=cfg.reaching_distances,
            )
            variants.extend(transform.generate(module, kernel_name, match))
        elif isinstance(match, ReductionMatch):
            transform = ReductionTransform(skipping_rates=cfg.skipping_rates)
            variants.extend(transform.generate(module, kernel_name, match))
        elif isinstance(match, ScanMatch):
            # Scan approximation reconfigures a three-phase *program*;
            # kernel-level applications cannot express it, so apps with
            # scan patterns provide build_variants (handled in compile()).
            pass

    # -- full pipeline -----------------------------------------------------------

    def optimize(
        self,
        app,
        device: Optional[DeviceKind] = None,
        variants: Optional[List[object]] = None,
        repeats: int = 1,
    ) -> TuningResult:
        """Compile (unless ``variants`` is given), profile, and choose the
        best variant for ``device`` under the TOQ."""
        kind = device or self.device
        if variants is None:
            variants = self.compile(app, kind)
        tuner = GreedyTuner(spec_for(kind), toq=self.toq)
        training_inputs = app.generate_inputs(seed=app.seed)
        return tuner.profile(app, variants, training_inputs, repeats=repeats)
