"""The Paraprox facade: detection -> transformation -> tuning (paper Fig 2).

``Paraprox.compile(app)`` turns an application's kernel into the full set
of approximate variants its patterns admit; ``Paraprox.optimize(app,
device)`` additionally profiles the variants on training inputs and picks
the best one subject to the TOQ, which is the whole pipeline the paper
evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..device import DeviceKind, spec_for
from ..errors import TransformError
from ..patterns import (
    MapMatch,
    PatternDetector,
    ReductionMatch,
    ScanMatch,
    StencilMatch,
)
from ..runtime.tuner import GreedyTuner, TuningResult
from .memoization import MemoizationTransform, profile_device_calls
from .reduction import ReductionTransform
from .scan import ScanTransform
from .stencil import StencilTransform


@dataclass
class ParaproxConfig:
    """Knob ranges the compiler explores when generating variants."""

    skipping_rates: tuple = (2, 4, 8)
    reaching_distances: tuple = (1, 2)
    stencil_schemes: tuple = ("center", "row", "column")
    scan_skip_fractions: tuple = (0.125, 0.25, 0.375, 0.5)
    memo_modes: tuple = ("nearest",)
    memo_spaces: tuple = ("global",)
    memo_extra_tables: int = 2
    memo_start_bits: Optional[int] = None
    #: extension beyond the paper (its §5 future work): when a kernel's
    #: heavy math is inline rather than factored into a device function,
    #: outline its best pure slice so memoization can apply.
    enable_section_outlining: bool = False
    #: extension beyond the paper (its §5 safety discussion): guard every
    #: division in generated approximate kernels so an approximated zero
    #: divisor skips the calculation instead of faulting.
    guard_divisions: bool = False


class Paraprox:
    """The compiler + runtime pipeline.

    Args:
        target_quality: the user-supplied TOQ in (0, 1].
        device: default device the Eq.-1 profitability test and the tuner
            model (each call may override it).
        config: knob ranges for variant generation.
    """

    def __init__(
        self,
        target_quality: float = 0.90,
        device: DeviceKind = DeviceKind.GPU,
        config: Optional[ParaproxConfig] = None,
    ) -> None:
        self.toq = target_quality
        self.device = device
        self.config = config or ParaproxConfig()

    # -- compilation -----------------------------------------------------------

    def compile(self, app, device: Optional[DeviceKind] = None) -> List[object]:
        """Generate every approximate variant ``app``'s patterns admit.

        Applications with a custom pipeline (the scan benchmark) may define
        ``build_variants(toq, config)`` and take over entirely.
        """
        custom = getattr(app, "build_variants", None)
        if callable(custom):
            return custom(self.toq, self.config)
        spec = spec_for(device or self.device)
        detector = PatternDetector(latency_table=spec.latencies)
        kernel_name = app.kernel.fn.name
        module = app.kernel.module
        matches = detector.detect(app.kernel).for_kernel(kernel_name)
        cfg = self.config
        if cfg.enable_section_outlining and not any(
            isinstance(m, MapMatch) for m in matches
        ):
            from .outline import outline_best_slice

            outlined = outline_best_slice(module, kernel_name, spec.latencies)
            if outlined is not None:
                module, _section = outlined
                matches = detector.detect_kernel(module[kernel_name], module)
        variants: List[object] = []
        skipped: List[str] = []
        for match in matches:
            try:
                self._apply_match(app, match, kernel_name, cfg, variants, module)
            except TransformError as exc:
                # A pattern that matched but cannot be rewritten (e.g. a
                # partition tile too large to unroll) is skipped, exactly as
                # a production compiler would bail out of one optimization
                # without failing the build.
                skipped.append(f"{match.pattern.value}: {exc}")
        self.last_skipped = skipped
        if cfg.guard_divisions:
            from .base import ApproxKernel
            from .safety import guard_divisions

            for variant in variants:
                if isinstance(variant, ApproxKernel):
                    variant.module, guards = guard_divisions(variant.module)
                    variant.knobs["division_guards"] = guards
        return variants

    def _apply_match(self, app, match, kernel_name, cfg, variants, module=None) -> None:
        module = module if module is not None else app.kernel.module
        if isinstance(match, MapMatch):
            inputs = app.generate_inputs(seed=app.seed + 77)
            _kernel, grid, args = app.training_launch(inputs)
            profiles = profile_device_calls(
                module[kernel_name], grid, args, match.candidates, module=module
            )
            transform = MemoizationTransform(
                toq=self.toq,
                quality_fn=app.metric.quality,
                modes=cfg.memo_modes,
                spaces=cfg.memo_spaces,
                extra_tables=cfg.memo_extra_tables,
                start_bits=cfg.memo_start_bits,
            )
            variants.extend(transform.generate(module, kernel_name, match, profiles))
        elif isinstance(match, StencilMatch):
            transform = StencilTransform(
                schemes=cfg.stencil_schemes,
                reaching_distances=cfg.reaching_distances,
            )
            variants.extend(transform.generate(module, kernel_name, match))
        elif isinstance(match, ReductionMatch):
            transform = ReductionTransform(skipping_rates=cfg.skipping_rates)
            variants.extend(transform.generate(module, kernel_name, match))
        elif isinstance(match, ScanMatch):
            # Scan approximation reconfigures a three-phase *program*;
            # kernel-level applications cannot express it, so apps with
            # scan patterns provide build_variants (handled in compile()).
            pass

    # -- full pipeline -----------------------------------------------------------

    def optimize(
        self,
        app,
        device: Optional[DeviceKind] = None,
        variants: Optional[List[object]] = None,
        repeats: int = 1,
    ) -> TuningResult:
        """Compile (unless ``variants`` is given), profile, and choose the
        best variant for ``device`` under the TOQ."""
        kind = device or self.device
        if variants is None:
            variants = self.compile(app, kind)
        tuner = GreedyTuner(spec_for(kind), toq=self.toq)
        training_inputs = app.generate_inputs(seed=app.seed)
        return tuner.profile(app, variants, training_inputs, repeats=repeats)
