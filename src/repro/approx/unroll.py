"""Full unrolling of constant-trip loops.

The stencil transform rewrites individual tile loads; loads expressed
through a loop (``for j in range(-3, 4): acc += x[i + j]``) first get the
loop unrolled so every access is its own syntactic load.  Unrolling is
bounded and only applied to loops the caller selects.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import TransformError
from ..kernel import ir
from ..kernel.visitors import Transformer, clone

#: Refuse to unroll loops longer than this.
MAX_UNROLL_TRIP = 64


def loop_trip_values(loop: ir.For) -> Optional[List[int]]:
    """The induction values of a constant-bound loop, or None."""
    if (
        isinstance(loop.start, ir.Const)
        and isinstance(loop.stop, ir.Const)
        and isinstance(loop.step, ir.Const)
        and int(loop.step.value) != 0
    ):
        return list(
            range(int(loop.start.value), int(loop.stop.value), int(loop.step.value))
        )
    return None


class _Substituter(Transformer):
    """Replaces reads of one variable with a constant."""

    def __init__(self, name: str, value: int) -> None:
        self.name = name
        self.value = value

    def visit_Var(self, var: ir.Var):
        if var.name == self.name:
            return ir.const_like(self.value, var.dtype)
        return var


def substitute_var(stmt: ir.Stmt, name: str, value: int) -> ir.Stmt:
    """A copy of ``stmt`` with ``name`` replaced by the literal ``value``."""
    return _Substituter(name, value).transform_stmt(stmt)


def unroll_loop(loop: ir.For) -> List[ir.Stmt]:
    """Fully unroll one constant-trip loop into a flat statement list."""
    values = loop_trip_values(loop)
    if values is None:
        raise TransformError("cannot unroll a loop with dynamic bounds")
    if len(values) > MAX_UNROLL_TRIP:
        raise TransformError(
            f"loop trip {len(values)} exceeds the unroll limit {MAX_UNROLL_TRIP}"
        )
    out: List[ir.Stmt] = []
    for v in values:
        for stmt in loop.body:
            out.append(substitute_var(clone(stmt), loop.var, v))
    return out


class _UnrollSelected(Transformer):
    def __init__(self, predicate: Callable[[ir.For], bool]) -> None:
        self.predicate = predicate
        self.unrolled = 0

    def visit_For(self, loop: ir.For):
        values = loop_trip_values(loop)
        if (
            values is not None
            and len(values) <= MAX_UNROLL_TRIP
            and self.predicate(loop)
        ):
            self.unrolled += 1
            return unroll_loop(loop)
        return loop


def unroll_where(
    fn: ir.Function, predicate: Callable[[ir.For], bool]
) -> ir.Function:
    """A copy of ``fn`` with every loop satisfying ``predicate`` (and having
    constant trip <= MAX_UNROLL_TRIP) fully unrolled."""
    return _UnrollSelected(predicate).transform_function(fn)
