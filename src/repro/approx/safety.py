"""Safety instrumentation for approximate kernels (paper §5).

Approximation can create failure modes the exact program never had: a
memoized or perforated value that reaches a divisor may be zero where the
exact value was not, raising a divide-by-zero (or producing an Inf that
poisons downstream arithmetic).  The paper sketches the mitigation —
"instrument the code to skip this calculation where the approximated
divisor is zero" — and leaves it as future work; this module implements
it.

:func:`guard_divisions` rewrites every division/modulo whose divisor is
not a provably non-zero constant into a guarded select::

    a / b        ->        (b != 0) ? a / b : fallback

The fallback is 0 of the result dtype (the "skip" semantics: the
contribution vanishes instead of exploding).  The pass is idempotent and
is applied by the compiler to every generated approximate kernel when
``ParaproxConfig.guard_divisions`` is set.
"""

from __future__ import annotations

from typing import Tuple, Union

from ..kernel import ir
from ..kernel.frontend import KernelFn
from ..kernel.visitors import Transformer, clone_module


def _provably_nonzero(expr: ir.Expr) -> bool:
    if isinstance(expr, ir.Const):
        return expr.value != 0
    if isinstance(expr, ir.Cast):
        # float->int casts can truncate to zero; float widening cannot.
        if expr.dtype.is_integer and expr.operand.dtype.is_float:
            return False
        return _provably_nonzero(expr.operand)
    if isinstance(expr, ir.Call) and expr.func == "exp":
        return True  # e^x > 0 for all finite x
    if isinstance(expr, ir.BinOp) and expr.op == "add":
        # c + exp(...)-style positive sums; keep it minimal and sound:
        return (
            isinstance(expr.left, ir.Const)
            and expr.left.value > 0
            and _provably_nonnegative(expr.right)
        ) or (
            isinstance(expr.right, ir.Const)
            and expr.right.value > 0
            and _provably_nonnegative(expr.left)
        )
    return False


def _provably_nonnegative(expr: ir.Expr) -> bool:
    if isinstance(expr, ir.Const):
        return expr.value >= 0
    if isinstance(expr, ir.Call) and expr.func in ("exp", "fabs", "sqrt"):
        return True
    if isinstance(expr, ir.BinOp) and expr.op == "mul":
        # x * x
        from ..kernel.printer import print_expr

        return print_expr(expr.left) == print_expr(expr.right)
    return False


class _GuardDivisions(Transformer):
    def __init__(self) -> None:
        self.guarded = 0

    def visit_BinOp(self, node: ir.BinOp):
        if node.op not in ("div", "mod"):
            return node
        if _provably_nonzero(node.right):
            return node
        if self._already_guarded(node):
            return node
        self.guarded += 1
        cond = ir.binop("ne", node.right, ir.const_like(0, node.right.dtype))
        fallback = ir.const_like(0, node.dtype)
        return ir.Select(cond, node, fallback, node.dtype)

    @staticmethod
    def _already_guarded(node: ir.BinOp) -> bool:
        # visit hooks see rebuilt children; a Select wrapping this exact
        # division would have been built by a previous pass — detect the
        # idempotence case at the parent level instead.
        return False

    def visit_Select(self, node: ir.Select):
        # Idempotence: a guard of the shape (b != 0) ? a/b : 0 wrapping a
        # division must not be re-wrapped; strip double guards.
        inner = node.if_true
        if (
            isinstance(inner, ir.Select)
            and isinstance(inner.if_true, ir.BinOp)
            and inner.if_true.op in ("div", "mod")
            and _same_guard(node.cond, inner.cond)
        ):
            return inner
        return node


def _same_guard(a: ir.Expr, b: ir.Expr) -> bool:
    from ..kernel.printer import print_expr

    try:
        return print_expr(a) == print_expr(b)
    except TypeError:  # pragma: no cover - defensive
        return False


def guard_divisions(
    target: Union[KernelFn, ir.Module], kernel_name: str = None
) -> Tuple[ir.Module, int]:
    """Return (new module, number of guards inserted) with every unsafe
    division in every function of the module guarded."""
    module = target.module if isinstance(target, KernelFn) else target
    new_module = clone_module(module)
    pass_ = _GuardDivisions()
    for name, fn in list(new_module.functions.items()):
        rebuilt = pass_.transform_function(fn)
        # Guarding preserves the approximation semantics, so the approx
        # tag survives this pass (transform_function drops it).
        meta = getattr(fn, "approx", None)
        if meta is not None:
            rebuilt.approx = meta
        new_module.functions[name] = rebuilt
    return new_module, pass_.guarded
