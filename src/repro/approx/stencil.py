"""Tile replication for stencil & partition patterns (paper §3.2).

The transform assumes adjacent input elements are similar (paper Fig 5)
and reads only a subset of each tile, replicating the subset across its
*reaching distance* neighbourhood.  Three schemes (paper Fig 6):

* **center** — one representative per (rd+1) x (rd+1) block of the tile,
  snapped towards the tile centre; for a 3x3 tile with rd=1 the centre
  element stands in for all nine.
* **row** — one row of the tile stands in for neighbouring rows within
  the reaching distance; columns are still read exactly.
* **column** — the transpose of row.

Mechanically: constant-trip loops touching the tiled array are fully
unrolled, each load's index polynomial places it at tile offset (dr, dc),
the offset is snapped to its representative, and the load's index gets the
literal delta ``(dr' - dr) * w + (dc' - dc)`` added.  A CSE pass then
collapses the now-duplicate loads, which is where the memory-traffic
savings (and the modelled speedup) come from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.affine import Poly, extract_load_polynomials, infer_tile
from ..errors import TransformError
from ..kernel import ir
from ..kernel.types import I32
from ..kernel.visitors import Transformer, clone_module, walk
from ..patterns.base import StencilMatch
from .base import ApproxKernel, ApproxMeta, fresh_name, tag_approx
from .cse import eliminate_duplicate_loads
from .unroll import loop_trip_values, unroll_where

SCHEMES = ("center", "row", "column")


def snap(value: int, anchor: int, rd: int) -> int:
    """Snap an offset to its representative: the nearest multiple of
    (rd + 1) counted from the anchor (tile centre)."""
    stride = rd + 1
    return anchor + stride * round((value - anchor) / stride)


def representative(
    offset: Tuple[int, int],
    center: Tuple[int, int],
    scheme: str,
    rd: int,
) -> Tuple[int, int]:
    """The tile offset whose value stands in for ``offset``."""
    r, c = offset
    if scheme == "center":
        return snap(r, center[0], rd), snap(c, center[1], rd)
    if scheme == "row":
        return snap(r, center[0], rd), c
    if scheme == "column":
        return r, snap(c, center[1], rd)
    raise TransformError(f"unknown stencil scheme {scheme!r}")


def _monomial_expr(monomial) -> ir.Expr:
    """Rebuild a stride monomial (e.g. ('w',)) as an i32 expression."""
    expr: Optional[ir.Expr] = None
    for symbol in monomial:
        if symbol.startswith("%"):
            atom: ir.Expr = ir.Call(symbol[1:], [], I32)
        else:
            atom = ir.Var(symbol, I32)
        expr = atom if expr is None else ir.binop("mul", expr, atom)
    if expr is None:
        raise TransformError("empty stride monomial")
    return expr


class _LoadRedirector(Transformer):
    """Adds per-load index deltas that point loads at their representative
    tile element."""

    def __init__(
        self,
        array: str,
        defs: Dict[str, ir.Expr],
        base: Poly,
        width,
        plan: Dict[Tuple[int, int], Tuple[int, int]],
    ) -> None:
        self.array = array
        self.defs = defs
        self.base = base
        self.width = width  # stride monomial or None
        self.plan = plan
        self.redirected = 0

    def _offset_of(self, index: ir.Expr) -> Optional[Tuple[int, int]]:
        from ..analysis.affine import _to_poly

        poly = _to_poly(index, self.defs, {})
        if poly is None:
            return None
        diff = poly - self.base
        dr, dc = 0, diff.const
        extra = diff.nonconst_terms
        if len(extra) > 1:
            return None
        if len(extra) == 1:
            mono, coeff = extra[0]
            if self.width is None or mono != self.width:
                return None
            dr = coeff
        pitch = self._constant_pitch()
        if self.width is None and pitch:
            # Constant-width tile: the base is the minimal offset, so the
            # flat delta splits as dr * pitch + dc with 0 <= dc < pitch.
            dr, dc = divmod(dc, pitch)
        return dr, dc

    def _constant_pitch(self) -> Optional[int]:
        return getattr(self, "pitch", None)

    def visit_Load(self, load: ir.Load):
        if load.array.name != self.array:
            return load
        offset = self._offset_of(load.index)
        if offset is None or offset not in self.plan:
            return load
        target = self.plan[offset]
        if target == offset:
            return load
        dr = target[0] - offset[0]
        dc = target[1] - offset[1]
        delta: Optional[ir.Expr] = None
        if dr and self.width is not None:
            delta = ir.binop(
                "mul", ir.Const(dr, I32), _monomial_expr(self.width)
            )
        elif dr and self._constant_pitch():
            delta = ir.Const(dr * self._constant_pitch(), I32)
        if dc:
            dc_expr = ir.Const(dc, I32)
            delta = dc_expr if delta is None else ir.binop("add", delta, dc_expr)
        if delta is None:
            return load
        self.redirected += 1
        return ir.Load(load.array, ir.binop("add", load.index, delta))


@dataclass
class StencilPlan:
    """A concrete replication plan for one (scheme, reaching distance)."""

    scheme: str
    reaching_distance: int
    #: tile offset -> representative offset
    mapping: Dict[Tuple[int, int], Tuple[int, int]]

    @property
    def accessed(self) -> int:
        return len(set(self.mapping.values()))

    @property
    def total(self) -> int:
        return len(self.mapping)

    @property
    def saving(self) -> float:
        """Fraction of tile loads eliminated."""
        return 1.0 - self.accessed / max(self.total, 1)


def build_plan(tile, scheme: str, rd: int) -> StencilPlan:
    """Compute the offset->representative map for one tile geometry.

    Representatives are themselves snapped into the tile's bounds so the
    transform never reads outside the region the exact kernel read."""
    center = ((tile.rows - 1) // 2, (tile.cols - 1) // 2)
    mapping = {}
    for offset in tile.offsets:
        r, c = representative(tuple(offset), center, scheme, rd)
        r = min(max(r, 0), tile.rows - 1)
        c = min(max(c, 0), tile.cols - 1)
        mapping[tuple(offset)] = (r, c)
    return StencilPlan(scheme=scheme, reaching_distance=rd, mapping=mapping)


class StencilTransform:
    """Generates tile-replication variants of a stencil/partition kernel.

    Args:
        schemes: which of center/row/column to emit.
        reaching_distances: rd values to emit per scheme.
    """

    def __init__(
        self,
        schemes=SCHEMES,
        reaching_distances=(1, 2),
    ) -> None:
        self.schemes = tuple(schemes)
        self.reaching_distances = tuple(reaching_distances)

    def generate(
        self, module: ir.Module, kernel_name: str, match: StencilMatch
    ) -> List[ApproxKernel]:
        tile = match.tile
        variants: List[ApproxKernel] = []
        seen_plans = set()
        for scheme in self.schemes:
            for rd in self.reaching_distances:
                plan = build_plan(tile, scheme, rd)
                key = tuple(sorted(plan.mapping.items()))
                if plan.saving <= 0.0 or key in seen_plans:
                    continue  # no load is eliminated; not a real variant
                seen_plans.add(key)
                new_module, new_name = self._rewrite(
                    module, kernel_name, tile, plan
                )
                variants.append(
                    ApproxKernel(
                        name=new_name,
                        pattern=match.pattern,
                        kernel=new_name,
                        module=new_module,
                        knobs={
                            "scheme": scheme,
                            "reaching_distance": rd,
                            "tile": (tile.rows, tile.cols),
                            "loads_kept": plan.accessed,
                            "loads_total": plan.total,
                        },
                        aggressiveness=plan.saving,
                    )
                )
        return variants

    def _rewrite(self, module, kernel_name, tile, plan: StencilPlan):
        new_module = clone_module(module)
        fn = new_module[kernel_name]

        def touches_tile_array(loop: ir.For) -> bool:
            return any(
                isinstance(n, ir.Load) and n.array.name == tile.array
                for n in walk(loop)
            )

        fn = unroll_where(fn, touches_tile_array)

        # Re-derive the base polynomial after unrolling.
        from ..analysis.affine import _single_assignment_defs

        defs = _single_assignment_defs(fn)
        accesses = extract_load_polynomials(fn).get(tile.array)
        if accesses is None or not accesses.forms:
            raise TransformError(f"{kernel_name}: lost accesses to {tile.array}")
        fresh_tile = infer_tile(tile.array, accesses.forms)
        if fresh_tile is None or fresh_tile.base is None:
            raise TransformError(f"{kernel_name}: tile shape not recoverable")
        redirector = _LoadRedirector(
            tile.array, defs, fresh_tile.base, fresh_tile.width_symbol, plan.mapping
        )
        if fresh_tile.width_symbol is None and fresh_tile.rows > 1:
            redirector.pitch = fresh_tile.pitch
        fn = redirector.transform_function(fn)
        if redirector.redirected == 0:
            raise TransformError(
                f"{kernel_name}: no load could be redirected for {plan.scheme}/rd="
                f"{plan.reaching_distance}"
            )
        fn = eliminate_duplicate_loads(fn)
        suffix = f"stencil_{plan.scheme}_rd{plan.reaching_distance}"
        new_name = fresh_name(kernel_name, suffix)
        fn.name = new_name
        tag_approx(
            fn,
            ApproxMeta(
                transform="stencil",
                knobs=ApproxMeta.knob_tuple(
                    {
                        "scheme": plan.scheme,
                        "reaching_distance": plan.reaching_distance,
                        "array": tile.array,
                    }
                ),
            ),
        )
        del new_module.functions[kernel_name]
        new_module.add(fn)
        return new_module, new_name


