"""``python -m repro.resilience`` — the chaos differential harness."""

from .check import main

if __name__ == "__main__":
    raise SystemExit(main())
