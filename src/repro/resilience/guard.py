"""Guarded launches: exception containment, retries, deadlines, ladders.

Two layers of protection compose here:

* **Shard level** — :func:`run_sharded_guarded` executes a sharded
  codegen launch with the paranoia a production pool needs: every shard
  runs against *private copies* of the written arrays (so an abandoned
  or hung worker can never scribble on the caller's buffers), failed
  shards are retried with exponential backoff, the whole launch carries
  a wall-clock deadline, and any unrecoverable outcome (deadline, dead
  pool, exhausted retries) falls back to serial re-execution — which is
  bit-exact because the caller's buffers were never touched.
* **Launch level** — :func:`run_ladder` walks the fallback ladder
  *approx variant → exact codegen → exact interpreter*.  Each rung's
  exceptions are contained, its output is validated (NaN/Inf guardrail)
  and a failure drops to the next rung; only the final rung — the plain
  interpreter on the exact program, the system's bedrock — is allowed to
  propagate, because an exception there is a genuine bug, not a fault to
  absorb.

The ambient :class:`GuardPolicy` is scoped per thread with
:func:`use_guard` (sessions wrap every launch in it); plain ``launch``
calls outside any guard scope keep their original, zero-overhead paths.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .._options import UNSET, current_options, deprecated
from .._options import options as options_scope
from ..errors import ResilienceError, ShardTimeout, WorkerDeath
from ..obs import trace as obs_trace
from ..obs.registry import get_registry
from .faults import SITE_OUTPUT, SITE_WORKER, active_plan, maybe_inject
from .validate import corrupt_output, validate_output


@dataclass(frozen=True)
class GuardPolicy:
    """How paranoid one guarded launch is.

    Attributes:
        enabled: False restores the unguarded fast path everywhere.
        retries: re-submissions per failed shard (transient faults).
        backoff_seconds: base of the exponential retry backoff.
        deadline_seconds: wall-clock bound on one sharded launch; on
            expiry the pool is abandoned and the launch re-runs serially.
        validate_outputs: run the NaN/Inf guardrail on non-final rungs.
        value_limit: optional |x| bound for the out-of-range guardrail.
    """

    enabled: bool = True
    retries: int = 2
    backoff_seconds: float = 0.002
    deadline_seconds: float = 30.0
    validate_outputs: bool = True
    value_limit: Optional[float] = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ResilienceError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_seconds < 0:
            raise ResilienceError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.deadline_seconds <= 0:
            raise ResilienceError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}"
            )


def current_policy() -> Optional[GuardPolicy]:
    """The guard of the ambient :func:`repro.options` scope on this
    thread (None = unguarded)."""
    guard = current_options().guard
    return None if guard is UNSET else guard


class use_guard(options_scope):
    """Deprecated: scope a guard policy to a ``with`` block.

    Superseded by the unified :func:`repro.options` scope::

        with repro.options(guard=GuardPolicy(retries=1)):
            ...
    """

    def __init__(self, policy: Optional[GuardPolicy]) -> None:
        deprecated("use_guard(...)", "repro.options(guard=...)")
        super().__init__(guard=policy)
        self.policy = policy

    def __enter__(self) -> Optional[GuardPolicy]:
        super().__enter__()
        return self.policy


#: Jitter source outside any fault plan; unseeded on purpose — real
#: deployments *want* decorrelated retries across processes.
_JITTER_RNG = random.Random()


def _backoff_delay(cap: float) -> float:
    """Full-jitter retry backoff: uniform in ``[0, cap]``.

    A deterministic exponential schedule makes every shard that failed in
    the same round retry at the same instant — a synchronized thundering
    herd against the pool.  Full jitter (AWS-style) spreads the retries
    over the whole window while keeping the exponential cap.  Under an
    active :class:`~repro.resilience.faults.FaultPlan` the draw comes from
    the plan's dedicated ``backoff_rng``, so chaos-harness runs replay the
    exact same sleep sequence for a given seed.
    """
    if cap <= 0.0:
        return 0.0
    plan = active_plan()
    rng = plan.backoff_rng if plan is not None else _JITTER_RNG
    return rng.uniform(0.0, cap)


# ------------------------------------------------------------------- stats


#: Registry field -> help text; each becomes ``repro_guard_<field>``.
_FIELDS = {
    "guarded_launches": "fallback-ladder walks",
    "guarded_sharded": "sharded launches run under the guard",
    "shard_retries": "failed shards re-submitted",
    "shard_timeouts": "sharded launches that overran their deadline",
    "serial_reexecutions": "launches recomputed serially after containment",
    "pool_replacements": "pools replaced after worker death or timeout",
    "validation_trips": "outputs rejected by the NaN/Inf guardrail",
    "containments": "rung failures absorbed by the ladder",
    "corruptions_injected": "fault-injected output corruptions",
}


class GuardStats:
    """Process-wide guard counters, served from the metrics registry.

    The attribute API is unchanged; values live in ``repro_guard_*``
    registry counters so snapshots and the Prometheus exposition read
    one store.
    """

    def __init__(self) -> None:
        registry = get_registry()
        object.__setattr__(
            self,
            "_metrics",
            {
                name: registry.counter(f"repro_guard_{name}", help)
                for name, help in _FIELDS.items()
            },
        )

    def __getattr__(self, name: str) -> int:
        try:
            return int(self._metrics[name].value)
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value) -> None:
        self._metrics[name].set(value)

    def snapshot(self) -> Dict[str, int]:
        return {name: int(self._metrics[name].value) for name in _FIELDS}

    def reset(self) -> None:
        for name in _FIELDS:
            self._metrics[name].set(0.0)


STATS = GuardStats()


def stats_snapshot() -> Dict[str, int]:
    return STATS.snapshot()


# ----------------------------------------------------- guarded parallel map


def guarded_map(
    kind: str, workers: int, fn, items, policy: GuardPolicy
) -> List:
    """``parallel_map`` with containment: retries, deadline, pool revival.

    Results return in item order.  A shard that raises is re-submitted up
    to ``policy.retries`` times with exponential backoff;
    :class:`~repro.errors.WorkerDeath` additionally replaces the pool
    (the worker is gone, not merely unlucky).  When the wall-clock
    deadline expires the pool is abandoned — hung workers keep running
    against their private buffers, harmlessly — and
    :class:`~repro.errors.ShardTimeout` is raised for the caller's serial
    fallback.  Exhausted retries re-raise the shard's own exception.
    """
    from ..parallel import pool as pool_mod

    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    ambient = obs_trace.current_span()
    fn = obs_trace.carry(fn)
    deadline = time.monotonic() + policy.deadline_seconds
    executor = pool_mod.get_healthy_pool(kind, workers)
    pool_mod.pool_stats(kind).record(len(items), workers)
    results: List[object] = [None] * len(items)
    attempts = [0] * len(items)
    pending: Dict[object, int] = {}

    def submit(idx: int) -> None:
        nonlocal executor
        try:
            future = executor.submit(fn, items[idx])
        except RuntimeError:
            # The executor was shut down under us (a dead pool); build a
            # fresh one and resubmit there.
            STATS.pool_replacements += 1
            executor = pool_mod.replace_pool(kind, workers)
            future = executor.submit(fn, items[idx])
        pending[future] = idx

    for i in range(len(items)):
        submit(i)
    while pending:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        done, _not_done = wait(
            pending, timeout=remaining, return_when=FIRST_COMPLETED
        )
        if not done:
            break  # deadline will trip on the next loop check
        for future in done:
            idx = pending.pop(future)
            exc = future.exception()
            if exc is None:
                results[idx] = future.result()
                continue
            if isinstance(exc, WorkerDeath):
                STATS.pool_replacements += 1
                executor = pool_mod.replace_pool(kind, workers)
            if attempts[idx] >= policy.retries:
                for other in pending:
                    other.cancel()
                raise exc
            attempts[idx] += 1
            STATS.shard_retries += 1
            if ambient is not None:
                ambient.event(
                    "shard_retry",
                    shard=idx,
                    attempt=attempts[idx],
                    error=type(exc).__name__,
                )
            if policy.backoff_seconds:
                time.sleep(
                    _backoff_delay(
                        min(
                            policy.backoff_seconds * (2 ** (attempts[idx] - 1)),
                            max(deadline - time.monotonic(), 0.0),
                        )
                    )
                )
            submit(idx)
    if pending:
        # Deadline expired with shards still out.  Abandon the pool: hung
        # workers only hold private buffers, and a fresh pool keeps later
        # launches from queueing behind them.
        for future in pending:
            future.cancel()
        STATS.shard_timeouts += 1
        STATS.pool_replacements += 1
        if ambient is not None:
            ambient.event("shard_timeout", outstanding=len(pending))
        pool_mod.replace_pool(kind, workers)
        raise ShardTimeout(
            f"sharded launch overran its {policy.deadline_seconds:.3f}s "
            f"deadline with {len(pending)} shard(s) outstanding"
        )
    return results


# ------------------------------------------------- guarded shard execution


def run_sharded_guarded(
    compiled,
    grid,
    bound: Dict[str, object],
    plan: List[Tuple[int, int]],
    workers: int,
    written: List[str],
    policy: GuardPolicy,
) -> None:
    """Execute a sharded launch under full containment.

    Always runs overlay-style — every shard writes private copies, so
    the caller's buffers stay pristine until all shards succeed — which
    is what makes the serial fallback trivially exact: on any
    unrecoverable failure the untouched buffers are simply recomputed in
    one serial pass.
    """
    from ..codegen.runtime import geometry

    geo = geometry(grid)
    block_threads = grid.block_threads
    pristine = {name: bound[name].copy() for name in written}

    def run_one(shard_span: Tuple[int, int]) -> Dict[str, np.ndarray]:
        b0, b1 = shard_span
        with obs_trace.span(
            "shard.run", kernel=compiled.fn_name, blocks=f"{b0}:{b1}", mode="guarded"
        ):
            maybe_inject(SITE_WORKER, f"{compiled.fn_name}:{b0}-{b1}")
            private = dict(bound)
            for name in written:
                private[name] = pristine[name].copy()
            compiled.entry(
                geo.shard(b0, b1, block_threads),
                *[private[name] for name in compiled.param_names],
            )
            return {name: private[name] for name in written}

    STATS.guarded_sharded += 1
    try:
        results = guarded_map("shard", workers, run_one, plan, policy)
    except Exception:
        # Deadline, dead pool, or a shard that kept failing past its
        # retry budget: recompute serially on the untouched buffers.
        STATS.serial_reexecutions += 1
        compiled.run(grid, bound)
        return
    for shard_out in results:  # ascending shard order = serial store order
        for name in written:
            target = bound[name].view(np.uint8)
            changed = shard_out[name].view(np.uint8) != pristine[name].view(
                np.uint8
            )
            target[changed] = shard_out[name].view(np.uint8)[changed]


# ---------------------------------------------------------- fallback ladder


@dataclass
class LadderAttempt:
    """What one rung of a guarded launch did."""

    rung: str  # "variant", "exact_codegen", "exact_interp", ...
    ok: bool
    error: str = ""  # exception or validation message when not ok
    site: str = ""  # "exception" or "output.validate"


@dataclass
class LadderReport:
    """Outcome of one :func:`run_ladder` walk."""

    served: str  # rung label that produced the returned output
    depth: int  # 0 = primary attempt succeeded
    attempts: List[LadderAttempt] = field(default_factory=list)

    @property
    def primary_ok(self) -> bool:
        return self.depth == 0

    @property
    def faults(self) -> List[LadderAttempt]:
        return [a for a in self.attempts if not a.ok]


def _ladder_rungs(variant, backend: str, workers: int):
    """(label, backend, workers, runs_variant) rungs, deduplicated.

    The canonical ladder is *approx variant → exact codegen → exact
    interpreter*; serving the exact program collapses the first rung
    into an exact launch under the session's own backend.  Rungs whose
    execution signature repeats an earlier rung are dropped (re-running
    an identical configuration cannot recover anything).
    """
    rungs = []
    seen = set()

    def add(label: str, be: str, w: int, runs_variant: bool) -> None:
        sig = ("variant" if runs_variant else "exact", be, w)
        if sig not in seen:
            seen.add(sig)
            rungs.append((label, be, w, runs_variant))

    if variant is not None:
        add("variant", backend, workers, True)
    else:
        add("exact", backend, workers, False)
    add("exact_codegen", "codegen", workers, False)
    add("exact_interp", "interp", 1, False)
    return rungs


def _flush_fusion() -> None:
    """Rung boundary for cross-launch fusion: a producer the fusion
    window deferred inside a rung must execute before that rung's output
    is validated (or its failure attributed).  ``sys.modules`` gate so
    apps that never enable ``fuse`` pay nothing."""
    import sys

    fusion = sys.modules.get("repro.engine.fusion")
    if fusion is not None:
        fusion.flush()


def run_ladder(
    app,
    inputs,
    variant,
    backend: str = "auto",
    workers: int = 1,
    policy: Optional[GuardPolicy] = None,
):
    """Serve one invocation through the fallback ladder.

    Returns ``(output, LadderReport)``.  The caller always receives an
    exact-or-better answer: every contained rung failure steps down, and
    the final rung (exact program, interpreter, serial) is the reference
    semantics itself.  Only a final-rung exception propagates.
    """
    if policy is None:
        policy = current_policy()
    if policy is None or not policy.enabled:
        label = "variant" if variant is not None else "exact"
        with obs_trace.span(
            "ladder.rung", rung=label, depth=0, guarded=False
        ), options_scope(backend=backend, parallel=workers):
            if variant is None:
                out, _trace = app.run_exact(inputs)
            else:
                out, _trace = app.run_variant(variant, inputs)
            _flush_fusion()
        return out, LadderReport(
            served=label, depth=0, attempts=[LadderAttempt(label, True)]
        )

    STATS.guarded_launches += 1
    rungs = _ladder_rungs(variant, backend, workers)
    report = LadderReport(served="", depth=0)
    for depth, (label, be, w, runs_variant) in enumerate(rungs):
        final = depth == len(rungs) - 1
        rung_span = obs_trace.span(
            "ladder.rung", rung=label, depth=depth, backend=be, guarded=True
        )
        try:
            with rung_span, options_scope(guard=policy, backend=be, parallel=w):
                if runs_variant:
                    out, _trace = app.run_variant(variant, inputs)
                else:
                    out, _trace = app.run_exact(inputs)
                _flush_fusion()
        except Exception as exc:
            try:
                _flush_fusion()
            except Exception:
                pass  # rung already failed; its deferral dies contained too
            if final:
                raise
            STATS.containments += 1
            report.attempts.append(
                LadderAttempt(
                    label,
                    False,
                    error=f"{type(exc).__name__}: {exc}",
                    site="exception",
                )
            )
            continue
        if not final:
            plan = active_plan()
            if plan is not None:
                spec = plan.poll(SITE_OUTPUT, label)
                if spec is not None and corrupt_output(out, spec.mode):
                    STATS.corruptions_injected += 1
            if policy.validate_outputs:
                violation = validate_output(out, policy.value_limit)
                if violation is not None:
                    STATS.validation_trips += 1
                    ambient = obs_trace.current_span()
                    if ambient is not None:
                        ambient.event(
                            "validation_trip", rung=label, error=violation
                        )
                    report.attempts.append(
                        LadderAttempt(
                            label, False, error=violation, site="output.validate"
                        )
                    )
                    continue
        report.attempts.append(LadderAttempt(label, True))
        report.served = label
        report.depth = depth
        return out, report
    raise ResilienceError("ladder exhausted without serving")  # pragma: no cover
