"""Per-variant circuit breakers: quarantine what keeps failing.

A variant that crashes, hangs or produces NaN once may be unlucky; one
that does so K times in a row is broken, and re-attempting it on every
launch converts one bad variant into a permanent fallback tax.  The
breaker walks the classic three states per variant:

* **closed** — serving normally; consecutive faults are counted and
  any success resets the count.
* **open** (quarantined) — after ``fault_threshold`` consecutive faults
  or guardrail trips.  The variant is excluded from serving and from
  tuner ``choose()`` until a probation window (measured in *launches*,
  so tests and replays are deterministic) has passed.
* **probation** — the window expired; the variant may serve probe
  launches again.  ``probation_successes`` consecutive clean probes
  close the breaker; a single fault re-opens it immediately.

The breaker is a bookkeeping object — it never executes anything — so
sessions own one and consult it when picking the serving rung, and feed
its state into ``metrics_snapshot()``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..errors import ResilienceError

CLOSED = "closed"
OPEN = "open"
PROBATION = "probation"


@dataclass(frozen=True)
class BreakerConfig:
    """Knobs of the variant circuit breaker.

    Attributes:
        fault_threshold: consecutive faults (crashes, hangs, guardrail
            trips) before a variant is quarantined.
        probation_after: launches a quarantined variant sits out before
            probation re-admits it.
        probation_successes: consecutive clean probes needed to close.
    """

    fault_threshold: int = 3
    probation_after: int = 25
    probation_successes: int = 2

    def __post_init__(self) -> None:
        if self.fault_threshold < 1:
            raise ResilienceError("fault_threshold must be >= 1")
        if self.probation_after < 1:
            raise ResilienceError("probation_after must be >= 1")
        if self.probation_successes < 1:
            raise ResilienceError("probation_successes must be >= 1")


class _VariantState:
    __slots__ = ("state", "consecutive_faults", "probe_successes",
                 "reopen_at", "faults_total", "quarantines")

    def __init__(self) -> None:
        self.state = CLOSED
        self.consecutive_faults = 0
        self.probe_successes = 0
        self.reopen_at: Optional[int] = None
        self.faults_total = 0
        self.quarantines = 0


class VariantBreaker:
    """One breaker per variant name, for one session.

    Thread-safe (sessions may be driven from several request threads).
    State transitions are appended to an event list the session drains
    into its metrics/event log.
    """

    def __init__(self, config: Optional[BreakerConfig] = None) -> None:
        self.config = config or BreakerConfig()
        self._states: Dict[str, _VariantState] = {}
        self._events: List[dict] = []
        self._lock = threading.Lock()

    def _state(self, name: str) -> _VariantState:
        state = self._states.get(name)
        if state is None:
            state = self._states[name] = _VariantState()
        return state

    def _emit(self, name: str, launch: int, to_state: str, reason: str) -> None:
        self._events.append(
            {
                "event": "breaker",
                "variant": name,
                "launch": launch,
                "state": to_state,
                "reason": reason,
            }
        )

    # -- queries ---------------------------------------------------------------

    def state(self, name: str) -> str:
        with self._lock:
            return self._states[name].state if name in self._states else CLOSED

    def blocked(self, name: str, launch_index: int) -> bool:
        """Whether ``name`` must not serve at ``launch_index``.

        An OPEN variant whose probation window has passed transitions to
        PROBATION here (and is then allowed): re-admission is driven by
        the serving loop consulting the breaker, not by a timer thread.
        """
        with self._lock:
            state = self._states.get(name)
            if state is None or state.state != OPEN:
                return False
            if state.reopen_at is not None and launch_index >= state.reopen_at:
                state.state = PROBATION
                state.probe_successes = 0
                self._emit(name, launch_index, PROBATION, "probation_window")
                return False
            return True

    def quarantined(self) -> Set[str]:
        """Names currently OPEN (excluded from serving and ``choose``)."""
        with self._lock:
            return {
                name
                for name, state in self._states.items()
                if state.state == OPEN
            }

    # -- transitions -----------------------------------------------------------

    def record_success(self, name: str, launch_index: int) -> None:
        with self._lock:
            state = self._state(name)
            state.consecutive_faults = 0
            if state.state == PROBATION:
                state.probe_successes += 1
                if state.probe_successes >= self.config.probation_successes:
                    state.state = CLOSED
                    state.reopen_at = None
                    self._emit(name, launch_index, CLOSED, "probation_passed")

    def record_fault(self, name: str, launch_index: int, reason: str) -> bool:
        """Count one fault; returns True when this fault opened the breaker."""
        with self._lock:
            state = self._state(name)
            state.faults_total += 1
            if state.state == PROBATION:
                # one strike on probation: straight back to quarantine,
                # with a fresh window.
                state.state = OPEN
                state.quarantines += 1
                state.consecutive_faults = 0
                state.reopen_at = launch_index + self.config.probation_after
                self._emit(name, launch_index, OPEN, f"probation_fault:{reason}")
                return True
            if state.state == OPEN:
                return False
            state.consecutive_faults += 1
            if state.consecutive_faults >= self.config.fault_threshold:
                state.state = OPEN
                state.quarantines += 1
                state.consecutive_faults = 0
                state.reopen_at = launch_index + self.config.probation_after
                self._emit(name, launch_index, OPEN, reason)
                return True
            return False

    # -- reporting -------------------------------------------------------------

    def drain_events(self) -> List[dict]:
        """Transition events since the last drain (for the event log)."""
        with self._lock:
            events, self._events = self._events, []
            return events

    def snapshot(self) -> Dict[str, dict]:
        with self._lock:
            return {
                name: {
                    "state": state.state,
                    "consecutive_faults": state.consecutive_faults,
                    "faults_total": state.faults_total,
                    "quarantines": state.quarantines,
                    "reopen_at": state.reopen_at,
                }
                for name, state in self._states.items()
            }
