"""Resilient serving: fault injection, guarded launches, quarantine.

Three cooperating pieces (Paraprox's runtime, hardened for production):

* :mod:`~repro.resilience.faults` — deterministic, seedable fault
  injection at the stack's real failure sites (compile, shard worker,
  quality evaluation, cache load, output corruption).
* :mod:`~repro.resilience.guard` — guarded launches: per-shard retries
  with backoff, wall-clock deadlines with serial re-execution, pool
  revival, and the fallback ladder *approx variant → exact codegen →
  exact interpreter* that turns any contained failure into an exact
  answer.
* :mod:`~repro.resilience.breaker` — per-variant circuit breakers that
  quarantine a variant after repeated faults and re-admit it through a
  probation window.

The chaos differential harness lives in
:mod:`~repro.resilience.check` (run it as ``python -m repro.resilience``);
it is deliberately not imported here — it pulls in the serving stack,
which itself imports this package.
"""

from .breaker import CLOSED, OPEN, PROBATION, BreakerConfig, VariantBreaker
from .faults import (
    FAULT_CLASSES,
    MODES,
    SITES,
    SITE_CACHE_LOAD,
    SITE_COMPILE,
    SITE_OUTPUT,
    SITE_QUALITY,
    SITE_WORKER,
    FaultPlan,
    FaultSpec,
    active_plan,
    maybe_inject,
    random_plan,
    use_faults,
)
from .guard import (
    GuardPolicy,
    GuardStats,
    LadderAttempt,
    LadderReport,
    current_policy,
    guarded_map,
    run_ladder,
    run_sharded_guarded,
    stats_snapshot,
    use_guard,
)
from .validate import corrupt_output, validate_output

__all__ = [
    "BreakerConfig",
    "VariantBreaker",
    "CLOSED",
    "OPEN",
    "PROBATION",
    "FaultPlan",
    "FaultSpec",
    "FAULT_CLASSES",
    "MODES",
    "SITES",
    "SITE_CACHE_LOAD",
    "SITE_COMPILE",
    "SITE_OUTPUT",
    "SITE_QUALITY",
    "SITE_WORKER",
    "active_plan",
    "maybe_inject",
    "random_plan",
    "use_faults",
    "GuardPolicy",
    "GuardStats",
    "LadderAttempt",
    "LadderReport",
    "current_policy",
    "guarded_map",
    "run_ladder",
    "run_sharded_guarded",
    "stats_snapshot",
    "use_guard",
    "corrupt_output",
    "validate_output",
]
