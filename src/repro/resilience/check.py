"""Chaos differential harness: faulted serving must stay bit-exact.

The resilience guarantee is stronger than "no crash": a launch served
through the guarded fallback ladder must return *the exact program's
output, bit for bit*, no matter which fault class is being injected —
compile failures, shard-worker crashes, hangs past the guard deadline,
dead workers, NaN/Inf-corrupted outputs, cache-load failures, quality-
evaluation crashes.  This harness holds the stack to that promise the
same way :mod:`repro.parallel.check` certifies sharding and
:mod:`repro.codegen.check` certifies the code generator:

for every registered application × fault class × seed,

1. compute the golden output (interpreter, serial, no faults);
2. re-run the exact program through the guarded ladder under a
   randomized-but-seeded :func:`~repro.resilience.faults.random_plan`
   for that fault class;
3. compare every output array byte-for-byte, and record any exception
   that escaped the guard as an *uncontained* failure.

Usage::

    python -m repro.resilience                 # all apps, seeds 0-2
    python -m repro.resilience --seeds 7 8     # specific seeds
    python -m repro.resilience BlackScholes    # one app
"""

from __future__ import annotations

import copy
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..codegen.check import _compare_arrays
from .._options import options
from ..parallel import ParallelPolicy
from .faults import (
    FAULT_CLASSES,
    SITE_CACHE_LOAD,
    SITE_QUALITY,
    FaultPlan,
    FaultSpec,
    random_plan,
    use_faults,
)
from .guard import GuardPolicy, run_ladder

#: Guard knobs the harness serves under: a tight deadline so injected
#: hangs (0.4 s) reliably overrun it, and fast retries.
CHAOS_POLICY = GuardPolicy(
    retries=1, backoff_seconds=0.001, deadline_seconds=0.15
)

#: Injected hang length — comfortably past the chaos deadline.
HANG_SECONDS = 0.4


@dataclass
class ChaosResult:
    """Outcome of one (app, fault class, seed) chaos run."""

    app: str
    fault_class: str
    seed: int
    fired: int = 0  # faults the plan actually injected
    served: str = ""  # ladder rung that served ("" for non-ladder checks)
    depth: int = 0
    exact: bool = False
    error: str = ""  # uncontained exception or semantic failure

    @property
    def ok(self) -> bool:
        return self.exact and not self.error

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        note = self.error or (
            f"served={self.served or '-'} depth={self.depth} fired={self.fired}"
        )
        return f"[{status}] {self.app} / {self.fault_class} seed={self.seed}: {note}"


def _output_arrays(output) -> List[np.ndarray]:
    parts = output if isinstance(output, (tuple, list)) else [output]
    return [np.asarray(p) for p in parts if isinstance(p, np.ndarray)]


def _bit_exact(golden, out) -> Optional[str]:
    golden_arrays = _output_arrays(golden)
    out_arrays = _output_arrays(out)
    if len(golden_arrays) != len(out_arrays):
        return (
            f"output arity changed: {len(golden_arrays)} golden arrays "
            f"vs {len(out_arrays)} served"
        )
    for i, (g, o) in enumerate(zip(golden_arrays, out_arrays)):
        note = _compare_arrays(f"output[{i}]", g, o)
        if note is not None:
            return note
    return None


def golden_output(app, inputs):
    """The reference output: exact program, interpreter, serial, no faults."""
    with options(backend="interp", parallel=1):
        out, _trace = app.run_exact(copy.deepcopy(inputs))
    return out


def run_chaos(
    app,
    fault_class: str,
    seed: int,
    workers: int = 2,
    inputs=None,
    golden=None,
) -> ChaosResult:
    """One chaos run; ``inputs``/``golden`` may be precomputed per app."""
    result = ChaosResult(app=app.name, fault_class=fault_class, seed=seed)
    if inputs is None:
        inputs = app.generate_inputs(seed=app.seed)
    if golden is None:
        golden = golden_output(app, inputs)
    if fault_class == "cache_load":
        return _chaos_cache_load(app, seed, result)
    if fault_class == "quality":
        return _chaos_quality(app, inputs, golden, seed, result)
    plan = random_plan(fault_class, seed, hang_seconds=HANG_SECONDS)
    try:
        with use_faults(plan), options(
            parallel=ParallelPolicy(workers=workers, min_shard_threads=1)
        ):
            out, report = run_ladder(
                app,
                copy.deepcopy(inputs),
                None,
                backend="codegen",
                workers=workers,
                policy=CHAOS_POLICY,
            )
    except Exception as exc:  # an escape IS the failure being hunted
        result.error = f"uncontained {type(exc).__name__}: {exc}"
        result.fired = plan.total_fired()
        return result
    result.fired = plan.total_fired()
    result.served = report.served
    result.depth = report.depth
    mismatch = _bit_exact(golden, out)
    if mismatch is not None:
        result.error = f"served output diverged: {mismatch}"
    result.exact = mismatch is None
    return result


def _chaos_cache_load(app, seed: int, result: ChaosResult) -> ChaosResult:
    """Injected disk-load failures must read as cache *misses*, and the
    same entry must load cleanly once the fault clears."""
    from ..serve.cache import CacheEntry, VariantCache

    key = f"chaos-{app.name.replace(' ', '-')}"
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmpdir:
        writer = VariantCache(tmpdir)
        writer.put(CacheEntry(key=key, variants={"stub": app.name}))
        reader = VariantCache(tmpdir)  # cold memory level: must hit disk
        plan = FaultPlan(
            [FaultSpec(SITE_CACHE_LOAD, mode="exception", max_fires=1)],
            seed=seed,
        )
        try:
            with use_faults(plan):
                faulted = reader.get(key)
            recovered = reader.get(key)
        except Exception as exc:
            result.error = f"uncontained {type(exc).__name__}: {exc}"
            return result
        result.fired = plan.total_fired()
        if faulted is not None:
            result.error = "injected load failure did not read as a miss"
        elif recovered is None or recovered.variants != {"stub": app.name}:
            result.error = "entry did not load once the fault cleared"
        result.exact = result.error == ""
    return result


def _chaos_quality(app, inputs, golden, seed: int, result: ChaosResult) -> ChaosResult:
    """A crash inside quality evaluation must be contained by the session
    (sample skipped, fault recorded) and must not corrupt the output."""
    from ..serve.metrics import LaunchRecord
    from ..serve.session import ApproxSession

    plan = FaultPlan(
        [FaultSpec(SITE_QUALITY, mode="exception", max_fires=1)], seed=seed
    )
    session = ApproxSession(app)
    try:
        record = LaunchRecord(index=0, variant="exact")
        with use_faults(plan):
            quality = session._evaluate_quality(golden, inputs, None, record)
        result.fired = plan.total_fired()
        if quality is not None:
            result.error = "faulted quality evaluation was not skipped"
        elif not record.faults:
            result.error = "contained quality fault was not recorded"
        else:
            mismatch = _bit_exact(golden, golden)
            result.error = mismatch or ""
        result.exact = result.error == ""
    except Exception as exc:
        result.error = f"uncontained {type(exc).__name__}: {exc}"
    finally:
        session.close()
    return result


def check_apps(
    names: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0, 1, 2),
    workers: int = 2,
    fault_classes: Optional[Sequence[str]] = None,
    verbose: bool = True,
) -> List[ChaosResult]:
    """Chaos-check every registered application (CI entry point).

    Inputs and the golden output are computed once per app and reused
    across all fault classes and seeds.
    """
    from ..apps.registry import APP_CLASSES, make_app

    classes = list(fault_classes) if fault_classes else sorted(FAULT_CLASSES)
    results: List[ChaosResult] = []
    for name in names if names is not None else sorted(APP_CLASSES):
        app = make_app(name, seed=0)
        inputs = app.generate_inputs(seed=app.seed)
        golden = golden_output(app, inputs)
        for fault_class in classes:
            for seed in seeds:
                result = run_chaos(
                    app,
                    fault_class,
                    seed,
                    workers=workers,
                    inputs=inputs,
                    golden=golden,
                )
                results.append(result)
                if verbose and (not result.ok or seed == seeds[-1]):
                    print(result.describe())
    return results


def summarize(results: List[ChaosResult]) -> Tuple[int, int, Dict[str, int]]:
    """(passed, total, injected-fault counts per class)."""
    fired: Dict[str, int] = {}
    for r in results:
        fired[r.fault_class] = fired.get(r.fault_class, 0) + r.fired
    passed = sum(1 for r in results if r.ok)
    return passed, len(results), fired


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience",
        description="Assert every application served through the guarded "
        "fallback ladder stays bit-exact with the unfaulted exact path "
        "under randomized injected faults.",
    )
    parser.add_argument("apps", nargs="*", help="app names (default: all)")
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=[0, 1, 2],
        help="fault-plan seeds (default: 0 1 2)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="shard workers (default 2)"
    )
    parser.add_argument(
        "--classes", nargs="+", choices=sorted(FAULT_CLASSES), default=None,
        help="fault classes to run (default: all)",
    )
    ns = parser.parse_args(argv)
    results = check_apps(
        ns.apps or None,
        seeds=ns.seeds,
        workers=ns.workers,
        fault_classes=ns.classes,
    )
    passed, total, fired = summarize(results)
    injected = ", ".join(f"{k}={v}" for k, v in sorted(fired.items()))
    print(f"{passed}/{total} chaos runs bit-exact; faults injected: {injected}")
    return 0 if passed == total else 1
