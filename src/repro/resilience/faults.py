"""Deterministic, seedable fault injection for the serving stack.

Production code is littered with *sites* where the real world can fail:
codegen compilation, shard-worker execution, quality evaluation, cache
loads.  Each such site calls :func:`maybe_inject` — a no-op unless a
:class:`FaultPlan` is active — so the chaos harness
(:mod:`repro.resilience.check`) and the resilience tests can force any of
those failures on demand, deterministically, without monkeypatching.

A plan is a list of :class:`FaultSpec` triggers.  Each spec names a site,
a failure *mode* (raise, hang, die, or corrupt), an optional firing
budget (``max_fires``) and a firing probability.  Plans are seeded: two
runs with the same plan over the same serial code path fire identically.
(Concurrent shard workers poll the shared plan under a lock; with
``probability < 1`` the *which-visit-fired* order can vary across runs,
but every spec's total fire budget still holds.)

The active plan is **process-global** on purpose: faults must be visible
inside pool worker threads, which never inherit thread-local scopes.
Only one plan can be active at a time; :func:`use_faults` nests by
stacking.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type

from ..errors import InjectedFault, ResilienceError, WorkerDeath

# --------------------------------------------------------------------- sites

#: Codegen compilation (``repro.codegen.cache.get_compiled``); injected
#: failures are :class:`~repro.errors.CodegenError` subclasses so the
#: ``auto`` backend's interpreter fallback engages exactly as for a real
#: lowering bug.
SITE_COMPILE = "codegen.compile"

#: Shard-worker execution of one sub-grid (``repro.parallel.shard`` and
#: the guarded executor).  Modes: ``"exception"`` (transient crash),
#: ``"hang"`` (sleep past the launch deadline), ``"dead"`` (the worker
#: and its pool are lost and must be replaced).
SITE_WORKER = "shard.worker"

#: Quality evaluation of a sampled launch (``ApproxSession.launch``).
SITE_QUALITY = "quality.evaluate"

#: Variant-cache load (``repro.serve.cache.VariantCache.get``).
SITE_CACHE_LOAD = "cache.load"

#: Approximate-output corruption: the guarded launcher pollutes the
#: primary attempt's output with NaN/Inf *before* validation, modelling
#: an approximation that numerically exploded.  Modes: ``"nan"``,
#: ``"inf"``.
SITE_OUTPUT = "output.corrupt"

#: Synthetic queue-delay injection for overload drills: the serving
#: front-end's pressure sampler polls this site directly and *adds*
#: ``hang_seconds`` to the measured queue delay — no real sleep — so a
#: drill can push a brownout controller through its whole state machine
#: deterministically (``python -m repro.serve.overload --drill``).
SITE_OVERLOAD = "serve.overload"

SITES = (
    SITE_COMPILE,
    SITE_WORKER,
    SITE_QUALITY,
    SITE_CACHE_LOAD,
    SITE_OUTPUT,
    SITE_OVERLOAD,
)

#: Failure modes, per site (exception is valid everywhere).
MODES = ("exception", "hang", "dead", "nan", "inf")


@dataclass(frozen=True)
class FaultSpec:
    """One trigger: fire ``mode`` at ``site`` while budget remains.

    Attributes:
        site: one of :data:`SITES`.
        mode: one of :data:`MODES`.
        probability: chance of firing per visit, in (0, 1].
        max_fires: stop firing after this many hits (None = unlimited).
        hang_seconds: sleep length for ``mode="hang"``.
        match: substring filter on the site's context string ("" = any).
    """

    site: str
    mode: str = "exception"
    probability: float = 1.0
    max_fires: Optional[int] = None
    hang_seconds: float = 0.25
    match: str = ""

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ResilienceError(
                f"unknown fault site {self.site!r}; known: {SITES}"
            )
        if self.mode not in MODES:
            raise ResilienceError(
                f"unknown fault mode {self.mode!r}; known: {MODES}"
            )
        if not 0.0 < self.probability <= 1.0:
            raise ResilienceError(
                f"fault probability must be in (0, 1], got {self.probability!r}"
            )
        if self.max_fires is not None and self.max_fires < 1:
            raise ResilienceError(
                f"max_fires must be >= 1 or None, got {self.max_fires!r}"
            )


class FaultPlan:
    """A seeded set of :class:`FaultSpec` triggers with firing bookkeeping.

    Thread-safe: shard workers poll the plan concurrently.  ``fired``
    counts hits per site for the harness's "did the fault actually
    happen" assertions.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self.seed = seed
        self._rng = random.Random(seed)
        # Dedicated RNG for retry-backoff jitter (resilience.guard): kept
        # separate from the firing RNG so adding jitter draws does not
        # perturb which visits fire under a given seed.
        self.backoff_rng = random.Random(("backoff", seed).__repr__())
        self._left: List[Optional[int]] = [s.max_fires for s in self.specs]
        self.fired: Dict[str, int] = {}
        self._lock = threading.Lock()

    def poll(self, site: str, context: str = "") -> Optional[FaultSpec]:
        """The first matching spec with budget that fires, or None."""
        with self._lock:
            for i, spec in enumerate(self.specs):
                if spec.site != site:
                    continue
                if spec.match and spec.match not in context:
                    continue
                if self._left[i] == 0:
                    continue
                if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                    continue
                if self._left[i] is not None:
                    self._left[i] -= 1
                self.fired[site] = self.fired.get(site, 0) + 1
                return spec
        return None

    def total_fired(self) -> int:
        with self._lock:
            return sum(self.fired.values())

    def describe(self) -> str:
        return ", ".join(
            f"{s.site}/{s.mode}"
            + (f" x{s.max_fires}" if s.max_fires is not None else "")
            for s in self.specs
        ) or "(empty plan)"


# ------------------------------------------------------------- active plan

_PLAN_LOCK = threading.Lock()
_PLAN_STACK: List[FaultPlan] = []


def active_plan() -> Optional[FaultPlan]:
    """The innermost active plan, or None (the fast path)."""
    stack = _PLAN_STACK
    return stack[-1] if stack else None


class use_faults:
    """Activate a fault plan for a ``with`` block (process-global)."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def __enter__(self) -> FaultPlan:
        with _PLAN_LOCK:
            _PLAN_STACK.append(self.plan)
        return self.plan

    def __exit__(self, *_exc) -> None:
        with _PLAN_LOCK:
            if self.plan in _PLAN_STACK:
                _PLAN_STACK.remove(self.plan)


# --------------------------------------------------------------- injection

#: exc class -> dynamic (InjectedFault, exc) subclass, built once.
_COMBINED: Dict[Type[BaseException], Type[BaseException]] = {}


def _injected_type(exc: Type[BaseException]) -> Type[BaseException]:
    if issubclass(exc, InjectedFault):
        return exc
    combined = _COMBINED.get(exc)
    if combined is None:
        combined = type(f"Injected{exc.__name__}", (InjectedFault, exc), {})
        _COMBINED[exc] = combined
    return combined


def maybe_inject(
    site: str,
    context: str = "",
    exc: Type[BaseException] = InjectedFault,
) -> Optional[FaultSpec]:
    """The seam a fault site calls.  No active plan: one list check.

    Behaviour per fired mode:

    * ``exception`` — raise ``exc`` (combined with :class:`InjectedFault`).
    * ``dead`` — raise :class:`~repro.errors.WorkerDeath`.
    * ``hang`` — sleep ``hang_seconds`` then return the spec (the task
      completes *late*; the guard's deadline is what turns a hang into a
      failure).
    * ``nan`` / ``inf`` — return the spec; the caller corrupts its output.
    """
    plan = active_plan()
    if plan is None:
        return None
    spec = plan.poll(site, context)
    if spec is None:
        return None
    if spec.mode == "exception":
        raise _injected_type(exc)(f"injected fault at {site} ({context})")
    if spec.mode == "dead":
        raise WorkerDeath(f"injected worker death at {site} ({context})")
    if spec.mode == "hang":
        time.sleep(spec.hang_seconds)
    return spec


# ------------------------------------------------------- randomized plans

#: (site, modes) pairs :func:`random_plan` draws from, one fault class
#: per chaos run.
FAULT_CLASSES: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "compile": (SITE_COMPILE, ("exception",)),
    "worker_crash": (SITE_WORKER, ("exception",)),
    "worker_hang": (SITE_WORKER, ("hang",)),
    "worker_dead": (SITE_WORKER, ("dead",)),
    "nan_output": (SITE_OUTPUT, ("nan", "inf")),
    "cache_load": (SITE_CACHE_LOAD, ("exception",)),
    "quality": (SITE_QUALITY, ("exception",)),
}


def random_plan(
    fault_class: str, seed: int = 0, hang_seconds: float = 0.25
) -> FaultPlan:
    """A randomized-but-seeded plan for one chaos fault class.

    The seed drives the firing budget and probability, so a seed matrix
    covers one-shot transients, repeated failures and persistent faults.
    """
    try:
        site, modes = FAULT_CLASSES[fault_class]
    except KeyError:
        raise ResilienceError(
            f"unknown fault class {fault_class!r}; "
            f"known: {sorted(FAULT_CLASSES)}"
        )
    rng = random.Random((fault_class, seed).__repr__())
    mode = modes[rng.randrange(len(modes))]
    max_fires: Optional[int] = rng.choice([1, 2, 4, None])
    probability = rng.choice([1.0, 1.0, 0.75, 0.5])
    spec = FaultSpec(
        site=site,
        mode=mode,
        probability=probability,
        max_fires=max_fires,
        hang_seconds=hang_seconds,
    )
    return FaultPlan([spec], seed=seed)
