"""Output guardrails: catch numerically-exploded results before they ship.

Approximation trades *accuracy* for speed; it must never trade *sanity*.
A variant whose output contains NaN/Inf (or values outside a configured
magnitude bound) has left the regime the quality metric can even score —
``NaN`` propagates through every error norm — so the guarded launcher
checks the raw output first and treats a violation exactly like a crash:
fall down the ladder, charge the variant's circuit breaker.

Checks are vectorized single passes (``np.isfinite(...).all()``), cheap
next to the kernel that produced the array.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np


def _float_arrays(output) -> Iterable[np.ndarray]:
    parts = output if isinstance(output, (tuple, list)) else [output]
    for part in parts:
        if isinstance(part, np.ndarray) and np.issubdtype(
            part.dtype, np.floating
        ):
            yield part


def validate_output(output, value_limit: Optional[float] = None) -> Optional[str]:
    """A violation description, or None when the output is sane.

    Flags any non-finite element in any floating-point output array, and
    (when ``value_limit`` is set) any magnitude above it.  Integer arrays
    and non-array outputs pass: they cannot hold NaN/Inf.
    """
    notes: List[str] = []
    for i, arr in enumerate(_float_arrays(output)):
        finite = np.isfinite(arr)
        if not finite.all():
            bad = int(arr.size - np.count_nonzero(finite))
            first = int(np.argmin(finite))
            notes.append(
                f"output[{i}]: {bad} non-finite values "
                f"(first at flat index {first}: {arr.reshape(-1)[first]!r})"
            )
            continue
        if value_limit is not None:
            over = np.abs(arr) > value_limit
            if over.any():
                first = int(np.argmax(over))
                notes.append(
                    f"output[{i}]: {int(np.count_nonzero(over))} values over "
                    f"|x| <= {value_limit} (first at flat index {first}: "
                    f"{arr.reshape(-1)[first]!r})"
                )
    return "; ".join(notes) if notes else None


def corrupt_output(output, mode: str = "nan", fraction: float = 0.01) -> bool:
    """Pollute ``output`` in place with NaN/Inf (fault injection only).

    Writes the poison into a deterministic stripe of each float array —
    the first ``max(1, fraction * size)`` elements — so corruption is
    reproducible under a seeded plan.  Returns True when anything was
    actually corrupted (an all-integer output cannot be).
    """
    poison = np.nan if mode == "nan" else np.inf
    touched = False
    for arr in _float_arrays(output):
        flat = arr.reshape(-1)
        n = max(1, int(flat.size * fraction))
        flat[:n] = poison
        touched = True
    return touched
