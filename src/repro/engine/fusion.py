"""Cross-launch fusion: one compiled callable for producer/consumer pairs.

Serving pipelines repeatedly issue the same back-to-back kernel launches
where the first kernel's output array feeds the second's input (ConvSep's
row pass writing the ``tmp`` the column pass reads).  With both kernels
already compiled by :mod:`repro.codegen`, the launch boundary between
them buys nothing — it only forces the intermediate to be materialized in
a caller-owned array and pays a second trip through launch dispatch.

This module is a launch-graph peephole over that boundary, opt-in via
``LaunchOptions(fuse=True)``:

* **Learn.**  The first time a producer/consumer adjacency is observed
  (same grid, same bounds-check setting, the producer's written array —
  per the :mod:`repro.parallel` shardability/aliasing analysis — appears
  as exactly one argument of each launch), a :class:`FusedPlan` is
  recorded and a fused driver callable is compiled.
* **Defer.**  The next time the producer launches under an active
  ``fuse`` scope, it is *deferred*: its trace/notification happen
  eagerly, the kernel body does not run yet.
* **Fuse.**  When the consumer arrives and matches the plan (fingerprint,
  grid, and array-identity checks against the deferred launch), both
  stages run as the fused callable against a plan-owned scratch buffer —
  the caller's intermediate array is never written.
* **Flush.**  Any non-matching launch, ladder-rung boundary or explicit
  :func:`flush` first runs the deferred producer normally, so the
  deferral is invisible to everything except the fused pair itself.

The elision contract: after a fused pair, the contents of the caller's
intermediate array are **unspecified** (it keeps its pre-launch bytes).
Pipelines that read the intermediate on the host must not enable ``fuse``
— which is why :class:`~repro.serve.ApproxSession` leaves it off unless
asked.  Scratch is seeded from the intermediate's pre-launch contents per
fused run, so partially-written intermediates keep bit-exact semantics
for every *output* array.

State is thread-local; the window never spans threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs.registry import get_registry

#: Registry field -> help text; each becomes ``repro_fusion_<field>``.
_FIELDS = {
    "plans_learned": "producer/consumer fusion plans learned",
    "deferred": "producer launches deferred awaiting their consumer",
    "fused_runs": "producer/consumer pairs executed as one fused callable",
    "elided_writes": "intermediate arrays elided (never written) by fusion",
    "flushes": "deferred producers flushed (consumer never arrived)",
}


class FusionStats:
    """Process-wide fusion counters, served from the metrics registry."""

    def __init__(self) -> None:
        registry = get_registry()
        object.__setattr__(
            self,
            "_metrics",
            {
                name: registry.counter(f"repro_fusion_{name}", help)
                for name, help in _FIELDS.items()
            },
        )

    def __getattr__(self, name: str) -> int:
        try:
            child = self._metrics[name]
        except KeyError:
            raise AttributeError(name) from None
        return int(child.value)

    def __setattr__(self, name: str, value) -> None:
        self._metrics[name].set(value)

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in _FIELDS}

    def reset(self) -> None:
        for name in _FIELDS:
            self._metrics[name].set(0.0)


STATS = FusionStats()


def stats_snapshot() -> Dict[str, int]:
    return STATS.snapshot()


def _data_ptr(value) -> Optional[Tuple[int, int]]:
    """Identity key of an ndarray's storage: (address, nbytes).

    ``bind_arguments`` rebinds caller arrays as fresh ``reshape(-1)``
    views, so object identity is useless — two launches touch "the same
    array" iff their views cover the same memory."""
    if not isinstance(value, np.ndarray):
        return None
    return value.__array_interface__["data"][0], value.nbytes


def _array_ptrs(bound: Dict[str, object]) -> Dict[str, Tuple[int, int]]:
    out = {}
    for name, value in bound.items():
        ptr = _data_ptr(value)
        if ptr is not None:
            out[name] = ptr
    return out


@dataclass
class _LaunchRecord:
    """One codegen launch, as the window remembers it."""

    fn: object  # ir.Function
    module: object
    compiled: object  # codegen.cache.CompiledKernel
    grid: object
    bounds_check: bool
    bound: Dict[str, object]
    effective: object  # LaunchOptions snapshot (sharding decisions)
    ptrs: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.ptrs = _array_ptrs(self.bound)


@dataclass
class FusedPlan:
    """A learned producer/consumer pair and its fused driver."""

    fp_a: str
    fp_b: str
    grid: object
    bounds_check: bool
    mid_a: str  # intermediate's param name in the producer
    mid_b: str  # intermediate's param name in the consumer
    fn_a: object
    module_a: object
    compiled_a: object
    fn_b: object
    module_b: object
    compiled_b: object
    source: str = ""
    driver: object = None
    scratch: Optional[np.ndarray] = None

    def describe(self) -> str:
        return (
            f"{self.compiled_a.fn_name} -> {self.compiled_b.fn_name} "
            f"(mid {self.mid_a!r}/{self.mid_b!r}, grid_class "
            f"{self.compiled_a.grid_class})"
        )


def _compile_driver(plan: FusedPlan) -> None:
    """Build the fused callable: one function body running both compiled
    stage entries back to back over one geometry (same technique as the
    per-kernel lowering: source + ``exec`` with entries in globals, which
    sidesteps any namespace collision between the two generated modules)."""
    plan.source = (
        f"def _fused(_G, _a_args, _b_args):\n"
        f"    # {plan.compiled_a.fn_name} then {plan.compiled_b.fn_name};\n"
        f"    # the intermediate flows through plan-owned scratch.\n"
        f"    _entry_a(_G, *_a_args)\n"
        f"    _entry_b(_G, *_b_args)\n"
    )
    namespace = {
        "_entry_a": plan.compiled_a.entry,
        "_entry_b": plan.compiled_b.entry,
    }
    exec(compile(plan.source, f"<fused:{plan.compiled_a.fn_name}+{plan.compiled_b.fn_name}>", "exec"), namespace)
    plan.driver = namespace["_fused"]


class _Window(threading.local):
    """Per-thread fusion state: last launch, learned plans, pending defer."""

    def __init__(self) -> None:
        self.last: Optional[_LaunchRecord] = None
        #: (producer fp, grid, bounds_check) -> plan
        self.plans: Dict[Tuple[str, object, bool], FusedPlan] = {}
        self.pending: Optional[Tuple[FusedPlan, _LaunchRecord]] = None


_WINDOW = _Window()

_MAX_PLANS = 64


def _run_stage(record: _LaunchRecord) -> None:
    """Run one recorded launch now (shard-aware), exactly as launch()
    would have."""
    from .interpreter import _maybe_shard

    if not _maybe_shard(
        record.fn,
        record.module,
        record.compiled,
        record.grid,
        record.bound,
        record.effective,
    ):
        record.compiled.run(record.grid, record.bound)


def flush() -> None:
    """Run any deferred producer launch now.  Safe to call at any time;
    a no-op when nothing is deferred."""
    pending = _WINDOW.pending
    if pending is None:
        return
    _WINDOW.pending = None
    STATS.flushes += 1
    _plan, record = pending
    _run_stage(record)


def reset() -> None:
    """Drop all fusion state on this thread (tests)."""
    flush()
    _WINDOW.last = None
    _WINDOW.plans.clear()
    _WINDOW.pending = None


def plan_count() -> int:
    return len(_WINDOW.plans)


def plans() -> List[FusedPlan]:
    return list(_WINDOW.plans.values())


def _unique_param_for_ptr(
    ptr: Tuple[int, int], ptrs: Dict[str, Tuple[int, int]]
) -> Optional[str]:
    """The single param bound to this storage, or None if absent/aliased."""
    names = [name for name, p in ptrs.items() if p == ptr]
    return names[0] if len(names) == 1 else None


def _try_learn(last: _LaunchRecord, current: _LaunchRecord) -> None:
    """Learn a plan from an adjacent (producer=last, consumer=current)
    pair when the eligibility guards hold."""
    if last.grid is not current.grid and last.grid != current.grid:
        return
    if last.bounds_check != current.bounds_check:
        return
    from ..parallel.analysis import analyze_shardability

    written = analyze_shardability(
        last.fn, last.module, fingerprint=last.compiled.fingerprint
    ).written_arrays
    pairs: List[Tuple[str, str]] = []
    for w in written:
        ptr = last.ptrs.get(w)
        if ptr is None:
            continue
        # Aliasing guards: the storage must be bound to exactly one param
        # on each side, and the producer-side param must be ``w`` itself.
        if _unique_param_for_ptr(ptr, last.ptrs) != w:
            continue
        consumer_param = _unique_param_for_ptr(ptr, current.ptrs)
        if consumer_param is not None:
            pairs.append((w, consumer_param))
    if len(pairs) != 1:
        return  # zero candidates, or ambiguous — don't guess
    mid_a, mid_b = pairs[0]
    plan = FusedPlan(
        fp_a=last.compiled.fingerprint,
        fp_b=current.compiled.fingerprint,
        grid=last.grid,
        bounds_check=last.bounds_check,
        mid_a=mid_a,
        mid_b=mid_b,
        fn_a=last.fn,
        module_a=last.module,
        compiled_a=last.compiled,
        fn_b=current.fn,
        module_b=current.module,
        compiled_b=current.compiled,
    )
    _compile_driver(plan)
    if len(_WINDOW.plans) >= _MAX_PLANS:
        _WINDOW.plans.pop(next(iter(_WINDOW.plans)))
    _WINDOW.plans[(plan.fp_a, plan.grid, plan.bounds_check)] = plan
    STATS.plans_learned += 1


def _consumer_matches(
    plan: FusedPlan, producer: _LaunchRecord, consumer: _LaunchRecord
) -> bool:
    if consumer.compiled.fingerprint != plan.fp_b:
        return False
    if consumer.grid != producer.grid or consumer.bounds_check != producer.bounds_check:
        return False
    ptr = producer.ptrs.get(plan.mid_a)
    if ptr is None or _unique_param_for_ptr(ptr, producer.ptrs) != plan.mid_a:
        return False
    return _unique_param_for_ptr(ptr, consumer.ptrs) == plan.mid_b


def _run_fused(plan: FusedPlan, producer: _LaunchRecord, consumer: _LaunchRecord) -> None:
    """Execute the pair with the intermediate elided into plan scratch."""
    from ..obs import trace as obs_trace
    from .interpreter import _maybe_shard

    mid = producer.bound[plan.mid_a]
    scratch = plan.scratch
    if scratch is None or scratch.size != mid.size or scratch.dtype != mid.dtype:
        scratch = plan.scratch = np.empty(mid.size, dtype=mid.dtype)
    # Seed scratch with the intermediate's pre-launch contents: lanes the
    # producer leaves unwritten must read back their prior values in the
    # consumer, exactly as without fusion.
    np.copyto(scratch, mid)
    bound_a = dict(producer.bound)
    bound_a[plan.mid_a] = scratch
    bound_b = dict(consumer.bound)
    bound_b[plan.mid_b] = scratch
    with obs_trace.span(
        "engine.fused_launch",
        producer=plan.compiled_a.fn_name,
        consumer=plan.compiled_b.fn_name,
        threads=producer.grid.threads,
    ):
        sharded_a = _maybe_shard(
            plan.fn_a, plan.module_a, plan.compiled_a, producer.grid, bound_a,
            producer.effective,
        )
        if sharded_a:
            # Stage boundary is a natural barrier; run the consumer the
            # same way rather than through the single-thread driver.
            if not _maybe_shard(
                plan.fn_b, plan.module_b, plan.compiled_b, consumer.grid,
                bound_b, consumer.effective,
            ):
                plan.compiled_b.run(consumer.grid, bound_b)
        else:
            from ..codegen.runtime import geometry

            geo = geometry(producer.grid)
            plan.driver(
                geo,
                [bound_a[name] for name in plan.compiled_a.param_names],
                [bound_b[name] for name in plan.compiled_b.param_names],
            )
    STATS.fused_runs += 1
    STATS.elided_writes += 1


def offer(fn, module, compiled, grid, bound, effective, bounds_check: bool) -> bool:
    """Offer one about-to-run codegen launch to the fusion window.

    Returns True when the window took ownership of the execution (the
    launch was deferred as a producer, or ran as the consumer half of a
    fused pair); the caller must then skip the normal kernel run but
    still account the launch (trace count + notification).  False means
    "run it normally".
    """
    current = _LaunchRecord(
        fn=fn,
        module=module,
        compiled=compiled,
        grid=grid,
        bounds_check=bounds_check,
        bound=bound,
        effective=effective,
    )
    pending = _WINDOW.pending
    if pending is not None:
        plan, producer = pending
        if _consumer_matches(plan, producer, current):
            _WINDOW.pending = None
            _run_fused(plan, producer, current)
            _WINDOW.last = None  # the pair is consumed; restart the window
            return True
        flush()  # not our consumer: run the deferred producer first
    plan = _WINDOW.plans.get((compiled.fingerprint, grid, bounds_check))
    if plan is not None:
        _WINDOW.pending = (plan, current)
        _WINDOW.last = None
        STATS.deferred += 1
        return True
    if _WINDOW.last is not None:
        _try_learn(_WINDOW.last, current)
    _WINDOW.last = current
    return False
