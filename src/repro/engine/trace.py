"""Dynamic execution traces.

The interpreter records what a kernel launch *did* — how many times each
class of instruction issued, and the shape of every memory access stream —
and the device cost model (:mod:`repro.device.costmodel`) turns that record
into cycles for a GPU-like or CPU-like machine.  This replaces the paper's
wall-clock measurements on a GTX 560 / Core i7: speedups are ratios of
modelled cycles between the exact and approximate traces of the *same*
workload.

Coalescing statistics are gathered the way the hardware does it: the
addresses issued by each 32-thread warp are mapped to 128-byte segments and
the number of distinct segments is the number of memory transactions that
warp costs (this is what makes large lookup tables slow in paper Fig 17).
To bound overhead the trace samples at most ``COALESCE_SAMPLE`` threads per
access site; the per-warp transaction average is unbiased under the
grid-stride layouts our kernels use.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

WARP_SIZE = 32
SEGMENT_BYTES = 128
COALESCE_SAMPLE = 4096


def _max_run_length(sorted_rows: np.ndarray) -> int:
    """Longest run of equal values in each (sorted) row, summed over rows.

    For a warp's atomic addresses this is the serialization chain length:
    ``k`` lanes updating one address retire in ``k`` serial steps.
    """
    rows = np.asarray(sorted_rows)
    if rows.shape[1] < 2:
        return rows.shape[0]
    eq = rows[:, 1:] == rows[:, :-1]
    run = np.zeros(rows.shape[0], dtype=np.int64)
    best = np.ones(rows.shape[0], dtype=np.int64)
    for j in range(eq.shape[1]):  # at most WARP_SIZE - 1 vector steps
        run = (run + 1) * eq[:, j]
        best = np.maximum(best, run + 1)
    return int(best.sum())


#: Cap on the per-stream distinct-segment set used for the working-set
#: estimate; beyond this the estimate saturates (the cache model only needs
#: "bigger than any cache").
MAX_TRACKED_SEGMENTS = 1 << 16


@dataclass
class MemStats:
    """Aggregate statistics for one (space, op-kind) memory stream."""

    accesses: int = 0  # thread-level load/store executions
    bytes: int = 0
    warps: int = 0  # sampled warps inspected for coalescing
    transactions: int = 0  # 128B segment transactions those warps issued
    #: sum over sampled warps of the largest same-address multiplicity —
    #: the serialization chain length of atomic RMWs (1 = conflict-free)
    atomic_chain: int = 0
    #: distinct 128-byte segments touched (capped working-set estimate)
    segments: set = field(default_factory=set)
    segments_saturated: bool = False

    @property
    def transactions_per_warp(self) -> float:
        """Mean 128-byte transactions per fully-populated warp (1 = perfectly
        coalesced, 32 = fully serialized)."""
        if self.warps == 0:
            return 1.0
        return self.transactions / self.warps

    @property
    def atomic_chain_per_warp(self) -> float:
        """Mean serialization chain length of atomics per sampled warp."""
        if self.warps == 0:
            return 1.0
        return max(1.0, self.atomic_chain / self.warps)

    @property
    def working_set_bytes(self) -> int:
        """Estimated footprint of this stream (saturating)."""
        if self.segments_saturated:
            return MAX_TRACKED_SEGMENTS * SEGMENT_BYTES * 4
        return len(self.segments) * SEGMENT_BYTES

    def note_segments(self, segs: np.ndarray) -> None:
        if self.segments_saturated:
            return
        self.segments.update(np.unique(segs).tolist())
        if len(self.segments) > MAX_TRACKED_SEGMENTS:
            self.segments_saturated = True
            self.segments = set()

    def merge(self, other: "MemStats") -> None:
        self.accesses += other.accesses
        self.bytes += other.bytes
        self.warps += other.warps
        self.transactions += other.transactions
        self.atomic_chain += other.atomic_chain
        if other.segments_saturated:
            self.segments_saturated = True
            self.segments = set()
        elif not self.segments_saturated:
            self.segments.update(other.segments)
            if len(self.segments) > MAX_TRACKED_SEGMENTS:
                self.segments_saturated = True
                self.segments = set()


@dataclass
class Trace:
    """Everything the cost model needs to price a (sequence of) launches."""

    #: (latency_class, dtype_name) -> number of thread-level executions.
    op_counts: Counter = field(default_factory=Counter)
    #: (space, kind, array) -> MemStats, kind in "load" | "store" | "atomic".
    #: Keeping streams separate per array lets the cache model see each
    #: buffer's own working set (a 4 KiB lookup table must not inherit the
    #: footprint of the input it is read alongside).
    mem: Dict[Tuple[str, str, str], MemStats] = field(default_factory=dict)
    launches: int = 0
    threads_launched: int = 0

    # -- recording (called by the interpreter) ------------------------------

    def count_op(self, latency_class: str, dtype_name: str, times: int) -> None:
        if times:
            self.op_counts[(latency_class, dtype_name)] += int(times)

    def record_access(
        self,
        space: str,
        kind: str,
        element_size: int,
        count: int,
        addresses: Optional[np.ndarray],
        array: str = "",
    ) -> None:
        """Record ``count`` thread-level accesses; ``addresses`` (element
        indices, possibly a sample) drives the coalescing statistics for
        global-memory streams."""
        stats = self.mem.setdefault((space, kind, array), MemStats())
        stats.accesses += int(count)
        stats.bytes += int(count) * element_size
        if addresses is None:
            return
        sample = np.asarray(addresses).ravel()
        if sample.size > COALESCE_SAMPLE:
            sample = sample[:COALESCE_SAMPLE]
        all_segs = sample * element_size // SEGMENT_BYTES
        stats.note_segments(all_segs)
        full_warps = sample.size // WARP_SIZE
        if full_warps == 0:
            # Fewer than one warp of threads: a single partial warp.
            stats.warps += 1
            stats.transactions += int(np.unique(all_segs).size)
            if kind == "atomic":
                addr_sorted = np.sort(sample)
                stats.atomic_chain += int(_max_run_length(addr_sorted[None, :]))
            return
        warp_view = sample[: full_warps * WARP_SIZE].reshape(full_warps, WARP_SIZE)
        stats.warps += full_warps
        if space == "shared":
            # Shared memory serializes on *bank* conflicts: a warp costs as
            # many cycles as the deepest same-bank pile-up (32 banks, word
            # interleaved).
            banks = np.sort(warp_view % WARP_SIZE, axis=1)
            stats.transactions += _max_run_length(banks)
        elif space == "constant":
            # The constant cache broadcasts one *word* per cycle: a warp
            # costs one step per distinct address it requests.
            words_sorted = np.sort(warp_view, axis=1)
            distinct = 1 + (words_sorted[:, 1:] != words_sorted[:, :-1]).sum(axis=1)
            stats.transactions += int(distinct.sum())
        else:
            segs_sorted = np.sort(
                warp_view * element_size // SEGMENT_BYTES, axis=1
            )
            distinct = 1 + (segs_sorted[:, 1:] != segs_sorted[:, :-1]).sum(axis=1)
            stats.transactions += int(distinct.sum())
        if kind == "atomic":
            stats.atomic_chain += _max_run_length(np.sort(warp_view, axis=1))

    def count_launch(self, threads: int) -> None:
        self.launches += 1
        self.threads_launched += int(threads)

    # -- queries -------------------------------------------------------------

    def total_ops(self) -> int:
        return sum(self.op_counts.values())

    def ops_in_class(self, latency_class: str) -> int:
        return sum(
            n for (cls, _dt), n in self.op_counts.items() if cls == latency_class
        )

    def accesses(self, space: str, kind: str = None, array: str = None) -> int:
        return sum(
            s.accesses
            for (sp, k, arr), s in self.mem.items()
            if sp == space
            and (kind is None or k == kind)
            and (array is None or arr == array)
        )

    def merge(self, other: "Trace") -> None:
        """Fold another trace into this one (multi-kernel programs)."""
        self.op_counts.update(other.op_counts)
        for key, stats in other.mem.items():
            self.mem.setdefault(key, MemStats()).merge(stats)
        self.launches += other.launches
        self.threads_launched += other.threads_launched

    def copy(self) -> "Trace":
        fresh = Trace()
        fresh.merge(self)
        return fresh
